package dssp_test

import (
	"sync"
	"testing"
	"time"

	"dssp"
	"dssp/internal/cluster/clustertest"
)

// treeServerConfig is the root of a two-relay aggregation tree over real TCP.
func treeServerConfig(addr string, sync dssp.Sync) dssp.ServerConfig {
	return dssp.ServerConfig{
		Addr:         addr,
		Workers:      4,
		Sync:         sync,
		Model:        dssp.ModelSmallMLP,
		Dataset:      dssp.DatasetConfig{Examples: 240, Classes: 3, ImageSize: 12, Noise: 0.3, Seed: 5},
		LearningRate: 0.1,
		Options: dssp.Options{
			Elastic:          true,
			HeartbeatTimeout: 2 * time.Second,
		},
		Seed: 5,
	}
}

func treeWorkerConfig(rootAddr string, id int) dssp.WorkerConfig {
	return dssp.WorkerConfig{
		ServerAddr:       rootAddr,
		Tree:             true,
		WorkerID:         id,
		Workers:          4,
		Model:            dssp.ModelSmallMLP,
		Dataset:          dssp.DatasetConfig{Examples: 240, Classes: 3, ImageSize: 12, Noise: 0.3, Seed: 5},
		BatchSize:        12,
		Epochs:           4,
		Seed:             5,
		Delay:            20 * time.Millisecond,
		Reconnect:        true,
		ReconnectTimeout: 30 * time.Second,
		Options:          dssp.Options{HeartbeatInterval: 200 * time.Millisecond},
	}
}

// TestTCPRelayDeathReparentsSubtree is the churn test for the aggregation
// tier, run under each paradigm over real TCP: four workers join through two
// fanout-2 relays, the relay covering workers 2 and 3 is killed mid-run, and
// the orphans must re-fetch the layout and re-parent onto the survivor (which
// inherits their range) without deadlocking the barrier. The root sees the
// subtree leave and rejoin; every worker still finishes its full course.
func TestTCPRelayDeathReparentsSubtree(t *testing.T) {
	paradigms := []dssp.Sync{
		{Paradigm: dssp.BSP},
		{Paradigm: dssp.SSP, Staleness: 2},
		{Paradigm: dssp.DSSP, Staleness: 2, Range: 4},
	}
	for _, sync := range paradigms {
		sync := sync
		t.Run(sync.Paradigm.String(), func(t *testing.T) {
			runTreeChurn(t, sync)
		})
	}
}

func runTreeChurn(t *testing.T, syncCfg dssp.Sync) {
	rootAddr := clustertest.FreePort(t)
	server, err := dssp.Serve(treeServerConfig(rootAddr, syncCfg))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	// Relays register in order, so the first covers workers [0,2) and the
	// second [2,4). Heartbeats keep the trunks alive through barrier stalls
	// under the root's elastic lease.
	relayCfg := func() dssp.RelayConfig {
		return dssp.RelayConfig{
			Addr:              "127.0.0.1:0",
			Parent:            rootAddr,
			Fanout:            2,
			HeartbeatInterval: 200 * time.Millisecond,
			HeartbeatTimeout:  2 * time.Second,
		}
	}
	relay0, err := dssp.ServeRelay(relayCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer relay0.Stop()
	relay1, err := dssp.ServeRelay(relayCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer relay1.Stop()

	var wg sync.WaitGroup
	reports := make([]*dssp.WorkerReport, 4)
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reports[w], errs[w] = dssp.RunWorker(treeWorkerConfig(rootAddr, w))
		}(w)
	}

	// Kill the relay fronting workers 2 and 3 while the run is in flight.
	time.Sleep(150 * time.Millisecond)
	relay1.Stop()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("workers deadlocked after relay death")
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// The orphaned subtree must have ridden its reconnect loop onto the
	// survivor rather than completing before the kill landed.
	if reports[2].Reconnects == 0 && reports[3].Reconnects == 0 {
		t.Error("neither orphaned worker reconnected — the relay kill missed the run")
	}
	if d := server.Departures(); d < 2 {
		t.Errorf("root recorded %d departures, want >= 2 (the dead relay's subtree)", d)
	}
	if r := server.Rejoins(); r < 1 {
		t.Errorf("root recorded %d rejoins, want >= 1 (orphans re-parenting)", r)
	}

	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("server never completed after all workers finished")
	}

	// Every logical push was either applied or dropped — nothing vanished
	// inside the tree, even across the re-parent.
	totalIters := 0
	for w, rep := range reports {
		if rep.Iterations == 0 {
			t.Errorf("worker %d did no iterations", w)
		}
		totalIters += rep.Iterations
	}
	if got := server.Updates() + server.Dropped(); got < totalIters {
		t.Errorf("updates %d + dropped %d < %d worker iterations: pushes lost in the tree",
			server.Updates(), server.Dropped(), totalIters)
	}
	if acc, err := server.Evaluate(); err != nil {
		t.Errorf("evaluate: %v", err)
	} else if acc < 0.5 {
		t.Errorf("final accuracy %.3f after relay churn never converged", acc)
	} else {
		t.Logf("%s: accuracy %.3f, updates %d, dropped %d, departures %d, rejoins %d",
			syncCfg.Paradigm, acc, server.Updates(), server.Dropped(), server.Departures(), server.Rejoins())
	}
}
