package dssp_test

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"dssp"
	"dssp/internal/cluster/clustertest"
	"dssp/internal/ps"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// dialBinary opens one binary-wire connection for test-side inspection.
func dialBinary(addr string) (transport.Conn, error) {
	return transport.DialWire(addr, transport.WireBinary)
}

// replicaWeights reads one server's full weight vector through a read-only
// replica session — the same mechanism backups and cluster evaluation use.
func replicaWeights(t *testing.T, addr string) ([]*tensor.Tensor, int64) {
	t.Helper()
	conn, err := dialBinary(addr)
	if err != nil {
		t.Fatalf("replica dial %s: %v", addr, err)
	}
	client := ps.NewClient(conn, 0)
	client.SetReplica(true)
	if err := client.Register(); err != nil {
		t.Fatalf("replica register at %s: %v", addr, err)
	}
	defer client.Close()
	params, version, err := client.Pull()
	if err != nil {
		t.Fatalf("replica pull from %s: %v", addr, err)
	}
	return params, version
}

// groupWeights assembles a server group's full weight vector from the
// cluster map, tensor ranges stitched in shard-owner order.
func groupWeights(t *testing.T, coordAddr string) ([]*tensor.Tensor, int64) {
	t.Helper()
	m, err := ps.FetchClusterMap(dialBinary, coordAddr)
	if err != nil {
		t.Fatalf("fetch cluster map: %v", err)
	}
	out := make([]*tensor.Tensor, m.Total)
	version := int64(-1)
	for _, e := range m.Servers {
		params, v := replicaWeights(t, e.Addr)
		copy(out[e.TensorLo:e.TensorHi], params)
		if version < 0 || v < version {
			version = v
		}
	}
	for i, p := range out {
		if p == nil {
			t.Fatalf("cluster map covers no owner for tensor %d", i)
		}
	}
	return out, version
}

// requireSameWeights asserts bitwise equality of two weight vectors.
func requireSameWeights(t *testing.T, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tensor count: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i].Data(), want[i].Data()
		if len(g) != len(w) {
			t.Fatalf("tensor %d size: got %d, want %d", i, len(g), len(w))
		}
		for j := range g {
			if math.Float32bits(g[j]) != math.Float32bits(w[j]) {
				t.Fatalf("tensor %d value %d: got %v, want %v", i, j, g[j], w[j])
			}
		}
	}
}

// e2eSyncs is the paradigm matrix the convergence tests sweep.
var e2eSyncs = []dssp.Sync{
	{Paradigm: dssp.BSP},
	{Paradigm: dssp.SSP, Staleness: 2},
	{Paradigm: dssp.DSSP, Staleness: 1, Range: 4},
}

// TestClusterBitIdenticalToSingleServerTCP pins the tentpole's correctness
// end to end over real TCP: a deterministic schedule (one worker, so every
// push applies serially) trained against a 2- and 3-server group produces
// the byte-exact weights of the same schedule against a single server, under
// each paradigm, with a stateful (momentum) optimizer.
func TestClusterBitIdenticalToSingleServerTCP(t *testing.T) {
	base := clustertest.Config{
		Workers:  1,
		Epochs:   1,
		Momentum: 0.9,
	}
	for _, sync := range e2eSyncs {
		cfg := base
		cfg.Sync = sync
		t.Run(sync.Paradigm.String(), func(t *testing.T) {
			single := clustertest.Start(t, cfg)
			if reports, errs := single.RunWorkers(nil); errs[0] != nil {
				t.Fatalf("standalone worker: %v", errs[0])
			} else if reports[0].Iterations == 0 {
				t.Fatal("standalone worker ran no iterations")
			}
			want, wantVersion := replicaWeights(t, single.CoordinatorAddr())

			for _, servers := range []int{2, 3} {
				t.Run(fmt.Sprintf("%d-servers", servers), func(t *testing.T) {
					gcfg := cfg
					gcfg.Servers = servers
					group := clustertest.Start(t, gcfg)
					if _, errs := group.RunWorkers(nil); errs[0] != nil {
						t.Fatalf("cluster worker: %v", errs[0])
					}
					got, gotVersion := groupWeights(t, group.CoordinatorAddr())
					if gotVersion != wantVersion {
						t.Fatalf("version: group %d, single %d", gotVersion, wantVersion)
					}
					requireSameWeights(t, got, want)
				})
			}
		})
	}
}

// TestClusterConvergesWithCompressionAndCoalescing relaxes the determinism
// constraints — three concurrent workers (so data servers coalesce pending
// fragments) pushing fp16-compressed gradients with delta pulls — and
// asserts the group still converges to the single-server ballpark.
func TestClusterConvergesWithCompressionAndCoalescing(t *testing.T) {
	base := clustertest.Config{
		Workers: 3,
		Epochs:  3,
		Sync:    dssp.Sync{Paradigm: dssp.DSSP, Staleness: 1, Range: 4},
		Options: dssp.Options{
			Compression: dssp.Compression{Codec: dssp.CompressFP16},
			DeltaPull:   true,
		},
	}
	single := clustertest.Start(t, base)
	if _, errs := single.RunWorkers(nil); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("standalone workers: %v", errs)
	}
	singleAcc := single.Evaluate()

	gcfg := base
	gcfg.Servers = 2
	group := clustertest.Start(t, gcfg)
	if _, errs := group.RunWorkers(nil); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("cluster workers: %v", errs)
	}
	groupAcc := group.Evaluate()

	t.Logf("accuracy: single %.4f, 2-server group %.4f", singleAcc, groupAcc)
	if singleAcc < 0.6 {
		t.Fatalf("single-server baseline never converged: %.4f", singleAcc)
	}
	if groupAcc < singleAcc-0.15 {
		t.Fatalf("group accuracy %.4f trails single-server %.4f by more than 0.15", groupAcc, singleAcc)
	}
}

// TestClusterFailoverPromotesBackup is the failover leg of the matrix: a
// data server dies mid-run, its backup promotes from the streamed weight
// deltas (no checkpoint-restore involved), the workers recover through a
// cluster-map refetch — without re-registering, so the paradigm's staleness
// accounting is undisturbed — and training completes.
func TestClusterFailoverPromotesBackup(t *testing.T) {
	cfg := clustertest.Config{
		Servers:        2,
		Backups:        1,
		Workers:        2,
		Epochs:         3,
		ReplicateEvery: 5 * time.Millisecond,
		ReplicateGrace: 300 * time.Millisecond,
	}
	c := clustertest.Start(t, cfg)

	done := make(chan struct{})
	var reports []*dssp.WorkerReport
	var errs []error
	go func() {
		defer close(done)
		reports, errs = c.RunWorkers(func(id int, wcfg *dssp.WorkerConfig) {
			wcfg.Delay = 15 * time.Millisecond
		})
	}()

	// Let the run get going, then crash the backed-up primary.
	time.Sleep(250 * time.Millisecond)
	c.KillData(0)
	c.WaitPromoted(0, 10*time.Second)

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("workers did not finish after failover")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	for id, r := range reports {
		if r.Iterations == 0 {
			t.Fatalf("worker %d ran no iterations", id)
		}
	}
	c.WaitDone(30 * time.Second)

	// Recovery must go through map refetch, not session churn: no rejoins,
	// and the paradigm never dropped an update to ride out the failover.
	if n := c.Coordinator.Rejoins(); n != 0 {
		t.Errorf("coordinator saw %d rejoins; failover must not re-register workers", n)
	}
	if n := c.Coordinator.Dropped(); n != 0 {
		t.Errorf("coordinator dropped %d updates during failover", n)
	}
	if !c.Backups[0].Promoted() {
		t.Error("backup does not report promotion")
	}
	if acc := c.Evaluate(); acc < 0.5 {
		t.Errorf("final accuracy %.4f after failover never converged", acc)
	}
}

// TestClusterCoordinatorDeathFailsFast pins the documented failure model
// (DESIGN.md §10): the coordinator is the single serialization point,
// so losing it ends the run quickly and loudly — workers error out and data
// servers close their Failed channels — instead of anything limping along
// with undefined staleness.
func TestClusterCoordinatorDeathFailsFast(t *testing.T) {
	cfg := clustertest.Config{
		Servers: 2,
		Workers: 1,
		Epochs:  3,
	}
	c := clustertest.Start(t, cfg)

	done := make(chan error, 1)
	go func() {
		_, errs := c.RunWorkers(func(id int, wcfg *dssp.WorkerConfig) {
			wcfg.Delay = 15 * time.Millisecond
		})
		done <- errs[0]
	}()

	time.Sleep(250 * time.Millisecond)
	c.KillCoordinator()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker finished cleanly without a coordinator")
		}
		t.Logf("worker failed fast: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not fail within 15s of coordinator death")
	}
	for i, srv := range c.Data {
		select {
		case <-srv.Failed():
			if err := srv.FailureErr(); err == nil || !strings.Contains(err.Error(), "coordinator") {
				t.Errorf("data server %d failure cause %v does not name the coordinator", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("data server %d did not fail within 15s of coordinator death", i)
		}
	}
}

// TestClusterSmoke is `make cluster-smoke`: a 3-data-server group over real
// TCP trains a 4-worker DSSP run to completion, and the model assembled
// from the shard owners must hit the accuracy floor. -count=1 in the make
// target defeats the test cache — this is an end-to-end network run.
func TestClusterSmoke(t *testing.T) {
	cfg := clustertest.Config{
		Servers: 3,
		Workers: 4,
		Epochs:  3,
		Sync:    dssp.Sync{Paradigm: dssp.DSSP, Staleness: 1, Range: 4},
	}
	c := clustertest.Start(t, cfg)
	reports, errs := c.RunWorkers(nil)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	total := 0
	for _, r := range reports {
		total += r.Iterations
	}
	c.WaitDone(60 * time.Second)
	if v := c.Coordinator.Version(); v != int64(total) {
		t.Errorf("coordinator clock %d does not match the %d pushed iterations", v, total)
	}
	if acc := c.Evaluate(); acc < 0.7 {
		t.Fatalf("final accuracy %.4f below the 0.70 smoke floor", acc)
	} else {
		t.Logf("cluster smoke: %d iterations across %d workers, final accuracy %.4f", total, len(reports), acc)
	}
}

// TestClusterRejectsCrossModeClients pins the version/mode-skew behavior: a
// classic worker pointed at a coordinator, and a cluster worker pointed at a
// classic server, both fail with explicit errors instead of hanging.
func TestClusterRejectsCrossModeClients(t *testing.T) {
	group := clustertest.Start(t, clustertest.Config{Servers: 2, Workers: 1})
	classicCfg := group.WorkerConfig(0)
	classicCfg.Cluster = false
	if _, err := dssp.RunWorker(classicCfg); err == nil {
		t.Fatal("classic worker registered against a coordinator")
	} else if !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("classic-vs-coordinator error %q does not mention the cluster", err)
	}

	single := clustertest.Start(t, clustertest.Config{Servers: 0, Workers: 1})
	clusterCfg := single.WorkerConfig(0)
	clusterCfg.Cluster = true
	if _, err := dssp.RunWorker(clusterCfg); err == nil {
		t.Fatal("cluster worker fetched a map from a classic server")
	}

	// A data server holds only its shard range: evaluation must redirect to
	// the coordinator instead of silently scoring a partial model.
	if _, err := group.Data[0].Evaluate(); err == nil {
		t.Fatal("data server evaluated a partial model")
	}
}
