package dssp

import (
	"fmt"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/ps"
	"dssp/internal/transport"
)

// RelayConfig configures an aggregation-relay process (cmd/psserver -role
// relay, DESIGN.md §11): a middle tier that accepts ordinary worker sessions,
// sums the gradients of up to Fanout workers into one partial, and forwards a
// single ×k-weighted push to the parent server — cutting the root's push
// ingress from O(workers) to O(workers/fanout) while the paradigm still sees
// every logical push.
type RelayConfig struct {
	// Addr is the child-facing TCP listen address, e.g. ":7071".
	Addr string
	// Advertise is the address published in the root's tree layout — what
	// workers dial. Empty uses the listener's own address (fine on one host;
	// set it explicitly across machines, where ":7071" is not dialable).
	Advertise string
	// Parent is the root parameter server's address.
	Parent string
	// Fanout is how many workers this relay covers.
	Fanout int
	// Wire selects the TCP wire format, WireBinary or WireGob; empty means
	// WireBinary. It must match the parent's and the workers'.
	Wire string
	// Compression is the gradient codec spoken on both hops; the zero value
	// adopts whatever the parent speaks. An explicit codec must match the
	// parent's exactly.
	Compression Compression
	// HeartbeatInterval is how often the relay proves liveness upstream; 0
	// disables its own heartbeats (Recv errors still detect death).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the child-session lease: a worker silent for
	// longer is evicted, mirroring the root's elastic lease. 0 disables it.
	HeartbeatTimeout time.Duration
	// FlushInterval bounds how long a partial waits for straggling children
	// before forwarding incomplete; 0 picks the default (50ms).
	FlushInterval time.Duration
	// MetricsAddr, when non-empty, starts an admin HTTP listener serving the
	// relay's metrics (/metrics: dssp_relay_* series plus transport meters),
	// /healthz and pprof. "127.0.0.1:0" picks a free port.
	MetricsAddr string
}

// RelayServer is a running TCP aggregation relay.
type RelayServer struct {
	inner    *ps.Relay
	listener transport.Listener
	admin    *obs.AdminServer
}

// Addr returns the child-facing address the relay is listening on.
func (r *RelayServer) Addr() string { return r.listener.Addr() }

// MetricsAddr returns the admin HTTP listener's address, or "" when
// RelayConfig.MetricsAddr was unset.
func (r *RelayServer) MetricsAddr() string { return r.admin.Addr() }

// Done returns a channel closed when the relay has stopped — Stop was
// called, or its trunk to the parent died (workers then re-parent via a
// fresh layout fetch).
func (r *RelayServer) Done() <-chan struct{} { return r.inner.Done() }

// Err returns the failure that stopped the relay, if any.
func (r *RelayServer) Err() error { return r.inner.Err() }

// Stats snapshots the relay's traffic accounting: child pushes and ingress
// bytes in, forwarded partials and bytes out.
func (r *RelayServer) Stats() ps.RelayStats { return r.inner.Stats() }

// Registry returns the relay's observability registry.
func (r *RelayServer) Registry() *obs.Registry { return r.inner.Registry() }

// Stop shuts the relay down. Its children's connections close immediately,
// so they reconnect and re-parent instead of hanging.
func (r *RelayServer) Stop() {
	r.inner.Stop()
	_ = r.listener.Close()
	_ = r.admin.Close()
}

// ServeRelay starts an aggregation relay: it registers a trunk with the
// parent server, publishes its child-facing address in the root's tree
// layout, and serves workers until stopped. Returns immediately.
func ServeRelay(cfg RelayConfig) (*RelayServer, error) {
	if cfg.Parent == "" {
		return nil, fmt.Errorf("dssp: relay needs a parent server address")
	}
	wire, err := transport.ParseWireFormat(cfg.Wire)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	meter := transport.NewMetrics(reg)
	listener, err := transport.ListenWireMetered(cfg.Addr, wire, meter)
	if err != nil {
		return nil, err
	}
	advertise := cfg.Advertise
	if advertise == "" {
		advertise = listener.Addr()
	}
	ccfg := cfg.Compression.internal()
	if cfg.Compression.Codec == "" {
		// Unset means "follow the parent", exactly as it does for workers.
		ccfg.Codec = compress.Auto
	}
	relay, err := ps.NewRelay(ps.RelayConfig{
		Parent:            func() (transport.Conn, error) { return transport.DialWireMetered(cfg.Parent, wire, meter) },
		Fanout:            cfg.Fanout,
		Advertise:         advertise,
		Compression:       ccfg,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		FlushInterval:     cfg.FlushInterval,
		Metrics:           reg,
	})
	if err != nil {
		_ = listener.Close()
		return nil, err
	}
	var admin *obs.AdminServer
	if cfg.MetricsAddr != "" {
		admin, err = obs.ServeAdmin(cfg.MetricsAddr, reg, nil, nil)
		if err != nil {
			relay.Stop()
			_ = listener.Close()
			return nil, fmt.Errorf("dssp: relay metrics listener: %w", err)
		}
	}
	go func() { _ = relay.Serve(listener) }()
	return &RelayServer{inner: relay, listener: listener, admin: admin}, nil
}
