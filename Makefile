# Same entry points CI uses (.github/workflows/ci.yml); run `make ci` to
# reproduce the full pipeline locally.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-json bench-baseline proto-bench fuzz-seeds fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# One iteration per benchmark: proves the benchmarks still run without
# measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Full benchmark pass converted to BENCH_local.json (the same pipeline CI
# uses to accumulate BENCH_*.json trajectories as artifacts). Plain
# redirection rather than tee: make's sh has no pipefail, and a benchmark
# failure must stop the recipe instead of emitting a partial JSON.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem ./... > bench-local.txt
	$(GO) run ./cmd/benchjson -in bench-local.txt -out BENCH_local.json

# Refresh the committed benchmark baseline (BENCH_baseline.json at the repo
# root). A short fixed -benchtime keeps the full suite to a couple of
# minutes; the baseline is a trajectory record that CI compares smoke
# numbers against informationally, not a precision measurement.
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchtime=10x -benchmem ./... > bench-baseline.txt
	$(GO) run ./cmd/benchjson -in bench-baseline.txt -out BENCH_baseline.json

# Gob-vs-binary wire protocol comparison (encode/decode microbenchmarks and
# the full TCP push+pull iteration under both formats). CI appends
# proto-bench.txt to the bench-smoke artifact. Plain redirection rather than
# tee, same reason as bench-json: make's sh has no pipefail, and a benchmark
# failure must stop the recipe instead of emitting a partial file.
proto-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWire|BenchmarkCompressedTCPPushPull' -benchmem \
		./internal/transport/ ./internal/ps/ > proto-bench.txt
	@cat proto-bench.txt

# Run the fuzz corpus seeds as plain regression tests (no fuzzing engine):
# exactly what CI executes so a decoder regression fails fast everywhere.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/transport/

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt-check vet race fuzz-seeds bench-smoke proto-bench
