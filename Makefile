# Same entry points CI uses (.github/workflows/ci.yml); run `make ci` to
# reproduce the full pipeline locally.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# One iteration per benchmark: proves the benchmarks still run without
# measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt-check vet race bench-smoke
