# Same entry points CI uses (.github/workflows/ci.yml); run `make ci` to
# reproduce the full pipeline locally.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-json bench-baseline bench-gate proto-bench fuzz-seeds experiment-smoke metrics-smoke cluster-smoke aggtree-smoke profile fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# One iteration per benchmark: proves the benchmarks still run without
# measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Full benchmark pass converted to BENCH_local.json (the same pipeline CI
# uses to accumulate BENCH_*.json trajectories as artifacts). Plain
# redirection rather than tee: make's sh has no pipefail, and a benchmark
# failure must stop the recipe instead of emitting a partial JSON.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem ./... > bench-local.txt
	$(GO) run ./cmd/benchjson -in bench-local.txt -out BENCH_local.json

# The bench-gate allowlist, shared by bench-baseline (which must record the
# pinned benchmarks at the same -benchtime the gate re-measures them at —
# 10 iterations of a 16-goroutine benchmark is setup noise, not a number
# you can hold to 25%). Only benchmarks that repeat within a few percent on
# an otherwise-busy machine belong here; jittery paths (e.g. BenchmarkDeltaPull,
# whose regression risk is pinned by TestDeltaPullSkipsUnchangedShardBytes
# instead) stay informational.
BENCH_GATE_PATTERN = BenchmarkStoreConcurrentPushPull/sharded|BenchmarkStoreConcurrentPull/sharded|BenchmarkStoreApplySteadyState|BenchmarkMatMul128|BenchmarkFusedStepMomentumBatch4|BenchmarkClusterPushPull|BenchmarkAggTreeIngress
BENCH_GATE_PINS = BenchmarkStoreConcurrentPushPull/sharded,BenchmarkStoreConcurrentPull/sharded,BenchmarkStoreApplySteadyState,BenchmarkMatMul128,BenchmarkFusedStepMomentumBatch4,BenchmarkClusterPushPull/servers=1,BenchmarkClusterPushPull/servers=2,BenchmarkAggTreeIngress/fanout=1,BenchmarkAggTreeIngress/fanout=4
BENCH_GATE_TIME = 1s
# Packages holding the pinned benchmarks: the store pipeline plus the raw
# compute kernels (blocked matmul, fused optimizer step) it is built on.
BENCH_GATE_PKGS = ./internal/ps/ ./internal/tensor/ ./internal/optimizer/

# Refresh the committed benchmark baseline (BENCH_baseline.json at the repo
# root). A short fixed -benchtime keeps the full suite to a couple of
# minutes; the baseline is a trajectory record that CI compares smoke
# numbers against informationally, not a precision measurement. The pinned
# gate benchmarks are then re-measured at the gate's own benchtime and
# appended — benchjson keeps the last entry per name, so the gated numbers
# in the baseline are like-for-like with what bench-gate measures.
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchtime=10x -benchmem ./... > bench-baseline.txt
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchtime=$(BENCH_GATE_TIME) $(BENCH_GATE_PKGS) >> bench-baseline.txt
	$(GO) run ./cmd/benchjson -in bench-baseline.txt -out BENCH_baseline.json

# Pinned-benchmark regression gate: re-measure the allowlisted macro
# benchmarks at the same fixed benchtime the baseline recorded them at and
# fail when any regressed by more than 25% ns/op. Everything outside the
# allowlist stays informational (see bench-json / the CI baseline step);
# the pins are chosen to be long-running and one-sided — faster hardware
# passes trivially, only a real slowdown of the hot paths trips them.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchtime=$(BENCH_GATE_TIME) $(BENCH_GATE_PKGS) > bench-pinned.txt
	$(GO) run ./cmd/benchjson -in bench-pinned.txt -out BENCH_pinned.json \
		-baseline BENCH_baseline.json -threshold 0.25 -pin '$(BENCH_GATE_PINS)'

# Gob-vs-binary wire protocol comparison (encode/decode microbenchmarks and
# the full TCP push+pull iteration under both formats). CI appends
# proto-bench.txt to the bench-smoke artifact. Plain redirection rather than
# tee, same reason as bench-json: make's sh has no pipefail, and a benchmark
# failure must stop the recipe instead of emitting a partial file.
proto-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWire|BenchmarkCompressedTCPPushPull' -benchmem \
		./internal/transport/ ./internal/ps/ > proto-bench.txt
	@cat proto-bench.txt

# Run the fuzz corpus seeds as plain regression tests (no fuzzing engine):
# exactly what CI executes so a decoder regression fails fast everywhere.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/transport/

# Robustness scenario-matrix smoke: the 2x2 grid (clean / 1-of-4 gradient
# attacker x plain sum / trimmed-mean+guard) on real training, plus the
# simulated hostile-network timing sweep. Fails when any cell expected to
# converge drops below the accuracy floor; experiment-report.json is the CI
# artifact.
experiment-smoke:
	$(GO) run ./cmd/dsspsim -experiment -paradigm SSP -trials 2 \
		-accuracy-floor 0.6 -out experiment-report.json

# Observability smoke: a live 4-worker TCP run with the admin endpoint on,
# scraped mid-training — every cataloged /metrics series (docs/METRICS.md)
# must be present and the unified counters must agree with /statusz and
# the push-lifecycle traces. -count=1 defeats the test cache: this is an
# end-to-end network test, not a unit result worth memoizing.
metrics-smoke:
	$(GO) test -run 'TestMetricsEndpointDuringTCPRun|TestWorkerMetricsEndpoint' -count=1 -v .

# Server-group smoke: a coordinator plus 3 data servers over real TCP trains
# a 4-worker DSSP run to completion, the coordinator's clock must match the
# pushed iteration count, and the model assembled from the shard owners must
# hit the accuracy floor. -count=1 defeats the test cache: this is an
# end-to-end network run, not a unit result worth memoizing.
cluster-smoke:
	$(GO) test -run 'TestClusterSmoke' -count=1 -v .

# Aggregation-tier smoke: the relay-churn run over real TCP (4 workers
# behind two fanout-2 relays, one killed mid-run under BSP/SSP/DSSP — the
# subtree must re-parent, no barrier may deadlock) plus the in-process
# ingress-reduction pin (16 workers at fanout 4 land >=3x fewer push frames
# and >=2x fewer bytes on the root than flat). -count=1 defeats the test
# cache: these are end-to-end network runs, not unit results worth
# memoizing.
aggtree-smoke:
	$(GO) test -run 'TestTCPRelayDeathReparentsSubtree' -count=1 -v .
	$(GO) test -run 'TestTreeIngressReduction' -count=1 -v ./internal/trainer/

# Profile real training in-process: a fixed-time run of the small-CNN
# training benchmark with CPU and allocation profiles. Inspect with
#   go tool pprof cpu.pprof     (then: top, web)
#   go tool pprof -sample_index=alloc_space mem.pprof
# For live servers, the same profiles come from the -metrics-addr
# listener's /debug/pprof/ endpoints.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkRealTrainingSmallCNN' -benchtime=30s \
		-cpuprofile cpu.pprof -memprofile mem.pprof .

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build fmt-check vet race fuzz-seeds experiment-smoke metrics-smoke cluster-smoke aggtree-smoke bench-smoke proto-bench
