package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout produced by Encode:
//
//	uint32  number of dimensions d
//	uint32  d dimension sizes
//	uint32  element count n (redundant, used for validation)
//	float32 n elements (IEEE 754, little endian)
//
// The format is deliberately self-describing so that parameter-server
// messages can carry tensors of any shape without side-channel metadata.

// EncodedSize returns the number of bytes Encode will produce for t.
func (t *Tensor) EncodedSize() int {
	return 4 + 4*len(t.shape) + 4 + 4*len(t.data)
}

// Encode appends the binary representation of t to dst and returns the
// extended slice.
func (t *Tensor) Encode(dst []byte) []byte {
	if cap(dst)-len(dst) < t.EncodedSize() {
		// Grow once up front: parameter-sized tensors would otherwise trigger
		// many incremental reallocations through repeated appends.
		grown := make([]byte, len(dst), len(dst)+t.EncodedSize())
		copy(grown, dst)
		dst = grown
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.shape)))
	for _, d := range t.shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.data)))
	for _, v := range t.data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// EncodeTensors encodes a list of tensors back to back into one buffer,
// sized exactly once — a compact frame for a whole parameter set, also handy
// for comparing parameter lists byte for byte. Decode with DecodeTensors.
// (The TCP transport speaks its own framed format, docs/PROTOCOL.md, whose
// tensor sections add alignment padding for zero-copy decode; this simpler
// layout serves in-memory snapshots and comparisons.)
func EncodeTensors(ts []*Tensor) []byte {
	size := 0
	for _, t := range ts {
		size += t.EncodedSize()
	}
	buf := make([]byte, 0, size)
	for _, t := range ts {
		buf = t.Encode(buf)
	}
	return buf
}

// DecodeTensors parses tensors from buf until it is exhausted, the inverse
// of EncodeTensors.
func DecodeTensors(buf []byte) ([]*Tensor, error) {
	var out []*Tensor
	for len(buf) > 0 {
		t, rest, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		buf = rest
	}
	return out, nil
}

// Decode parses one tensor from the front of buf and returns it together
// with the remaining bytes.
func Decode(buf []byte) (*Tensor, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("tensor: decode: truncated header")
	}
	dims := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if dims < 0 || dims > 8 {
		return nil, nil, fmt.Errorf("tensor: decode: implausible dimension count %d", dims)
	}
	if len(buf) < 4*dims+4 {
		return nil, nil, fmt.Errorf("tensor: decode: truncated shape")
	}
	shape := make([]int, dims)
	expect := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if shape[i] <= 0 {
			return nil, nil, fmt.Errorf("tensor: decode: non-positive dimension %d", shape[i])
		}
		expect *= shape[i]
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n != expect {
		return nil, nil, fmt.Errorf("tensor: decode: element count %d does not match shape %v", n, shape)
	}
	if len(buf) < 4*n {
		return nil, nil, fmt.Errorf("tensor: decode: truncated data: need %d bytes, have %d", 4*n, len(buf))
	}
	t := New(shape...)
	for i := 0; i < n; i++ {
		t.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
	}
	return t, buf, nil
}
