package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128).RandNormal(rng, 0, 1)
	y := New(128, 128).RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(128, 128).RandNormal(rng, 0, 1)
	y := New(128, 128).RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(x, y)
	}
}

func BenchmarkAXPYLargeVector(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(1_000_000).RandNormal(rng, 0, 1)
	y := New(1_000_000).RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AXPY(0.01, y)
	}
}

func BenchmarkEncodeDecodeGradientSizedTensor(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	t := New(512, 256).RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := t.Encode(nil)
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
