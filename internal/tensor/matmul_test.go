package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// Scalar reference implementations: the plain i-k-j loops the blocked
// kernels replaced. The property tests below hold the kernels to these —
// bit-identical where the kernel preserves evaluation order (MatMulTransB),
// tolerance-bounded where the 4-way inner unroll reassociates the k-sum
// (MatMul, MatMulTransA).

func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.data[i*k+kk]
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[kk*n+j]
			}
		}
	}
	return out
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < m; i++ {
			av := a.data[kk*m+i]
			for j := 0; j < n; j++ {
				out.data[i*n+j] += av * b.data[kk*n+j]
			}
		}
	}
	return out
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += a.data[i*k+kk] * b.data[j*k+kk]
			}
			out.data[i*n+j] = sum
		}
	}
	return out
}

// withinRelTol reports whether got matches want element-wise within a
// relative tolerance scaled by the magnitude of want.
func withinRelTol(got, want *Tensor, tol float64) bool {
	g, w := got.Data(), want.Data()
	if len(g) != len(w) {
		return false
	}
	for i := range g {
		diff := math.Abs(float64(g[i]) - float64(w[i]))
		if diff > tol*(1+math.Abs(float64(w[i]))) {
			return false
		}
	}
	return true
}

// forceParallelMatmul lowers the parallel threshold to zero and raises
// GOMAXPROCS so even tiny products exercise the worker-pool path, restoring
// both on cleanup.
func forceParallelMatmul(t *testing.T) {
	t.Helper()
	prevFlops := mmParallelMinFlops
	prevProcs := runtime.GOMAXPROCS(4)
	mmParallelMinFlops = 0
	t.Cleanup(func() {
		mmParallelMinFlops = prevFlops
		runtime.GOMAXPROCS(prevProcs)
	})
}

// randShapes draws matmul dimensions that cover the unroll tails: sizes
// below 4, exact multiples of 4, and off-by-one around the block edges.
func randShapes(rng *rand.Rand) (m, k, n int) {
	pick := func() int {
		switch rng.Intn(4) {
		case 0:
			return 1 + rng.Intn(4) // 1..4: below or at one unroll step
		case 1:
			return 4 * (1 + rng.Intn(8)) // exact multiples of 4
		default:
			return 1 + rng.Intn(40)
		}
	}
	return pick(), pick(), pick()
}

func TestMatMulMatchesScalarReference(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := randShapes(rng)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		return withinRelTol(MatMul(a, b), refMatMul(a, b), 1e-4)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransAMatchesScalarReference(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := randShapes(rng)
		a := New(k, m).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		return withinRelTol(MatMulTransA(a, b), refMatMulTransA(a, b), 1e-4)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransBBitIdenticalToScalarReference(t *testing.T) {
	// MatMulTransB keeps the scalar loop's per-output accumulation order,
	// so it must match the reference exactly, not just within tolerance.
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := randShapes(rng)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(n, k).RandNormal(rng, 0, 1)
		return MatMulTransB(a, b).ApproxEqual(refMatMulTransB(a, b), 0)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIntoVariantsOverwriteDirtyDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		m, k, n := randShapes(rng)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		at := New(k, m).RandNormal(rng, 0, 1)

		dst := New(m, n).RandNormal(rng, 0, 9) // dirty: Into must overwrite
		if !MatMulInto(dst, a, b).ApproxEqual(MatMul(a, b), 0) {
			t.Fatalf("MatMulInto differs from MatMul at m=%d k=%d n=%d", m, k, n)
		}
		dst.RandNormal(rng, 0, 9)
		if !MatMulTransAInto(dst, at, b).ApproxEqual(MatMulTransA(at, b), 0) {
			t.Fatalf("MatMulTransAInto differs from MatMulTransA at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func TestMatMulAccVariantsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		m, k, n := randShapes(rng)
		at := New(k, m).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		a := New(m, k).RandNormal(rng, 0, 1)
		bt := New(n, k).RandNormal(rng, 0, 1)
		base := New(m, n).RandNormal(rng, 0, 1)

		got := MatMulTransAAcc(base.Clone(), at, b)
		want := base.Clone().Add(MatMulTransA(at, b))
		if !withinRelTol(got, want, 1e-4) {
			t.Fatalf("MatMulTransAAcc != dst + MatMulTransA at m=%d k=%d n=%d", m, k, n)
		}
		got = MatMulTransBAcc(base.Clone(), a, bt)
		want = base.Clone().Add(MatMulTransB(a, bt))
		if !withinRelTol(got, want, 1e-4) {
			t.Fatalf("MatMulTransBAcc != dst + MatMulTransB at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func TestParallelMatMulBitIdenticalToSerialKernel(t *testing.T) {
	// Each output row is computed start-to-finish by exactly one chunk, so
	// splitting rows across the pool must not change a single bit relative
	// to the serial kernel, regardless of how the rows get chunked.
	rng := rand.New(rand.NewSource(3))
	type product struct {
		name string
		run  func(a, b *Tensor) *Tensor
		mkA  func(m, k int) (int, int)
	}
	products := []product{
		{"MatMul", MatMul, func(m, k int) (int, int) { return m, k }},
		{"MatMulTransA", MatMulTransA, func(m, k int) (int, int) { return k, m }},
		{"MatMulTransB", nil, nil}, // handled below: b is (n,k)
	}
	for iter := 0; iter < 30; iter++ {
		m, k, n := 1+rng.Intn(64), 1+rng.Intn(64), 1+rng.Intn(64)
		for _, p := range products {
			var a, b *Tensor
			if p.run != nil {
				r0, r1 := p.mkA(m, k)
				a = New(r0, r1).RandNormal(rng, 0, 1)
				b = New(k, n).RandNormal(rng, 0, 1)
			} else {
				a = New(m, k).RandNormal(rng, 0, 1)
				b = New(n, k).RandNormal(rng, 0, 1)
			}
			run := p.run
			if run == nil {
				run = MatMulTransB
			}
			serial := run(a, b)
			func() {
				prevFlops := mmParallelMinFlops
				prevProcs := runtime.GOMAXPROCS(4)
				mmParallelMinFlops = 0
				defer func() {
					mmParallelMinFlops = prevFlops
					runtime.GOMAXPROCS(prevProcs)
				}()
				if got := run(a, b); !got.ApproxEqual(serial, 0) {
					t.Fatalf("%s parallel result differs from serial at m=%d k=%d n=%d", p.name, m, k, n)
				}
			}()
		}
	}
}

func TestParallelMatMulMatchesReferenceUnderPool(t *testing.T) {
	forceParallelMatmul(t)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		m, k, n := randShapes(rng)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		if !withinRelTol(MatMul(a, b), refMatMul(a, b), 1e-4) {
			t.Fatalf("parallel MatMul diverged at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func TestConcurrentMatMulCallersShareThePool(t *testing.T) {
	// Several goroutines issuing parallel matmuls at once must not deadlock
	// (submission falls back inline under saturation) and must all produce
	// correct results.
	forceParallelMatmul(t)
	const callers = 8
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20; iter++ {
				m, k, n := 1+rng.Intn(48), 1+rng.Intn(48), 1+rng.Intn(48)
				a := New(m, k).RandNormal(rng, 0, 1)
				b := New(k, n).RandNormal(rng, 0, 1)
				if !withinRelTol(MatMul(a, b), refMatMul(a, b), 1e-4) {
					errs <- errShared
					return
				}
			}
			errs <- nil
		}(int64(c))
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errShared = errorString("concurrent matmul produced a wrong result")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestSumIntoBitIdenticalToCopyAdd(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(7), 1 + rng.Intn(9)}
		count := 1 + rng.Intn(6)
		srcs := make([]*Tensor, count)
		for i := range srcs {
			srcs[i] = New(shape...).RandNormal(rng, 0, 1)
		}
		want := srcs[0].Clone()
		for _, s := range srcs[1:] {
			want.Add(s)
		}
		got := SumInto(New(shape...), srcs)
		return got.ApproxEqual(want, 0)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseKernelsBitIdenticalToScalarLoops(t *testing.T) {
	// The unrolled slice kernels keep per-element evaluation order, so they
	// must match the scalar loops exactly at every tail length.
	rng := rand.New(rand.NewSource(13))
	for length := 0; length < 19; length++ {
		mk := func() ([]float32, []float32) {
			a := make([]float32, length)
			b := make([]float32, length)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
				b[i] = float32(rng.NormFloat64())
			}
			return a, b
		}
		check := func(op string, got, want []float32) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s differs from scalar loop at len=%d index=%d", op, length, i)
				}
			}
		}

		d, s := mk()
		want := append([]float32(nil), d...)
		for i := range want {
			want[i] += s[i]
		}
		addSlice(d, s)
		check("addSlice", d, want)

		d, s = mk()
		want = append([]float32(nil), d...)
		for i := range want {
			want[i] -= s[i]
		}
		subSlice(d, s)
		check("subSlice", d, want)

		d, s = mk()
		want = append([]float32(nil), d...)
		for i := range want {
			want[i] += 0.37 * s[i]
		}
		axpySlice(0.37, s, d)
		check("axpySlice", d, want)

		d, _ = mk()
		want = append([]float32(nil), d...)
		for i := range want {
			want[i] *= -1.25
		}
		scaleSlice(-1.25, d)
		check("scaleSlice", d, want)
	}
}

func TestMatMulIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong destination shape")
		}
	}()
	MatMulInto(New(3, 3), New(2, 3), New(3, 4))
}

func TestSumIntoEmptySourcesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sources")
		}
	}()
	SumInto(New(2, 2), nil)
}
