package tensor

// Slice-level numeric kernels shared by the tensor methods, the matmul
// blocks, and (indirectly, via the same loop shapes) the fused optimizer
// step. They are written so the compiler can keep bounds checks out of the
// inner loops: every loop ranges over one of its operand slices and the
// other operands are pre-sliced to the same length.
//
// The 4-way unrolls matter on the hot paths: they shorten the loop-carried
// dependency per element, cut the loop overhead, and let the scheduler
// overlap independent multiply-adds. Reassociation is confined to the matmul
// kernels (see matmul.go); the element-wise kernels below keep exact
// per-element evaluation order, so Add/AXPY/Scale results are bit-identical
// to the scalar loops they replace.

// addSlice performs dst[i] += src[i].
func addSlice(dst, src []float32) {
	_ = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
	}
	for ; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// subSlice performs dst[i] -= src[i].
func subSlice(dst, src []float32) {
	_ = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] -= s[0]
		d[1] -= s[1]
		d[2] -= s[2]
		d[3] -= s[3]
	}
	for ; i < len(dst); i++ {
		dst[i] -= src[i]
	}
}

// axpySlice performs dst[i] += alpha * src[i].
func axpySlice(alpha float32, src, dst []float32) {
	_ = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] += alpha * s[0]
		d[1] += alpha * s[1]
		d[2] += alpha * s[2]
		d[3] += alpha * s[3]
	}
	for ; i < len(dst); i++ {
		dst[i] += alpha * src[i]
	}
}

// scaleSlice performs dst[i] *= s.
func scaleSlice(s float32, dst []float32) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d := dst[i : i+4 : i+4]
		d[0] *= s
		d[1] *= s
		d[2] *= s
		d[3] *= s
	}
	for ; i < len(dst); i++ {
		dst[i] *= s
	}
}

// SumInto overwrites dst with the element-wise sum of srcs, accumulating in
// source order (dst = ((srcs[0]+srcs[1])+srcs[2])+…), so the result is
// bit-identical to copying srcs[0] and adding the rest one at a time — the
// contract the parameter server's coalescing paths rely on. It reads each
// source exactly once. All tensors must share dst's shape; srcs must be
// non-empty.
func SumInto(dst *Tensor, srcs []*Tensor) *Tensor {
	if len(srcs) == 0 {
		panic("tensor: SumInto needs at least one source")
	}
	for _, s := range srcs {
		assertSameShape("SumInto", dst, s)
	}
	dd := dst.data
	copy(dd, srcs[0].data)
	switch len(srcs) {
	case 1:
	case 2:
		addSlice(dd, srcs[1].data)
	case 3:
		s1 := srcs[1].data[:len(dd)]
		s2 := srcs[2].data[:len(dd)]
		for j := range dd {
			dd[j] = (dd[j] + s1[j]) + s2[j]
		}
	default:
		for _, s := range srcs[1:] {
			addSlice(dd, s.data)
		}
	}
	return dst
}
