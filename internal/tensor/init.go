package tensor

import (
	"math"
	"math/rand"
)

// RandNormal fills the tensor with samples from N(mean, stddev²) drawn from
// rng and returns it. The caller owns the random source so that distributed
// workers can initialize identical model replicas from a shared seed.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, stddev float64) *Tensor {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()*stddev + mean)
	}
	return t
}

// RandUniform fills the tensor with samples from U[lo, hi) and returns it.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// XavierInit fills the tensor with the Glorot/Xavier uniform initialization
// for a layer with the given fan-in and fan-out and returns it.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.RandUniform(rng, -limit, limit)
}

// HeInit fills the tensor with the He-normal initialization used for layers
// followed by ReLU activations and returns it.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) *Tensor {
	stddev := math.Sqrt(2.0 / float64(fanIn))
	return t.RandNormal(rng, 0, stddev)
}
