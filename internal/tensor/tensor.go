// Package tensor provides the dense numeric arrays used by the neural-network
// substrate (internal/nn) and the parameter-server payloads (internal/ps).
// It implements exactly the operations needed to train the paper's models
// (downsized AlexNet and CIFAR-style ResNets) on a CPU: element-wise
// arithmetic, matrix multiplication, simple reductions and (de)serialization.
//
// Tensors store float32 data in row-major order. Operations panic on shape
// mismatches: shape errors are programming bugs in model definitions, not
// runtime conditions a caller could meaningfully handle.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding a single element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice returns a tensor wrapping a copy of data with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v (%d elements)", len(data), shape, len(t.data)))
	}
	copy(t.data, data)
	return t
}

// FromSliceOwned returns a tensor that aliases data directly — no copy. The
// caller transfers ownership: mutating data afterwards mutates the tensor.
// Its production use is the transport layer's zero-copy decode path, where
// the slice is a view into a wire buffer owned by a single message.
func FromSliceOwned(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v (%d elements)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// ShapeEquals reports whether the tensor's shape equals the given
// dimensions, without the copy Shape makes.
func (t *Tensor) ShapeEquals(dims []int) bool {
	if len(t.shape) != len(dims) {
		return false
	}
	for i, d := range t.shape {
		if d != dims[i] {
			return false
		}
	}
	return true
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating the returned slice mutates
// the tensor; callers that need isolation should Clone first.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	out := New(t.shape...)
	copy(out.data, t.data)
	return out
}

// Reshape returns a view-free copy of the tensor with a new shape holding the
// same number of elements.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := New(shape...)
	if len(out.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)",
			t.shape, len(t.data), shape, len(out.data)))
	}
	copy(out.data, t.data)
	return out
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// offset converts a multi-dimensional index into a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// assertSameShape panics when the two tensors differ in shape.
func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Zero sets every element to zero in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Add performs t += o element-wise and returns t.
func (t *Tensor) Add(o *Tensor) *Tensor {
	assertSameShape("Add", t, o)
	addSlice(t.data, o.data)
	return t
}

// Sub performs t -= o element-wise and returns t.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	assertSameShape("Sub", t, o)
	subSlice(t.data, o.data)
	return t
}

// Mul performs t *= o element-wise (Hadamard product) and returns t.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	assertSameShape("Mul", t, o)
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// Scale multiplies every element by s in place and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	scaleSlice(s, t.data)
	return t
}

// AXPY performs t += alpha * o element-wise and returns t.
func (t *Tensor) AXPY(alpha float32, o *Tensor) *Tensor {
	assertSameShape("AXPY", t, o)
	axpySlice(alpha, o.data, t.data)
	return t
}

// AddScalar adds s to every element in place and returns t.
func (t *Tensor) AddScalar(s float32) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	var s float32
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.data))
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxIndex returns the flat index of the largest element.
func (t *Tensor) MaxIndex() int {
	best := 0
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// ApproxEqual reports whether t and o have the same shape and all elements
// within tol of each other.
func (t *Tensor) ApproxEqual(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i])-float64(o.data[i])) > tol {
			return false
		}
	}
	return true
}

// ClipInPlace clamps every element into [-limit, limit] and returns t. It is
// used for gradient clipping.
func (t *Tensor) ClipInPlace(limit float32) *Tensor {
	if limit <= 0 {
		return t
	}
	for i, v := range t.data {
		if v > limit {
			t.data[i] = limit
		} else if v < -limit {
			t.data[i] = -limit
		}
	}
	return t
}

// String returns a short description of the tensor (shape and element count),
// not its contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elements)", t.shape, len(t.data))
}
