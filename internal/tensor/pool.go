package tensor

import (
	"runtime"
	"sync"
)

// The package keeps one shared worker pool for its data-parallel kernels.
// Every parallel matmul in the process draws from the same GOMAXPROCS-sized
// pool, so concurrent callers — several workers evaluating models while a
// parameter server's shard appliers run fused optimizer steps — divide the
// machine between them instead of each spawning its own goroutine fleet and
// oversubscribing the scheduler.
//
// Submission never blocks: when every pool worker is busy, the chunk runs on
// the submitting goroutine. That keeps the pool deadlock-free by
// construction (a kernel running inside a pool worker cannot wait on pool
// capacity) and means the pool degrades to plain serial execution under
// saturation rather than queueing latency.

// poolTask is one contiguous index chunk of a parallelFor.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

// poolStart spawns the package's kernel workers: GOMAXPROCS-1 of them, the
// submitting goroutine itself being the remaining worker. Started lazily on
// the first parallel kernel so programs that never cross the parallel
// threshold pay nothing.
func poolStart() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 1 {
		workers = 1
	}
	poolTasks = make(chan poolTask, 8*workers)
	for i := 0; i < workers; i++ {
		go func() {
			for t := range poolTasks {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelFor runs fn over the index range [0, n) split into contiguous
// chunks of at least grain, fanning the chunks out across the shared pool.
// The caller's goroutine always executes the last chunk itself, and the call
// returns only when every chunk has finished. With one CPU, a small n, or a
// saturated pool it degrades to a plain serial call.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	procs := runtime.GOMAXPROCS(0)
	chunks := (n + grain - 1) / grain
	if chunks > procs {
		chunks = procs
	}
	if procs <= 1 || chunks <= 1 {
		fn(0, n)
		return
	}
	poolOnce.Do(poolStart)
	step := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo+step < n {
		hi := lo + step
		wg.Add(1)
		select {
		case poolTasks <- poolTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			// Pool saturated: run the chunk inline instead of queueing
			// behind every other caller's work.
			fn(lo, hi)
			wg.Done()
		}
		lo = hi
	}
	fn(lo, n)
	wg.Wait()
}
