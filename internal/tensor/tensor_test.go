package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{3}, 3},
		{[]int{2, 4}, 8},
		{[]int{2, 3, 4}, 24},
		{nil, 1},
	}
	for _, tc := range cases {
		tt := New(tc.shape...)
		if tt.Size() != tc.size {
			t.Errorf("New(%v).Size() = %d, want %d", tc.shape, tt.Size(), tc.size)
		}
		if tt.Dims() != len(tc.shape) {
			t.Errorf("New(%v).Dims() = %d, want %d", tc.shape, tt.Dims(), len(tc.shape))
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(3, 0)
}

func TestFromSliceAndAtSet(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	m.Set(42, 0, 1)
	if got := m.At(0, 1); got != 42 {
		t.Errorf("after Set, At(0,1) = %v, want 42", got)
	}
	if got := m.Dim(1); got != 3 {
		t.Errorf("Dim(1) = %d, want 3", got)
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage with the original")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone changed the shape")
	}
}

func TestElementwiseArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)

	sum := a.Clone().Add(b)
	want := []float32{11, 22, 33, 44}
	for i, v := range sum.Data() {
		if v != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}

	diff := b.Clone().Sub(a)
	wantDiff := []float32{9, 18, 27, 36}
	for i, v := range diff.Data() {
		if v != wantDiff[i] {
			t.Errorf("Sub[%d] = %v, want %v", i, v, wantDiff[i])
		}
	}

	prod := a.Clone().Mul(b)
	wantProd := []float32{10, 40, 90, 160}
	for i, v := range prod.Data() {
		if v != wantProd[i] {
			t.Errorf("Mul[%d] = %v, want %v", i, v, wantProd[i])
		}
	}

	scaled := a.Clone().Scale(0.5)
	wantScaled := []float32{0.5, 1, 1.5, 2}
	for i, v := range scaled.Data() {
		if v != wantScaled[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, v, wantScaled[i])
		}
	}

	axpy := a.Clone().AXPY(2, b)
	wantAXPY := []float32{21, 42, 63, 84}
	for i, v := range axpy.Data() {
		if v != wantAXPY[i] {
			t.Errorf("AXPY[%d] = %v, want %v", i, v, wantAXPY[i])
		}
	}
}

func TestArithmeticShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	New(2, 2).Add(New(4))
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3, -4}, 4)
	if got := a.Sum(); got != -2 {
		t.Errorf("Sum = %v, want -2", got)
	}
	if got := a.Mean(); got != -0.5 {
		t.Errorf("Mean = %v, want -0.5", got)
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-9 {
		t.Errorf("L2Norm = %v, want sqrt(30)", got)
	}
	if got := a.MaxIndex(); got != 2 {
		t.Errorf("MaxIndex = %d, want 2", got)
	}
}

func TestZeroFillAddScalarClip(t *testing.T) {
	a := Full(3, 2, 2)
	a.AddScalar(-1)
	for _, v := range a.Data() {
		if v != 2 {
			t.Fatalf("AddScalar produced %v, want 2", v)
		}
	}
	a.Fill(7)
	if a.Sum() != 28 {
		t.Fatalf("Fill(7) sum = %v, want 28", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatalf("Zero() sum = %v, want 0", a.Sum())
	}
	b := FromSlice([]float32{-5, -1, 0, 1, 5}, 5)
	b.ClipInPlace(2)
	want := []float32{-2, -1, 0, 1, 2}
	for i, v := range b.Data() {
		if v != want[i] {
			t.Errorf("Clip[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Errorf("Reshape At(2,1) = %v, want 6", b.At(2, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible reshape")
		}
	}()
	a.Reshape(5)
}

func TestMatMulSmallKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Errorf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransposeVariantsAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 6).RandNormal(rng, 0, 1)
	b := New(4, 5).RandNormal(rng, 0, 1)
	got := MatMulTransA(a, b) // aᵀ b : (6,5)
	want := MatMul(Transpose2D(a), b)
	if !got.ApproxEqual(want, 1e-5) {
		t.Error("MatMulTransA disagrees with explicit transpose")
	}

	c := New(5, 6).RandNormal(rng, 0, 1)
	d := New(7, 6).RandNormal(rng, 0, 1)
	got = MatMulTransB(c, d) // c dᵀ : (5,7)
	want = MatMul(c, Transpose2D(d))
	if !got.ApproxEqual(want, 1e-5) {
		t.Error("MatMulTransB disagrees with explicit transpose")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose2D(a)
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", b.Shape())
	}
	if b.At(2, 0) != 3 || b.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", b.Data())
	}
}

func TestRandomInitializersProduceReasonableStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := New(200, 200)

	n.RandNormal(rng, 0, 1)
	mean := float64(n.Mean())
	if math.Abs(mean) > 0.05 {
		t.Errorf("RandNormal mean = %v, want ~0", mean)
	}

	n.RandUniform(rng, -1, 1)
	lo, hi := float32(0), float32(0)
	for _, v := range n.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < -1 || hi >= 1 {
		t.Errorf("RandUniform out of range [%v,%v]", lo, hi)
	}

	n.XavierInit(rng, 100, 100)
	limit := float32(math.Sqrt(6.0 / 200.0))
	for _, v := range n.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}

	n.HeInit(rng, 128)
	std := math.Sqrt(2.0 / 128.0)
	var s float64
	for _, v := range n.Data() {
		s += float64(v) * float64(v)
	}
	got := math.Sqrt(s / float64(n.Size()))
	if got < 0.8*std || got > 1.2*std {
		t.Errorf("He init stddev = %v, want ~%v", got, std)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{1}, {7}, {3, 4}, {2, 3, 4}, {1, 2, 3, 4}}
	for _, shape := range shapes {
		orig := New(shape...).RandNormal(rng, 0, 2)
		buf := orig.Encode(nil)
		if len(buf) != orig.EncodedSize() {
			t.Errorf("shape %v: encoded %d bytes, EncodedSize says %d", shape, len(buf), orig.EncodedSize())
		}
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("shape %v: decode error %v", shape, err)
		}
		if len(rest) != 0 {
			t.Errorf("shape %v: %d trailing bytes", shape, len(rest))
		}
		if !got.ApproxEqual(orig, 0) {
			t.Errorf("shape %v: round trip changed values", shape)
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	orig := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	buf := orig.Encode(nil)
	cases := map[string][]byte{
		"empty":          {},
		"truncated head": buf[:3],
		"truncated body": buf[:len(buf)-2],
	}
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Implausible dimension count.
	bad := make([]byte, 4)
	bad[0] = 200
	if _, _, err := Decode(bad); err == nil {
		t.Error("expected error for implausible dimension count")
	}
}

func TestEncodeDecodeMultipleTensorsInOneBuffer(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	buf := a.Encode(nil)
	buf = b.Encode(buf)
	gotA, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := Decode(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !gotA.ApproxEqual(a, 0) || !gotB.ApproxEqual(b, 0) {
		t.Fatal("multi-tensor round trip mismatch")
	}
}

func TestEncodeTensorsDecodeTensorsRoundTrip(t *testing.T) {
	orig := []*Tensor{
		FromSlice([]float32{1, 2, 3}, 3),
		FromSlice([]float32{4, 5, 6, 7}, 2, 2),
		FromSlice([]float32{8}, 1),
	}
	got, err := DecodeTensors(EncodeTensors(orig))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("decoded %d tensors, want %d", len(got), len(orig))
	}
	for i := range orig {
		if !got[i].ApproxEqual(orig[i], 0) {
			t.Errorf("tensor %d round trip mismatch", i)
		}
	}
	if ts, err := DecodeTensors(nil); err != nil || len(ts) != 0 {
		t.Fatalf("DecodeTensors(nil) = %v, %v; want empty, nil", ts, err)
	}
	if _, err := DecodeTensors([]byte{1, 2}); err == nil {
		t.Fatal("expected error for truncated buffer")
	}
}

func TestPropertyMatMulDistributesOverAddition(t *testing.T) {
	// (A+B)×C == A×C + B×C up to floating-point tolerance.
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(m, k).RandNormal(rng, 0, 1)
		c := New(k, n).RandNormal(rng, 0, 1)
		left := MatMul(a.Clone().Add(b), c)
		right := MatMul(a, c).Add(MatMul(b, c))
		return left.ApproxEqual(right, 1e-3)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	property := func(seed int64, d1, d2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{int(d1%7) + 1, int(d2%7) + 1}
		orig := New(shape...).RandNormal(rng, 0, 3)
		got, rest, err := Decode(orig.Encode(nil))
		return err == nil && len(rest) == 0 && got.ApproxEqual(orig, 0)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
