package tensor

import "fmt"

// MatMul returns the matrix product a×b for two 2-D tensors of shapes (m,k)
// and (k,n). The inner loops are ordered i-k-j so that both operands are
// traversed sequentially, which matters for the large fully-connected layers
// of the downsized AlexNet.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ×b for a of shape (k,m) and b of shape (k,n),
// producing an (m,n) tensor. It is used in the backward pass of dense layers
// without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions differ: %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB returns a×bᵀ for a of shape (m,k) and b of shape (n,k),
// producing an (m,n) tensor. It is used in the backward pass of dense layers.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += arow[kk] * brow[kk]
			}
			orow[j] = sum
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs a 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
