package tensor

import "fmt"

// Matrix multiplication is the numeric hot path of both training (dense and
// im2col'd convolution layers) and the simulator's calibration runs. The
// kernels below are cache-blocked and 4-way unrolled over the inner
// dimension, and large products are split across the package's shared worker
// pool by output-row blocks (pool.go); small matrices stay serial, so layer
// shapes that fit in cache never pay fan-out overhead.
//
// Numerics: MatMul and MatMulTransA accumulate four inner-dimension terms
// per pass, which reassociates the k-sum relative to a scalar i-k-j loop —
// results are deterministic for a given shape but differ from the scalar
// reference by rounding (tolerance-bounded, see matmul_test.go).
// MatMulTransB keeps the scalar loop's per-output accumulation order and is
// bit-identical to it. Gradients and activations are dense, so the kernels
// carry no zero-skip branches: on real workloads such branches are pure
// mispredict overhead in the innermost loop.

// mmParallelMinFlops is the size threshold (in multiply-add flops, counted
// as 2·m·k·n) below which a product stays on the calling goroutine. Small
// matmuls are latency-bound: the pool's wakeup cost would exceed the work.
// It is a variable so tests can force the parallel path on small shapes.
var mmParallelMinFlops int64 = 1 << 21

// SetMatMulParallelMinFlops adjusts the flop threshold below which matrix
// products stay serial, returning the previous value; 0 sends every product
// through the worker pool. It exists for tuning experiments and for tests in
// other packages that must exercise the parallel path on small shapes. Not
// safe to call concurrently with running multiplications.
func SetMatMulParallelMinFlops(flops int64) int64 {
	prev := mmParallelMinFlops
	mmParallelMinFlops = flops
	return prev
}

// mmGrainFlops is the minimum work per parallel chunk: enough that a chunk's
// compute dominates its scheduling cost.
const mmGrainFlops = 1 << 18

// mmBlockJ is the column-block width: four unrolled operand rows of a block
// plus the output row block stay resident in L1 across the inner-dimension
// sweep.
const mmBlockJ = 512

// mmParallel runs rows over [0, m), fanning row blocks across the shared
// worker pool when the product is large enough to amortize the fan-out.
func mmParallel(m, k, n int, rows func(i0, i1 int)) {
	flops := 2 * int64(m) * int64(k) * int64(n)
	if flops < mmParallelMinFlops || m == 1 {
		rows(0, m)
		return
	}
	grain := 1
	if perRow := 2 * int64(k) * int64(n); perRow > 0 && perRow < mmGrainFlops {
		grain = int(mmGrainFlops / perRow)
	}
	parallelFor(m, grain, rows)
}

// MatMul returns the matrix product a×b for two 2-D tensors of shapes (m,k)
// and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := mmShapes("MatMul", a, b, false)
	out := New(m, n)
	// A fresh tensor is already zero, so the kernel can accumulate straight
	// into it and skip the clear pass.
	mmParallel(m, k, n, func(i0, i1 int) {
		mmRows(a.data, b.data, out.data, k, n, i0, i1, true)
	})
	return out
}

// MatMulInto computes a×b into dst (overwriting it) and returns dst,
// avoiding the output allocation for callers with a reusable buffer. dst
// must have shape (m,n) and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := mmShapes("MatMulInto", a, b, false)
	mmCheckDst("MatMulInto", dst, m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmRows(a.data, b.data, dst.data, k, n, i0, i1, false)
	})
	return dst
}

// MatMulTransA returns aᵀ×b for a of shape (k,m) and b of shape (k,n),
// producing an (m,n) tensor. It is used in the backward pass of dense layers
// without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, k, n := mmShapes("MatMulTransA", a, b, true)
	out := New(m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmTransARows(a.data, b.data, out.data, k, m, n, i0, i1, true)
	})
	return out
}

// MatMulTransAInto computes aᵀ×b into dst (overwriting it) and returns dst.
// dst must have shape (m,n) for a of shape (k,m) and must not alias a or b.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	m, k, n := mmShapes("MatMulTransAInto", a, b, true)
	mmCheckDst("MatMulTransAInto", dst, m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmTransARows(a.data, b.data, dst.data, k, m, n, i0, i1, false)
	})
	return dst
}

// MatMulTransAAcc accumulates aᵀ×b into dst (dst += aᵀ×b) and returns dst.
// It fuses the gradient-accumulation pattern dst.Add(MatMulTransA(a, b))
// into one pass with no temporary. dst must not alias a or b.
func MatMulTransAAcc(dst, a, b *Tensor) *Tensor {
	m, k, n := mmShapes("MatMulTransAAcc", a, b, true)
	mmCheckDst("MatMulTransAAcc", dst, m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmTransARows(a.data, b.data, dst.data, k, m, n, i0, i1, true)
	})
	return dst
}

// MatMulTransB returns a×bᵀ for a of shape (m,k) and b of shape (n,k),
// producing an (m,n) tensor. It is used in the backward pass of dense layers.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := mmShapesTransB("MatMulTransB", a, b)
	out := New(m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmTransBRows(a.data, b.data, out.data, k, n, i0, i1, false)
	})
	return out
}

// MatMulTransBAcc accumulates a×bᵀ into dst (dst += a×bᵀ) and returns dst.
// dst must not alias a or b.
func MatMulTransBAcc(dst, a, b *Tensor) *Tensor {
	m, k, n := mmShapesTransB("MatMulTransBAcc", a, b)
	mmCheckDst("MatMulTransBAcc", dst, m, n)
	mmParallel(m, k, n, func(i0, i1 int) {
		mmTransBRows(a.data, b.data, dst.data, k, n, i0, i1, true)
	})
	return dst
}

// mmShapes validates the operands of a plain or transposed-A product and
// returns (m, k, n). With transA set, a has shape (k,m); otherwise (m,k).
func mmShapes(op string, a, b *Tensor, transA bool) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands, got %v and %v", op, a.shape, b.shape))
	}
	if transA {
		k, m = a.shape[0], a.shape[1]
	} else {
		m, k = a.shape[0], a.shape[1]
	}
	if k != b.shape[0] {
		panic(fmt.Sprintf("tensor: %s inner dimensions differ: %v vs %v", op, a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

// mmShapesTransB validates the operands of a transposed-B product: a of
// shape (m,k), b of shape (n,k).
func mmShapesTransB(op string, a, b *Tensor) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands, got %v and %v", op, a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	n = b.shape[0]
	if k != b.shape[1] {
		panic(fmt.Sprintf("tensor: %s inner dimensions differ: %v vs %v", op, a.shape, b.shape))
	}
	return m, k, n
}

// mmCheckDst validates an Into/Acc destination shape.
func mmCheckDst(op string, dst *Tensor, m, n int) {
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination has shape %v, want (%d,%d)", op, dst.shape, m, n))
	}
}

// mm4Rows adds a0·b0 + a1·b1 + a2·b2 + a3·b3 into ob. The reslices pin
// every operand to len(ob) so the compiler drops all bounds checks from the
// multiply-add loop.
func mm4Rows(ob, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	b0 = b0[:len(ob)]
	b1 = b1[:len(ob)]
	b2 = b2[:len(ob)]
	b3 = b3[:len(ob)]
	for j, v := range b0 {
		ob[j] += a0*v + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// mmRows computes output rows [i0,i1) of a(m,k)×b(k,n). With acc the rows
// accumulate into out; otherwise each column block is cleared first. Four
// b-rows are streamed per pass over a column block, so the block of out
// stays in L1 while each element of b is read exactly once per output row.
// The 4-way form runs at the scalar floating-point ceiling (two FP ops per
// multiply-add with all bounds checks eliminated); wider row/column tiles
// were measured slower here because their extra live coefficients spill.
func mmRows(a, b, out []float32, k, n, i0, i1 int, acc bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		for jb := 0; jb < n; jb += mmBlockJ {
			je := jb + mmBlockJ
			if je > n {
				je = n
			}
			ob := orow[jb:je:je]
			if !acc {
				for j := range ob {
					ob[j] = 0
				}
			}
			w := je - jb
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				mm4Rows(ob,
					b[kk*n+jb:], b[(kk+1)*n+jb:], b[(kk+2)*n+jb:], b[(kk+3)*n+jb:],
					arow[kk], arow[kk+1], arow[kk+2], arow[kk+3])
			}
			for ; kk < k; kk++ {
				axpySlice(arow[kk], b[kk*n+jb:kk*n+jb+w], ob)
			}
		}
	}
}

// mmTransARows computes output rows [i0,i1) of aᵀ(m,k)×b(k,n) for a stored
// as (k,m). Identical blocking to mmRows; the four per-pass a-loads are
// strided down a's column i instead of along a row.
func mmTransARows(a, b, out []float32, k, m, n, i0, i1 int, acc bool) {
	for i := i0; i < i1; i++ {
		orow := out[i*n : i*n+n]
		for jb := 0; jb < n; jb += mmBlockJ {
			je := jb + mmBlockJ
			if je > n {
				je = n
			}
			ob := orow[jb:je:je]
			if !acc {
				for j := range ob {
					ob[j] = 0
				}
			}
			w := je - jb
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				mm4Rows(ob,
					b[kk*n+jb:], b[(kk+1)*n+jb:], b[(kk+2)*n+jb:], b[(kk+3)*n+jb:],
					a[kk*m+i], a[(kk+1)*m+i], a[(kk+2)*m+i], a[(kk+3)*m+i])
			}
			for ; kk < k; kk++ {
				axpySlice(a[kk*m+i], b[kk*n+jb:kk*n+jb+w], ob)
			}
		}
	}
}

// mmDot4 returns the four dot products of arow against b0..b3. The
// reslices pin every operand to len(arow) so the compiler drops all bounds
// checks; the four accumulator chains are independent and overlap in the
// pipeline. Each chain keeps the scalar loop's accumulation order.
func mmDot4(arow, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	b0 = b0[:len(arow)]
	b1 = b1[:len(arow)]
	b2 = b2[:len(arow)]
	b3 = b3[:len(arow)]
	for kk, av := range arow {
		s0 += av * b0[kk]
		s1 += av * b1[kk]
		s2 += av * b2[kk]
		s3 += av * b3[kk]
	}
	return s0, s1, s2, s3
}

// mmTransBRows computes output rows [i0,i1) of a(m,k)×bᵀ for b stored as
// (n,k): each output element is a dot product of two contiguous rows. Four
// output columns are computed per pass with independent accumulators, so
// the row of a is read once per four outputs and the four dot-product
// chains overlap. Per-output accumulation order matches the scalar loop
// exactly (no reassociation).
func mmTransBRows(a, b, out []float32, k, n, i0, i1 int, acc bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k : i*k+k]
		orow := out[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s0, s1, s2, s3 := mmDot4(arow,
				b[j*k:], b[(j+1)*k:], b[(j+2)*k:], b[(j+3)*k:])
			if acc {
				orow[j] += s0
				orow[j+1] += s1
				orow[j+2] += s2
				orow[j+3] += s3
			} else {
				orow[j] = s0
				orow[j+1] = s1
				orow[j+2] = s2
				orow[j+3] = s3
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var sum float32
			brow = brow[:len(arow)]
			for kk, av := range arow {
				sum += av * brow[kk]
			}
			if acc {
				orow[j] += sum
			} else {
				orow[j] = sum
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs a 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
