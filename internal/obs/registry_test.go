package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePromGolden pins the exposition format byte for byte: HELP/TYPE
// headers, label rendering and escaping, cumulative histogram buckets with
// the implicit +Inf, and gauge funcs evaluated at scrape time.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Operations.").Add(3)
	frames := reg.CounterVec("test_frames_total", "Frames by dir.", "dir")
	frames.With("in").Add(2)
	frames.With("out").Inc()
	reg.Gauge("test_depth", "Queue depth.").Set(4.5)
	reg.GaugeFunc("test_version", "Store version.", func() float64 { return 17 })
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	reg.Counter("test_quoted_total", `Help with \ and`+"\n"+`newline.`)
	labeled := reg.GaugeVec("test_labeled", "", "name")
	labeled.With(`a"b\c`).Set(1)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_frames_total Frames by dir.
# TYPE test_frames_total counter
test_frames_total{dir="in"} 2
test_frames_total{dir="out"} 1
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 4.5
# HELP test_version Store version.
# TYPE test_version gauge
test_version 17
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 2.55
test_latency_seconds_count 3
# HELP test_quoted_total Help with \\ and\nnewline.
# TYPE test_quoted_total counter
test_quoted_total 0
# TYPE test_labeled gauge
test_labeled{name="a\"b\\c"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotFlattens(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap_total", "").Add(7)
	reg.CounterVec("snap_by_kind_total", "", "kind").With("a").Add(2)
	reg.GaugeFunc("snap_fn", "", func() float64 { return 3 })
	h := reg.Histogram("snap_seconds", "", LatencyBuckets)
	h.Observe(0.25)
	h.Observe(0.75)

	snap := reg.Snapshot()
	checks := map[string]float64{
		"snap_total":                   7,
		`snap_by_kind_total{kind="a"}`: 2,
		"snap_fn":                      3,
		"snap_seconds_sum":             1,
		"snap_seconds_count":           2,
	}
	for k, want := range checks {
		if got, ok := snap[k]; !ok || got != want {
			t.Errorf("snapshot[%q] = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("idem_total", "")
	b := reg.Counter("idem_total", "")
	if a != b {
		t.Error("re-registering a counter returned a different instance")
	}
	v := reg.CounterVec("idem_vec_total", "", "k")
	if v.With("x") != v.With("x") {
		t.Error("same label values returned different children")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	reg.Gauge("idem_total", "") // counter re-registered as gauge: must panic
}

// TestRegistryConcurrentHammer drives every metric kind from many
// goroutines while scrapes run concurrently; run under -race this is the
// registry's thread-safety proof. Counts are verified exactly afterwards.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scrapers exercise WriteProm and Snapshot against writers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = reg.WriteProm(io.Discard)
					_ = reg.Snapshot()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			c := reg.Counter("hammer_total", "")
			vec := reg.CounterVec("hammer_by_worker_total", "", "worker")
			child := vec.With(fmt.Sprint(g % 4))
			gauge := reg.Gauge("hammer_gauge", "")
			h := reg.Histogram("hammer_seconds", "", []float64{0.5})
			for i := 0; i < iters; i++ {
				c.Inc()
				child.Inc()
				gauge.Add(1)
				h.Observe(float64(i%2) * 0.9)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if got := reg.Counter("hammer_total", "").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	var byWorker uint64
	vec := reg.CounterVec("hammer_by_worker_total", "", "worker")
	for i := 0; i < 4; i++ {
		byWorker += vec.With(fmt.Sprint(i)).Value()
	}
	if byWorker != goroutines*iters {
		t.Errorf("labeled counters sum to %d, want %d", byWorker, goroutines*iters)
	}
	if got := reg.Gauge("hammer_gauge", "").Value(); got != goroutines*iters {
		t.Errorf("gauge = %v, want %d", got, goroutines*iters)
	}
	h := reg.Histogram("hammer_seconds", "", []float64{0.5})
	if h.Count() != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
}

func TestPushTracerLifecycle(t *testing.T) {
	tr := NewPushTracer(TraceConfig{Every: 1, Capacity: 4})
	now := time.Now()

	// An applied push: sample → track → applied → released.
	p := tr.Sample(2, 10)
	if p == nil {
		t.Fatal("Every=1 must sample every push")
	}
	p.Ticket, p.Base, p.Staleness = 5, 3, 1
	tr.Track(p)
	tr.Applied(4, 6, 2, now)
	tr.Released(5, now.Add(time.Millisecond))

	// A dropped push never gets a ticket.
	d := tr.Sample(1, 11)
	tr.Abandon(d, "policy")

	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	applied := traces[0]
	if applied.Ticket != 5 || applied.Coalesced != 2 || applied.AppliedAt.IsZero() || applied.ReleasedAt.IsZero() {
		t.Errorf("applied trace incomplete: %+v", applied)
	}
	if traces[1].Dropped != "policy" {
		t.Errorf("dropped trace reason = %q, want policy", traces[1].Dropped)
	}
	if tr.Total() != 2 {
		t.Errorf("total = %d, want 2", tr.Total())
	}

	// Ring overflow keeps the newest capacity traces.
	for i := 0; i < 10; i++ {
		p := tr.Sample(0, i)
		tr.Abandon(p, "guard")
	}
	if got := len(tr.Traces()); got != 4 {
		t.Errorf("ring holds %d traces, want capacity 4", got)
	}
	if tr.Total() != 12 {
		t.Errorf("total = %d, want 12", tr.Total())
	}
}

func TestPushTracerSamplingAndNil(t *testing.T) {
	if NewPushTracer(TraceConfig{Every: -1}) != nil {
		t.Error("negative Every must disable tracing")
	}
	var nilTr *PushTracer
	if nilTr.Sample(0, 0) != nil {
		t.Error("nil tracer sampled")
	}
	nilTr.Track(nil)
	nilTr.Abandon(nil, "x")
	nilTr.Applied(0, 1, 1, time.Time{})
	nilTr.Released(1, time.Time{})
	if nilTr.Traces() != nil || nilTr.Total() != 0 {
		t.Error("nil tracer reported traces")
	}

	tr := NewPushTracer(TraceConfig{Every: 4})
	sampled := 0
	for i := 0; i < 64; i++ {
		if p := tr.Sample(0, i); p != nil {
			sampled++
			tr.Abandon(p, "test")
		}
	}
	if sampled != 16 {
		t.Errorf("Every=4 sampled %d of 64, want 16", sampled)
	}
}

func TestServeAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_total", "A counter.").Add(5)
	tracer := NewPushTracer(TraceConfig{Every: 1})
	p := tracer.Sample(1, 2)
	tracer.Abandon(p, "guard")

	admin, err := ServeAdmin("127.0.0.1:0", reg,
		func() any { return map[string]int{"workers": 3} },
		tracer.Traces)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ctype)
	}
	if !strings.Contains(body, "admin_test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	body, _ = get("/statusz?traces=1")
	var status struct {
		Status map[string]int `json:"status"`
		Traces []PushTrace    `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if status.Status["workers"] != 3 {
		t.Errorf("/statusz status = %v", status.Status)
	}
	if len(status.Traces) != 1 || status.Traces[0].Dropped != "guard" {
		t.Errorf("/statusz traces = %+v", status.Traces)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
