// Package obs is the live observability layer: a zero-dependency,
// race-safe metrics registry (counters, gauges, histograms, with labeled
// variants) that renders in the Prometheus text exposition format, plus an
// HTTP admin listener (metrics, health, status snapshots, pprof) and a
// sampled push-lifecycle tracer.
//
// The registry is deliberately small: hot paths touch only atomics (no
// locks, no allocation), and everything heavier — family lookup, label
// resolution, exposition — happens either at construction time or at
// scrape time. Unlike internal/metrics, which aggregates a finished run
// post-hoc on a single goroutine, obs instruments a *running* server and
// must tolerate concurrent writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates exposition families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry owns a set of metric families and renders them. The zero value
// is not usable; call NewRegistry. All methods are safe for concurrent
// use. Registration is idempotent: asking twice for the same name returns
// the same metric, and asking with a conflicting kind or label set panics
// (a programming error, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: a singleton or a labeled set of
// children sharing name, help, kind, and (for histograms) buckets.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string  // label names; nil for singletons
	buckets []float64 // histogram upper bounds, sorted, no +Inf

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter/*Gauge/*Histogram
	order    []string       // child keys in first-seen order
	fn       func() float64 // kindGaugeFunc only
}

// lookup returns the family registered under name, creating it on first
// use and validating compatibility afterwards.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind or label set", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: make(map[string]any),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// child returns the family's metric for the given label values, creating
// it on first use.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	default:
		panic("obs: gauge funcs cannot be labeled")
	}
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets and tracks their
// sum. Observations are lock-free: a binary search over the (immutable)
// upper bounds plus three atomic adds.
type Histogram struct {
	upper   []float64 // sorted upper bounds, no +Inf
	counts  []uint64  // per-bucket (non-cumulative) counts, atomic access
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	atomic.AddUint64(&h.counts[i], 1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with h.upper plus the
// +Inf bucket (== total), and the sum.
func (h *Histogram) snapshot() (cum []uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += atomic.LoadUint64(&h.counts[i])
		cum[i] = running
	}
	return cum, h.Sum()
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Counter registers (or returns) the named singleton counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec registers (or returns) the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.lookup(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or returns) the named singleton gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers (or returns) the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.lookup(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same name replaces the function; fn must be safe to
// call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) the named singleton histogram with the
// given bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, buckets).child(nil).(*Histogram)
}

// HistogramVec registers (or returns) the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.lookup(name, help, kindHistogram, labels, buckets)}
}

// LatencyBuckets is the default bucket ladder for durations in seconds:
// 10µs up to 10s.
var LatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is a power-of-two ladder for small counts (batch sizes,
// queue depths): 1 up to 256.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// StalenessBuckets covers the iteration-staleness range the DSSP policies
// operate in (sL..sU rarely exceeds a few dozen).
var StalenessBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// LinearBuckets returns n buckets starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// renderLabels formats {a="x",b="y"} for the family's label names and a
// child key, with extra (e.g. le) appended. Returns "" when empty.
func renderLabels(names []string, key string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	if len(names) > 0 {
		values := strings.Split(key, "\x1f")
		for i, n := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(n)
			b.WriteString(`="`)
			b.WriteString(labelEscaper.Replace(values[i]))
			b.WriteByte('"')
		}
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders every family in registration order using the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		fn := f.fn
		f.mu.Unlock()

		if f.kind == kindGaugeFunc && fn == nil {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.kind == kindGaugeFunc {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(fn()))
			continue
		}
		for i, key := range keys {
			switch m := children[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(f.labels, key, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(f.labels, key, "", ""), formatFloat(m.Value()))
			case *Histogram:
				cum, sum := m.snapshot()
				for bi, upper := range m.upper {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, key, "le", formatFloat(upper)), cum[bi])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, key, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, key, "", ""), formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(f.labels, key, "", ""), cum[len(cum)-1])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens the registry into name{labels} -> value. Counters and
// gauges map directly; histograms contribute _sum and _count entries
// (buckets are an exposition concern, not a summary one). Gauge funcs are
// evaluated. The result is a stable post-run summary for experiment
// reports and end-of-run prints.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	out := make(map[string]float64)
	for _, f := range families {
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		fn := f.fn
		f.mu.Unlock()

		if f.kind == kindGaugeFunc {
			if fn != nil {
				out[f.name] = fn()
			}
			continue
		}
		for i, key := range keys {
			labels := renderLabels(f.labels, key, "", "")
			switch m := children[i].(type) {
			case *Counter:
				out[f.name+labels] = float64(m.Value())
			case *Gauge:
				out[f.name+labels] = m.Value()
			case *Histogram:
				out[f.name+"_sum"+labels] = m.Sum()
				out[f.name+"_count"+labels] = float64(m.Count())
			}
		}
	}
	return out
}
