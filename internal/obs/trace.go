package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceConfig sizes the push-lifecycle tracer. Every selects 1-in-N
// sampling (<= 0 disables tracing, 1 traces every push); Capacity bounds
// the completed-trace ring (0 = default 256).
type TraceConfig struct {
	Every    int
	Capacity int
}

// DefaultTraceCapacity is the completed-trace ring size when
// TraceConfig.Capacity is zero.
const DefaultTraceCapacity = 256

// PushTrace is one sampled push's lifecycle: wall-clock stamps at each
// pipeline stage, from the moment the push message is picked up to the
// moment its release is sent. Zero timestamps mean the push never reached
// (or skipped) that stage — a dropped push, for example, has no apply or
// release stamps.
type PushTrace struct {
	// Worker and Iteration identify the push; Ticket is the apply ticket
	// the store assigned (0 when the push was dropped before ticketing).
	Worker    int   `json:"worker"`
	Iteration int   `json:"iteration"`
	Ticket    int64 `json:"ticket,omitempty"`
	// Base is the parameter version the gradient was computed against;
	// Staleness the policy-observed staleness at apply time.
	Base      int64 `json:"base_version"`
	Staleness int   `json:"staleness"`
	// Coalesced is how many pushes the store applied in the same batch as
	// this one (1 = applied alone).
	Coalesced int `json:"coalesced,omitempty"`
	// Dropped names why the push left the pipeline early ("policy",
	// "guard"), empty for applied pushes.
	Dropped string `json:"dropped,omitempty"`

	ReceivedAt time.Time `json:"received_at"`
	ScreenedAt time.Time `json:"screened_at,omitempty"` // after guard screening
	EnqueuedAt time.Time `json:"enqueued_at,omitempty"` // ticket assigned, batch enqueued
	AppliedAt  time.Time `json:"applied_at,omitempty"`  // shard applier finished its batch
	ReleasedAt time.Time `json:"released_at,omitempty"` // release sent to the worker
}

// PushTracer samples pushes and records their lifecycle. All methods are
// safe for concurrent use and nil-safe on a nil receiver, so call sites
// need no gating. The fast path for unsampled pushes is one atomic add;
// the applier-side stamp is one atomic load when nothing is in flight.
type PushTracer struct {
	every uint64
	cap   int

	n        atomic.Uint64
	inFlight atomic.Int64

	mu      sync.Mutex
	pending map[int64]*PushTrace // keyed by ticket
	ring    []PushTrace          // completed traces, oldest overwritten
	next    int
	total   uint64
}

// NewPushTracer returns a tracer for the given config, or nil when
// tracing is disabled (Every <= 0) — the nil tracer costs nothing.
func NewPushTracer(cfg TraceConfig) *PushTracer {
	if cfg.Every <= 0 {
		return nil
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &PushTracer{
		every:   uint64(cfg.Every),
		cap:     capacity,
		pending: make(map[int64]*PushTrace),
		ring:    make([]PushTrace, 0, capacity),
	}
}

// Sample decides whether this push is traced. It returns a trace with
// ReceivedAt stamped, or nil (the common case). The caller fills in
// identity fields and hands the trace back via Track or Abandon.
func (t *PushTracer) Sample(worker, iteration int) *PushTrace {
	if t == nil {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	return &PushTrace{Worker: worker, Iteration: iteration, ReceivedAt: time.Now()}
}

// Track registers a ticketed trace so the store's applier and the release
// sequencer can stamp it by ticket.
func (t *PushTracer) Track(tr *PushTrace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.pending[tr.Ticket] = tr
	t.mu.Unlock()
	t.inFlight.Add(1)
}

// Abandon finalizes a trace that left the pipeline before ticketing
// (dropped by policy or guard), recording why.
func (t *PushTracer) Abandon(tr *PushTrace, reason string) {
	if t == nil || tr == nil {
		return
	}
	tr.Dropped = reason
	t.mu.Lock()
	t.commitLocked(*tr)
	t.mu.Unlock()
}

// Applied stamps every tracked trace whose ticket lies in (from, to]: the
// shard applier just applied a batch of `batch` coalesced pushes covering
// that ticket range.
func (t *PushTracer) Applied(from, to int64, batch int, now time.Time) {
	if t == nil || t.inFlight.Load() == 0 {
		return
	}
	t.mu.Lock()
	for ticket, tr := range t.pending {
		if ticket > from && ticket <= to && tr.AppliedAt.IsZero() {
			tr.AppliedAt = now
			tr.Coalesced = batch
		}
	}
	t.mu.Unlock()
}

// Released finalizes the tracked trace for ticket, if any, moving it into
// the completed ring.
func (t *PushTracer) Released(ticket int64, now time.Time) {
	if t == nil || t.inFlight.Load() == 0 {
		return
	}
	t.mu.Lock()
	tr, ok := t.pending[ticket]
	if ok {
		delete(t.pending, ticket)
		tr.ReleasedAt = now
		t.commitLocked(*tr)
	}
	t.mu.Unlock()
	if ok {
		t.inFlight.Add(-1)
	}
}

// commitLocked appends a finished trace to the ring (caller holds t.mu).
func (t *PushTracer) commitLocked(tr PushTrace) {
	t.total++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % t.cap
}

// Traces returns the completed traces, oldest first. Nil-safe.
func (t *PushTracer) Traces() []PushTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PushTrace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total reports how many traces completed over the tracer's lifetime
// (including ones the ring has since overwritten). Nil-safe.
func (t *PushTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
