package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the HTTP observability endpoint: /metrics (Prometheus
// text exposition), /healthz, /statusz (JSON snapshot, ?traces=1 to
// include completed push traces), and /debug/pprof. It runs on its own
// mux so registering it never collides with an application's default mux.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// StatusFunc produces the /statusz snapshot body; it must be safe to call
// from the HTTP serving goroutine. TracesFunc likewise produces the
// completed push traces.
type (
	StatusFunc func() any
	TracesFunc func() []PushTrace
)

// ServeAdmin starts the admin listener on addr. status and traces may be
// nil (the corresponding /statusz fields are omitted). The server runs
// until Close.
func ServeAdmin(addr string, reg *Registry, status StatusFunc, traces TracesFunc) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{"now": time.Now().Format(time.RFC3339Nano)}
		if status != nil {
			resp["status"] = status()
		}
		if traces != nil && r.URL.Query().Get("traces") == "1" {
			ts := traces()
			if ts == nil {
				ts = []PushTrace{}
			}
			resp["traces"] = ts
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers. Nil-safe.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
