package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dssp/internal/tensor"
)

func TestDatasetAddValidation(t *testing.T) {
	d := NewDataset(3, 4, 2, false)
	img := make([]float32, 3*4*4)
	if err := d.Add(img, 0); err != nil {
		t.Fatalf("valid Add failed: %v", err)
	}
	if err := d.Add(img[:5], 0); err == nil {
		t.Error("expected error for wrong sample length")
	}
	if err := d.Add(img, 5); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDatasetBatchShapes(t *testing.T) {
	img := MustSynthetic(SyntheticConfig{Examples: 10, Classes: 2, Channels: 3, Size: 8, Noise: 0.5, Seed: 1})
	x, labels := img.Batch([]int{0, 3, 5})
	if x.Dims() != 4 || x.Dim(0) != 3 || x.Dim(1) != 3 || x.Dim(2) != 8 {
		t.Fatalf("image batch shape %v", x.Shape())
	}
	if len(labels) != 3 {
		t.Fatalf("labels %v", labels)
	}

	flat := MustSynthetic(SyntheticConfig{Examples: 10, Classes: 2, Channels: 1, Size: 16, Noise: 0.5, Flat: true, Seed: 1})
	xf, _ := flat.Batch([]int{1, 2})
	if xf.Dims() != 2 || xf.Dim(1) != 16 {
		t.Fatalf("flat batch shape %v", xf.Shape())
	}
}

func TestSyntheticIsBalancedAndDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Examples: 40, Classes: 4, Channels: 3, Size: 6, Noise: 0.3, Seed: 9}
	a := MustSynthetic(cfg)
	b := MustSynthetic(cfg)
	counts := a.ClassCounts()
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d examples, want 10", c, n)
		}
	}
	xa, _ := a.All()
	xb, _ := b.All()
	if !xa.ApproxEqual(xb, 0) {
		t.Error("same seed produced different synthetic datasets")
	}
	c := MustSynthetic(SyntheticConfig{Examples: 40, Classes: 4, Channels: 3, Size: 6, Noise: 0.3, Seed: 10})
	xc, _ := c.All()
	if xa.ApproxEqual(xc, 0) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	bad := []SyntheticConfig{
		{Examples: 0, Classes: 2, Channels: 1, Size: 4},
		{Examples: 4, Classes: 0, Channels: 1, Size: 4},
		{Examples: 4, Classes: 2, Channels: 0, Size: 4},
	}
	for _, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}

func TestSyntheticCIFARShapes(t *testing.T) {
	c10 := SyntheticCIFAR10(20, 1)
	if c10.Classes != 10 || c10.Size != 32 || c10.Channels != 3 {
		t.Errorf("CIFAR-10 shape wrong: %+v", c10)
	}
	c100 := SyntheticCIFAR100(200, 1)
	if c100.Classes != 100 {
		t.Errorf("CIFAR-100 classes = %d", c100.Classes)
	}
}

func TestPartitionCoversAllIndicesExactlyOnce(t *testing.T) {
	property := func(totalRaw, workersRaw uint16) bool {
		total := int(totalRaw % 500)
		workers := int(workersRaw%16) + 1
		seen := make(map[int]int)
		for w := 0; w < workers; w++ {
			idx, err := Partition(total, w, workers)
			if err != nil {
				return false
			}
			for _, i := range idx {
				seen[i]++
			}
		}
		if len(seen) != total {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSizesAreBalanced(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		sizes := make([]int, workers)
		for w := 0; w < workers; w++ {
			idx, err := Partition(103, w, workers)
			if err != nil {
				t.Fatal(err)
			}
			sizes[w] = len(idx)
		}
		minSz, maxSz := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("workers=%d: partition sizes %v differ by more than 1", workers, sizes)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition(10, 0, 0); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := Partition(10, 3, 2); err == nil {
		t.Error("expected error for out-of-range worker")
	}
	if _, err := Partition(-1, 0, 2); err == nil {
		t.Error("expected error for negative total")
	}
}

func TestPartitionDatasetKeepsGeometry(t *testing.T) {
	d := MustSynthetic(SyntheticConfig{Examples: 20, Classes: 2, Channels: 3, Size: 4, Noise: 0.1, Seed: 3})
	shard, err := PartitionDataset(d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Len() != 5 {
		t.Fatalf("shard size = %d, want 5", shard.Len())
	}
	if shard.Channels != 3 || shard.Size != 4 || shard.Classes != 2 {
		t.Fatal("shard geometry differs from parent")
	}
}

func TestBatchIteratorCoversEpochAndWrapsAround(t *testing.T) {
	d := MustSynthetic(SyntheticConfig{Examples: 10, Classes: 2, Channels: 1, Size: 4, Noise: 0.1, Seed: 5})
	it, err := NewBatchIterator(d, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if it.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch = %d, want 3", it.BatchesPerEpoch())
	}
	sizes := []int{}
	for i := 0; i < 3; i++ {
		x, labels := it.Next()
		if x.Dim(0) != len(labels) {
			t.Fatal("batch size and label count differ")
		}
		sizes = append(sizes, len(labels))
	}
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("epoch covered %v examples, want 10", sizes)
	}
	if it.Epoch() != 0 {
		t.Fatalf("epoch should still be 0, got %d", it.Epoch())
	}
	it.Next()
	if it.Epoch() != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", it.Epoch())
	}
}

func TestBatchIteratorValidation(t *testing.T) {
	d := MustSynthetic(SyntheticConfig{Examples: 4, Classes: 2, Channels: 1, Size: 4, Noise: 0.1, Seed: 5})
	if _, err := NewBatchIterator(d, 0, 1); err == nil {
		t.Error("expected error for zero batch size")
	}
	empty := NewDataset(1, 4, 2, false)
	if _, err := NewBatchIterator(empty, 2, 1); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestHorizontalFlipReversesRows(t *testing.T) {
	batch := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	rng := rand.New(rand.NewSource(1))
	HorizontalFlip{P: 1}.Apply(rng, batch)
	want := []float32{2, 1, 4, 3}
	for i, v := range batch.Data() {
		if v != want[i] {
			t.Errorf("flip[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestGaussianNoiseChangesValuesButPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	batch := tensor.New(2, 3, 4, 4)
	orig := batch.Clone()
	GaussianNoise{StdDev: 0.5}.Apply(rng, batch)
	if batch.ApproxEqual(orig, 0) {
		t.Fatal("noise did not change the batch")
	}
	if !batch.SameShape(orig) {
		t.Fatal("noise changed the shape")
	}
}

func TestChannelDropZeroesExactlyOneChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batch := tensor.Full(1, 1, 3, 2, 2)
	ChannelDrop{P: 1}.Apply(rng, batch)
	zeroChannels := 0
	for c := 0; c < 3; c++ {
		allZero := true
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				if batch.At(0, c, y, x) != 0 {
					allZero = false
				}
			}
		}
		if allZero {
			zeroChannels++
		}
	}
	if zeroChannels != 1 {
		t.Fatalf("%d channels zeroed, want exactly 1", zeroChannels)
	}
}

func TestPipelineAppliesAllStages(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	batch := tensor.Full(1, 2, 3, 4, 4)
	orig := batch.Clone()
	p := Pipeline{HorizontalFlip{P: 1}, GaussianNoise{StdDev: 0.1}, ChannelDrop{P: 1}}
	p.Apply(rng, batch)
	if batch.ApproxEqual(orig, 0) {
		t.Fatal("pipeline did not modify the batch")
	}
	if p.Name() == "" {
		t.Fatal("pipeline name empty")
	}
}

func TestLoadCIFAR10FromGeneratedBinaryFiles(t *testing.T) {
	// Write two tiny files in the CIFAR-10 binary format and read them back.
	dir := t.TempDir()
	for _, name := range []string{"data_batch_1.bin", "data_batch_2.bin", "data_batch_3.bin", "data_batch_4.bin", "data_batch_5.bin"} {
		var buf []byte
		for rec := 0; rec < 2; rec++ {
			buf = append(buf, byte(rec%10))
			for i := 0; i < cifarImageBytes; i++ {
				buf = append(buf, byte(i%256))
			}
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	d, err := LoadCIFAR10(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("loaded %d records, want 10", d.Len())
	}
	if d.Classes != 10 || d.Size != 32 || d.Channels != 3 {
		t.Fatal("CIFAR-10 geometry wrong")
	}
	// Pixels must be normalized into [-1, 1].
	x, _ := d.Batch([]int{0})
	for _, v := range x.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestLoadCIFAR100FromGeneratedBinaryFile(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	for rec := 0; rec < 3; rec++ {
		buf = append(buf, byte(rec)) // coarse label (ignored)
		buf = append(buf, byte(90))  // fine label
		for i := 0; i < cifarImageBytes; i++ {
			buf = append(buf, 128)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "train.bin"), buf, 0o600); err != nil {
		t.Fatal(err)
	}
	d, err := LoadCIFAR100(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("loaded %d records, want 3", d.Len())
	}
	if d.Label(0) != 90 {
		t.Fatalf("fine label = %d, want 90", d.Label(0))
	}
}

func TestLoadCIFARMissingDirectoryFails(t *testing.T) {
	if _, err := LoadCIFAR10(filepath.Join(t.TempDir(), "does-not-exist")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
