package data

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// Partition splits the index range [0, total) into numWorkers contiguous,
// near-equal slices and returns the slice for the given worker, matching the
// paper's data-parallel setup in which each worker is assigned an equal-sized
// partition of the training data.
func Partition(total, worker, numWorkers int) ([]int, error) {
	if numWorkers <= 0 {
		return nil, fmt.Errorf("data: numWorkers must be positive, got %d", numWorkers)
	}
	if worker < 0 || worker >= numWorkers {
		return nil, fmt.Errorf("data: worker %d out of range [0,%d)", worker, numWorkers)
	}
	if total < 0 {
		return nil, fmt.Errorf("data: negative total %d", total)
	}
	base := total / numWorkers
	rem := total % numWorkers
	start := worker*base + min(worker, rem)
	size := base
	if worker < rem {
		size++
	}
	out := make([]int, size)
	for i := range out {
		out[i] = start + i
	}
	return out, nil
}

// PartitionDataset returns worker's shard of the dataset as a standalone
// dataset.
func PartitionDataset(d *Dataset, worker, numWorkers int) (*Dataset, error) {
	idx, err := Partition(d.Len(), worker, numWorkers)
	if err != nil {
		return nil, err
	}
	return d.Subset(idx), nil
}

// BatchIterator cycles through a dataset in shuffled mini-batches, reshuffling
// at the start of every epoch; one full pass over the data is one epoch.
type BatchIterator struct {
	dataset   *Dataset
	batchSize int
	rng       *rand.Rand
	order     []int
	cursor    int
	epoch     int
}

// NewBatchIterator returns an iterator over d with the given batch size.
func NewBatchIterator(d *Dataset, batchSize int, seed int64) (*BatchIterator, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("data: batch size must be positive, got %d", batchSize)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("data: cannot iterate over an empty dataset")
	}
	it := &BatchIterator{
		dataset:   d,
		batchSize: batchSize,
		rng:       rand.New(rand.NewSource(seed)),
		order:     make([]int, d.Len()),
	}
	for i := range it.order {
		it.order[i] = i
	}
	it.shuffle()
	return it, nil
}

// shuffle re-randomizes the iteration order.
func (it *BatchIterator) shuffle() {
	it.rng.Shuffle(len(it.order), func(i, j int) {
		it.order[i], it.order[j] = it.order[j], it.order[i]
	})
}

// Next returns the next mini-batch, wrapping around (and reshuffling) at the
// end of each epoch. Batches at the end of an epoch may be smaller than the
// configured batch size.
func (it *BatchIterator) Next() (*tensor.Tensor, []int) {
	if it.cursor >= len(it.order) {
		it.cursor = 0
		it.epoch++
		it.shuffle()
	}
	end := it.cursor + it.batchSize
	if end > len(it.order) {
		end = len(it.order)
	}
	indices := it.order[it.cursor:end]
	it.cursor = end
	x, labels := it.dataset.Batch(indices)
	return x, labels
}

// Epoch returns the number of completed passes over the dataset.
func (it *BatchIterator) Epoch() int { return it.epoch }

// BatchesPerEpoch returns how many mini-batches one epoch contains.
func (it *BatchIterator) BatchesPerEpoch() int {
	return (it.dataset.Len() + it.batchSize - 1) / it.batchSize
}
