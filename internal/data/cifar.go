package data

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// CIFAR binary-format constants: each record is a label section followed by
// a 32×32×3 image stored channel-major (R plane, G plane, B plane).
const (
	cifarImageBytes = 3 * 32 * 32
	// CIFAR-10 records have 1 label byte, CIFAR-100 records have 2 (coarse
	// then fine label).
	cifar10Record  = 1 + cifarImageBytes
	cifar100Record = 2 + cifarImageBytes
)

// LoadCIFAR10 reads the CIFAR-10 binary batches (data_batch_1.bin ...
// data_batch_5.bin) from dir. It exists so that the reproduction can run on
// the paper's real datasets when the files are present; when they are not,
// callers fall back to the synthetic datasets (the documented substitution).
func LoadCIFAR10(dir string) (*Dataset, error) {
	files := []string{
		"data_batch_1.bin", "data_batch_2.bin", "data_batch_3.bin",
		"data_batch_4.bin", "data_batch_5.bin",
	}
	return loadCIFAR(dir, files, 10, cifar10Record, 0)
}

// LoadCIFAR10Test reads the CIFAR-10 binary test batch from dir.
func LoadCIFAR10Test(dir string) (*Dataset, error) {
	return loadCIFAR(dir, []string{"test_batch.bin"}, 10, cifar10Record, 0)
}

// LoadCIFAR100 reads the CIFAR-100 binary training file (train.bin) from dir
// using the fine (100-class) labels.
func LoadCIFAR100(dir string) (*Dataset, error) {
	return loadCIFAR(dir, []string{"train.bin"}, 100, cifar100Record, 1)
}

// LoadCIFAR100Test reads the CIFAR-100 binary test file (test.bin) from dir.
func LoadCIFAR100Test(dir string) (*Dataset, error) {
	return loadCIFAR(dir, []string{"test.bin"}, 100, cifar100Record, 1)
}

// loadCIFAR parses the given record-format files into a dataset. labelOffset
// selects which label byte to use within the record header.
func loadCIFAR(dir string, files []string, classes, recordLen, labelOffset int) (*Dataset, error) {
	d := NewDataset(3, 32, classes, false)
	for _, name := range files {
		path := filepath.Join(dir, name)
		if err := appendCIFARFile(d, path, recordLen, labelOffset); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("data: no CIFAR records found in %s", dir)
	}
	return d, nil
}

// appendCIFARFile parses one CIFAR binary file into d.
func appendCIFARFile(d *Dataset, path string, recordLen, labelOffset int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("data: open CIFAR file: %w", err)
	}
	defer f.Close()

	record := make([]byte, recordLen)
	img := make([]float32, cifarImageBytes)
	for {
		_, err := io.ReadFull(f, record)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("data: read CIFAR record from %s: %w", path, err)
		}
		label := int(record[labelOffset])
		headerLen := recordLen - cifarImageBytes
		for i, b := range record[headerLen:] {
			// Normalize pixels to roughly zero mean, unit-ish range.
			img[i] = (float32(b) - 127.5) / 127.5
		}
		if err := d.Add(img, label); err != nil {
			return fmt.Errorf("data: %s: %w", path, err)
		}
	}
}
