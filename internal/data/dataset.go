// Package data provides the datasets and data-parallel plumbing used by the
// DSSP reproduction: synthetic CIFAR-like image-classification datasets (the
// substitution for CIFAR-10/100, see DESIGN.md), a reader for the real CIFAR
// binary format when the files are available, per-worker partitioning and
// mini-batch iteration, and the image-distortion augmentations discussed in
// the paper's §V-C.
package data

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// Dataset is an in-memory labelled dataset of fixed-size images (or flat
// feature vectors when Flat is true).
type Dataset struct {
	// Channels and Size describe image geometry (Size × Size pixels); for
	// flat datasets Channels is 1 and Size is the feature count.
	Channels int
	Size     int
	// Classes is the number of distinct labels.
	Classes int
	// Flat selects (batch, features) batches instead of NCHW batches.
	Flat bool

	images [][]float32
	labels []int
}

// NewDataset returns an empty dataset with the given geometry.
func NewDataset(channels, size, classes int, flat bool) *Dataset {
	return &Dataset{Channels: channels, Size: size, Classes: classes, Flat: flat}
}

// Add appends one example. The image slice is copied.
func (d *Dataset) Add(image []float32, label int) error {
	if len(image) != d.sampleLen() {
		return fmt.Errorf("data: sample has %d values, want %d", len(image), d.sampleLen())
	}
	if label < 0 || label >= d.Classes {
		return fmt.Errorf("data: label %d out of range [0,%d)", label, d.Classes)
	}
	img := make([]float32, len(image))
	copy(img, image)
	d.images = append(d.images, img)
	d.labels = append(d.labels, label)
	return nil
}

// sampleLen returns the number of scalars per example.
func (d *Dataset) sampleLen() int {
	if d.Flat {
		return d.Size
	}
	return d.Channels * d.Size * d.Size
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.images) }

// Label returns the label of example i.
func (d *Dataset) Label(i int) int { return d.labels[i] }

// Batch assembles the examples at the given indices into a batch tensor and
// a label slice. Image datasets produce NCHW tensors; flat datasets produce
// (batch, features).
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	n := len(indices)
	var batch *tensor.Tensor
	if d.Flat {
		batch = tensor.New(n, d.Size)
	} else {
		batch = tensor.New(n, d.Channels, d.Size, d.Size)
	}
	labels := make([]int, n)
	bd := batch.Data()
	stride := d.sampleLen()
	for i, idx := range indices {
		if idx < 0 || idx >= len(d.images) {
			panic(fmt.Sprintf("data: index %d out of range [0,%d)", idx, len(d.images)))
		}
		copy(bd[i*stride:(i+1)*stride], d.images[idx])
		labels[i] = d.labels[idx]
	}
	return batch, labels
}

// All returns a batch containing the whole dataset, useful for evaluation of
// small datasets.
func (d *Dataset) All() (*tensor.Tensor, []int) {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Batch(idx)
}

// Subset returns a new dataset referencing copies of the examples at the
// given indices.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := NewDataset(d.Channels, d.Size, d.Classes, d.Flat)
	for _, idx := range indices {
		img := make([]float32, len(d.images[idx]))
		copy(img, d.images[idx])
		out.images = append(out.images, img)
		out.labels = append(out.labels, d.labels[idx])
	}
	return out
}

// ClassCounts returns how many examples each class has.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, l := range d.labels {
		counts[l]++
	}
	return counts
}

// SyntheticConfig describes a synthetic classification dataset: each class
// has a random prototype image and samples are the prototype plus Gaussian
// pixel noise. The signal-to-noise ratio controls how hard the task is.
type SyntheticConfig struct {
	// Examples is the total number of examples to generate.
	Examples int
	// Classes is the number of classes (10 mimics CIFAR-10, 100 CIFAR-100).
	Classes int
	// Channels and Size give the image geometry (3 and 32 mimic CIFAR).
	Channels int
	Size     int
	// Noise is the standard deviation of the additive Gaussian pixel noise.
	Noise float64
	// Flat produces a flat feature-vector dataset instead of images.
	Flat bool
	// Seed makes generation deterministic.
	Seed int64
}

// Synthetic generates a dataset according to cfg.
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	if cfg.Examples <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("data: synthetic config needs positive examples and classes, got %d/%d",
			cfg.Examples, cfg.Classes)
	}
	if cfg.Channels <= 0 || cfg.Size <= 0 {
		return nil, fmt.Errorf("data: synthetic config needs positive geometry, got %dx%d", cfg.Channels, cfg.Size)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := NewDataset(cfg.Channels, cfg.Size, cfg.Classes, cfg.Flat)
	sample := d.sampleLen()

	prototypes := make([][]float32, cfg.Classes)
	for c := range prototypes {
		proto := make([]float32, sample)
		for i := range proto {
			proto[i] = float32(rng.NormFloat64())
		}
		prototypes[c] = proto
	}
	img := make([]float32, sample)
	for i := 0; i < cfg.Examples; i++ {
		label := i % cfg.Classes
		proto := prototypes[label]
		for j := range img {
			img[j] = proto[j] + float32(rng.NormFloat64()*cfg.Noise)
		}
		if err := d.Add(img, label); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustSynthetic is like Synthetic but panics on configuration errors. It is
// intended for tests and examples with constant configurations.
func MustSynthetic(cfg SyntheticConfig) *Dataset {
	d, err := Synthetic(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// SyntheticCIFAR10 returns a CIFAR-10-shaped synthetic dataset (32×32×3,
// 10 classes) with the given number of examples.
func SyntheticCIFAR10(examples int, seed int64) *Dataset {
	return MustSynthetic(SyntheticConfig{
		Examples: examples, Classes: 10, Channels: 3, Size: 32, Noise: 1.0, Seed: seed,
	})
}

// SyntheticCIFAR100 returns a CIFAR-100-shaped synthetic dataset (32×32×3,
// 100 classes) with the given number of examples.
func SyntheticCIFAR100(examples int, seed int64) *Dataset {
	return MustSynthetic(SyntheticConfig{
		Examples: examples, Classes: 100, Channels: 3, Size: 32, Noise: 1.0, Seed: seed,
	})
}
