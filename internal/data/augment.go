package data

import (
	"math/rand"

	"dssp/internal/tensor"
)

// The paper's §V-C explains the accuracy advantage of bounded-staleness
// paradigms on pure CNNs by analogy with data-distortion augmentation:
// moderate noise acts as regularization. This file provides the distortions
// mentioned there (horizontal flips, channel dropping, additive Gaussian
// noise) so that the real-training examples can reproduce that effect.

// Augmenter applies a random distortion to an NCHW batch in place.
type Augmenter interface {
	// Apply distorts the batch in place.
	Apply(rng *rand.Rand, batch *tensor.Tensor)
	// Name returns a short description.
	Name() string
}

// HorizontalFlip mirrors each image left-right with probability P.
type HorizontalFlip struct {
	// P is the per-image flip probability.
	P float64
}

// Apply implements Augmenter.
func (h HorizontalFlip) Apply(rng *rand.Rand, batch *tensor.Tensor) {
	if batch.Dims() != 4 {
		return
	}
	b, c, hgt, w := batch.Dim(0), batch.Dim(1), batch.Dim(2), batch.Dim(3)
	data := batch.Data()
	for img := 0; img < b; img++ {
		if rng.Float64() >= h.P {
			continue
		}
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * hgt * w
			for y := 0; y < hgt; y++ {
				row := data[base+y*w : base+(y+1)*w]
				for x := 0; x < w/2; x++ {
					row[x], row[w-1-x] = row[w-1-x], row[x]
				}
			}
		}
	}
}

// Name implements Augmenter.
func (h HorizontalFlip) Name() string { return "HorizontalFlip" }

// GaussianNoise adds independent Gaussian noise to every pixel, the
// distortion the paper cites as improving very deep network training.
type GaussianNoise struct {
	// StdDev is the noise standard deviation.
	StdDev float64
}

// Apply implements Augmenter.
func (g GaussianNoise) Apply(rng *rand.Rand, batch *tensor.Tensor) {
	data := batch.Data()
	for i := range data {
		data[i] += float32(rng.NormFloat64() * g.StdDev)
	}
}

// Name implements Augmenter.
func (g GaussianNoise) Name() string { return "GaussianNoise" }

// ChannelDrop zeroes one randomly chosen color channel per image with
// probability P ("setting one or two of RGB pixels to zero" in the paper).
type ChannelDrop struct {
	// P is the per-image drop probability.
	P float64
}

// Apply implements Augmenter.
func (c ChannelDrop) Apply(rng *rand.Rand, batch *tensor.Tensor) {
	if batch.Dims() != 4 {
		return
	}
	b, ch, hgt, w := batch.Dim(0), batch.Dim(1), batch.Dim(2), batch.Dim(3)
	data := batch.Data()
	plane := hgt * w
	for img := 0; img < b; img++ {
		if rng.Float64() >= c.P {
			continue
		}
		drop := rng.Intn(ch)
		base := (img*ch + drop) * plane
		for i := 0; i < plane; i++ {
			data[base+i] = 0
		}
	}
}

// Name implements Augmenter.
func (c ChannelDrop) Name() string { return "ChannelDrop" }

// Pipeline applies a sequence of augmenters in order.
type Pipeline []Augmenter

// Apply implements Augmenter.
func (p Pipeline) Apply(rng *rand.Rand, batch *tensor.Tensor) {
	for _, a := range p {
		a.Apply(rng, batch)
	}
}

// Name implements Augmenter.
func (p Pipeline) Name() string { return "Pipeline" }
