package trainer

import (
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/nn"
)

// elasticConfig is a small, fast run: 3 workers on a synthetic MLP problem
// that converges well past 0.8 accuracy at full strength.
func elasticConfig(t *testing.T, policy core.PolicyConfig) Config {
	t.Helper()
	ds, err := data.Synthetic(data.SyntheticConfig{
		Examples: 360, Classes: 3, Channels: 1, Size: 12, Noise: 0.3, Flat: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model:        nn.SpecSmallMLP(12, 24, 3),
		Train:        ds,
		Workers:      3,
		BatchSize:    12,
		Epochs:       4,
		Policy:       policy,
		LearningRate: 0.1,
		Seed:         5,
	}
}

// runWithDeadline guards against the exact failure mode under test — a
// deadlocked barrier — so a regression fails fast instead of hanging the
// suite until the go test timeout.
func runWithDeadline(t *testing.T, cfg Config) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		return o.res
	case <-time.After(120 * time.Second):
		t.Fatalf("training deadlocked (%s with a crashed worker)", cfg.Policy.Describe())
		return nil
	}
}

// TestWorkerCrashMidRunCompletesUnderEachParadigm is the no-deadlock
// guarantee of the membership layer, pinned at the highest level: a worker
// killed mid-run (abrupt connection drop, no Done, no Leave) must not stall
// BSP, SSP, DSSP or BoundedDelay, and the survivors must still converge to
// an accuracy comparable to the full-strength run.
func TestWorkerCrashMidRunCompletesUnderEachParadigm(t *testing.T) {
	policies := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 2},
		{Paradigm: core.ParadigmDSSP, Staleness: 2, Range: 4},
		{Paradigm: core.ParadigmBoundedDelay, Staleness: 3},
	}
	for _, p := range policies {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			t.Parallel()
			full := runWithDeadline(t, elasticConfig(t, p))

			crashed := elasticConfig(t, p)
			// Worker 2 dies a third of the way through the run.
			itersPerEpoch := (crashed.Train.Len()/crashed.Workers + crashed.BatchSize - 1) / crashed.BatchSize
			crashed.CrashAt = map[int]int{2: itersPerEpoch * crashed.Epochs / 3}
			res := runWithDeadline(t, crashed)

			if len(res.Crashed) != 1 || res.Crashed[0] != 2 {
				t.Fatalf("crashed workers = %v, want [2]", res.Crashed)
			}
			if res.Updates >= full.Updates {
				t.Errorf("crashed run applied %d updates, full run %d — the crash did nothing?",
					res.Updates, full.Updates)
			}
			// Survivors finish the job: final accuracy within tolerance of
			// the full-strength run. The tolerance is generous — the point is
			// "still converged", not "identical".
			if res.FinalAccuracy < full.FinalAccuracy-0.2 {
				t.Errorf("crashed-run accuracy %.3f too far below full-run %.3f",
					res.FinalAccuracy, full.FinalAccuracy)
			}
			if res.FinalAccuracy < 0.5 {
				t.Errorf("crashed-run accuracy %.3f never converged", res.FinalAccuracy)
			}
		})
	}
}

// TestWorkerCrashWithBackupBSP: the backup-worker baseline was built for
// stragglers; a crash must likewise shrink the quorum rather than stall it.
func TestWorkerCrashWithBackupBSP(t *testing.T) {
	cfg := elasticConfig(t, core.PolicyConfig{Paradigm: core.ParadigmBackupBSP, Backups: 1})
	itersPerEpoch := (cfg.Train.Len()/cfg.Workers + cfg.BatchSize - 1) / cfg.BatchSize
	cfg.CrashAt = map[int]int{1: itersPerEpoch * cfg.Epochs / 3}
	res := runWithDeadline(t, cfg)
	if len(res.Crashed) != 1 {
		t.Fatalf("crashed workers = %v, want one", res.Crashed)
	}
	if res.FinalAccuracy < 0.5 {
		t.Errorf("accuracy %.3f never converged", res.FinalAccuracy)
	}
}

// TestElasticHeartbeatsEndToEnd runs a full elastic training with heartbeats
// on: liveness traffic must not disturb the lock-step protocol or the
// result.
func TestElasticHeartbeatsEndToEnd(t *testing.T) {
	cfg := elasticConfig(t, core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 2, Range: 4})
	cfg.Elastic = true
	cfg.HeartbeatInterval = 10 * time.Millisecond
	res := runWithDeadline(t, cfg)
	if res.FinalAccuracy < 0.5 {
		t.Errorf("accuracy %.3f with heartbeats", res.FinalAccuracy)
	}
	if res.Updates == 0 {
		t.Error("no updates applied")
	}
}

// TestDroppedSurfacesInResult pins the satellite fix: the backup-worker
// baseline's dropped-update count reaches the caller.
func TestDroppedSurfacesInResult(t *testing.T) {
	cfg := elasticConfig(t, core.PolicyConfig{Paradigm: core.ParadigmBackupBSP, Backups: 1})
	// Slow one worker so it is reliably the straggler whose updates drop.
	cfg.WorkerDelay = []time.Duration{0, 0, 2 * time.Millisecond}
	res := runWithDeadline(t, cfg)
	if res.Dropped == 0 {
		t.Error("backup-worker run reported zero dropped updates")
	}
	if res.Dropped+res.Updates == 0 {
		t.Error("no pushes at all")
	}
}
