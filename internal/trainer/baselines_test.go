package trainer

import (
	"testing"
	"time"

	"dssp/internal/core"
)

// TestRunBaselineParadigms exercises the bounded-delay related-work baseline
// (Li et al.) end to end through the real parameter server. The backup-worker
// BSP baseline is exercised in internal/core and internal/simulate only: with
// a fixed per-worker iteration quota its dropped-straggler semantics can leave
// the straggler's final round forever incomplete once the fast workers have
// finished, so it is not suited to the trainer's equal-quota termination
// model.
func TestRunBaselineParadigms(t *testing.T) {
	baselines := []core.PolicyConfig{
		{Paradigm: core.ParadigmBoundedDelay, Staleness: 4},
	}
	for _, p := range baselines {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			cfg := smallConfig(p)
			cfg.Epochs = 4
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalAccuracy < 0.6 {
				t.Fatalf("final accuracy %v, want >= 0.6", res.FinalAccuracy)
			}
			if res.Updates == 0 {
				t.Fatal("no updates applied")
			}
		})
	}
}

// TestRunDSSPEnforcedBoundEndToEnd runs the Theorem-2 DSSP variant through
// the real trainer and checks the bounded-staleness consequence: the maximum
// observed update staleness stays within (sU+1) * workers.
func TestRunDSSPEnforcedBoundEndToEnd(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{
		Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 2, EnforceBound: true,
	})
	cfg.WorkerDelay = []time.Duration{0, 0, 5 * time.Millisecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	limit := (1 + 2 + 1) * cfg.Workers
	if res.Staleness.Max() > limit {
		t.Fatalf("max staleness %d exceeds bound-implied limit %d", res.Staleness.Max(), limit)
	}
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("final accuracy %v", res.FinalAccuracy)
	}
}
