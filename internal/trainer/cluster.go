package trainer

import (
	"fmt"
	"time"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// trainClient is the worker side of Algorithm 1 as the training loop sees
// it: a single-server ps.Client and a server-group ps.ClusterClient both
// satisfy it, so runWorker is one body for both topologies.
type trainClient interface {
	Pull() ([]*tensor.Tensor, int64, error)
	PushAndWait(grads []*tensor.Tensor, baseVersion int64, iteration int) error
	Done() error
	Close() error
	Traffic() (pushed, pulled int64)
	StartHeartbeats(interval time.Duration) (stop func())
}

// serving is one way of standing the parameter-server side up — a single
// in-process server, or a coordinator plus ClusterServers data servers. The
// run body (worker fan-out, evaluation loop, result accounting) is identical
// either way; only these hooks differ.
type serving struct {
	// connect builds, registers and heartbeat-starts one worker's client.
	connect func(workerID int) (trainClient, error)
	// snapshot returns the assembled global weights and their version (the
	// minimum applied version across data servers in cluster mode).
	snapshot func() ([]*tensor.Tensor, int64)
	// version is the snapshot version alone, cheap enough for the eval poll.
	version func() int64
	// setLR applies a scheduled learning-rate change to every store.
	setLR func(lr float64)
	// policyServer is the server whose policy layer runs the paradigm — the
	// single server, or the cluster coordinator. Result statistics
	// (pushes, drops, staleness, waits, guard, metrics, traces) read from it.
	policyServer *ps.Server
	// dial opens a fresh connection to the policy server (set by
	// buildStandalone; the tree topology builds relay trunks over it).
	dial func() (transport.Conn, error)
	// relays is the aggregation tier, when the topology has one.
	relays []*ps.Relay
	// stop tears the topology down in dependency order.
	stop func()
}

// buildServing stands up the configured topology. ClusterServers <= 1 is the
// classic single server; otherwise a coordinator owns the paradigm policy
// while ClusterServers data servers own contiguous shard ranges of the store
// (DESIGN.md §10), all in-process over channel transports.
func buildServing(cfg Config, policy core.Policy, params []*tensor.Tensor) (*serving, error) {
	if cfg.Fanout >= 2 {
		if cfg.ClusterServers >= 2 {
			return nil, fmt.Errorf("trainer: Fanout and ClusterServers are mutually exclusive")
		}
		return buildTree(cfg, policy, params)
	}
	if cfg.ClusterServers <= 1 {
		return buildStandalone(cfg, policy, params)
	}
	return buildCluster(cfg, policy, params)
}

// buildStandalone is the classic topology: one server, one sharded store.
func buildStandalone(cfg Config, policy core.Policy, params []*tensor.Tensor) (*serving, error) {
	opt := optimizer.NewSGDMomentum(cfg.LearningRate, cfg.Momentum, cfg.WeightDecay)
	store, err := ps.NewStoreSharded(params, opt, cfg.Shards)
	if err != nil {
		return nil, err
	}
	server, err := ps.NewServer(ps.ServerConfig{
		Workers: cfg.Workers,
		Policy:  policy,
		Store:   store,
		Options: cfg.Options,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	listener := transport.NewChanListener()
	listener.SetMeter(transport.NewMetrics(server.Registry()))
	go func() { _ = server.Serve(listener) }()
	connect := func(workerID int) (trainClient, error) {
		conn, err := listener.Dial()
		if err != nil {
			return nil, err
		}
		client, err := ps.NewClientCompressed(conn, workerID, cfg.Compression)
		if err != nil {
			conn.Close()
			return nil, err
		}
		client.SetDeltaPull(cfg.DeltaPull)
		if err := client.Register(); err != nil {
			client.Close()
			return nil, err
		}
		return client, nil
	}
	return &serving{
		connect:      connect,
		snapshot:     store.Snapshot,
		version:      store.Version,
		setLR:        store.SetLearningRate,
		policyServer: server,
		dial:         listener.Dial,
		stop: func() {
			server.Stop()
			listener.Close()
		},
	}, nil
}

// buildTree is the aggregation-tree topology (DESIGN.md §11): the classic
// single server at the root, fronted by ceil(Workers/Fanout) in-process
// relays over channel transports. Each relay registers a trunk with the
// root, learns its worker range through the tree layout, and sums its
// children's pushes into one forwarded partial; workers fetch the layout
// from the root at connect time and dial the relay covering them — the
// single-process twin of `psserver -role relay`.
func buildTree(cfg Config, policy core.Policy, params []*tensor.Tensor) (*serving, error) {
	base, err := buildStandalone(cfg, policy, params)
	if err != nil {
		return nil, err
	}
	rootDial := base.dial
	rootStop := base.stop

	relayCount := (cfg.Workers + cfg.Fanout - 1) / cfg.Fanout
	var relays []*ps.Relay
	var listeners []*transport.ChanListener
	byAddr := make(map[string]*transport.ChanListener)
	stopAll := func() {
		for _, r := range relays {
			r.Stop()
		}
		for _, l := range listeners {
			l.Close()
		}
		rootStop()
	}
	for i := 0; i < relayCount; i++ {
		l := transport.NewChanListener()
		listeners = append(listeners, l)
		byAddr[l.Addr()] = l
		relay, err := ps.NewRelay(ps.RelayConfig{
			Parent:            rootDial,
			Fanout:            cfg.Fanout,
			Advertise:         l.Addr(),
			Compression:       cfg.Compression,
			HeartbeatInterval: cfg.HeartbeatInterval,
			HeartbeatTimeout:  cfg.HeartbeatTimeout,
		})
		if err != nil {
			stopAll()
			return nil, fmt.Errorf("trainer: relay %d: %w", i, err)
		}
		relays = append(relays, relay)
		go func(r *ps.Relay, l *transport.ChanListener) { _ = r.Serve(l) }(relay, l)
	}

	connect := func(workerID int) (trainClient, error) {
		layoutConn, err := rootDial()
		if err != nil {
			return nil, err
		}
		layout, err := ps.FetchTreeLayout(layoutConn)
		layoutConn.Close()
		if err != nil {
			return nil, err
		}
		var conn transport.Conn
		if addr := layout.Covering(workerID); addr != "" && byAddr[addr] != nil {
			conn, err = byAddr[addr].Dial()
		} else {
			conn, err = rootDial()
		}
		if err != nil {
			return nil, err
		}
		client, err := ps.NewClientCompressed(conn, workerID, cfg.Compression)
		if err != nil {
			conn.Close()
			return nil, err
		}
		client.SetDeltaPull(cfg.DeltaPull)
		if err := client.Register(); err != nil {
			client.Close()
			return nil, err
		}
		return client, nil
	}

	base.connect = connect
	base.relays = relays
	base.stop = stopAll
	return base, nil
}

// buildCluster is the server-group topology: cfg.ClusterServers data servers
// each own a contiguous shard range of the model behind local ASP policies
// (a fragment's OK means "applied"), and one coordinator runs the real
// paradigm policy over metadata-only pushes — the single serialization point
// conf_icdcs_ZhaoALC19's staleness bounds are defined against.
func buildCluster(cfg Config, policy core.Policy, params []*tensor.Tensor) (*serving, error) {
	sizes := make([]int, len(params))
	for i, p := range params {
		sizes[i] = p.Size()
	}
	layout, globalShards, err := ps.GroupLayout(sizes, cfg.Shards, cfg.ClusterServers)
	if err != nil {
		return nil, fmt.Errorf("trainer: cluster layout: %w", err)
	}

	coordStore, err := ps.NewStoreSharded([]*tensor.Tensor{tensor.New(1)}, optimizer.NewSGD(1), 1)
	if err != nil {
		return nil, err
	}
	coord, err := ps.NewServer(ps.ServerConfig{
		Workers: cfg.Workers,
		Policy:  policy,
		Store:   coordStore,
		Options: ps.Options{Elastic: cfg.Elastic, HeartbeatTimeout: cfg.HeartbeatTimeout},
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
		Cluster: ps.ClusterConfig{
			Coordinator:  true,
			GlobalShards: globalShards,
			TotalTensors: len(params),
		},
	})
	if err != nil {
		return nil, err
	}

	// One in-process listener per server; the dial table keyed by advertised
	// address is the channel-transport twin of TCP dialing.
	listeners := make(map[string]*transport.ChanListener)
	coordListener := transport.NewChanListener()
	coordListener.SetMeter(transport.NewMetrics(coord.Registry()))
	listeners[coordListener.Addr()] = coordListener
	dial := func(addr string) (transport.Conn, error) {
		l := listeners[addr]
		if l == nil {
			return nil, fmt.Errorf("trainer: no cluster server at %s", addr)
		}
		return l.Dial()
	}
	go func() { _ = coord.Serve(coordListener) }()

	var servers []*ps.Server
	var stores []*ps.Store
	var closers []*transport.ChanListener
	stopAll := func() {
		coord.Stop()
		for _, s := range servers {
			s.Stop()
		}
		coordListener.Close()
		for _, l := range closers {
			l.Close()
		}
	}
	// Data-server options: the byte-path knobs (compression, aggregation,
	// guard) act where the gradients land. Checkpointing is deliberately
	// dropped — per-range stores would race over one directory — and
	// elasticity is the coordinator's call.
	dataOpts := ps.Options{
		Compression: cfg.Compression,
		Aggregator:  cfg.Aggregator,
		Guard:       cfg.Guard,
	}
	dataPolicy := func() core.Policy { return core.MustNewASP(cfg.Workers) }
	for i := 0; i < cfg.ClusterServers; i++ {
		a := layout[i]
		opt := optimizer.NewSGDMomentum(cfg.LearningRate, cfg.Momentum, cfg.WeightDecay)
		st, err := ps.NewStoreRange(params, opt, globalShards, a.ShardLo, a.ShardHi)
		if err != nil {
			stopAll()
			return nil, err
		}
		srv, err := ps.NewServer(ps.ServerConfig{
			Workers: cfg.Workers,
			Policy:  dataPolicy(),
			Store:   st,
			Options: dataOpts,
		})
		if err != nil {
			stopAll()
			return nil, err
		}
		l := transport.NewChanListener()
		listeners[l.Addr()] = l
		closers = append(closers, l)
		go func() { _ = srv.Serve(l) }()
		servers = append(servers, srv)
		stores = append(stores, st)
		if err := announce(dial, coordListener.Addr(), a.Entry(l.Addr())); err != nil {
			stopAll()
			return nil, err
		}
	}

	minVersion := func() int64 {
		min := stores[0].Version()
		for _, st := range stores[1:] {
			if v := st.Version(); v < min {
				min = v
			}
		}
		return min
	}
	snapshot := func() ([]*tensor.Tensor, int64) {
		out := make([]*tensor.Tensor, 0, len(params))
		version := int64(-1)
		for _, st := range stores {
			part, v := st.Snapshot()
			out = append(out, part...)
			if version < 0 || v < version {
				version = v
			}
		}
		return out, version
	}
	connect := func(workerID int) (trainClient, error) {
		return ps.NewClusterClient(dial, coordListener.Addr(), workerID, ps.ClusterClientConfig{
			Compression: cfg.Compression,
			DeltaPull:   cfg.DeltaPull,
		})
	}
	return &serving{
		connect:  connect,
		snapshot: snapshot,
		version:  minVersion,
		setLR: func(lr float64) {
			for _, st := range stores {
				st.SetLearningRate(lr)
			}
		},
		policyServer: coord,
		stop:         stopAll,
	}, nil
}

// announce registers one data server's map entry with the coordinator, the
// same frame exchange the TCP layer performs.
func announce(dial func(string) (transport.Conn, error), coordAddr string, entry transport.ServerEntry) error {
	conn, err := dial(coordAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(transport.Message{
		Type:    transport.MsgServerAnnounce,
		Servers: []transport.ServerEntry{entry},
	}); err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type != transport.MsgOK {
		return fmt.Errorf("trainer: cluster announce rejected: %s", msg.Error)
	}
	return nil
}
