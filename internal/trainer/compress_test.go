package trainer

import (
	"testing"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/nn"
)

// TestCompressedTrainingConverges is the subsystem's end-to-end acceptance
// check: under BSP, SSP and DSSP, training with every lossy codec (error
// feedback on) must reach a final accuracy within tolerance of the
// uncompressed run on the same easy synthetic task — and must actually move
// fewer bytes.
func TestCompressedTrainingConverges(t *testing.T) {
	paradigms := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	}
	codecs := []compress.Config{
		{Codec: compress.FP16},
		{Codec: compress.Int8},
		{Codec: compress.TopK, TopK: 0.25},
	}
	// Accuracy head room below the uncompressed baseline: lossy gradients on
	// a tiny model jitter between runs, but with error feedback they must
	// stay in the same convergence regime.
	const tolerance = 0.15

	for _, p := range paradigms {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			baselineCfg := smallConfig(p)
			baseline, err := Run(baselineCfg)
			if err != nil {
				t.Fatal(err)
			}
			if baseline.PushedBytes <= 0 {
				t.Fatal("baseline run recorded no pushed bytes")
			}
			for _, codec := range codecs {
				codec := codec
				t.Run(codec.String(), func(t *testing.T) {
					cfg := smallConfig(p)
					cfg.Compression = codec
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.Updates == 0 {
						t.Fatal("no updates were applied")
					}
					if res.FinalAccuracy < baseline.FinalAccuracy-tolerance {
						t.Fatalf("codec %s final accuracy %.3f, uncompressed baseline %.3f (tolerance %.2f)",
							codec, res.FinalAccuracy, baseline.FinalAccuracy, tolerance)
					}
					if res.PushedBytes <= 0 {
						t.Fatal("compressed run recorded no pushed bytes")
					}
					if res.PushedBytes >= baseline.PushedBytes {
						t.Fatalf("codec %s pushed %d bytes, baseline pushed %d",
							codec, res.PushedBytes, baseline.PushedBytes)
					}
				})
			}
		})
	}
}

// TestCompressedPullPathTrains exercises the fully compressed wire — int8
// pushes and int8 weight pulls — end to end.
func TestCompressedPullPathTrains(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4})
	cfg.Compression = compress.Config{Codec: compress.FP16, Pull: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("final accuracy %.3f with compressed pulls, want >= 0.6", res.FinalAccuracy)
	}
	uncompressed := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4})
	base, err := Run(uncompressed)
	if err != nil {
		t.Fatal(err)
	}
	if res.PulledBytes >= base.PulledBytes {
		t.Fatalf("compressed pulls moved %d bytes, uncompressed moved %d", res.PulledBytes, base.PulledBytes)
	}
}

// TestTrafficAccountingScalesWithCodec pins the relative wire footprint end
// to end: int8 pushes must be at least 2× smaller than dense, topk(0.1) at
// least 4×. The model gets a wider hidden layer than smallConfig's so that
// payloads, not per-tensor headers, dominate — as they do on any real model
// (the gob-measured equivalent lives in internal/transport).
func trafficConfig(p core.PolicyConfig) Config {
	cfg := smallConfig(p)
	cfg.Model = nn.SpecSmallMLP(12, 64, 3)
	cfg.Epochs = 2
	return cfg
}

func TestTrafficAccountingScalesWithCodec(t *testing.T) {
	p := core.PolicyConfig{Paradigm: core.ParadigmBSP}
	dense, err := Run(trafficConfig(p))
	if err != nil {
		t.Fatal(err)
	}

	int8Cfg := trafficConfig(p)
	int8Cfg.Compression = compress.Config{Codec: compress.Int8}
	int8Res, err := Run(int8Cfg)
	if err != nil {
		t.Fatal(err)
	}

	topkCfg := trafficConfig(p)
	topkCfg.Compression = compress.Config{Codec: compress.TopK, TopK: 0.1}
	topkRes, err := Run(topkCfg)
	if err != nil {
		t.Fatal(err)
	}

	// All three runs push the same number of updates (same iteration count),
	// so pushed bytes compare directly.
	if ratio := float64(dense.PushedBytes) / float64(int8Res.PushedBytes); ratio < 2 {
		t.Errorf("int8 reduced pushed bytes %.2fx, want >= 2x", ratio)
	}
	if ratio := float64(dense.PushedBytes) / float64(topkRes.PushedBytes); ratio < 4 {
		t.Errorf("topk(0.1) reduced pushed bytes %.2fx, want >= 4x", ratio)
	}
}
