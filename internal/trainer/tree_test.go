package trainer

import (
	"testing"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/ps"
)

// TestTreeTopologyTrainsUnderEveryParadigm runs the aggregation-tree
// topology under each paradigm and checks it converges within the
// established tolerance of the flat run: relays change who sums the
// gradients, not what the optimizer sees.
func TestTreeTopologyTrainsUnderEveryParadigm(t *testing.T) {
	paradigms := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	}
	for _, p := range paradigms {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			flatCfg := smallConfig(p)
			flatCfg.Workers = 4
			flat, err := Run(flatCfg)
			if err != nil {
				t.Fatal(err)
			}
			treeCfg := smallConfig(p)
			treeCfg.Workers = 4
			treeCfg.Fanout = 2
			tree, err := Run(treeCfg)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Updates != flat.Updates-flat.Dropped+tree.Dropped {
				// Logical pushes must all reach the policy: the version
				// advances by the partial's weight, so the update count
				// matches flat push-for-push.
				t.Errorf("tree applied %d updates (dropped %d), flat %d (dropped %d)",
					tree.Updates, tree.Dropped, flat.Updates, flat.Dropped)
			}
			if diff := tree.FinalAccuracy - flat.FinalAccuracy; diff < -0.15 {
				t.Errorf("tree accuracy %.3f more than 0.15 below flat %.3f",
					tree.FinalAccuracy, flat.FinalAccuracy)
			}
			if tree.Metrics[`dssp_tree_partials_total`] == 0 {
				t.Error("no relay partials reached the store")
			}
			if tree.Metrics[`dssp_tree_child_joins_total`] != 4 {
				t.Errorf("expected 4 trunk-routed joins, got %v",
					tree.Metrics[`dssp_tree_child_joins_total`])
			}
		})
	}
}

// TestTreeTopologyWithCompressionAndDeltaPull exercises the per-hop byte
// paths together: child→relay and relay→root pushes compressed with error
// feedback at each hop, pulls delta-gated and packed through the relay
// cache.
func TestTreeTopologyWithCompressionAndDeltaPull(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3})
	cfg.Workers = 4
	cfg.Fanout = 2
	cfg.DeltaPull = true
	cfg.Compression = compress.Config{Codec: compress.Int8, Pull: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("no updates were applied")
	}
	if res.FinalAccuracy < 0.5 {
		t.Errorf("compressed tree run collapsed: final accuracy %.3f", res.FinalAccuracy)
	}
}

// TestTreeIngressReduction is the PR's headline pin: with 16 workers at
// fanout 4 the root must receive at least 3x fewer push frames and 2x fewer
// push ingress bytes than the flat topology, while every logical push still
// reaches the policy layer. Frames and bytes come from the root listener's
// transport meter, the same series a /metrics scrape exports.
func TestTreeIngressReduction(t *testing.T) {
	run := func(fanout int) *Result {
		cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmBSP})
		cfg.Workers = 16
		cfg.BatchSize = 4
		cfg.Epochs = 4
		cfg.Fanout = fanout
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(0)
	tree := run(4)

	const framesKey = `dssp_transport_frames_total{dir="recv",type="Push"}`
	const bytesKey = `dssp_transport_bytes_total{dir="recv",type="Push"}`
	flatFrames, treeFrames := flat.Metrics[framesKey], tree.Metrics[framesKey]
	flatBytes, treeBytes := flat.Metrics[bytesKey], tree.Metrics[bytesKey]
	if flatFrames == 0 || treeFrames == 0 {
		t.Fatalf("missing transport meters: flat=%v tree=%v", flatFrames, treeFrames)
	}
	if treeFrames*3 > flatFrames {
		t.Errorf("root push ingress %v frames, want <= 1/3 of flat's %v", treeFrames, flatFrames)
	}
	if treeBytes*2 > flatBytes {
		t.Errorf("root push ingress %v bytes, want <= 1/2 of flat's %v", treeBytes, flatBytes)
	}
	if tree.Updates != flat.Updates {
		t.Errorf("tree applied %d updates, flat %d — logical pushes lost", tree.Updates, flat.Updates)
	}
	if acc := tree.FinalAccuracy; acc < flat.FinalAccuracy-0.15 {
		t.Errorf("tree accuracy %.3f more than 0.15 below flat %.3f", acc, flat.FinalAccuracy)
	}
}

// TestTreeTrafficReconciliation checks per-hop accounting (satellite: every
// byte crossing a relay is counted on both ends): the bytes the workers
// report pushing must equal the ingress the relays account, and the relays'
// forwarded bytes must land within the root's received push bytes.
func TestTreeTrafficReconciliation(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmBSP})
	cfg.Workers = 4
	cfg.Fanout = 2
	var relays []*ps.Relay
	cfg.relayHook = func(rs []*ps.Relay) { relays = rs }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 2 {
		t.Fatalf("expected 2 relays for 4 workers at fanout 2, got %d", len(relays))
	}

	var ingress, forwarded int64
	var childPushes uint64
	for _, r := range relays {
		s := r.Stats()
		ingress += s.IngressBytes
		forwarded += s.ForwardedBytes
		childPushes += s.ChildPushes
	}
	if res.PushedBytes != ingress {
		t.Errorf("workers report pushing %d bytes, relays account %d ingress", res.PushedBytes, ingress)
	}
	if forwarded >= ingress {
		t.Errorf("relays forwarded %d bytes >= their %d ingress: no aggregation happened", forwarded, ingress)
	}
	rootBytes := int64(res.Metrics[`dssp_transport_bytes_total{dir="recv",type="Push"}`])
	// The channel transport's meter adds a small fixed envelope per frame
	// on top of the payload bytes the relay accounts, so the root reads
	// slightly above the relays' own number — never below it, and never by
	// more than the envelope allowance.
	if rootBytes < forwarded {
		t.Errorf("root metered %d push bytes, below the %d the relays report forwarding", rootBytes, forwarded)
	}
	rootFrames := int64(res.Metrics[`dssp_transport_frames_total{dir="recv",type="Push"}`])
	if slack := rootBytes - forwarded; slack > 128*rootFrames {
		t.Errorf("root metered %d push bytes vs %d forwarded: reconciliation gap %d too large",
			rootBytes, forwarded, slack)
	}
	if childPushes == 0 {
		t.Error("relays saw no child pushes")
	}
}
