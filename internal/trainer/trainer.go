// Package trainer runs real data-parallel training through the parameter
// server: worker goroutines each hold a model replica and a shard of the
// dataset, compute gradients with the nn substrate, and exchange them with a
// ps.Server whose release decisions are made by one of the synchronization
// paradigms in internal/core. Per-worker artificial delays emulate the
// heterogeneous-GPU clusters of the paper's §V-D on a single machine.
package trainer

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/metrics"
	"dssp/internal/nn"
	"dssp/internal/obs"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
)

// Config describes one distributed training run.
type Config struct {
	// Model builds the network architecture to train.
	Model nn.ModelSpec
	// Train is the training dataset, partitioned across workers.
	Train *data.Dataset
	// Test is the evaluation dataset; when nil the training set is used.
	Test *data.Dataset
	// Workers is the number of worker goroutines.
	Workers int
	// BatchSize is the per-worker mini-batch size.
	BatchSize int
	// Epochs is the number of passes over each worker's shard.
	Epochs int
	// Policy selects the synchronization paradigm.
	Policy core.PolicyConfig
	// LearningRate, Momentum and WeightDecay configure the server-side SGD.
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	// Schedule optionally decays the learning rate by epoch; nil keeps the
	// base rate.
	Schedule *optimizer.StepSchedule
	// WorkerDelay adds an artificial per-iteration delay to each worker,
	// emulating slower GPUs; nil or missing entries mean no delay.
	WorkerDelay []time.Duration
	// Augment optionally distorts each training batch.
	Augment data.Augmenter
	// EvalEvery evaluates the global model every EvalEvery applied updates;
	// 0 picks a default that yields roughly 30 evaluation points.
	EvalEvery int
	// Shards is the number of independently locked partitions of the
	// parameter store; 0 picks one per CPU. More shards mean more
	// pull/push concurrency on the server. In cluster mode (ClusterServers
	// >= 2) it is the group-wide shard count, normalized by ps.GroupLayout.
	Shards int
	// ClusterServers, when >= 2, runs the parameter server as an in-process
	// server group: that many data servers each own a contiguous shard range
	// of the store behind a coordinator that runs the paradigm policy, and
	// workers route pushes and pulls through a cluster client — the
	// single-process twin of a multi-process psserver group. 0 or 1 keeps
	// the classic single server.
	ClusterServers int
	// Fanout, when >= 2, fronts the server with an in-process aggregation
	// tier (DESIGN.md §11): ceil(Workers/Fanout) relays each sum the pushes
	// of up to Fanout workers into one ×k-weighted partial, cutting the
	// root's push ingress from O(Workers) to O(Workers/Fanout) frames per
	// round while the policy layer still sees every logical push. Workers
	// learn their relay from the root's tree layout, exactly as the TCP
	// worker does. Incompatible with ClusterServers >= 2, a non-sum
	// aggregator, and the anomaly guard. 0 or 1 keeps the flat topology.
	Fanout int
	// Options is the server-side serving surface (compression, aggregation,
	// guard, elasticity, heartbeat timeout, checkpointing), embedded so its
	// fields read as they always did (cfg.Compression, cfg.Elastic, ...).
	// Note for elastic runs: in-process workers have no reconnect loop, so
	// set HeartbeatInterval or a HeartbeatTimeout comfortably above the
	// longest iteration — an evicted honest worker fails the run.
	ps.Options
	// DeltaPull makes workers request version-gated delta pulls: each pull
	// sends the per-shard versions the worker already holds and the server
	// skips shards unchanged since, trimming pull traffic whenever a worker
	// pulls before any new update landed.
	DeltaPull bool
	// HeartbeatInterval is how often each worker proves liveness; 0 sends no
	// heartbeats (a dead connection is still detected through Recv errors).
	HeartbeatInterval time.Duration
	// Adversaries makes listed workers Byzantine: their honest gradients are
	// corrupted per the Adversary before pushing. An adversary whose
	// connection dies mid-run (guard eviction) is recorded as crashed, not
	// as a run failure.
	Adversaries map[int]Adversary
	// CrashAt injects faults for elasticity tests and demos: a worker listed
	// here abruptly drops its connection before pushing the given iteration
	// (0-based) — no Done, no Leave, exactly like a process kill. The run is
	// expected to complete without it; a crashed worker is not an error.
	CrashAt map[int]int
	// Seed makes model initialization and batching deterministic.
	Seed int64
	// Metrics, when non-nil, is the observability registry the run's server
	// (and transport) instrumentation lands on — the same registry an admin
	// endpoint scrapes. Nil gives the server a private registry; either way
	// Result.Metrics carries the end-of-run snapshot.
	Metrics *obs.Registry
	// Trace configures sampled push-lifecycle tracing on the server (zero =
	// default sampling; Every < 0 disables).
	Trace obs.TraceConfig
	// relayHook, when set, receives the aggregation tier's relays right
	// after the topology stands up — a test seam for reading RelayStats and
	// injecting relay faults. Only meaningful with Fanout >= 2.
	relayHook func([]*ps.Relay)
}

// Result collects the measurements of one run.
type Result struct {
	// Paradigm is the human-readable policy description.
	Paradigm string
	// Accuracy is test accuracy against elapsed wall-clock time.
	Accuracy *metrics.TimeSeries
	// Loss is the most recent training loss per evaluation point.
	Loss *metrics.TimeSeries
	// Staleness is the distribution of applied-update staleness.
	Staleness *metrics.Histogram
	// Waits is the per-worker waiting time recorded by the server.
	Waits *metrics.WaitTracker
	// Updates is the number of gradient updates applied.
	Updates int
	// Dropped is the number of pushed updates the policy discarded — the
	// backup-worker baseline's defining metric (straggler gradients thrown
	// away).
	Dropped int
	// Crashed lists the workers that dropped out mid-run (fault injection
	// via Config.CrashAt, a guard-evicted adversary, or a worker goroutine
	// dying on a closed server).
	Crashed []int
	// Guard is the anomaly guard's accounting (zero unless Options.Guard
	// was enabled): per-worker flag counts, evictions, rejected pushes.
	Guard ps.GuardStats
	// Duration is the total wall-clock training time.
	Duration time.Duration
	// FinalAccuracy is the test accuracy of the final model.
	FinalAccuracy float64
	// PushedBytes and PulledBytes are the approximate payload bytes all
	// workers sent and received — the knob gradient compression turns.
	PushedBytes int64
	PulledBytes int64
	// Metrics is the end-of-run snapshot of the server's observability
	// registry (counters and gauges by series name, histograms as _sum and
	// _count; see docs/METRICS.md) — the same numbers a /metrics scrape
	// would have reported at that instant.
	Metrics map[string]float64
	// Traces is the run's sampled push-lifecycle traces, oldest first (nil
	// when tracing was disabled).
	Traces []obs.PushTrace
}

// TimeToAccuracy returns the elapsed time at which the run first reached the
// target test accuracy (Table I of the paper) and whether it ever did.
func (r *Result) TimeToAccuracy(target float64) (time.Duration, bool) {
	return r.Accuracy.TimeToReach(target)
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.Model.Build == nil {
		return fmt.Errorf("trainer: config needs a model spec")
	}
	if c.Train == nil || c.Train.Len() == 0 {
		return fmt.Errorf("trainer: config needs a non-empty training set")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("trainer: worker count must be positive, got %d", c.Workers)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("trainer: batch size must be positive, got %d", c.BatchSize)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("trainer: epoch count must be positive, got %d", c.Epochs)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("trainer: learning rate must be positive, got %g", c.LearningRate)
	}
	return nil
}

// Run executes one distributed training run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Policy.Workers = cfg.Workers
	policy, err := core.NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	// Build the initial model; every worker replica starts from the same
	// weights because they are all pulled from the store before training.
	initModel := cfg.Model.Build(rand.New(rand.NewSource(cfg.Seed)))
	srv, err := buildServing(cfg, policy, initModel.Params())
	if err != nil {
		return nil, err
	}
	defer srv.stop()
	if cfg.relayHook != nil {
		cfg.relayHook(srv.relays)
	}

	test := cfg.Test
	if test == nil {
		test = cfg.Train
	}
	// Every worker runs the same number of iterations so that no paradigm
	// deadlocks waiting for a worker that has already finished.
	shardSize := cfg.Train.Len() / cfg.Workers
	if shardSize == 0 {
		shardSize = cfg.Train.Len()
	}
	itersPerEpoch := (shardSize + cfg.BatchSize - 1) / cfg.BatchSize
	totalIters := itersPerEpoch * cfg.Epochs

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = totalIters * cfg.Workers / 30
		if evalEvery == 0 {
			evalEvery = 1
		}
	}

	start := time.Now()
	var lossMu sync.Mutex
	lastLoss := 0.0
	var pushedBytes, pulledBytes int64

	var wg sync.WaitGroup
	var crashedMu sync.Mutex
	var crashed []int
	errCh := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			report, err := runWorker(cfg, srv.connect, workerID, totalIters)
			if err != nil {
				errCh <- fmt.Errorf("worker %d: %w", workerID, err)
				return
			}
			if report.crashed {
				crashedMu.Lock()
				crashed = append(crashed, workerID)
				crashedMu.Unlock()
			}
			lossMu.Lock()
			lastLoss = report.loss
			pushedBytes += report.pushed
			pulledBytes += report.pulled
			lossMu.Unlock()
		}(w)
	}

	// Evaluation loop: snapshot the store whenever enough new updates were
	// applied, evaluate on the test set, and apply the learning-rate schedule.
	result := &Result{
		Paradigm: cfg.Policy.Describe(),
		Accuracy: metrics.NewTimeSeries(cfg.Policy.Describe()),
		Loss:     metrics.NewTimeSeries(cfg.Policy.Describe() + "/loss"),
	}
	evalModel := cfg.Model.Build(rand.New(rand.NewSource(cfg.Seed)))
	testX, testLabels := test.All()

	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	lastEval := int64(0)
	evaluate := func() {
		params, version := srv.snapshot()
		if err := evalModel.SetParams(params); err != nil {
			return
		}
		acc := evalModel.Accuracy(testX, testLabels)
		elapsed := time.Since(start)
		result.Accuracy.Add(elapsed, acc)
		lossMu.Lock()
		result.Loss.Add(elapsed, lastLoss)
		lossMu.Unlock()
		lastEval = version
		if cfg.Schedule != nil {
			totalUpdates := int64(totalIters) * int64(cfg.Workers)
			epoch := int(version * int64(cfg.Epochs) / max64(totalUpdates, 1))
			srv.setLR(cfg.Schedule.At(epoch))
		}
	}

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
poll:
	for {
		select {
		case err := <-errCh:
			srv.stop()
			return nil, err
		case <-workersDone:
			break poll
		case <-ticker.C:
			if srv.version()-lastEval >= int64(evalEvery) {
				evaluate()
			}
		}
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	evaluate()

	result.Duration = time.Since(start)
	result.Staleness = srv.policyServer.Staleness()
	result.Waits = srv.policyServer.Waits()
	result.Updates = srv.policyServer.Pushes()
	result.Dropped = srv.policyServer.Dropped()
	result.Guard = srv.policyServer.GuardStats()
	result.Metrics = srv.policyServer.Registry().Snapshot()
	result.Traces = srv.policyServer.Traces()
	crashedMu.Lock()
	result.Crashed = crashed
	crashedMu.Unlock()
	lossMu.Lock()
	result.PushedBytes = pushedBytes
	result.PulledBytes = pulledBytes
	lossMu.Unlock()
	if last, ok := result.Accuracy.Last(); ok {
		result.FinalAccuracy = last.Value
	}
	return result, nil
}

// workerReport is what one worker goroutine hands back to Run.
type workerReport struct {
	loss    float64
	pushed  int64
	pulled  int64
	crashed bool
}

// runWorker executes the worker side of Algorithm 1 for one worker. connect
// hides the topology: it hands back a registered client against the single
// server or the whole server group.
func runWorker(cfg Config, connect func(workerID int) (trainClient, error), workerID, totalIters int) (workerReport, error) {
	var report workerReport
	client, err := connect(workerID)
	if err != nil {
		return report, err
	}
	defer client.Close()
	if cfg.HeartbeatInterval > 0 {
		stop := client.StartHeartbeats(cfg.HeartbeatInterval)
		defer stop()
	}

	shard, err := data.PartitionDataset(cfg.Train, workerID, cfg.Workers)
	if err != nil {
		return report, err
	}
	if shard.Len() == 0 {
		shard = cfg.Train
	}
	iter, err := data.NewBatchIterator(shard, cfg.BatchSize, cfg.Seed+int64(workerID)*1009)
	if err != nil {
		return report, err
	}
	replica := cfg.Model.Build(rand.New(rand.NewSource(cfg.Seed)))
	rng := rand.New(rand.NewSource(cfg.Seed + int64(workerID)*7919))

	var delay time.Duration
	if workerID < len(cfg.WorkerDelay) {
		delay = cfg.WorkerDelay[workerID]
	}

	crashAt, crashes := cfg.CrashAt[workerID]
	adv := cfg.Adversaries[workerID]

	for it := 0; it < totalIters; it++ {
		if crashes && it == crashAt {
			// Injected fault: drop the connection abruptly — no Done, no
			// Leave — exactly like a killed process. The server must notice
			// through the dead connection and release this worker's peers.
			report.crashed = true
			return report, nil
		}
		// Step 1 of the iteration: pull the global weights and adopt them.
		params, version, err := client.Pull()
		if err != nil {
			return adversaryExit(adv, report, err)
		}
		if err := replica.SetParams(params); err != nil {
			return report, err
		}
		// Step 2: compute gradients on the next mini-batch.
		x, labels := iter.Next()
		if cfg.Augment != nil {
			cfg.Augment.Apply(rng, x)
		}
		replica.ZeroGrads()
		loss, _ := replica.Loss(x, labels, true)
		replica.Backward()
		report.loss = loss
		if delay > 0 {
			time.Sleep(delay)
		}
		// Step 3: push the gradients and wait for the server's OK. A listed
		// adversary corrupts the push first (and may lie about its base
		// version); the tensors are this worker's own clone, so corruption
		// never leaks into the replica.
		grads := replica.CloneGrads()
		claimed := version
		if adv.active() {
			claimed = adv.corrupt(grads, version)
		}
		if err := client.PushAndWait(grads, claimed, it); err != nil {
			return adversaryExit(adv, report, err)
		}
	}
	if err := client.Done(); err != nil {
		return adversaryExit(adv, report, err)
	}
	report.pushed, report.pulled = client.Traffic()
	return report, nil
}

// adversaryExit classifies a worker's client error: for a listed adversary a
// dying connection is the expected fate — the guard evicts it and closes the
// socket — so it is recorded as a crash, like CrashAt fault injection, and
// the run continues without it. Honest workers keep failing the run loudly.
func adversaryExit(adv Adversary, report workerReport, err error) (workerReport, error) {
	if adv.active() {
		report.crashed = true
		return report, nil
	}
	return report, err
}

// max64 returns the larger of two int64 values.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
