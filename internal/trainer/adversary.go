package trainer

import "dssp/internal/tensor"

// Adversary describes one Byzantine worker's behaviour. The worker computes
// honest gradients from its data shard and then corrupts what it reports —
// the standard model-poisoning threat model: the attacker controls its own
// process, not the server or the network. The zero value is honest.
type Adversary struct {
	// GradScale multiplies every pushed gradient (applied after SignFlip);
	// 0 means 1. Gradient-scaling poisoning uses large factors, e.g. 10; a
	// negative factor combines scaling with ascent.
	GradScale float64
	// SignFlip negates every pushed gradient, turning the worker's descent
	// contribution into ascent.
	SignFlip bool
	// LieVersion claims an impossibly fresh base version on every push — a
	// lying clock that defeats staleness accounting (its updates look
	// fresher than any honest worker's) unless the server's guard rejects
	// the impossible claim.
	LieVersion bool
}

// lieAhead is how far beyond the truth a lying clock claims its base
// version: far enough that no real version catches up mid-run.
const lieAhead = 1 << 20

// active reports whether the adversary corrupts anything.
func (a Adversary) active() bool {
	return (a.GradScale != 0 && a.GradScale != 1) || a.SignFlip || a.LieVersion
}

// corrupt rewrites one push in place — the gradients are the worker's own
// clone — returning the base version the adversary claims.
func (a Adversary) corrupt(grads []*tensor.Tensor, version int64) int64 {
	scale := a.GradScale
	if scale == 0 {
		scale = 1
	}
	if a.SignFlip {
		scale = -scale
	}
	if scale != 1 {
		f := float32(scale)
		for _, g := range grads {
			d := g.Data()
			for i := range d {
				d[i] *= f
			}
		}
	}
	if a.LieVersion {
		return version + lieAhead
	}
	return version
}
