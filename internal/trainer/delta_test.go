package trainer

import (
	"testing"

	"dssp/internal/core"
)

// TestRunWithDeltaPullConverges trains under SSP and BSP with version-gated
// delta pulls on and checks the runs behave exactly like full-pull runs:
// same update count, same convergence band, and no more pulled bytes than
// the full-pull configuration (strictly fewer whenever any pull caught an
// unchanged shard).
func TestRunWithDeltaPullConverges(t *testing.T) {
	for _, paradigm := range []core.PolicyConfig{
		{Paradigm: core.ParadigmSSP, Staleness: 2},
		{Paradigm: core.ParadigmBSP},
	} {
		cfg := smallConfig(paradigm)
		full, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v full pulls: %v", paradigm.Paradigm, err)
		}
		cfg.DeltaPull = true
		delta, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v delta pulls: %v", paradigm.Paradigm, err)
		}
		if delta.FinalAccuracy < 0.6 {
			t.Fatalf("%v with delta pulls converged to %v, want >= 0.6", paradigm.Paradigm, delta.FinalAccuracy)
		}
		if delta.Updates != full.Updates {
			t.Fatalf("%v: delta run applied %d updates, full run %d", paradigm.Paradigm, delta.Updates, full.Updates)
		}
		if delta.PulledBytes > full.PulledBytes {
			t.Fatalf("%v: delta pulls moved more bytes (%d) than full pulls (%d)",
				paradigm.Paradigm, delta.PulledBytes, full.PulledBytes)
		}
		t.Logf("%v: pulled %d bytes with delta pulls vs %d full (%.2fx)", paradigm.Paradigm,
			delta.PulledBytes, full.PulledBytes, float64(full.PulledBytes)/float64(max64(delta.PulledBytes, 1)))
	}
}
