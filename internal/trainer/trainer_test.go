package trainer

import (
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/nn"
	"dssp/internal/optimizer"
)

// smallConfig returns a configuration that trains the tiny MLP on an easy
// synthetic dataset in well under a second. Train and test shards come from
// the same generated dataset so that they share class prototypes.
func smallConfig(paradigm core.PolicyConfig) Config {
	full := data.MustSynthetic(data.SyntheticConfig{
		Examples: 144, Classes: 3, Channels: 1, Size: 12, Noise: 0.4, Flat: true, Seed: 11,
	})
	trainIdx := make([]int, 96)
	testIdx := make([]int, 48)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = 96 + i
	}
	train := full.Subset(trainIdx)
	test := full.Subset(testIdx)
	return Config{
		Model:        nn.SpecSmallMLP(12, 16, 3),
		Train:        train,
		Test:         test,
		Workers:      3,
		BatchSize:    8,
		Epochs:       6,
		Policy:       paradigm,
		LearningRate: 0.1,
		Seed:         5,
	}
}

func TestConfigValidation(t *testing.T) {
	valid := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmASP})
	broken := []func(*Config){
		func(c *Config) { c.Model = nn.ModelSpec{} },
		func(c *Config) { c.Train = nil },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.LearningRate = 0 },
	}
	for i, mutate := range broken {
		cfg := valid
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRunTrainsUnderEveryParadigm(t *testing.T) {
	paradigms := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmASP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	}
	for _, p := range paradigms {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			res, err := Run(smallConfig(p))
			if err != nil {
				t.Fatal(err)
			}
			if res.Updates == 0 {
				t.Fatal("no updates were applied")
			}
			if res.Accuracy.Len() == 0 {
				t.Fatal("no accuracy samples recorded")
			}
			if res.FinalAccuracy < 0.6 {
				t.Fatalf("final accuracy %v, want >= 0.6 on the easy synthetic task", res.FinalAccuracy)
			}
			if res.Duration <= 0 {
				t.Fatal("duration not recorded")
			}
			if res.Paradigm == "" {
				t.Fatal("paradigm label missing")
			}
		})
	}
}

func TestRunAppliesExpectedNumberOfUpdates(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmASP})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 3 workers owns 32 examples, so 4 iterations per epoch over
	// 6 epochs = 24 pushes per worker, 72 in total.
	if res.Updates != 72 {
		t.Fatalf("updates = %d, want 72", res.Updates)
	}
}

func TestRunBSPKeepsStalenessAtZero(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyConfig{Paradigm: core.ParadigmBSP}))
	if err != nil {
		t.Fatal(err)
	}
	// Under BSP every worker computes against the weights produced by the
	// previous barrier, so staleness never exceeds the number of workers - 1
	// (updates applied within the same barrier round).
	if res.Staleness.Max() > 2 {
		t.Fatalf("BSP max staleness = %d, want <= workers-1", res.Staleness.Max())
	}
}

func TestRunSSPRespectsStalenessBound(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 2})
	cfg.WorkerDelay = []time.Duration{0, 0, 3 * time.Millisecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the bound s and P workers, an applied update can be at most
	// (s+1)*P updates stale (every other worker may contribute updates while
	// the pushing worker is s iterations behind).
	limit := (2 + 1) * cfg.Workers
	if res.Staleness.Max() > limit {
		t.Fatalf("SSP max staleness %d exceeds limit %d", res.Staleness.Max(), limit)
	}
}

func TestRunHeterogeneousDelayCreatesWaitsUnderBSP(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmBSP})
	cfg.Epochs = 2
	cfg.WorkerDelay = []time.Duration{0, 0, 10 * time.Millisecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two fast workers must accumulate waiting time at the barrier while
	// the slow worker computes.
	if res.Waits.Total(0) == 0 && res.Waits.Total(1) == 0 {
		t.Fatal("expected barrier waiting time for fast workers under BSP")
	}
}

func TestRunWithScheduleAndAugmentation(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 3})
	cfg.Schedule = optimizer.NewStepSchedule(0.1, 0.1, 4)
	cfg.Augment = data.GaussianNoise{StdDev: 0.05}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("accuracy %v with schedule and augmentation", res.FinalAccuracy)
	}
}

func TestTimeToAccuracyReflectsSeries(t *testing.T) {
	res, err := Run(smallConfig(core.PolicyConfig{Paradigm: core.ParadigmASP}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.TimeToAccuracy(0.5); !ok {
		t.Fatal("expected the run to reach 0.5 accuracy")
	}
	if _, ok := res.TimeToAccuracy(2.0); ok {
		t.Fatal("accuracy above 1.0 cannot be reached")
	}
}

func TestRunSmallCNNEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN end-to-end training skipped in -short mode")
	}
	train := data.MustSynthetic(data.SyntheticConfig{
		Examples: 64, Classes: 4, Channels: 3, Size: 8, Noise: 0.4, Seed: 21,
	})
	cfg := Config{
		Model:        nn.SpecSmallCNN(8, 4),
		Train:        train,
		Workers:      2,
		BatchSize:    8,
		Epochs:       4,
		Policy:       core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
		LearningRate: 0.05,
		Momentum:     0.9,
		Seed:         3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("CNN accuracy %v, want >= 0.5", res.FinalAccuracy)
	}
}
