package trainer

import (
	"testing"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/nn"
	"dssp/internal/ps"
)

// robustConfig is smallConfig with four workers, so one Byzantine worker is
// a 25% minority — inside trimmed-mean's breakdown point at the default trim
// of 0.25 per side.
func robustConfig(paradigm core.PolicyConfig) Config {
	full := data.MustSynthetic(data.SyntheticConfig{
		Examples: 176, Classes: 3, Channels: 1, Size: 12, Noise: 0.4, Flat: true, Seed: 11,
	})
	trainIdx := make([]int, 128)
	testIdx := make([]int, 48)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = 128 + i
	}
	return Config{
		Model:        nn.SpecSmallMLP(12, 16, 3),
		Train:        full.Subset(trainIdx),
		Test:         full.Subset(testIdx),
		Workers:      4,
		BatchSize:    8,
		Epochs:       6,
		Policy:       paradigm,
		LearningRate: 0.1,
		Seed:         5,
	}
}

// TestRobustAggregationUnderAttack is the paper-style A/B that the whole
// aggregator seam exists for: with one of four workers pushing scaled
// gradient ascent, plain summation destroys the model while the trimmed
// mean stays within tolerance of the clean baseline — under barrier,
// bounded-staleness, and dynamic-staleness paradigms alike.
func TestRobustAggregationUnderAttack(t *testing.T) {
	paradigms := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	}
	attacker := map[int]Adversary{2: {GradScale: -10}}
	for _, p := range paradigms {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			clean, err := Run(robustConfig(p))
			if err != nil {
				t.Fatal(err)
			}
			if clean.FinalAccuracy < 0.6 {
				t.Fatalf("clean baseline accuracy %v, want >= 0.6", clean.FinalAccuracy)
			}

			sumCfg := robustConfig(p)
			sumCfg.Adversaries = attacker
			poisoned, err := Run(sumCfg)
			if err != nil {
				t.Fatal(err)
			}
			if poisoned.FinalAccuracy > clean.FinalAccuracy-0.2 {
				t.Fatalf("plain sum under attack reached %v (clean %v); attack model is too weak to test against",
					poisoned.FinalAccuracy, clean.FinalAccuracy)
			}

			robustCfg := robustConfig(p)
			robustCfg.Adversaries = attacker
			robustCfg.Aggregator = ps.AggregatorConfig{Kind: ps.AggTrimmedMean}
			defended, err := Run(robustCfg)
			if err != nil {
				t.Fatal(err)
			}
			if defended.FinalAccuracy < clean.FinalAccuracy-0.15 {
				t.Fatalf("trimmed mean under attack reached %v, want within 0.15 of clean %v",
					defended.FinalAccuracy, clean.FinalAccuracy)
			}
		})
	}
}

// TestGuardEvictsLyingClock: a worker claiming impossible base versions must
// be detected and evicted by the guard, and surface in both the guard stats
// and the crashed list.
func TestGuardEvictsLyingClock(t *testing.T) {
	cfg := robustConfig(core.PolicyConfig{Paradigm: core.ParadigmASP})
	cfg.Adversaries = map[int]Adversary{3: {LieVersion: true}}
	cfg.Guard = ps.GuardConfig{Enabled: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	foundEvicted := false
	for _, w := range res.Guard.Evicted {
		if w == 3 {
			foundEvicted = true
		}
	}
	if !foundEvicted {
		t.Fatalf("guard evicted %v, want worker 3", res.Guard.Evicted)
	}
	if res.Guard.Flags[3] < ps.DefaultMaxStrikes {
		t.Fatalf("worker 3 flags = %d, want >= %d", res.Guard.Flags[3], ps.DefaultMaxStrikes)
	}
	foundCrashed := false
	for _, w := range res.Crashed {
		if w == 3 {
			foundCrashed = true
		}
	}
	if !foundCrashed {
		t.Fatalf("crashed %v, want worker 3 after eviction", res.Crashed)
	}
	if res.Guard.DroppedPushes == 0 {
		t.Fatal("guard reported no dropped pushes")
	}
	// The honest majority still converges.
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("honest workers reached %v after eviction, want >= 0.6", res.FinalAccuracy)
	}
}

// TestGuardIgnoresHonestRun: with no adversary the guard must stay silent —
// the false-positive side of the detection table.
func TestGuardIgnoresHonestRun(t *testing.T) {
	cfg := robustConfig(core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3})
	cfg.Guard = ps.GuardConfig{Enabled: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Guard.Evicted) != 0 {
		t.Fatalf("guard evicted %v on an honest run", res.Guard.Evicted)
	}
	for w, f := range res.Guard.Flags {
		if f != 0 {
			t.Fatalf("honest worker %d flagged %d times", w, f)
		}
	}
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("accuracy %v with guard enabled, want >= 0.6", res.FinalAccuracy)
	}
}
