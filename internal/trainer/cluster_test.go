package trainer

import (
	"testing"

	"dssp/internal/core"
	"dssp/internal/ps"
)

// TestClusterModeMatchesSingleServer pins the in-process server-group
// topology against the classic single server: a serial schedule (one
// worker, so every push applies alone) must produce the identical final
// accuracy, and the same number of applied updates, whether the store lives
// in one server or is range-partitioned across three.
func TestClusterModeMatchesSingleServer(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4})
	cfg.Workers = 1
	cfg.Momentum = 0.9

	single, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ClusterServers = 3
	group, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.Updates != group.Updates {
		t.Fatalf("updates: single %d, group %d", single.Updates, group.Updates)
	}
	if single.FinalAccuracy != group.FinalAccuracy {
		t.Fatalf("final accuracy: single %v, group %v (serial schedule must be bit-identical)",
			single.FinalAccuracy, group.FinalAccuracy)
	}
}

// TestClusterModeTrainsUnderEveryParadigm runs the group topology with
// concurrent workers (coalescing, interleaving — no bit-identity claim) and
// asserts it still converges under each paradigm.
func TestClusterModeTrainsUnderEveryParadigm(t *testing.T) {
	paradigms := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	}
	for _, p := range paradigms {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			cfg := smallConfig(p)
			cfg.ClusterServers = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Updates == 0 {
				t.Fatal("no updates were applied")
			}
			if res.FinalAccuracy < 0.7 {
				t.Fatalf("final accuracy %.4f under %s never converged", res.FinalAccuracy, p.Describe())
			}
			if len(res.Crashed) != 0 {
				t.Fatalf("workers crashed: %v", res.Crashed)
			}
		})
	}
}

// TestClusterModeRejectsBadLayout pins the validation surface: more servers
// than tensors cannot each own a shard.
func TestClusterModeRejectsBadLayout(t *testing.T) {
	cfg := smallConfig(core.PolicyConfig{Paradigm: core.ParadigmASP})
	cfg.ClusterServers = 100
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected a layout error for 100 data servers")
	}
}

// TestGroupLayoutDefaultsAreDeterministic guards the property the whole
// cluster design rests on: every participant derives the identical layout
// from (sizes, shards, servers) with no machine-dependent inputs.
func TestGroupLayoutDefaultsAreDeterministic(t *testing.T) {
	sizes := []int{100, 50, 200, 25, 75, 150}
	a, na, err := ps.GroupLayout(sizes, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, nb, err := ps.GroupLayout(sizes, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("normalized shard counts differ: %d vs %d", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
