package nn

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with square kernels, constant
// stride and zero padding, implemented with im2col + matrix multiplication.
// Convolutional layers carry few parameters but dominate compute time, the
// other half of the paper's compute/communication-ratio argument (§V-C).
type Conv2D struct {
	inC, outC      int
	kernel, stride int
	pad            int

	weight *tensor.Tensor // (outC, inC*kernel*kernel)
	bias   *tensor.Tensor // (outC)
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
	lastCols  []*tensor.Tensor // one im2col matrix per batch item
}

// NewConv2D returns a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *Conv2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid conv geometry kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	c := &Conv2D{
		inC: inC, outC: outC, kernel: kernel, stride: stride, pad: pad,
		weight: tensor.New(outC, inC*kernel*kernel),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC*kernel*kernel),
		gradB:  tensor.New(outC),
	}
	c.weight.HeInit(rng, inC*kernel*kernel)
	return c
}

// outSize returns the spatial output size for an input of the given size.
func (c *Conv2D) outSize(in int) int {
	return (in+2*c.pad-c.kernel)/c.stride + 1
}

// im2col builds the (inC*k*k, outH*outW) patch matrix for one image of shape
// (inC, h, w) stored in img (flattened).
func (c *Conv2D) im2col(img []float32, h, w int) *tensor.Tensor {
	outH, outW := c.outSize(h), c.outSize(w)
	k := c.kernel
	col := tensor.New(c.inC*k*k, outH*outW)
	data := col.Data()
	for ch := 0; ch < c.inC; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowIdx := (ch*k+ky)*k + kx
				rowBase := rowIdx * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy := oy*c.stride + ky - c.pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*c.stride + kx - c.pad
						if ix < 0 || ix >= w {
							continue
						}
						data[rowBase+oy*outW+ox] = img[chBase+iy*w+ix]
					}
				}
			}
		}
	}
	return col
}

// col2im scatters the gradient of a patch matrix back onto an image gradient
// of shape (inC, h, w).
func (c *Conv2D) col2im(col *tensor.Tensor, h, w int, dst []float32) {
	outH, outW := c.outSize(h), c.outSize(w)
	k := c.kernel
	data := col.Data()
	for ch := 0; ch < c.inC; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowIdx := (ch*k+ky)*k + kx
				rowBase := rowIdx * outH * outW
				for oy := 0; oy < outH; oy++ {
					iy := oy*c.stride + ky - c.pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*c.stride + kx - c.pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[chBase+iy*w+ix] += data[rowBase+oy*outW+ox]
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s got input shape %v, want (batch,%d,h,w)", c.Name(), x.Shape(), c.inC))
	}
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.outSize(h), c.outSize(w)
	out := tensor.New(batch, c.outC, outH, outW)

	if train {
		c.lastInput = x
		c.lastCols = make([]*tensor.Tensor, batch)
	}
	xData := x.Data()
	outData := out.Data()
	bias := c.bias.Data()
	imgSize := c.inC * h * w
	outImgSize := c.outC * outH * outW
	for b := 0; b < batch; b++ {
		col := c.im2col(xData[b*imgSize:(b+1)*imgSize], h, w)
		if train {
			c.lastCols[b] = col
		}
		prod := tensor.MatMul(c.weight, col) // (outC, outH*outW)
		pd := prod.Data()
		dst := outData[b*outImgSize : (b+1)*outImgSize]
		plane := outH * outW
		for oc := 0; oc < c.outC; oc++ {
			bval := bias[oc]
			row := pd[oc*plane : (oc+1)*plane]
			drow := dst[oc*plane : (oc+1)*plane]
			for i := range row {
				drow[i] = row[i] + bval
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastInput == nil {
		panic("nn: Conv2D.Backward called before Forward(train=true)")
	}
	batch, h, w := c.lastInput.Dim(0), c.lastInput.Dim(2), c.lastInput.Dim(3)
	outH, outW := c.outSize(h), c.outSize(w)
	plane := outH * outW
	dx := tensor.New(batch, c.inC, h, w)
	dxData := dx.Data()
	gradData := grad.Data()
	gb := c.gradB.Data()
	imgSize := c.inC * h * w
	outImgSize := c.outC * plane
	// dcol is overwritten per batch item by MatMulTransAInto: one scratch
	// matrix for the whole backward pass instead of one allocation per image.
	dcol := tensor.New(c.inC*c.kernel*c.kernel, plane)
	for b := 0; b < batch; b++ {
		// The gradient slice is only read, so alias it instead of copying.
		gradMat := tensor.FromSliceOwned(gradData[b*outImgSize:(b+1)*outImgSize], c.outC, plane)
		// dW += grad · colᵀ, accumulated in place.
		tensor.MatMulTransBAcc(c.gradW, gradMat, c.lastCols[b])
		// db += per-channel sums
		gm := gradMat.Data()
		for oc := 0; oc < c.outC; oc++ {
			var s float32
			for _, v := range gm[oc*plane : (oc+1)*plane] {
				s += v
			}
			gb[oc] += s
		}
		// dcol = Wᵀ · grad, then scatter back to the input gradient.
		tensor.MatMulTransAInto(dcol, c.weight, gradMat)
		c.col2im(dcol, h, w, dxData[b*imgSize:(b+1)*imgSize])
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%d,%d->%d,stride=%d,pad=%d)", c.kernel, c.kernel, c.inC, c.outC, c.stride, c.pad)
}
