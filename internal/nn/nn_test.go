package nn

import (
	"math"
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	// Two rows: the first puts all mass on the correct class (loss ~0), the
	// second is uniform over 4 classes (loss ln 4).
	logits := tensor.FromSlice([]float32{
		20, 0, 0, 0,
		0, 0, 0, 0,
	}, 2, 4)
	got := loss.Forward(logits, []int{0, 1})
	want := (0 + math.Log(4)) / 2
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("loss = %v, want %v", got, want)
	}
	grad := loss.Backward()
	if grad.Dim(0) != 2 || grad.Dim(1) != 4 {
		t.Fatalf("grad shape %v", grad.Shape())
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	gd := grad.Data()
	for b := 0; b < 2; b++ {
		var s float64
		for c := 0; c < 4; c++ {
			s += float64(gd[b*4+c])
		}
		if math.Abs(s) > 1e-5 {
			t.Errorf("grad row %d sums to %v, want 0", b, s)
		}
	}
}

func TestSoftmaxCrossEntropyPanicsOnBadLabels(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	loss.Forward(tensor.New(1, 3), []int{7})
}

func TestNetworkPredictAndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(rng, NewDense(rng, 4, 3))
	// Force the weights so that class = argmax of the first 3 features.
	w := net.Params()[0]
	w.Zero()
	for i := 0; i < 3; i++ {
		w.Set(5, i, i)
	}
	x := tensor.FromSlice([]float32{
		1, 0, 0, 9,
		0, 1, 0, 9,
		0, 0, 1, 9,
	}, 3, 4)
	preds := net.Predict(x)
	want := []int{0, 1, 2}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("pred[%d] = %d, want %d", i, preds[i], want[i])
		}
	}
	if acc := net.Accuracy(x, want); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if acc := net.Accuracy(x, []int{2, 1, 0}); math.Abs(acc-1.0/3.0) > 1e-9 {
		t.Errorf("accuracy = %v, want 1/3", acc)
	}
}

func TestNetworkParamsGradsAlignmentAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(rng,
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewBatchNorm(2),
		NewReLU(),
		NewFlatten(),
		NewDense(rng, 2*4*4, 3),
	)
	params := net.Params()
	grads := net.Grads()
	if len(params) != len(grads) {
		t.Fatalf("%d params vs %d grads", len(params), len(grads))
	}
	for i := range params {
		if !params[i].SameShape(grads[i]) {
			t.Errorf("param %d shape %v != grad shape %v", i, params[i].Shape(), grads[i].Shape())
		}
	}
	x := tensor.New(2, 1, 4, 4).RandNormal(rng, 0, 1)
	net.Loss(x, []int{0, 1}, true)
	net.Backward()
	nonZero := false
	for _, g := range net.Grads() {
		if g.L2Norm() > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("backward produced all-zero gradients")
	}
	net.ZeroGrads()
	for i, g := range net.Grads() {
		if g.L2Norm() != 0 {
			t.Errorf("grad %d not cleared", i)
		}
	}
}

func TestNetworkSetParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := SmallMLP(rng, 6, 8, 3)
	b := SmallMLP(rand.New(rand.NewSource(4)), 6, 8, 3)

	if err := b.SetParams(a.CloneParams()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 6).RandNormal(rng, 0, 1)
	outA := a.Forward(x, false)
	outB := b.Forward(x, false)
	if !outA.ApproxEqual(outB, 1e-6) {
		t.Fatal("networks with identical parameters disagree")
	}

	if err := b.SetParams(a.CloneParams()[:1]); err == nil {
		t.Fatal("expected error for wrong parameter count")
	}
	wrong := a.CloneParams()
	wrong[0] = tensor.New(2, 2)
	if err := b.SetParams(wrong); err == nil {
		t.Fatal("expected error for wrong parameter shape")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.5)
	x := tensor.Full(1, 10, 10)
	eval := d.Forward(x, false)
	if !eval.ApproxEqual(x, 0) {
		t.Fatal("dropout must be identity in evaluation mode")
	}
	train := d.Forward(x, true)
	zeros := 0
	for _, v := range train.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v)-2) > 1e-6 {
			t.Fatalf("kept activation scaled to %v, want 2", v)
		}
	}
	if zeros == 0 || zeros == train.Size() {
		t.Fatalf("dropout dropped %d of %d values, expected a strict subset", zeros, train.Size())
	}
}

func TestDropoutRejectsInvalidRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid dropout rate")
		}
	}()
	NewDropout(rand.New(rand.NewSource(1)), 1.5)
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm(2)
	x := tensor.New(4, 2, 3, 3).RandNormal(rng, 5, 3)
	out := bn.Forward(x, true)
	// With gamma=1, beta=0 the normalized output of each channel should have
	// approximately zero mean and unit variance.
	od := out.Data()
	for c := 0; c < 2; c++ {
		var sum, sq float64
		count := 0
		for b := 0; b < 4; b++ {
			base := (b*2 + c) * 9
			for i := 0; i < 9; i++ {
				v := float64(od[base+i])
				sum += v
				sq += v * v
				count++
			}
		}
		mean := sum / float64(count)
		variance := sq/float64(count) - mean*mean
		if math.Abs(mean) > 1e-3 {
			t.Errorf("channel %d mean = %v, want ~0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d variance = %v, want ~1", c, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm(1)
	// Run enough training batches for the exponentially averaged running
	// statistics (momentum 0.9) to converge to the data distribution.
	for i := 0; i < 60; i++ {
		x := tensor.New(8, 1, 2, 2).RandNormal(rng, 3, 1)
		bn.Forward(x, true)
	}
	// In eval mode an input equal to the running mean should map to ~beta.
	x := tensor.Full(3, 1, 1, 2, 2)
	out := bn.Forward(x, false)
	for _, v := range out.Data() {
		if math.Abs(float64(v)) > 0.3 {
			t.Fatalf("eval output %v, want ~0 for input at the running mean", v)
		}
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2)
	out := p.Forward(x, false)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Errorf("pool[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 2, -3, 4}, 4)
	out := r.Forward(x, true)
	want := []float32{0, 2, 0, 4}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, v, want[i])
		}
	}
	grad := r.Backward(tensor.FromSlice([]float32{10, 10, 10, 10}, 4))
	wantGrad := []float32{0, 10, 0, 10}
	for i, v := range grad.Data() {
		if v != wantGrad[i] {
			t.Errorf("relu grad[%d] = %v, want %v", i, v, wantGrad[i])
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 4).RandNormal(rng, 0, 1)
	out := f.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", out.Shape())
	}
	back := f.Backward(out)
	if !back.ApproxEqual(x, 0) {
		t.Fatal("flatten backward did not restore the original layout")
	}
}

func TestSmallMLPLearnsLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := SmallMLP(rng, 2, 16, 2)
	// Class = whether x+y > 0.
	const n = 128
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x.Set(float32(a), i, 0)
		x.Set(float32(b), i, 1)
		if a+b > 0 {
			labels[i] = 1
		}
	}
	initialLoss, _ := net.Loss(x, labels, true)
	lr := float32(0.5)
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrads()
		net.Loss(x, labels, true)
		net.Backward()
		params, grads := net.Params(), net.Grads()
		for i := range params {
			params[i].AXPY(-lr, grads[i])
		}
	}
	finalLoss, _ := net.Loss(x, labels, false)
	if finalLoss >= initialLoss {
		t.Fatalf("training did not reduce loss: %v -> %v", initialLoss, finalLoss)
	}
	if acc := net.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("training accuracy %v, want >= 0.9", acc)
	}
}
