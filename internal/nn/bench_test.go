package nn

import (
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

// BenchmarkDownsizedAlexNetIteration measures one forward+backward pass of
// the paper's downsized AlexNet on a small batch, the per-iteration compute
// cost a worker pays on a CPU.
func BenchmarkDownsizedAlexNetIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := DownsizedAlexNet(rng, 16, 10)
	x := tensor.New(4, 3, 16, 16).RandNormal(rng, 0, 1)
	labels := []int{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		net.Loss(x, labels, true)
		net.Backward()
	}
}

// BenchmarkResNet8Iteration measures one forward+backward pass of the
// smallest CIFAR-style ResNet.
func BenchmarkResNet8Iteration(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := ResNetCIFAR(rng, 8, 10)
	x := tensor.New(2, 3, 16, 16).RandNormal(rng, 0, 1)
	labels := []int{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		net.Loss(x, labels, true)
		net.Backward()
	}
}

// BenchmarkSmallMLPIteration measures the cheapest model used in the
// end-to-end protocol tests.
func BenchmarkSmallMLPIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := SmallMLP(rng, 32, 64, 8)
	x := tensor.New(16, 32).RandNormal(rng, 0, 1)
	labels := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		net.Loss(x, labels, true)
		net.Backward()
	}
}

// BenchmarkParameterFlattening measures CloneParams+SetParams, the worker's
// cost of installing pulled weights.
func BenchmarkParameterFlattening(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := DownsizedAlexNet(rng, 16, 10)
	params := net.CloneParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.SetParams(params); err != nil {
			b.Fatal(err)
		}
	}
}
