package nn

import (
	"fmt"

	"dssp/internal/tensor"
)

// MaxPool2D is a max pooling layer over NCHW inputs with a square window and
// stride equal to the window size.
type MaxPool2D struct {
	window int

	lastShape []int
	argmax    []int
}

// NewMaxPool2D returns a max pooling layer with the given window size.
func NewMaxPool2D(window int) *MaxPool2D {
	if window <= 0 {
		panic(fmt.Sprintf("nn: invalid pooling window %d", window))
	}
	return &MaxPool2D{window: window}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s got input shape %v, want NCHW", p.Name(), x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h/p.window, w/p.window
	out := tensor.New(batch, ch, outH, outW)
	if train {
		p.lastShape = x.Shape()
		p.argmax = make([]int, out.Size())
	}
	xd := x.Data()
	od := out.Data()
	for b := 0; b < batch; b++ {
		for c := 0; c < ch; c++ {
			planeBase := (b*ch + c) * h * w
			outBase := (b*ch + c) * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := planeBase + (oy*p.window)*w + ox*p.window
					best := xd[bestIdx]
					for dy := 0; dy < p.window; dy++ {
						for dx := 0; dx < p.window; dx++ {
							idx := planeBase + (oy*p.window+dy)*w + (ox*p.window + dx)
							if xd[idx] > best {
								best = xd[idx]
								bestIdx = idx
							}
						}
					}
					oidx := outBase + oy*outW + ox
					od[oidx] = best
					if train {
						p.argmax[oidx] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: MaxPool2D.Backward called before Forward(train=true)")
	}
	dx := tensor.New(p.lastShape...)
	dxd := dx.Data()
	gd := grad.Data()
	for i, src := range p.argmax {
		dxd[src] += gd[i]
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%d)", p.window) }

// GlobalAvgPool averages each channel over its spatial extent, producing a
// (batch, channels) tensor. It is the head used by the CIFAR ResNets.
type GlobalAvgPool struct {
	lastShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool got input shape %v, want NCHW", x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if train {
		p.lastShape = x.Shape()
	}
	out := tensor.New(batch, ch)
	xd := x.Data()
	od := out.Data()
	area := float32(h * w)
	for b := 0; b < batch; b++ {
		for c := 0; c < ch; c++ {
			base := (b*ch + c) * h * w
			var s float32
			for i := 0; i < h*w; i++ {
				s += xd[base+i]
			}
			od[b*ch+c] = s / area
		}
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: GlobalAvgPool.Backward called before Forward(train=true)")
	}
	batch, ch, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	dx := tensor.New(p.lastShape...)
	dxd := dx.Data()
	gd := grad.Data()
	area := float32(h * w)
	for b := 0; b < batch; b++ {
		for c := 0; c < ch; c++ {
			g := gd[b*ch+c] / area
			base := (b*ch + c) * h * w
			for i := 0; i < h*w; i++ {
				dxd[base+i] = g
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return "GlobalAvgPool" }
