package nn

import (
	"fmt"
	"math"

	"dssp/internal/tensor"
)

// SoftmaxCrossEntropy combines the softmax activation and the mean
// cross-entropy loss over integer class labels, the standard objective for
// the image-classification tasks in the paper.
type SoftmaxCrossEntropy struct {
	lastProbs  *tensor.Tensor
	lastLabels []int
}

// NewSoftmaxCrossEntropy returns a fresh loss head.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes the mean cross-entropy of the logits against the labels
// and caches the softmax probabilities for Backward.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: loss expects (batch,classes) logits, got %v", logits.Shape()))
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), batch))
	}
	probs := tensor.New(batch, classes)
	ld := logits.Data()
	pd := probs.Data()
	var total float64
	for b := 0; b < batch; b++ {
		row := ld[b*classes : (b+1)*classes]
		prow := pd[b*classes : (b+1)*classes]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[i] = float32(e)
			sum += e
		}
		label := labels[b]
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, classes))
		}
		for i := range prow {
			prow[i] = float32(float64(prow[i]) / sum)
		}
		p := float64(prow[label])
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	l.lastProbs = probs
	l.lastLabels = append(l.lastLabels[:0], labels...)
	return total / float64(batch)
}

// Backward returns the gradient of the mean loss with respect to the logits:
// (softmax - onehot) / batch.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	if l.lastProbs == nil {
		panic("nn: loss Backward called before Forward")
	}
	batch, classes := l.lastProbs.Dim(0), l.lastProbs.Dim(1)
	grad := l.lastProbs.Clone()
	gd := grad.Data()
	inv := float32(1.0 / float64(batch))
	for b := 0; b < batch; b++ {
		row := gd[b*classes : (b+1)*classes]
		row[l.lastLabels[b]] -= 1
		for i := range row {
			row[i] *= inv
		}
	}
	return grad
}
