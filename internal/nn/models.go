package nn

import (
	"fmt"
	"math/rand"
)

// ModelSpec describes one of the DNN architectures evaluated in the paper,
// along with the metadata the cluster simulator needs: the parameter count
// (communication cost) and whether the model contains fully connected layers
// (the property §V-C uses to explain the opposite throughput trends).
type ModelSpec struct {
	// Name is the architecture label used in figures, e.g. "AlexNet-small".
	Name string
	// InputChannels, InputSize describe the expected input (size × size).
	InputChannels int
	InputSize     int
	// Classes is the number of output classes.
	Classes int
	// HasFullyConnected reports whether the architecture contains fully
	// connected layers other than the final softmax classifier.
	HasFullyConnected bool
	// Build constructs a freshly initialized replica of the model.
	Build func(rng *rand.Rand) *Network
}

// DownsizedAlexNet builds the paper's reduced AlexNet: 3 convolutional
// layers and 2 fully connected layers for inputSize×inputSize RGB images.
// The fully connected layers dominate the parameter count, which is what
// makes this model communication-bound in the paper's analysis.
func DownsizedAlexNet(rng *rand.Rand, inputSize, classes int) *Network {
	if inputSize%8 != 0 {
		panic(fmt.Sprintf("nn: DownsizedAlexNet input size %d must be divisible by 8", inputSize))
	}
	final := inputSize / 8
	return NewNetwork(rng,
		NewConv2D(rng, 3, 32, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(rng, 32, 64, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(rng, 64, 128, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 128*final*final, 256),
		NewReLU(),
		NewDropout(rng, 0.5),
		NewDense(rng, 256, classes),
	)
}

// ResNetCIFAR builds a CIFAR-style residual network of depth 6n+2: an
// initial 3x3 convolution followed by three stages of n residual blocks with
// 16, 32 and 64 channels, global average pooling and a linear classifier.
// Depth 50 corresponds to n=8 and depth 110 to n=18, the two depths used in
// the paper's evaluation.
func ResNetCIFAR(rng *rand.Rand, depth, classes int) *Network {
	if (depth-2)%6 != 0 || depth < 8 {
		panic(fmt.Sprintf("nn: ResNetCIFAR depth %d must be 6n+2 with n>=1", depth))
	}
	n := (depth - 2) / 6
	layers := []Layer{
		NewConv2D(rng, 3, 16, 3, 1, 1),
		NewBatchNorm(16),
		NewReLU(),
	}
	channels := []int{16, 32, 64}
	in := 16
	for stage, ch := range channels {
		for block := 0; block < n; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			layers = append(layers, NewResidualBlock(rng, in, ch, stride))
			in = ch
		}
	}
	layers = append(layers,
		NewGlobalAvgPool(),
		NewDense(rng, 64, classes),
	)
	return NewNetwork(rng, layers...)
}

// SmallCNN builds a tiny convolutional classifier (one conv layer, one dense
// classifier) for sz×sz inputs with the given channel count. It trains in
// seconds on a CPU and is used by integration tests, examples and the
// end-to-end protocol benchmarks.
func SmallCNN(rng *rand.Rand, channels, sz, classes int) *Network {
	if sz%2 != 0 {
		panic(fmt.Sprintf("nn: SmallCNN input size %d must be even", sz))
	}
	half := sz / 2
	return NewNetwork(rng,
		NewConv2D(rng, channels, 8, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 8*half*half, classes),
	)
}

// SmallMLP builds a two-layer perceptron over flat feature vectors, the
// cheapest model that still exercises the full distributed-training path.
func SmallMLP(rng *rand.Rand, features, hidden, classes int) *Network {
	return NewNetwork(rng,
		NewDense(rng, features, hidden),
		NewReLU(),
		NewDense(rng, hidden, classes),
	)
}

// Standard model specifications for the paper's three architectures plus the
// small models used for CPU-scale end-to-end runs.

// SpecDownsizedAlexNet returns the spec for the paper's downsized AlexNet on
// 32x32 inputs (CIFAR-10 by default).
func SpecDownsizedAlexNet(classes int) ModelSpec {
	return ModelSpec{
		Name:              "AlexNet-small",
		InputChannels:     3,
		InputSize:         32,
		Classes:           classes,
		HasFullyConnected: true,
		Build: func(rng *rand.Rand) *Network {
			return DownsizedAlexNet(rng, 32, classes)
		},
	}
}

// SpecResNet returns the spec for a CIFAR ResNet of the given depth.
func SpecResNet(depth, classes int) ModelSpec {
	return ModelSpec{
		Name:              fmt.Sprintf("ResNet-%d", depth),
		InputChannels:     3,
		InputSize:         32,
		Classes:           classes,
		HasFullyConnected: false,
		Build: func(rng *rand.Rand) *Network {
			return ResNetCIFAR(rng, depth, classes)
		},
	}
}

// SpecSmallCNN returns the spec for the tiny CNN used in CPU-scale runs.
func SpecSmallCNN(sz, classes int) ModelSpec {
	return ModelSpec{
		Name:              "SmallCNN",
		InputChannels:     3,
		InputSize:         sz,
		Classes:           classes,
		HasFullyConnected: false,
		Build: func(rng *rand.Rand) *Network {
			return SmallCNN(rng, 3, sz, classes)
		},
	}
}

// SpecSmallMLP returns the spec for the tiny MLP used in CPU-scale runs.
func SpecSmallMLP(features, hidden, classes int) ModelSpec {
	return ModelSpec{
		Name:              "SmallMLP",
		InputChannels:     1,
		InputSize:         features,
		Classes:           classes,
		HasFullyConnected: true,
		Build: func(rng *rand.Rand) *Network {
			return SmallMLP(rng, features, hidden, classes)
		},
	}
}
