package nn

import (
	"fmt"
	"math"

	"dssp/internal/tensor"
)

// BatchNorm is spatial batch normalization over NCHW inputs: each channel is
// normalized by the batch statistics during training and by running
// statistics during evaluation, then scaled and shifted by learned gamma and
// beta. ResNets rely on it for trainability at depth.
type BatchNorm struct {
	channels int
	eps      float64
	momentum float64

	gamma *tensor.Tensor // (channels)
	beta  *tensor.Tensor // (channels)
	gradG *tensor.Tensor
	gradB *tensor.Tensor

	runningMean []float64
	runningVar  []float64

	// Cached values from the last training forward pass.
	lastInput *tensor.Tensor
	lastXHat  []float32
	lastMean  []float64
	lastVar   []float64
}

// NewBatchNorm returns a batch normalization layer over the given number of
// channels.
func NewBatchNorm(channels int) *BatchNorm {
	bn := &BatchNorm{
		channels:    channels,
		eps:         1e-5,
		momentum:    0.9,
		gamma:       tensor.Full(1, channels),
		beta:        tensor.New(channels),
		gradG:       tensor.New(channels),
		gradB:       tensor.New(channels),
		runningMean: make([]float64, channels),
		runningVar:  make([]float64, channels),
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != bn.channels {
		panic(fmt.Sprintf("nn: BatchNorm(%d) got input shape %v", bn.channels, x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	area := h * w
	n := float64(batch * area)
	out := tensor.New(batch, ch, h, w)
	xd := x.Data()
	od := out.Data()
	gamma := bn.gamma.Data()
	beta := bn.beta.Data()

	if train {
		bn.lastInput = x
		bn.lastMean = make([]float64, ch)
		bn.lastVar = make([]float64, ch)
		bn.lastXHat = make([]float32, len(xd))
	}

	for c := 0; c < ch; c++ {
		var mean, variance float64
		if train {
			for b := 0; b < batch; b++ {
				base := (b*ch + c) * area
				for i := 0; i < area; i++ {
					mean += float64(xd[base+i])
				}
			}
			mean /= n
			for b := 0; b < batch; b++ {
				base := (b*ch + c) * area
				for i := 0; i < area; i++ {
					d := float64(xd[base+i]) - mean
					variance += d * d
				}
			}
			variance /= n
			bn.lastMean[c] = mean
			bn.lastVar[c] = variance
			bn.runningMean[c] = bn.momentum*bn.runningMean[c] + (1-bn.momentum)*mean
			bn.runningVar[c] = bn.momentum*bn.runningVar[c] + (1-bn.momentum)*variance
		} else {
			mean = bn.runningMean[c]
			variance = bn.runningVar[c]
		}
		invStd := 1.0 / math.Sqrt(variance+bn.eps)
		g, bta := float64(gamma[c]), float64(beta[c])
		for b := 0; b < batch; b++ {
			base := (b*ch + c) * area
			for i := 0; i < area; i++ {
				xh := (float64(xd[base+i]) - mean) * invStd
				if train {
					bn.lastXHat[base+i] = float32(xh)
				}
				od[base+i] = float32(g*xh + bta)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.lastInput == nil {
		panic("nn: BatchNorm.Backward called before Forward(train=true)")
	}
	batch, ch, h, w := bn.lastInput.Dim(0), bn.lastInput.Dim(1), bn.lastInput.Dim(2), bn.lastInput.Dim(3)
	area := h * w
	n := float64(batch * area)
	dx := tensor.New(batch, ch, h, w)
	dxd := dx.Data()
	gd := grad.Data()
	gamma := bn.gamma.Data()
	gg := bn.gradG.Data()
	gb := bn.gradB.Data()

	for c := 0; c < ch; c++ {
		invStd := 1.0 / math.Sqrt(bn.lastVar[c]+bn.eps)
		var sumDy, sumDyXHat float64
		for b := 0; b < batch; b++ {
			base := (b*ch + c) * area
			for i := 0; i < area; i++ {
				dy := float64(gd[base+i])
				sumDy += dy
				sumDyXHat += dy * float64(bn.lastXHat[base+i])
			}
		}
		gg[c] += float32(sumDyXHat)
		gb[c] += float32(sumDy)
		g := float64(gamma[c])
		for b := 0; b < batch; b++ {
			base := (b*ch + c) * area
			for i := 0; i < area; i++ {
				dy := float64(gd[base+i])
				xh := float64(bn.lastXHat[base+i])
				dxd[base+i] = float32(g * invStd / n * (n*dy - sumDy - xh*sumDyXHat))
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.gamma, bn.beta} }

// Grads implements Layer.
func (bn *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.gradG, bn.gradB} }

// Name implements Layer.
func (bn *BatchNorm) Name() string { return fmt.Sprintf("BatchNorm(%d)", bn.channels) }
