package nn

import (
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

func TestDownsizedAlexNetForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := DownsizedAlexNet(rng, 16, 10) // 16x16 keeps the test fast
	x := tensor.New(2, 3, 16, 16).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("AlexNet output shape %v, want (2,10)", out.Shape())
	}
}

func TestDownsizedAlexNetHasLargeDenseParameterShare(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := DownsizedAlexNet(rng, 32, 10)
	var dense, total int
	for _, l := range net.Layers() {
		size := 0
		for _, p := range l.Params() {
			size += p.Size()
		}
		total += size
		if _, ok := l.(*Dense); ok {
			dense += size
		}
	}
	if total == 0 || dense == 0 {
		t.Fatal("unexpected zero parameter counts")
	}
	// The paper's §V-C argument: fully connected layers dominate the
	// parameter count of AlexNet-style models.
	if frac := float64(dense) / float64(total); frac < 0.5 {
		t.Fatalf("dense layers hold %.2f of parameters, expected > 0.5", frac)
	}
}

func TestResNetDepthValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid ResNet depth")
		}
	}()
	ResNetCIFAR(rng, 21, 10)
}

func TestResNetForwardShapeAndBlockCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := ResNetCIFAR(rng, 8, 100) // depth 8 = n=1: smallest valid ResNet
	blocks := 0
	for _, l := range net.Layers() {
		if _, ok := l.(*ResidualBlock); ok {
			blocks++
		}
	}
	if blocks != 3 {
		t.Fatalf("depth-8 ResNet has %d residual blocks, want 3", blocks)
	}
	x := tensor.New(2, 3, 16, 16).RandNormal(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 100 {
		t.Fatalf("ResNet output shape %v, want (2,100)", out.Shape())
	}
}

func TestResNetParameterCountGrowsWithDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shallow := ResNetCIFAR(rng, 8, 10).ParamCount()
	deeper := ResNetCIFAR(rng, 20, 10).ParamCount()
	if deeper <= shallow {
		t.Fatalf("ResNet-20 has %d params, ResNet-8 has %d; expected growth", deeper, shallow)
	}
}

func TestPaperModelSpecs(t *testing.T) {
	alex := SpecDownsizedAlexNet(10)
	if !alex.HasFullyConnected {
		t.Error("AlexNet spec must report fully connected layers")
	}
	res := SpecResNet(50, 100)
	if res.HasFullyConnected {
		t.Error("ResNet spec must not report fully connected layers")
	}
	if res.Name != "ResNet-50" {
		t.Errorf("unexpected spec name %q", res.Name)
	}
	if alex.Classes != 10 || res.Classes != 100 {
		t.Error("spec classes not propagated")
	}
}

func TestSmallSpecsBuildRunnableNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cnnSpec := SpecSmallCNN(8, 4)
	cnn := cnnSpec.Build(rng)
	x := tensor.New(2, 3, 8, 8).RandNormal(rng, 0, 1)
	if out := cnn.Forward(x, false); out.Dim(1) != 4 {
		t.Fatalf("SmallCNN output shape %v", out.Shape())
	}

	mlpSpec := SpecSmallMLP(10, 8, 3)
	mlp := mlpSpec.Build(rng)
	xf := tensor.New(2, 10).RandNormal(rng, 0, 1)
	if out := mlp.Forward(xf, false); out.Dim(1) != 3 {
		t.Fatalf("SmallMLP output shape %v", out.Shape())
	}
	if !mlpSpec.HasFullyConnected || cnnSpec.HasFullyConnected {
		t.Error("HasFullyConnected flags wrong for small specs")
	}
}

func TestIdenticalSeedsBuildIdenticalReplicas(t *testing.T) {
	// Distributed data parallelism requires every worker to start from the
	// same model replica; seeding the build RNG identically must achieve it.
	spec := SpecSmallCNN(8, 4)
	a := spec.Build(rand.New(rand.NewSource(77)))
	b := spec.Build(rand.New(rand.NewSource(77)))
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("replica parameter counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if !pa[i].ApproxEqual(pb[i], 0) {
			t.Fatalf("parameter %d differs between identically seeded replicas", i)
		}
	}
}
