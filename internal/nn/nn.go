// Package nn is the deep-learning substrate of the DSSP reproduction: a
// small, CPU-only neural-network library with exactly the layers needed to
// express the paper's models (a downsized AlexNet with fully connected
// layers and CIFAR-style ResNets without them), mini-batch forward/backward
// passes, and utilities for exchanging parameters and gradients with the
// parameter server.
//
// Tensors flow through layers in NCHW layout for convolutional stages
// (batch, channels, height, width) and (batch, features) for dense stages.
package nn

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for input x. When train is false the
	// layer must behave deterministically (e.g. dropout disabled, batch norm
	// using running statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor

	// Backward receives the gradient of the loss with respect to the layer
	// output and returns the gradient with respect to the layer input,
	// accumulating parameter gradients internally. It must be called after
	// Forward with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor

	// Params returns the layer's trainable parameter tensors. The returned
	// tensors share storage with the layer, so mutating them updates the
	// layer.
	Params() []*tensor.Tensor

	// Grads returns the accumulated gradients, aligned with Params.
	Grads() []*tensor.Tensor

	// Name returns a short layer description used in error messages.
	Name() string
}

// Network is a sequential composition of layers with a classification loss.
type Network struct {
	layers []Layer
	loss   *SoftmaxCrossEntropy
	rng    *rand.Rand
}

// NewNetwork builds a network from the given layers. The random source is
// used by layers that need randomness at run time (dropout); parameter
// initialization happens when the individual layers are constructed.
func NewNetwork(rng *rand.Rand, layers ...Layer) *Network {
	return &Network{layers: layers, loss: NewSoftmaxCrossEntropy(), rng: rng}
}

// Layers returns the network's layers in order.
func (n *Network) Layers() []Layer {
	out := make([]Layer, len(n.layers))
	copy(out, n.layers)
	return out
}

// Forward runs the network on a batch and returns the logits.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out, train)
	}
	return out
}

// Loss runs a full forward pass, computes the mean cross-entropy loss
// against the integer labels, and returns both the loss and the logits.
func (n *Network) Loss(x *tensor.Tensor, labels []int, train bool) (float64, *tensor.Tensor) {
	logits := n.Forward(x, train)
	loss := n.loss.Forward(logits, labels)
	return loss, logits
}

// Backward propagates the loss gradient through the whole network,
// accumulating parameter gradients in every layer. It must follow a call to
// Loss with train=true.
func (n *Network) Backward() {
	grad := n.loss.Backward()
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
}

// Params returns every trainable parameter tensor of the network, in a
// stable order (layer by layer).
func (n *Network) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns every gradient tensor, aligned with Params.
func (n *Network) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads resets all accumulated gradients to zero.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// ParamCount returns the total number of trainable scalars, the quantity
// that determines the communication cost per iteration in the paper's
// compute/communication-ratio discussion (§V-C).
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// SetParams copies the given tensors into the network's parameters. It is
// how a worker installs the global weights pulled from the parameter server.
func (n *Network) SetParams(params []*tensor.Tensor) error {
	own := n.Params()
	if len(params) != len(own) {
		return fmt.Errorf("nn: SetParams got %d tensors, network has %d", len(params), len(own))
	}
	for i, p := range params {
		if !own[i].SameShape(p) {
			return fmt.Errorf("nn: SetParams tensor %d shape %v does not match %v", i, p.Shape(), own[i].Shape())
		}
		copy(own[i].Data(), p.Data())
	}
	return nil
}

// CloneParams returns deep copies of the network's parameters.
func (n *Network) CloneParams() []*tensor.Tensor {
	params := n.Params()
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = p.Clone()
	}
	return out
}

// CloneGrads returns deep copies of the network's gradients.
func (n *Network) CloneGrads() []*tensor.Tensor {
	grads := n.Grads()
	out := make([]*tensor.Tensor, len(grads))
	for i, g := range grads {
		out[i] = g.Clone()
	}
	return out
}

// Predict returns the argmax class for every row of the logits produced by a
// forward pass in evaluation mode.
func (n *Network) Predict(x *tensor.Tensor) []int {
	logits := n.Forward(x, false)
	batch := logits.Dim(0)
	classes := logits.Dim(1)
	out := make([]int, batch)
	data := logits.Data()
	for b := 0; b < batch; b++ {
		row := data[b*classes : (b+1)*classes]
		best := 0
		for c, v := range row {
			if v > row[best] {
				best = c
			}
		}
		out[b] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose predicted class equals the
// label.
func (n *Network) Accuracy(x *tensor.Tensor, labels []int) float64 {
	preds := n.Predict(x)
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("nn: %d predictions for %d labels", len(preds), len(labels)))
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(correct) / float64(len(labels))
}
