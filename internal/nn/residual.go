package nn

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// ResidualBlock is the basic two-convolution residual block of the CIFAR
// ResNets: conv3x3 → BN → ReLU → conv3x3 → BN, added to a shortcut (identity,
// or a 1x1 projection when the block changes resolution or channel count),
// followed by a ReLU.
type ResidualBlock struct {
	conv1 *Conv2D
	bn1   *BatchNorm
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm
	relu2 *ReLU

	projConv *Conv2D
	projBN   *BatchNorm
}

// NewResidualBlock builds a residual block mapping inC channels to outC
// channels with the given stride on the first convolution.
func NewResidualBlock(rng *rand.Rand, inC, outC, stride int) *ResidualBlock {
	b := &ResidualBlock{
		conv1: NewConv2D(rng, inC, outC, 3, stride, 1),
		bn1:   NewBatchNorm(outC),
		relu1: NewReLU(),
		conv2: NewConv2D(rng, outC, outC, 3, 1, 1),
		bn2:   NewBatchNorm(outC),
		relu2: NewReLU(),
	}
	if inC != outC || stride != 1 {
		b.projConv = NewConv2D(rng, inC, outC, 1, stride, 0)
		b.projBN = NewBatchNorm(outC)
	}
	return b
}

// Forward implements Layer.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.conv1.Forward(x, train)
	main = b.bn1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	main = b.bn2.Forward(main, train)

	var shortcut *tensor.Tensor
	if b.projConv != nil {
		shortcut = b.projConv.Forward(x, train)
		shortcut = b.projBN.Forward(shortcut, train)
	} else {
		shortcut = x.Clone()
	}
	main.Add(shortcut)
	return b.relu2.Forward(main, train)
}

// Backward implements Layer.
func (b *ResidualBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.relu2.Backward(grad)

	// Main path.
	g := b.bn2.Backward(grad)
	g = b.conv2.Backward(g)
	g = b.relu1.Backward(g)
	g = b.bn1.Backward(g)
	dxMain := b.conv1.Backward(g)

	// Shortcut path.
	var dxShort *tensor.Tensor
	if b.projConv != nil {
		s := b.projBN.Backward(grad)
		dxShort = b.projConv.Backward(s)
	} else {
		dxShort = grad.Clone()
	}
	return dxMain.Add(dxShort)
}

// sublayers returns the block's parameterized sub-layers in a stable order.
func (b *ResidualBlock) sublayers() []Layer {
	out := []Layer{b.conv1, b.bn1, b.conv2, b.bn2}
	if b.projConv != nil {
		out = append(out, b.projConv, b.projBN)
	}
	return out
}

// Params implements Layer.
func (b *ResidualBlock) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range b.sublayers() {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads implements Layer.
func (b *ResidualBlock) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range b.sublayers() {
		out = append(out, l.Grads()...)
	}
	return out
}

// Name implements Layer.
func (b *ResidualBlock) Name() string {
	return fmt.Sprintf("ResidualBlock(proj=%v)", b.projConv != nil)
}
