package nn

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b for x of shape
// (batch, in) and W of shape (in, out). Fully connected layers are what give
// the downsized AlexNet its large parameter count and hence its large
// communication cost in the paper's §V-C analysis.
type Dense struct {
	in, out int

	weight *tensor.Tensor // (in, out)
	bias   *tensor.Tensor // (out)
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
}

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		in:     in,
		out:    out,
		weight: tensor.New(in, out),
		bias:   tensor.New(out),
		gradW:  tensor.New(in, out),
		gradB:  tensor.New(out),
	}
	d.weight.XavierInit(rng, in, out)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: %s got input shape %v, want (batch,%d)", d.Name(), x.Shape(), d.in))
	}
	if train {
		d.lastInput = x
	}
	out := tensor.MatMul(x, d.weight)
	batch := out.Dim(0)
	data := out.Data()
	bias := d.bias.Data()
	for b := 0; b < batch; b++ {
		row := data[b*d.out : (b+1)*d.out]
		for j := range row {
			row[j] += bias[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastInput == nil {
		panic("nn: Dense.Backward called before Forward(train=true)")
	}
	// dW += xᵀ · grad, db = column sums of grad, dx = grad · Wᵀ.
	tensor.MatMulTransAAcc(d.gradW, d.lastInput, grad)
	batch := grad.Dim(0)
	gdata := grad.Data()
	gb := d.gradB.Data()
	for b := 0; b < batch; b++ {
		row := gdata[b*d.out : (b+1)*d.out]
		for j := range row {
			gb[j] += row[j]
		}
	}
	return tensor.MatMulTransB(grad, d.weight)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.weight, d.bias} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gradW, d.gradB} }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d->%d)", d.in, d.out) }
