package nn

import (
	"fmt"
	"math/rand"

	"dssp/internal/tensor"
)

// ReLU is the rectified linear activation applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	data := out.Data()
	if train {
		if cap(r.mask) < len(data) {
			r.mask = make([]bool, len(data))
		}
		r.mask = r.mask[:len(data)]
	}
	for i, v := range data {
		if v < 0 {
			data[i] = 0
			if train {
				r.mask[i] = false
			}
		} else if train {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	data := out.Data()
	if len(r.mask) != len(data) {
		panic("nn: ReLU.Backward called without a matching Forward(train=true)")
	}
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Flatten reshapes an NCHW activation into (batch, features) so that dense
// layers can follow convolutional stages.
type Flatten struct {
	lastShape []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.lastShape = x.Shape()
	}
	batch := x.Dim(0)
	return x.Reshape(batch, x.Size()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic("nn: Flatten.Backward called before Forward(train=true)")
	}
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// Dropout zeroes a random fraction of activations during training and
// rescales the rest, as used between the fully connected layers of AlexNet.
type Dropout struct {
	rate float64
	rng  *rand.Rand
	mask []float32
}

// NewDropout returns a dropout layer that drops activations with probability
// rate in [0,1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.rate == 0 {
		return x.Clone()
	}
	out := x.Clone()
	data := out.Data()
	if cap(d.mask) < len(data) {
		d.mask = make([]float32, len(data))
	}
	d.mask = d.mask[:len(data)]
	keep := float32(1.0 / (1.0 - d.rate))
	for i := range data {
		if d.rng.Float64() < d.rate {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = keep
			data[i] *= keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	data := out.Data()
	if len(d.mask) != len(data) {
		// Dropout was a no-op during forward (rate 0); pass gradient through.
		return out
	}
	for i := range data {
		data[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.rate) }
