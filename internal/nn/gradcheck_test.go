package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"dssp/internal/tensor"
)

// numericalGradientCheck verifies the analytic gradients of every parameter
// of net against centered finite differences of the loss, on a small batch.
// maxPerParam limits how many scalar entries per parameter tensor are
// probed, keeping the check fast for convolutional layers.
func numericalGradientCheck(t *testing.T, net *Network, x *tensor.Tensor, labels []int, maxPerParam int) {
	t.Helper()
	const eps = 1e-3

	net.ZeroGrads()
	loss, _ := net.Loss(x, labels, true)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss is not finite: %v", loss)
	}
	net.Backward()
	analytic := net.CloneGrads()
	params := net.Params()

	rng := rand.New(rand.NewSource(99))
	for pi, p := range params {
		n := p.Size()
		indices := make([]int, 0, maxPerParam)
		if n <= maxPerParam {
			for i := 0; i < n; i++ {
				indices = append(indices, i)
			}
		} else {
			for len(indices) < maxPerParam {
				indices = append(indices, rng.Intn(n))
			}
		}
		data := p.Data()
		for _, idx := range indices {
			orig := data[idx]
			data[idx] = orig + eps
			lossPlus, _ := net.Loss(x, labels, true)
			data[idx] = orig - eps
			lossMinus, _ := net.Loss(x, labels, true)
			data[idx] = orig

			numeric := (lossPlus - lossMinus) / (2 * eps)
			got := float64(analytic[pi].Data()[idx])
			diff := math.Abs(numeric - got)
			scale := math.Max(1, math.Abs(numeric)+math.Abs(got))
			if diff/scale > 0.06 {
				t.Errorf("param %d index %d: analytic %.6f vs numeric %.6f (rel %.4f)",
					pi, idx, got, numeric, diff/scale)
			}
		}
	}
}

func TestGradientCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(rng, NewDense(rng, 6, 5), NewReLU(), NewDense(rng, 5, 3))
	x := tensor.New(4, 6).RandNormal(rng, 0, 1)
	labels := []int{0, 2, 1, 2}
	numericalGradientCheck(t, net, x, labels, 30)
}

func TestGradientCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(rng,
		NewConv2D(rng, 2, 3, 3, 1, 1),
		NewReLU(),
		NewFlatten(),
		NewDense(rng, 3*6*6, 4),
	)
	x := tensor.New(2, 2, 6, 6).RandNormal(rng, 0, 1)
	labels := []int{1, 3}
	numericalGradientCheck(t, net, x, labels, 20)
}

func TestGradientCheckConvStrideAndPad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(rng,
		NewConv2D(rng, 1, 2, 3, 2, 1),
		NewFlatten(),
		NewDense(rng, 2*4*4, 3),
	)
	x := tensor.New(2, 1, 8, 8).RandNormal(rng, 0, 1)
	labels := []int{0, 2}
	numericalGradientCheck(t, net, x, labels, 20)
}

func TestGradientCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(rng,
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.New(2, 1, 6, 6).RandNormal(rng, 0, 1)
	labels := []int{2, 0}
	numericalGradientCheck(t, net, x, labels, 20)
}

func TestGradientCheckBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(rng,
		NewConv2D(rng, 1, 3, 3, 1, 1),
		NewBatchNorm(3),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(rng, 3, 2),
	)
	x := tensor.New(3, 1, 5, 5).RandNormal(rng, 0, 1)
	labels := []int{0, 1, 1}
	numericalGradientCheck(t, net, x, labels, 15)
}

func TestGradientCheckResidualBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(rng,
		NewResidualBlock(rng, 2, 2, 1),
		NewGlobalAvgPool(),
		NewDense(rng, 2, 3),
	)
	x := tensor.New(2, 2, 5, 5).RandNormal(rng, 0, 1)
	labels := []int{1, 2}
	numericalGradientCheck(t, net, x, labels, 12)
}

func TestGradientCheckResidualBlockWithProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(rng,
		NewResidualBlock(rng, 2, 4, 2),
		NewGlobalAvgPool(),
		NewDense(rng, 4, 3),
	)
	x := tensor.New(2, 2, 6, 6).RandNormal(rng, 0, 1)
	labels := []int{0, 2}
	numericalGradientCheck(t, net, x, labels, 10)
}

// TestGradientCheckThroughParallelMatMul re-runs a conv+dense gradient check
// with every matrix product forced through the goroutine-parallel kernels:
// analytic gradients computed by chunked row-parallel matmuls must still
// match finite differences, proving the parallel path computes the same
// mathematics as the serial one inside a full backward pass.
func TestGradientCheckThroughParallelMatMul(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	prevFlops := tensor.SetMatMulParallelMinFlops(0)
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prevProcs)
		tensor.SetMatMulParallelMinFlops(prevFlops)
	})
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(rng,
		NewConv2D(rng, 2, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(rng, 3*3*3, 4),
	)
	x := tensor.New(3, 2, 6, 6).RandNormal(rng, 0, 1)
	labels := []int{1, 3, 0}
	numericalGradientCheck(t, net, x, labels, 20)
}

func TestGradientCheckGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(rng,
		NewConv2D(rng, 1, 4, 3, 1, 1),
		NewGlobalAvgPool(),
		NewDense(rng, 4, 3),
	)
	x := tensor.New(2, 1, 6, 6).RandNormal(rng, 0, 1)
	labels := []int{2, 1}
	numericalGradientCheck(t, net, x, labels, 20)
}
