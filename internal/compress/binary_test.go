package compress

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dssp/internal/tensor"
)

// packedSamples builds one Packed payload per scheme from a deterministic
// tensor set.
func packedSamples(t *testing.T) []Packed {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	ts := []*tensor.Tensor{
		tensor.New(8, 4).RandNormal(rng, 0, 0.2),
		tensor.New(16).RandNormal(rng, 0, 0.2),
	}
	var out []Packed
	for _, cfg := range []Config{
		{Codec: FP16},
		{Codec: Int8},
		{Codec: TopK, TopK: 0.25},
	} {
		comp, err := NewCompressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, comp.Compress(ts)...)
	}
	return out
}

// TestPackedBinaryRoundTrip pins the stable binary layout: every scheme's
// Packed form survives AppendBinary → DecodeBinary exactly, the encoded size
// matches EncodedBinarySize, and consecutive encodings decode back from one
// buffer.
func TestPackedBinaryRoundTrip(t *testing.T) {
	samples := packedSamples(t)
	var buf []byte
	for i, p := range samples {
		before := len(buf)
		var err error
		buf, err = p.AppendBinary(buf)
		if err != nil {
			t.Fatalf("packed %d: %v", i, err)
		}
		if got, want := len(buf)-before, p.EncodedBinarySize(); got != want {
			t.Errorf("packed %d encoded to %d bytes, EncodedBinarySize says %d", i, got, want)
		}
	}
	rest := buf
	for i, want := range samples {
		got, n, err := DecodeBinary(rest)
		if err != nil {
			t.Fatalf("packed %d: %v", i, err)
		}
		rest = rest[n:]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("packed %d changed in the round trip:\nwant %+v\ngot  %+v", i, want, got)
		}
		// The decompressed tensor must match the original's decode exactly.
		a, err := Decompress(want)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Decompress(got)
		if err != nil {
			t.Fatal(err)
		}
		if !a.ApproxEqual(b, 0) {
			t.Errorf("packed %d decompresses differently after the round trip", i)
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes after decoding all samples", len(rest))
	}
}

// TestPackedBinaryPayloadAliases pins the zero-copy contract: the decoded
// payload aliases the input buffer, and Decompress still copies out of it.
func TestPackedBinaryPayloadAliases(t *testing.T) {
	p := packedSamples(t)[0]
	buf, err := p.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) > 0 && &got.Payload[0] != &buf[1+1+4*len(p.Shape)+4+4] {
		t.Error("decoded payload does not alias the input buffer")
	}
	dec, err := Decompress(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xaa // scribble over the wire buffer
	}
	dec2, err := Decompress(p)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ApproxEqual(dec2, 0) {
		t.Error("Decompress result aliases the wire buffer instead of copying")
	}
}

// TestPackedBinaryRejectsCorruption drives DecodeBinary with truncations and
// forged fields: errors, never panics or count-driven allocations.
func TestPackedBinaryRejectsCorruption(t *testing.T) {
	p := packedSamples(t)[0]
	buf, err := p.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBinary(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	rank := append([]byte(nil), buf...)
	rank[1] = 200 // rank above the wire limit
	if _, _, err := DecodeBinary(rank); err == nil {
		t.Error("oversized rank accepted")
	}
	zero := append([]byte(nil), buf...)
	zero[2], zero[3], zero[4], zero[5] = 0, 0, 0, 0 // first dimension = 0
	if _, _, err := DecodeBinary(zero); err == nil {
		t.Error("zero dimension accepted")
	}
	long := append([]byte(nil), buf...)
	off := 1 + 1 + 4*len(p.Shape) + 4
	long[off], long[off+1], long[off+2], long[off+3] = 0xff, 0xff, 0xff, 0x7f // payload length beyond the buffer
	if _, _, err := DecodeBinary(long); err == nil {
		t.Error("forged payload length accepted")
	}
}

// TestDecompressRejectsHostileShapes drives Decompress/DecompressReuse with
// shapes a hostile peer could put on the wire: overflowing products and
// huge declared tensors must error before any allocation happens — not
// panic in make([]float32, n) or swallow gigabytes. (Regression: the reuse
// refactor briefly allocated from the shape before validating the payload.)
func TestDecompressRejectsHostileShapes(t *testing.T) {
	hostile := []Packed{
		{Scheme: SchemeF16, Shape: []int{1<<31 - 1, 1<<31 - 1}, Payload: nil},  // product wraps negative
		{Scheme: SchemeQ8, Shape: []int{4294967295, 4294967295}, Payload: nil}, // uint32-max dims
		{Scheme: SchemeTopK, Shape: []int{1 << 30}, Payload: nil},              // 4 GiB declared, empty payload
		{Scheme: SchemeF16, Shape: []int{MaxPackedElements + 1}, Payload: nil}, // just over the cap
		{Scheme: SchemeTopK, Shape: []int{4}, Payload: make([]byte, 8*5)},      // more entries than elements
		{Scheme: 99, Shape: []int{2}, Payload: make([]byte, 4)},                // unknown scheme
	}
	for i, p := range hostile {
		if _, err := Decompress(p); err == nil {
			t.Errorf("hostile packed %d decompressed successfully", i)
		}
		if _, err := DecompressReuse(p, tensor.New(2)); err == nil {
			t.Errorf("hostile packed %d decompressed into scratch successfully", i)
		}
	}
	// The wire-level decoder rejects oversized products before Decompress
	// ever sees them.
	big, err := Packed{Scheme: SchemeF16, Shape: []int{1 << 13, 1 << 14}, Payload: nil}.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeBinary(big); err == nil {
		t.Error("DecodeBinary accepted a shape above MaxPackedElements")
	}
}

// TestPackedBinaryScaleBits requires bit-exact scale transport, -0 and NaN
// included (a NaN scale means the gradients diverged; it must arrive as-is,
// not be laundered into something finite).
func TestPackedBinaryScaleBits(t *testing.T) {
	for _, bits := range []uint32{0x80000000, 0x7fc00001, 0x00000001} {
		p := Packed{Scheme: SchemeQ8, Shape: []int{1}, Scale: math.Float32frombits(bits), Payload: []byte{5}}
		buf, err := p.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeBinary(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if math.Float32bits(got.Scale) != bits {
			t.Errorf("scale bits 0x%08x arrived as 0x%08x", bits, math.Float32bits(got.Scale))
		}
	}
}

// TestDecompressAllReuseMatchesDecompressAll pins the scratch path against
// the allocating one, including shape-mismatch fallback and the topk zero
// fill on a dirty reused tensor.
func TestDecompressAllReuseMatchesDecompressAll(t *testing.T) {
	samples := packedSamples(t)
	want, err := DecompressAll(samples)
	if err != nil {
		t.Fatal(err)
	}
	// A dirty scratch of the right shapes plus one wrong-shape entry.
	scratch := make([]*tensor.Tensor, len(samples))
	for i, p := range samples {
		scratch[i] = tensor.Full(42, p.Shape...)
	}
	scratch[0] = tensor.New(3)
	got, err := DecompressAllReuse(samples, scratch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !want[i].ApproxEqual(got[i], 0) {
			t.Errorf("tensor %d differs between DecompressAll and DecompressAllReuse", i)
		}
	}
	if got[1] != scratch[1] {
		t.Error("matching-shape scratch tensor was not reused")
	}
	// Second pass must reuse every tensor from the first.
	again, err := DecompressAllReuse(samples, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if again[i] != got[i] {
			t.Errorf("tensor %d reallocated on the second reuse pass", i)
		}
	}
}
