package compress

import (
	"encoding/binary"
	"math"

	"dssp/internal/tensor"
)

// packF16 encodes t as IEEE 754 half-precision values, 2 bytes each. With
// residual set, t is an error-feedback buffer and the rounding error of every
// value is written back into it; otherwise t is read-only.
func packF16(t *tensor.Tensor, residual bool) Packed {
	data := t.Data()
	payload := make([]byte, 2*len(data))
	for i, v := range data {
		h := f32ToF16(v)
		binary.LittleEndian.PutUint16(payload[2*i:], h)
		if residual {
			data[i] = v - f16ToF32(h)
		}
	}
	return Packed{Scheme: SchemeF16, Shape: t.Shape(), Payload: payload}
}

// unpackF16 decodes a SchemeF16 payload into t. DecompressReuse — the only
// caller — has already validated the payload length against t's shape.
func unpackF16(p Packed, t *tensor.Tensor) error {
	data := t.Data()
	for i := range data {
		data[i] = f16ToF32(binary.LittleEndian.Uint16(p.Payload[2*i:]))
	}
	return nil
}

// packQ8 encodes t with uniform 8-bit quantization: scale = maxAbs/127,
// q = round(v/scale) in [-127, 127], 1 byte per value. With residual set the
// quantization error of every value is written back into t.
func packQ8(t *tensor.Tensor, residual bool) Packed {
	data := t.Data()
	var maxAbs float32
	for _, v := range data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	payload := make([]byte, len(data))
	scale := maxAbs / 127
	if scale == 0 {
		// All-zero tensor (or maxAbs underflowed): send zeros verbatim.
		if residual {
			t.Zero()
		}
		return Packed{Scheme: SchemeQ8, Shape: t.Shape(), Payload: payload}
	}
	for i, v := range data {
		q := int32(math.RoundToEven(float64(v / scale)))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		payload[i] = byte(int8(q))
		if residual {
			data[i] = v - float32(q)*scale
		}
	}
	return Packed{Scheme: SchemeQ8, Shape: t.Shape(), Scale: scale, Payload: payload}
}

// unpackQ8 decodes a SchemeQ8 payload into t. DecompressReuse — the only
// caller — has already validated the payload length against t's shape.
func unpackQ8(p Packed, t *tensor.Tensor) error {
	data := t.Data()
	for i := range data {
		data[i] = float32(int8(p.Payload[i])) * p.Scale
	}
	return nil
}

// f32ToF16 converts a float32 to IEEE 754 binary16 with round-to-nearest-even,
// mapping overflow to infinity and values below the smallest subnormal half
// to signed zero.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff
	if exp == 0xff { // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	e := exp - 127 + 15
	if e >= 0x1f { // overflow → Inf
		return sign | 0x7c00
	}
	if e <= 0 { // half subnormal (or zero)
		if e < -10 {
			return sign
		}
		mant |= 0x800000 // make the implicit leading bit explicit
		shift := uint32(14 - e)
		m := (mant + (1 << (shift - 1)) - 1 + ((mant >> shift) & 1)) >> shift
		return sign | uint16(m)
	}
	m := mant + 0xfff + ((mant >> 13) & 1)
	if m&0x800000 != 0 { // mantissa rounding carried into the exponent
		m = 0
		e++
		if e >= 0x1f {
			return sign | 0x7c00
		}
	}
	return sign | uint16(e)<<10 | uint16(m>>13)
}

// f16ToF32 converts an IEEE 754 binary16 value to float32 (exact).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal half: renormalize into a float32 exponent.
		e := uint32(113)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3ff)<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	}
	return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
}
