package compress

import (
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

// benchGrads builds a gradient set shaped like a small CNN's parameters
// (matching the layer structure internal/ps benchmarks against).
func benchGrads(rng *rand.Rand) []*tensor.Tensor {
	shapes := [][]int{
		{256, 256}, {256}, {128, 256}, {128}, {64, 128}, {64}, {32, 64}, {32},
	}
	out := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		out[i] = randTensor(rng, 0.1, s...)
	}
	return out
}

func denseBytes(ts []*tensor.Tensor) int {
	n := 0
	for _, t := range ts {
		n += 4 * t.Size()
	}
	return n
}

func packedBytes(ps []Packed) int {
	n := 0
	for _, p := range ps {
		n += p.WireSize()
	}
	return n
}

// BenchmarkCompress measures worker-side compression throughput per codec
// and reports the payload size and its reduction over dense float32.
func BenchmarkCompress(b *testing.B) {
	for _, cfg := range []Config{
		{Codec: FP16},
		{Codec: Int8},
		{Codec: TopK, TopK: 0.1},
		{Codec: TopK, TopK: 0.01},
	} {
		b.Run(cfg.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			grads := benchGrads(rng)
			c, err := NewCompressor(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var packed []Packed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				packed = c.Compress(grads)
			}
			b.StopTimer()
			b.ReportMetric(float64(packedBytes(packed)), "wire-B/op")
			b.ReportMetric(float64(denseBytes(grads))/float64(packedBytes(packed)), "x-reduction")
		})
	}
}

// BenchmarkDecompress measures the server-side decode per codec.
func BenchmarkDecompress(b *testing.B) {
	for _, cfg := range []Config{
		{Codec: FP16},
		{Codec: Int8},
		{Codec: TopK, TopK: 0.1},
	} {
		b.Run(cfg.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			c, err := NewCompressor(cfg)
			if err != nil {
				b.Fatal(err)
			}
			packed := c.Compress(benchGrads(rng))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecompressAll(packed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPackPullPath measures the stateless weight packing the server
// performs per pull (before the per-shard cache amortizes it).
func BenchmarkPackPullPath(b *testing.B) {
	for _, cfg := range []Config{{Codec: FP16}, {Codec: Int8}} {
		b.Run(cfg.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			weights := benchGrads(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Pack(weights, cfg)
			}
		})
	}
}
