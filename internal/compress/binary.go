package compress

// The stable binary layout of a Packed tensor, spoken inside the transport
// layer's binary wire frames (docs/PROTOCOL.md §4.2) and owned here so the
// codec subsystem controls its own serialization instead of leaning on gob's
// reflective struct encoding. All integers are little endian:
//
//	uint8   scheme (SchemeF16, SchemeQ8, SchemeTopK)
//	uint8   rank d
//	uint32  × d dimensions (each ≥ 1)
//	float32 scale (IEEE 754 bits; zero for schemes without one)
//	uint32  payload length P
//	P bytes scheme-specific payload (already little endian by construction)

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PackedBinaryMinSize is the smallest legal encoding (rank 0, empty
// payload): scheme + rank + scale + payload length. Decoders use it to bound
// count-driven allocation.
const PackedBinaryMinSize = 1 + 1 + 4 + 4

// maxPackedDims mirrors the transport layer's tensor rank limit.
const maxPackedDims = 8

// EncodedBinarySize returns the number of bytes AppendBinary will produce.
func (p Packed) EncodedBinarySize() int {
	return PackedBinaryMinSize + 4*len(p.Shape) + len(p.Payload)
}

// AppendBinary appends p's stable binary encoding to dst and returns the
// extended slice.
func (p Packed) AppendBinary(dst []byte) ([]byte, error) {
	if len(p.Shape) > maxPackedDims {
		return dst, fmt.Errorf("compress: packed tensor has rank %d, wire limit is %d", len(p.Shape), maxPackedDims)
	}
	for _, d := range p.Shape {
		if d <= 0 || d > math.MaxUint32 {
			return dst, fmt.Errorf("compress: packed tensor has unencodable dimension %d", d)
		}
	}
	dst = append(dst, p.Scheme, byte(len(p.Shape)))
	for _, d := range p.Shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p.Scale))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	return append(dst, p.Payload...), nil
}

// DecodeBinary decodes one Packed tensor from the front of b, returning it
// and the number of bytes consumed. The returned Payload aliases b — callers
// that outlive b must copy it (Decompress copies by construction, so the
// usual decode-then-decompress flow never needs to).
//
// DecodeBinary validates structure (rank, dimension positivity, payload
// presence) but not scheme semantics; Decompress rejects payloads whose
// length disagrees with their shape.
func DecodeBinary(b []byte) (Packed, int, error) {
	if len(b) < 2 {
		return Packed{}, 0, fmt.Errorf("compress: packed header truncated (%d bytes)", len(b))
	}
	p := Packed{Scheme: b[0]}
	ndims := int(b[1])
	if ndims > maxPackedDims {
		return Packed{}, 0, fmt.Errorf("compress: packed tensor has rank %d, wire limit is %d", ndims, maxPackedDims)
	}
	off := 2
	if len(b) < off+4*ndims+8 {
		return Packed{}, 0, fmt.Errorf("compress: packed tensor truncated after rank byte")
	}
	if ndims > 0 {
		p.Shape = make([]int, ndims)
		n := 1
		for i := range p.Shape {
			// Bound each dimension as uint32 before converting: on a 32-bit
			// platform a huge dim would wrap int negative.
			d := binary.LittleEndian.Uint32(b[off:])
			if d == 0 || d > MaxPackedElements {
				return Packed{}, 0, fmt.Errorf("compress: packed dimension %d outside [1, %d]", d, MaxPackedElements)
			}
			if n > MaxPackedElements/int(d) {
				return Packed{}, 0, fmt.Errorf("compress: packed shape exceeds %d elements", MaxPackedElements)
			}
			n *= int(d)
			p.Shape[i] = int(d)
			off += 4
		}
	}
	p.Scale = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	// Compare against the remaining bytes rather than computing off+n, which
	// could overflow int on 32-bit platforms.
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if n < 0 || n > len(b)-off {
		return Packed{}, 0, fmt.Errorf("compress: packed payload of %d bytes exceeds the %d remaining", n, len(b)-off)
	}
	p.Payload = b[off : off+n : off+n]
	return p, off + n, nil
}
