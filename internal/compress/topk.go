package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"dssp/internal/tensor"
)

// packTopK encodes the k = ceil(frac·n) largest-magnitude entries of r as
// (uint32 index, float32 value) pairs and zeroes those entries in r: the
// kept values travel exactly, so their residual is zero, while everything
// dropped stays in r for the next push.
func packTopK(r *tensor.Tensor, frac float64) Packed {
	data := r.Data()
	n := len(data)
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	thr := kthLargestMagnitude(data, k)

	payload := make([]byte, 0, 8*k)
	emit := func(i int) {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(i))
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(data[i]))
		data[i] = 0
	}
	// Entries strictly above the threshold all belong to the top k; ties at
	// the threshold fill the remaining slots in index order, keeping the
	// selection deterministic.
	kept := 0
	for i, v := range data {
		if abs32(v) > thr {
			emit(i)
			kept++
		}
	}
	for i := 0; i < n && kept < k; i++ {
		if data[i] != 0 && abs32(data[i]) == thr {
			emit(i)
			kept++
		}
	}
	// Degenerate tensors (all zero, or NaN entries that no ordered
	// comparison selects) can leave the selection short; fill with leading
	// entries in index order so the payload always carries exactly k pairs.
	// Re-emitting an already-sent index carries its now-zero residual, and a
	// NaN entry travels as-is so divergence surfaces at the server instead
	// of being silently swallowed here.
	for i := 0; kept < k; i++ {
		emit(i)
		kept++
	}
	return Packed{Scheme: SchemeTopK, Shape: r.Shape(), Payload: payload}
}

// unpackTopK decodes a SchemeTopK payload into t. DecompressReuse — the
// only caller — has already validated the payload's pair structure and
// entry count against t's shape; the per-entry index bound stays here
// because only the payload contents can establish it. t is zeroed first:
// the payload only names the surviving coordinates, and a reused t still
// holds the previous decode.
func unpackTopK(p Packed, t *tensor.Tensor) error {
	t.Zero()
	data := t.Data()
	for e := 0; e < len(p.Payload)/8; e++ {
		idx := binary.LittleEndian.Uint32(p.Payload[8*e:])
		if int(idx) < 0 || int(idx) >= len(data) {
			return fmt.Errorf("compress: topk index %d outside tensor of %d values", idx, len(data))
		}
		data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(p.Payload[8*e+4:]))
	}
	return nil
}

// kthLargestMagnitude returns the k-th largest absolute value in data
// (1-based: k=1 is the maximum) in O(n) expected time via quickselect. NaN
// magnitudes are mapped to +Inf so the selection stays totally ordered — an
// unordered NaN pivot would run the Hoare scans out of bounds.
func kthLargestMagnitude(data []float32, k int) float32 {
	inf := float32(math.Inf(1))
	mags := make([]float32, len(data))
	for i, v := range data {
		if v != v { // NaN
			mags[i] = inf
		} else {
			mags[i] = abs32(v)
		}
	}
	return selectDesc(mags, k-1)
}

// selectDesc partially sorts a in descending order until position k is
// final and returns a[k]. It mutates a. The Hoare partition splits runs of
// equal elements across both halves, so duplicate-heavy inputs (e.g. sparse
// or constant gradients) stay O(n) instead of degrading quadratically.
func selectDesc(a []float32, k int) float32 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three pivot against sorted/reversed inputs.
		mid := lo + (hi-lo)/2
		if a[mid] > a[lo] {
			a[lo], a[mid] = a[mid], a[lo]
		}
		if a[hi] > a[lo] {
			a[lo], a[hi] = a[hi], a[lo]
		}
		if a[hi] > a[mid] {
			a[mid], a[hi] = a[hi], a[mid]
		}
		pivot := a[mid]

		i, j := lo-1, hi+1
		for {
			for {
				i++
				if a[i] <= pivot {
					break
				}
			}
			for {
				j--
				if a[j] >= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		// a[lo..j] >= pivot >= a[j+1..hi].
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return a[k]
}

// abs32 returns |v| without the float64 round trip of math.Abs.
func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
