// Package compress implements the pluggable gradient codecs spoken on the
// parameter-server wire path. A codec turns the dense float32 tensors of a
// push (and optionally the weight chunks of a pull) into a compact binary
// Packed form and back:
//
//   - "none"  — identity; tensors travel uncompressed (the default).
//   - "fp16"  — IEEE 754 half precision, 2 bytes per value.
//   - "int8"  — uniform 8-bit quantization with a per-tensor scale,
//     1 byte per value.
//   - "topk"  — magnitude sparsification: only the k largest-magnitude
//     entries per tensor are sent (8 bytes each), k = ceil(TopK·n).
//
// The lossy codecs are made safe for training by error feedback (Seide et
// al., 2014; Stich et al., 2018): the worker-side Compressor keeps a
// per-tensor residual of everything compression discarded and folds it into
// the next push, so every gradient coordinate eventually reaches the server
// and compressed SGD converges like its uncompressed counterpart.
//
// Packed payloads are self-describing: decompression needs no codec
// configuration, only the payload itself. Codec choice and parameters are
// negotiated once per connection at registration time (see internal/ps).
package compress

import (
	"fmt"

	"dssp/internal/tensor"
)

// Codec names accepted by Config.Codec.
const (
	// None is the identity codec: tensors travel uncompressed.
	None = "none"
	// Auto is a client-side pseudo-codec: adopt whatever the server speaks.
	// It is never a negotiated result and never appears on the wire after
	// registration.
	Auto = "auto"
	// FP16 encodes values as IEEE 754 half-precision floats.
	FP16 = "fp16"
	// Int8 quantizes values uniformly to 8 bits with a per-tensor scale.
	Int8 = "int8"
	// TopK sends only the largest-magnitude fraction of each tensor.
	TopK = "topk"
)

// DefaultTopK is the fraction of entries the topk codec keeps when the
// configuration leaves TopK unset.
const DefaultTopK = 0.1

// Payload encoding schemes carried in Packed.Scheme.
const (
	// SchemeF16 packs 2-byte IEEE half-precision values, little endian.
	SchemeF16 uint8 = 1
	// SchemeQ8 packs 1-byte two's-complement quantized values; the
	// dequantization step is Packed.Scale.
	SchemeQ8 uint8 = 2
	// SchemeTopK packs (uint32 index, float32 value) pairs, little endian.
	SchemeTopK uint8 = 3
)

// Config selects a codec and its parameters. The zero value means "none".
type Config struct {
	// Codec is one of None, FP16, Int8 or TopK ("" means None). Clients may
	// also use Auto to adopt the server's configuration at registration.
	Codec string
	// TopK is the fraction of entries per tensor kept by the topk codec,
	// in (0, 1]; 0 selects DefaultTopK. Ignored by the other codecs.
	TopK float64
	// Pull additionally compresses the weight chunks workers pull. Only the
	// value codecs (fp16, int8) support it: weights are state, not sparse
	// updates, so topk pulls would discard most of the model.
	Pull bool
}

// Normalized maps the zero value onto its explicit form: "" becomes None,
// and an unset TopK fraction becomes DefaultTopK (for the topk codec only).
func (c Config) Normalized() Config {
	if c.Codec == "" {
		c.Codec = None
	}
	if c.Codec != TopK {
		c.TopK = 0
	} else if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	return c
}

// Enabled reports whether the configuration names a lossy codec, i.e.
// whether pushes carry Packed payloads instead of plain tensors.
func (c Config) Enabled() bool {
	switch c.Codec {
	case FP16, Int8, TopK:
		return true
	}
	return false
}

// Validate checks the configuration. allowAuto admits the client-side Auto
// pseudo-codec; servers must not be configured with it.
func (c Config) Validate(allowAuto bool) error {
	switch c.Codec {
	case "", None, FP16, Int8:
	case TopK:
		if c.TopK < 0 || c.TopK > 1 {
			return fmt.Errorf("compress: topk fraction %g outside (0, 1]", c.TopK)
		}
	case Auto:
		if !allowAuto {
			return fmt.Errorf("compress: codec %q is client-side only", Auto)
		}
	default:
		return fmt.Errorf("compress: unknown codec %q (want %s, %s, %s or %s)",
			c.Codec, None, FP16, Int8, TopK)
	}
	if c.Pull {
		switch c.Codec {
		case FP16, Int8, Auto:
		default:
			return fmt.Errorf("compress: pull compression requires the fp16 or int8 codec, not %q", c.Codec)
		}
	}
	return nil
}

// Equal reports whether two configurations describe the same negotiated
// codec. Both sides are compared in normalized form.
func (c Config) Equal(o Config) bool {
	c, o = c.Normalized(), o.Normalized()
	return c == o
}

// String renders the configuration for error messages: "topk(0.10)+pull".
func (c Config) String() string {
	c = c.Normalized()
	s := c.Codec
	if c.Codec == TopK {
		s = fmt.Sprintf("%s(%.2g)", s, c.TopK)
	}
	if c.Pull {
		s += "+pull"
	}
	return s
}

// Packed is the serializable compressed form of one tensor. It is
// self-describing: Scheme and Shape fully determine how Payload decodes.
type Packed struct {
	// Scheme identifies the payload encoding (SchemeF16, SchemeQ8, SchemeTopK).
	Scheme uint8
	// Shape is the dense shape of the decoded tensor.
	Shape []int
	// Scale is the SchemeQ8 dequantization step; zero for other schemes.
	Scale float32
	// Payload is the scheme-specific little-endian binary encoding.
	Payload []byte
}

// WireSize returns the approximate number of bytes p occupies on the wire:
// the payload plus a small per-tensor header. It is used for traffic
// accounting, not framing.
func (p Packed) WireSize() int { return len(p.Payload) + 4*len(p.Shape) + 8 }

// schemeFor maps a codec name onto its payload scheme.
func schemeFor(codec string) uint8 {
	switch codec {
	case FP16:
		return SchemeF16
	case Int8:
		return SchemeQ8
	case TopK:
		return SchemeTopK
	}
	panic(fmt.Sprintf("compress: codec %q has no packed scheme", codec))
}

// Compressor is the stateful worker-side half of a codec: it compresses one
// gradient stream and carries the error-feedback residuals of its lossy
// codec. A Compressor therefore belongs to exactly one worker and is not
// safe for concurrent use. The gradient list must keep the same length and
// shapes from call to call (it is one model's parameter gradients).
type Compressor struct {
	cfg      Config
	residual []*tensor.Tensor
}

// NewCompressor returns a compressor for the given (lossy) configuration.
func NewCompressor(cfg Config) (*Compressor, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(false); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("compress: codec %q needs no compressor", cfg.Codec)
	}
	return &Compressor{cfg: cfg}, nil
}

// Config returns the configuration the compressor encodes with.
func (c *Compressor) Config() Config { return c.cfg }

// Compress encodes one gradient push. Error feedback: each tensor's residual
// r accumulates the incoming gradient (r += g), the codec encodes r, and
// whatever the encoding could not represent stays in r for the next push.
// The caller's tensors are never mutated and may be reused.
func (c *Compressor) Compress(grads []*tensor.Tensor) []Packed {
	if len(c.residual) < len(grads) {
		grown := make([]*tensor.Tensor, len(grads))
		copy(grown, c.residual)
		c.residual = grown
	}
	out := make([]Packed, len(grads))
	for i, g := range grads {
		r := c.residual[i]
		if r == nil || !r.SameShape(g) {
			r = g.Clone()
			c.residual[i] = r
		} else {
			r.Add(g)
		}
		out[i] = packResidual(r, c.cfg)
	}
	return out
}

// packResidual encodes r and subtracts the decoded values from it in place,
// leaving r holding exactly what the encoding discarded.
func packResidual(r *tensor.Tensor, cfg Config) Packed {
	switch cfg.Codec {
	case FP16:
		return packF16(r, true)
	case Int8:
		return packQ8(r, true)
	case TopK:
		return packTopK(r, cfg.TopK)
	}
	panic(fmt.Sprintf("compress: packResidual with codec %q", cfg.Codec))
}

// Pack compresses tensors without error feedback — the stateless form used
// on the pull path, where the full weights are re-sent on every pull and a
// residual would double-count. The inputs are never mutated, so Pack is safe
// on the store's shared copy-on-write snapshots. Only the value codecs are
// supported (Config.Validate enforces this for pull compression).
func Pack(ts []*tensor.Tensor, cfg Config) []Packed {
	out := make([]Packed, len(ts))
	for i, t := range ts {
		switch cfg.Codec {
		case FP16:
			out[i] = packF16(t, false)
		case Int8:
			out[i] = packQ8(t, false)
		default:
			panic(fmt.Sprintf("compress: Pack with codec %q", cfg.Codec))
		}
	}
	return out
}

// Decompress reconstructs the dense tensor a Packed payload encodes.
func Decompress(p Packed) (*tensor.Tensor, error) {
	return DecompressReuse(p, nil)
}

// MaxPackedElements bounds the dense element count a Packed tensor may
// declare — matching the transport layer's dense-tensor bound — so a hostile
// shape cannot drive allocation beyond what a legal frame could carry.
const MaxPackedElements = 1 << 26

// DecompressReuse reconstructs p into dst when dst has exactly p's shape,
// avoiding the allocation; otherwise (or with dst nil) a fresh tensor is
// allocated. Either way the result never aliases p.Payload. The reuse path
// serves receivers that decode the same parameter layout repeatedly — the
// server's per-session gradient scratch.
//
// The shape and payload are fully validated — overflow-safe element count,
// scheme-consistent payload length — before any allocation, because Packed
// values arrive from the network: a corrupt shape must produce an error,
// never a panic or an attacker-sized allocation.
func DecompressReuse(p Packed, dst *tensor.Tensor) (*tensor.Tensor, error) {
	n := 1
	for _, d := range p.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("compress: packed tensor has non-positive dimension %d", d)
		}
		if n > MaxPackedElements/d {
			return nil, fmt.Errorf("compress: packed shape %v exceeds %d elements", p.Shape, MaxPackedElements)
		}
		n *= d
	}
	switch p.Scheme {
	case SchemeF16:
		if len(p.Payload) != 2*n {
			return nil, fmt.Errorf("compress: fp16 payload holds %d bytes for %d values", len(p.Payload), n)
		}
	case SchemeQ8:
		if len(p.Payload) != n {
			return nil, fmt.Errorf("compress: int8 payload holds %d bytes for %d values", len(p.Payload), n)
		}
	case SchemeTopK:
		if len(p.Payload)%8 != 0 {
			return nil, fmt.Errorf("compress: topk payload of %d bytes is not index/value pairs", len(p.Payload))
		}
		if len(p.Payload)/8 > n {
			return nil, fmt.Errorf("compress: topk payload holds %d entries for %d values", len(p.Payload)/8, n)
		}
	default:
		return nil, fmt.Errorf("compress: unknown payload scheme %d", p.Scheme)
	}
	if dst == nil || !dst.ShapeEquals(p.Shape) {
		dst = tensor.New(p.Shape...)
	}
	switch p.Scheme {
	case SchemeF16:
		return dst, unpackF16(p, dst)
	case SchemeQ8:
		return dst, unpackQ8(p, dst)
	default:
		return dst, unpackTopK(p, dst)
	}
}

// DecompressAll reconstructs a full tensor list, the inverse of
// Compressor.Compress and Pack.
func DecompressAll(ps []Packed) ([]*tensor.Tensor, error) {
	return DecompressAllReuse(ps, nil)
}

// DecompressAllReuse is DecompressAll writing into scratch where shapes
// match; it returns the (possibly re-sliced) scratch. Callers own the
// returned tensors until their next DecompressAllReuse with the same
// scratch.
func DecompressAllReuse(ps []Packed, scratch []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if cap(scratch) < len(ps) {
		grown := make([]*tensor.Tensor, len(ps))
		copy(grown, scratch[:cap(scratch)])
		scratch = grown
	}
	scratch = scratch[:len(ps)]
	for i, p := range ps {
		t, err := DecompressReuse(p, scratch[i])
		if err != nil {
			return nil, fmt.Errorf("compress: tensor %d: %w", i, err)
		}
		scratch[i] = t
	}
	return scratch, nil
}
