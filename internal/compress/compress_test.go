package compress

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dssp/internal/tensor"
)

// randTensor returns a tensor of the given shape with values in [-scale, scale).
func randTensor(rng *rand.Rand, scale float64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	data := t.Data()
	for i := range data {
		data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return t
}

func TestConfigNormalizeValidateEqual(t *testing.T) {
	if got := (Config{}).Normalized(); got.Codec != None {
		t.Fatalf("zero config normalizes to %q, want %q", got.Codec, None)
	}
	if got := (Config{Codec: TopK}).Normalized(); got.TopK != DefaultTopK {
		t.Fatalf("topk fraction defaults to %g, want %g", got.TopK, DefaultTopK)
	}
	if got := (Config{Codec: Int8, TopK: 0.5}).Normalized(); got.TopK != 0 {
		t.Fatalf("non-topk codec keeps fraction %g, want 0", got.TopK)
	}
	for _, cfg := range []Config{
		{}, {Codec: None}, {Codec: FP16}, {Codec: Int8}, {Codec: TopK, TopK: 0.25},
		{Codec: FP16, Pull: true}, {Codec: Int8, Pull: true},
	} {
		if err := cfg.Validate(false); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", cfg, err)
		}
	}
	for _, cfg := range []Config{
		{Codec: "gzip"},
		{Codec: TopK, TopK: 1.5},
		{Codec: TopK, TopK: -0.1},
		{Codec: TopK, Pull: true},
		{Codec: None, Pull: true},
	} {
		if err := cfg.Validate(false); err == nil {
			t.Errorf("Validate(%v) = nil, want error", cfg)
		}
	}
	if err := (Config{Codec: Auto}).Validate(false); err == nil {
		t.Error("server-side Validate accepts auto")
	}
	if err := (Config{Codec: Auto, Pull: true}).Validate(true); err != nil {
		t.Errorf("client-side Validate rejects auto: %v", err)
	}
	if !(Config{}).Equal(Config{Codec: None}) {
		t.Error("zero config and explicit none are not Equal")
	}
	if !(Config{Codec: TopK}).Equal(Config{Codec: TopK, TopK: DefaultTopK}) {
		t.Error("defaulted topk fraction breaks Equal")
	}
	if (Config{Codec: TopK, TopK: 0.1}).Equal(Config{Codec: TopK, TopK: 0.2}) {
		t.Error("different topk fractions compare Equal")
	}
	if (Config{Codec: FP16}).Equal(Config{Codec: FP16, Pull: true}) {
		t.Error("pull flag ignored by Equal")
	}
}

func TestF16ExhaustiveRoundTrip(t *testing.T) {
	// Every non-NaN half value must survive half→float32→half unchanged:
	// float32 represents all halves exactly and the conversion rounds to
	// nearest, so the round trip is the identity.
	for h := 0; h < 1<<16; h++ {
		f := f16ToF32(uint16(h))
		if math.IsNaN(float64(f)) {
			continue
		}
		if back := f32ToF16(f); back != uint16(h) {
			t.Fatalf("half %#04x → %g → %#04x", h, f, back)
		}
	}
}

func TestF16ConversionErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		v := float32((rng.Float64()*2 - 1) * math.Pow(10, rng.Float64()*8-4))
		got := f16ToF32(f32ToF16(v))
		// Relative error ≤ 2^-11 for normal halves, plus the subnormal
		// absolute quantum 2^-25.
		bound := math.Abs(float64(v))/2048 + math.Pow(2, -25)
		if diff := math.Abs(float64(got - v)); diff > bound {
			t.Fatalf("fp16(%g) = %g, error %g exceeds %g", v, got, diff, bound)
		}
	}
}

func TestInt8RoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		orig := randTensor(rng, 0.5, 64, 9)
		var maxAbs float64
		for _, v := range orig.Data() {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		p := packQ8(orig.Clone(), false)
		dec, err := Decompress(p)
		if err != nil {
			t.Fatal(err)
		}
		// Uniform quantization with scale maxAbs/127 is off by at most half a
		// step per value.
		bound := maxAbs/127/2 + 1e-7
		for i, v := range orig.Data() {
			if diff := math.Abs(float64(dec.Data()[i] - v)); diff > bound {
				t.Fatalf("int8 value %d: %g → %g, error %g exceeds %g", i, v, dec.Data()[i], diff, bound)
			}
		}
	}
}

func TestInt8AllZeroTensor(t *testing.T) {
	p := packQ8(tensor.New(4, 4), false)
	dec, err := Decompress(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec.Data() {
		if v != 0 {
			t.Fatalf("zero tensor decoded to %v", dec.Data())
		}
	}
}

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		orig := randTensor(rng, 1.0, 37, 11)
		n := orig.Size()
		frac := []float64{0.01, 0.1, 0.33, 1.0}[trial%4]
		k := int(math.Ceil(frac * float64(n)))

		p := packTopK(orig.Clone(), frac)
		if got := len(p.Payload) / 8; got != k {
			t.Fatalf("topk(%g) of %d values kept %d entries, want %d", frac, n, got, k)
		}
		dec, err := Decompress(p)
		if err != nil {
			t.Fatal(err)
		}

		// Reference selection: sort magnitudes descending; the kept entries
		// must decode exactly and their magnitude multiset must equal the
		// reference's top k.
		mags := make([]float64, n)
		for i, v := range orig.Data() {
			mags[i] = math.Abs(float64(v))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
		var kept []float64
		for i, v := range dec.Data() {
			if v != 0 {
				if v != orig.Data()[i] {
					t.Fatalf("kept entry %d decoded to %g, want exact %g", i, v, orig.Data()[i])
				}
				kept = append(kept, math.Abs(float64(v)))
			} else if orig.Data()[i] != 0 && math.Abs(float64(orig.Data()[i])) > mags[k-1] {
				t.Fatalf("entry %d (|%g| > threshold %g) was dropped", i, orig.Data()[i], mags[k-1])
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(kept)))
		// Zero-valued originals among the top k decode to zero and are
		// indistinguishable from dropped entries, so compare only the nonzero
		// prefix.
		for i, m := range kept {
			if m != mags[i] {
				t.Fatalf("kept magnitude %d is %g, reference %g", i, m, mags[i])
			}
		}
	}
}

func TestErrorFeedbackResidualInvariant(t *testing.T) {
	// Over any prefix of pushes, (sum of decoded payloads) + residual ==
	// (sum of raw gradients): compression delays gradient mass, it never
	// loses it.
	rng := rand.New(rand.NewSource(17))
	for _, cfg := range []Config{
		{Codec: FP16},
		{Codec: Int8},
		{Codec: TopK, TopK: 0.05},
	} {
		c, err := NewCompressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sumGrads := tensor.New(23, 7)
		sumDecoded := tensor.New(23, 7)
		for step := 0; step < 12; step++ {
			g := randTensor(rng, 0.1, 23, 7)
			sumGrads.Add(g)
			packed := c.Compress([]*tensor.Tensor{g})
			dec, err := Decompress(packed[0])
			if err != nil {
				t.Fatal(err)
			}
			sumDecoded.Add(dec)

			recon := sumDecoded.Clone().Add(c.residual[0])
			if !recon.ApproxEqual(sumGrads, 1e-3) {
				t.Fatalf("%s step %d: decoded+residual drifted from gradient sum", cfg, step)
			}
		}
		// The lossy codecs must actually have transmitted most of the mass.
		if norm := sumDecoded.L2Norm(); norm == 0 {
			t.Fatalf("%s: nothing transmitted", cfg)
		}
	}
}

func TestErrorFeedbackEventuallyTransmitsSmallEntries(t *testing.T) {
	// topk with k=1 on a gradient whose first coordinate dominates: the
	// small second coordinate must still arrive through the residual.
	c, err := NewCompressor(Config{Codec: TopK, TopK: 1e-9}) // k = ceil(tiny·n) = 1
	if err != nil {
		t.Fatal(err)
	}
	total := tensor.New(2)
	for step := 0; step < 30; step++ {
		g := tensor.FromSlice([]float32{1.0, 0.1}, 2)
		dec, err := Decompress(c.Compress([]*tensor.Tensor{g})[0])
		if err != nil {
			t.Fatal(err)
		}
		total.Add(dec)
	}
	if total.Data()[1] == 0 {
		t.Fatal("small coordinate never transmitted despite error feedback")
	}
}

func TestTopKSurvivesNaNAndDegenerateTensors(t *testing.T) {
	// A diverged run can push NaN gradients; topk must not panic (an
	// unordered pivot would run the quickselect scans out of bounds) and
	// must still emit exactly k index/value pairs.
	nan := float32(math.NaN())
	cases := []*tensor.Tensor{
		tensor.FromSlice([]float32{nan, 1, 2, 3, 4, 5, 6, 7}, 8),
		tensor.FromSlice([]float32{nan, nan, nan, nan}, 4),
		tensor.New(6), // all zero
		tensor.FromSlice([]float32{0, 0, 5, 0}, 4),
	}
	for i, tc := range cases {
		n := tc.Size()
		p := packTopK(tc.Clone(), 0.5)
		k := int(math.Ceil(0.5 * float64(n)))
		if got := len(p.Payload) / 8; got != k {
			t.Errorf("case %d: payload carries %d pairs, want %d", i, got, k)
		}
		if _, err := Decompress(p); err != nil {
			t.Errorf("case %d: decode failed: %v", i, err)
		}
	}
}

func TestCompressorRejectsNonLossyCodecs(t *testing.T) {
	for _, cfg := range []Config{{}, {Codec: None}, {Codec: Auto}} {
		if _, err := NewCompressor(cfg); err == nil {
			t.Errorf("NewCompressor(%v) succeeded, want error", cfg)
		}
	}
}

func TestPackIsStatelessAndNonMutating(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := randTensor(rng, 1.0, 16, 16)
	snapshot := orig.Clone()
	for _, cfg := range []Config{{Codec: FP16}, {Codec: Int8}} {
		p := Pack([]*tensor.Tensor{orig}, cfg)
		if !orig.ApproxEqual(snapshot, 0) {
			t.Fatalf("%s: Pack mutated its input", cfg)
		}
		dec, err := DecompressAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if !dec[0].ApproxEqual(orig, 0.01) {
			t.Fatalf("%s: packed weights drifted beyond tolerance", cfg)
		}
	}
}

func TestDecompressRejectsCorruptPayloads(t *testing.T) {
	good := packTopK(tensor.FromSlice([]float32{3, 1, 2}, 3), 0.5)
	cases := []Packed{
		{Scheme: 99, Shape: []int{3}, Payload: nil},
		{Scheme: SchemeF16, Shape: []int{3}, Payload: make([]byte, 5)},
		{Scheme: SchemeQ8, Shape: []int{3}, Payload: make([]byte, 4)},
		{Scheme: SchemeTopK, Shape: []int{3}, Payload: make([]byte, 7)},
		{Scheme: SchemeTopK, Shape: []int{-1}, Payload: nil},
		{Scheme: SchemeTopK, Shape: []int{3}, Payload: append([]byte{255, 255, 255, 255}, good.Payload[4:8]...)},
		{Scheme: SchemeTopK, Shape: []int{1}, Payload: make([]byte, 16)},
	}
	for i, p := range cases {
		if _, err := Decompress(p); err == nil {
			t.Errorf("case %d: corrupt payload decoded without error", i)
		}
	}
}

func TestQuickselectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
			if rng.Intn(4) == 0 && i > 0 {
				vals[i] = vals[rng.Intn(i)] // inject duplicates
			}
		}
		k := 1 + rng.Intn(n)
		got := kthLargestMagnitude(vals, k)

		ref := make([]float64, n)
		for i, v := range vals {
			ref[i] = math.Abs(float64(v))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
		if float64(got) != ref[k-1] {
			t.Fatalf("kthLargestMagnitude(n=%d, k=%d) = %g, want %g", n, k, got, ref[k-1])
		}
	}
}
