package ps

import (
	"fmt"

	"dssp/internal/transport"
)

// TreeLayout is the aggregation-tree topology a client learns from the root
// at registration time (DESIGN.md §11): which relay, if any, fronts each
// worker index. Entries reuse transport.ServerEntry with Addr as the relay's
// child-facing address and [ShardLo, ShardHi) as the worker-index range it
// covers.
type TreeLayout struct {
	// Entries is the live relay set, sorted by covered range.
	Entries []transport.ServerEntry
	// Version increments whenever the tree changes (relay joins or deaths),
	// so a re-fetching client can tell a stale layout from a fresh one.
	Version int64
	// Workers is the configured logical worker count.
	Workers int
}

// Covering returns the child-facing address of the relay covering the given
// worker index, or "" when none does — the worker then connects straight to
// the root, exactly as in a flat topology. A relay covering several
// non-contiguous runs appears as several entries with the same Addr.
func (l TreeLayout) Covering(worker int) string {
	for _, e := range l.Entries {
		if worker >= e.ShardLo && worker < e.ShardHi {
			return e.Addr
		}
	}
	return ""
}

// FetchTreeLayout asks the server at the other end of conn for the current
// aggregation-tree layout. The conn is dedicated to this exchange; callers
// close it afterwards. A flat topology answers with zero entries.
func FetchTreeLayout(conn transport.Conn) (TreeLayout, error) {
	if err := conn.Send(transport.Message{Type: transport.MsgClusterMap, Relay: true}); err != nil {
		return TreeLayout{}, fmt.Errorf("ps: tree layout request: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return TreeLayout{}, fmt.Errorf("ps: tree layout reply: %w", err)
	}
	if msg.Type == transport.MsgError {
		return TreeLayout{}, fmt.Errorf("ps: tree layout: %s", msg.Error)
	}
	if msg.Type != transport.MsgClusterMap || !msg.Relay {
		return TreeLayout{}, fmt.Errorf("ps: tree layout: unexpected reply %v", msg.Type)
	}
	return TreeLayout{Entries: msg.Servers, Version: msg.MapVersion, Workers: msg.Total}, nil
}
