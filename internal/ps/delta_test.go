package ps

import (
	"bytes"
	"math/rand"
	"testing"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// deltaTestCluster wires one server and one delta-requesting client over the
// in-process transport.
func deltaTestCluster(t *testing.T, shards int, serverCfg func(*ServerConfig), clientDelta bool) (*Server, *Store, *Client, *transport.ChanListener) {
	t.Helper()
	initial := pipelineModel(31)
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st}
	if serverCfg != nil {
		serverCfg(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	t.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	var client *Client
	if cfg.Compression.Enabled() {
		client, err = NewClientCompressed(conn, 0, compress.Config{Codec: compress.Auto})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		client = NewClient(conn, 0)
	}
	client.SetDeltaPull(clientDelta)
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	return srv, st, client, listener
}

// TestDeltaPullServesCorrectWeightsAcrossUpdates interleaves pushes and
// pulls and checks every delta pull returns exactly the store's snapshot —
// cached unchanged shards included.
func TestDeltaPullServesCorrectWeightsAcrossUpdates(t *testing.T) {
	_, st, client, _ := deltaTestCluster(t, 3, nil, true)
	if !client.DeltaPull() {
		t.Fatal("server did not grant delta pulls")
	}
	rng := rand.New(rand.NewSource(2))
	model := pipelineModel(31)
	for round := 0; round < 6; round++ {
		// Two pulls per round: the second hits the all-unchanged path.
		for rep := 0; rep < 2; rep++ {
			params, version, err := client.Pull()
			if err != nil {
				t.Fatal(err)
			}
			want, wantVersion := st.Snapshot()
			if version != wantVersion {
				t.Fatalf("round %d rep %d: pulled version %d, want %d", round, rep, version, wantVersion)
			}
			if !bytes.Equal(tensor.EncodeTensors(params), tensor.EncodeTensors(want)) {
				t.Fatalf("round %d rep %d: pulled weights diverge from the store snapshot", round, rep)
			}
		}
		if err := client.PushAndWait(pipelineGrads(rng, model), int64(round), round); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeltaPullSkipsUnchangedShardBytes pins the acceptance criterion: for
// an unchanged-shard workload (repeated pulls with no pushes in between),
// delta pulls move at least 2x fewer payload bytes than full pulls.
func TestDeltaPullSkipsUnchangedShardBytes(t *testing.T) {
	const pulls = 10
	run := func(delta bool) int64 {
		_, _, client, _ := deltaTestCluster(t, 3, nil, delta)
		for i := 0; i < pulls; i++ {
			if _, _, err := client.Pull(); err != nil {
				t.Fatal(err)
			}
		}
		_, pulled := client.Traffic()
		return pulled
	}
	full := run(false)
	deltaed := run(true)
	if deltaed <= 0 || full <= 0 {
		t.Fatalf("degenerate byte counts: full %d, delta %d", full, deltaed)
	}
	if full < 2*deltaed {
		t.Fatalf("delta pulls moved %d bytes vs %d full — want at least a 2x reduction on an unchanged workload",
			deltaed, full)
	}
	t.Logf("unchanged-shard workload over %d pulls: full %d bytes, delta %d bytes (%.1fx)",
		pulls, full, deltaed, float64(full)/float64(deltaed))
}

// TestDeltaPullWithCompressedPullPath runs the same correctness check with
// pull compression negotiated, so Unchanged gating rides the packed cache.
func TestDeltaPullWithCompressedPullPath(t *testing.T) {
	_, st, client, _ := deltaTestCluster(t, 2, func(cfg *ServerConfig) {
		cfg.Compression = compress.Config{Codec: compress.FP16, Pull: true}
	}, true)
	if !client.DeltaPull() {
		t.Fatal("server did not grant delta pulls")
	}
	rng := rand.New(rand.NewSource(6))
	model := pipelineModel(31)
	var lastPulled int64
	for round := 0; round < 4; round++ {
		first, _, err := client.Pull()
		if err != nil {
			t.Fatal(err)
		}
		firstBytes := tensor.EncodeTensors(first)
		_, afterFirst := client.Traffic()
		again, _, err := client.Pull()
		if err != nil {
			t.Fatal(err)
		}
		_, afterSecond := client.Traffic()
		if !bytes.Equal(firstBytes, tensor.EncodeTensors(again)) {
			t.Fatalf("round %d: repeated pull of an unchanged store returned different weights", round)
		}
		if afterSecond != afterFirst {
			t.Fatalf("round %d: unchanged compressed pull still moved %d payload bytes", round, afterSecond-afterFirst)
		}
		lastPulled = afterSecond
		if err := client.PushAndWait(pipelineGrads(rng, model), st.Version(), round); err != nil {
			t.Fatal(err)
		}
	}
	if lastPulled == 0 {
		t.Fatal("no pull traffic recorded at all")
	}
}

// TestDeltaPullRefusedFallsBackToFullPulls pins the negotiation downgrade: a
// server with DisableDeltaPull answers requests without the grant and the
// client keeps issuing full pulls that work.
func TestDeltaPullRefusedFallsBackToFullPulls(t *testing.T) {
	_, st, client, _ := deltaTestCluster(t, 2, func(cfg *ServerConfig) {
		cfg.DisableDeltaPull = true
	}, true)
	if client.DeltaPull() {
		t.Fatal("client believes delta pulls are on against a refusing server")
	}
	var bytesPerPull []int64
	var last int64
	for i := 0; i < 3; i++ {
		params, _, err := client.Pull()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := st.Snapshot()
		if !bytes.Equal(tensor.EncodeTensors(params), tensor.EncodeTensors(want)) {
			t.Fatalf("pull %d diverged from the snapshot", i)
		}
		_, pulled := client.Traffic()
		bytesPerPull = append(bytesPerPull, pulled-last)
		last = pulled
	}
	if bytesPerPull[1] != bytesPerPull[0] || bytesPerPull[2] != bytesPerPull[0] {
		t.Fatalf("refused delta negotiation still changed pull sizes: %v", bytesPerPull)
	}
}

// recvWeightsChunks reads one chunked pull reply — exactly shards Weights
// messages — off a raw connection.
func recvWeightsChunks(t *testing.T, conn transport.Conn, shards int) []transport.Message {
	t.Helper()
	chunks := make([]transport.Message, 0, shards)
	for i := 0; i < shards; i++ {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type != transport.MsgWeights {
			t.Fatalf("chunk %d: got %v, want Weights", i, msg.Type)
		}
		chunks = append(chunks, msg)
	}
	return chunks
}

// TestNonDeltaSessionPullRepliesStayV1 pins the cross-version interop rule of
// docs/PROTOCOL.md §5a: pull replies to a session that never negotiated
// delta pulls must carry no v2 wire field — even after a push has moved
// every shard's publication version — because any v2 field promotes the
// frame to protocol version 2 and a v1-only binary decoder rejects such
// frames outright. A second session that did negotiate shows the gate
// discriminates per session instead of dropping ShardVersion globally.
func TestNonDeltaSessionPullRepliesStayV1(t *testing.T) {
	for _, tc := range []struct {
		name       string
		compressed bool
	}{{"plain", false}, {"compressedPull", true}} {
		t.Run(tc.name, func(t *testing.T) {
			initial := pipelineModel(13)
			st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), 3)
			if err != nil {
				t.Fatal(err)
			}
			cfg := ServerConfig{Workers: 2, Policy: core.MustNewASP(2), Store: st}
			if tc.compressed {
				cfg.Compression = compress.Config{Codec: compress.FP16, Pull: true}
			}
			srv, err := NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			listener := transport.NewChanListener()
			go func() { _ = srv.Serve(listener) }()
			t.Cleanup(func() {
				srv.Stop()
				listener.Close()
			})

			register := func(worker int, delta bool) transport.Conn {
				conn, err := listener.Dial()
				if err != nil {
					t.Fatal(err)
				}
				err = conn.Send(transport.Message{
					Type: transport.MsgRegister, Worker: worker,
					Codec: compress.Auto, DeltaPull: delta,
				})
				if err != nil {
					t.Fatal(err)
				}
				reg, err := conn.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if reg.Type != transport.MsgRegistered || reg.DeltaPull != delta {
					t.Fatalf("worker %d registered as %+v, want Registered with DeltaPull=%v", worker, reg, delta)
				}
				if reg.StoreShards != st.Shards() {
					t.Fatalf("registration reported %d shards, store has %d", reg.StoreShards, st.Shards())
				}
				return conn
			}
			v1conn := register(0, false)
			v2conn := register(1, true)

			// A push moves every shard's publication version past zero — the
			// state in which an ungated ShardVersion would leak onto the wire.
			if _, err := st.Apply(pipelineGrads(rand.New(rand.NewSource(4)), initial)); err != nil {
				t.Fatal(err)
			}

			if err := v1conn.Send(transport.Message{Type: transport.MsgPull, Worker: 0}); err != nil {
				t.Fatal(err)
			}
			for _, msg := range recvWeightsChunks(t, v1conn, st.Shards()) {
				if msg.ShardVersion != 0 || msg.Unchanged || len(msg.PullVersions) > 0 {
					t.Fatalf("non-delta session's chunk for shard %d carries v2 fields: %+v", msg.Shard, msg)
				}
				if v := transport.FrameVersion(msg); v != 1 {
					t.Fatalf("non-delta session's chunk for shard %d would encode as a version-%d frame; a v1-only peer rejects it", msg.Shard, v)
				}
			}

			if err := v2conn.Send(transport.Message{Type: transport.MsgPull, Worker: 1}); err != nil {
				t.Fatal(err)
			}
			for _, msg := range recvWeightsChunks(t, v2conn, st.Shards()) {
				if msg.ShardVersion == 0 {
					t.Fatalf("negotiated session's chunk for shard %d lost its ShardVersion — delta gating has no version feed", msg.Shard)
				}
			}
		})
	}
}

// TestDeltaPullSurvivesRejoin pins delta behaviour across a reconnect: a
// rejoining worker (fresh connection, fresh session — the real reconnect
// flow) re-negotiates the grant, its first pull is necessarily full, and
// the cached rounds resume correctly afterwards.
func TestDeltaPullSurvivesRejoin(t *testing.T) {
	srv, st, client, listener := deltaTestCluster(t, 2, nil, true)
	if _, _, err := client.Pull(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Pull(); err != nil { // cached round
		t.Fatal(err)
	}
	client.Close()

	// Reconnect the way remote.RunWorker does: new connection, new client,
	// MsgRejoin.
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	rejoined := NewClient(conn, 0)
	rejoined.SetDeltaPull(true)
	if err := rejoined.Rejoin(st.Version()); err != nil {
		t.Fatal(err)
	}
	if !rejoined.DeltaPull() {
		t.Fatal("rejoin lost the delta-pull grant")
	}
	params, _, err := rejoined.Pull()
	if err != nil {
		t.Fatal(err)
	}
	_, afterFirst := rejoined.Traffic()
	if afterFirst == 0 {
		t.Fatal("first pull after rejoin moved no bytes; a stale cache must have answered")
	}
	want, _ := st.Snapshot()
	if !bytes.Equal(tensor.EncodeTensors(params), tensor.EncodeTensors(want)) {
		t.Fatal("post-rejoin pull diverged from the snapshot")
	}
	if _, _, err := rejoined.Pull(); err != nil {
		t.Fatal(err)
	}
	_, afterSecond := rejoined.Traffic()
	if afterSecond != afterFirst {
		t.Fatalf("second pull after rejoin moved %d bytes; the rebuilt cache should have answered", afterSecond-afterFirst)
	}
	if srv.Rejoins() != 1 {
		t.Fatalf("server counted %d rejoins, want 1", srv.Rejoins())
	}
}
