package ps

import (
	"sync"
	"time"

	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// session is one live worker registration: the connection it arrived on, the
// outbox its writer goroutine drains, and the lease state that keeps it
// alive. A worker slot has at most one current session; re-registration
// supersedes the previous session instead of silently overwriting its outbox
// (which used to strand the old writer goroutine until server stop).
type session struct {
	worker int
	conn   transport.Conn
	// rejoined reports whether the session re-entered via MsgRejoin.
	rejoined bool
	// deltaPull reports that this session negotiated version-gated delta
	// pulls at registration: its MsgPull requests may carry PullVersions and
	// its weight chunks may come back Unchanged. Set before the session's
	// writer starts, immutable afterwards.
	deltaPull bool
	// relay marks an aggregation-relay trunk (MsgRegister with Relay set):
	// the session lives under a negative key like a replica's, but unlike a
	// replica it multiplexes many logical workers — child joins, aggregated
	// pushes and departures arrive on it tagged with the child's worker ID,
	// and releases for routed workers are delivered through it. Set before
	// the writer starts, immutable afterwards.
	relay bool
	// serializes reports that the connection is a transport.SerializingSender:
	// payloads are fully encoded inside Send/SendBatch, so pull replies may
	// pin store generations with a bounded reference (released by the writer
	// after the send) instead of escaping them from buffer reuse forever.
	serializes bool
	outbox     chan outMsg

	// gone is closed exactly once when the session ends — deregistered,
	// superseded, lease-expired, or server-stopped. The writer goroutine and
	// any enqueue blocked on a full outbox unblock through it.
	gone     chan struct{}
	goneOnce sync.Once

	mu       sync.Mutex
	lastSeen time.Time

	// decodeScratch holds the gradient tensors a compressed push
	// decompresses into, reused across pushes: the model layout is fixed
	// for a session's lifetime, and the protocol is lock-step per worker,
	// so the previous push's tensors are free again (decoded, applied,
	// released) by the time the next push arrives on this session's
	// connection goroutine. Only that goroutine touches the field.
	decodeScratch []*tensor.Tensor
}

// outMsg is one queued outbound message, plus — when the payload aliases a
// store generation's tensors — the bounded-reader reference pinning that
// generation. The writer releases ref once the transport has serialized the
// message; every path that drops the message instead releases it on the
// spot. ref is nil for control messages and for payloads that do not alias
// store buffers.
type outMsg struct {
	msg transport.Message
	ref *paramGen
}

// end marks the session over, releasing its writer and any blocked enqueue.
func (se *session) end() { se.goneOnce.Do(func() { close(se.gone) }) }

// touch refreshes the session lease. Any message from the worker counts as
// liveness — a worker busy computing a large batch proves itself through
// heartbeats, one blocked at a barrier through the push that got it there.
func (se *session) touch(now time.Time) {
	se.mu.Lock()
	se.lastSeen = now
	se.mu.Unlock()
}

// seen returns the time of the last message from the worker.
func (se *session) seen() time.Time {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastSeen
}

// sessionTable tracks the current session of every worker slot.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[int]*session
}

// newSessionTable returns an empty table.
func newSessionTable() *sessionTable {
	return &sessionTable{sessions: make(map[int]*session)}
}

// register installs a new session for the worker slot and returns it together
// with the session it superseded (nil if none). The caller ends the old
// session outside the table lock.
func (t *sessionTable) register(worker int, conn transport.Conn, rejoined bool, now time.Time) (sess, old *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, serializes := conn.(transport.SerializingSender)
	sess = &session{
		worker:     worker,
		conn:       conn,
		rejoined:   rejoined,
		serializes: serializes,
		outbox:     make(chan outMsg, 64),
		gone:       make(chan struct{}),
		lastSeen:   now,
	}
	old = t.sessions[worker]
	t.sessions[worker] = sess
	return sess, old
}

// drop removes sess if it is still the worker's current session and reports
// whether it was — a superseded session returns false, so a stale
// connection's death never deregisters its successor.
func (t *sessionTable) drop(sess *session) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sessions[sess.worker] != sess {
		return false
	}
	delete(t.sessions, sess.worker)
	return true
}

// get returns the worker's current session, or nil.
func (t *sessionTable) get(worker int) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions[worker]
}

// current reports whether sess is still the worker's live session.
func (t *sessionTable) current(sess *session) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions[sess.worker] == sess
}

// list returns a snapshot of all live sessions.
func (t *sessionTable) list() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.sessions))
	for _, se := range t.sessions {
		out = append(out, se)
	}
	return out
}
