package ps

import (
	"time"

	"dssp/internal/obs"
)

// serverMetrics is the server's live instrumentation bundle: every counter,
// gauge and histogram the push/pull/session/checkpoint paths touch,
// resolved once at construction so the hot paths pay only atomic updates.
// The unified counters here are the single source of truth the public
// accessors (Pushes, Dropped, Departures, Rejoins) and the /statusz
// snapshot read — there is no second, ad-hoc set of fields to drift from.
type serverMetrics struct {
	pushes        *obs.Counter
	droppedPolicy *obs.Counter
	droppedGuard  *obs.Counter
	releases      *obs.Counter
	departures    *obs.Counter
	rejoins       *obs.Counter

	staleness   *obs.Histogram
	phaseDecode *obs.Histogram
	phaseGuard  *obs.Histogram
	phasePolicy *obs.Histogram
	releaseLag  *obs.Histogram

	pulls           *obs.Counter
	pullSeconds     *obs.Histogram
	chunksFull      *obs.Counter
	chunksUnchanged *obs.Counter

	guardFlags     *obs.Counter
	guardEvictions *obs.Counter

	clusterMapRequests *obs.Counter
	clusterAnnounces   *obs.Counter
	clusterPromotions  *obs.Counter

	treePartials      *obs.Counter
	treePartialSize   *obs.Histogram
	treeChildJoins    *obs.Counter
	treeChildLeaves   *obs.Counter
	treeLayoutFetches *obs.Counter

	ckptTotal   *obs.Counter
	ckptErrors  *obs.Counter
	ckptFailed  *obs.Gauge
	ckptSeconds *obs.Histogram
	ckptShards  *obs.Counter
	ckptBytes   *obs.Counter
}

// newServerMetrics registers the server metric families on reg. Every
// series — including labeled children — is created here, so a scrape
// before any traffic already shows the full catalog at zero.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	dropped := reg.CounterVec("dssp_push_dropped_total",
		"Pushes rejected without reaching the store, by reason.", "reason")
	phase := reg.HistogramVec("dssp_push_phase_seconds",
		"Push-handler stage latency by phase (decode, guard, policy).",
		obs.LatencyBuckets, "phase")
	chunks := reg.CounterVec("dssp_pull_shard_chunks_total",
		"Pull reply chunks by result: full payload or delta-pull Unchanged.", "result")
	return &serverMetrics{
		pushes: reg.Counter("dssp_push_total",
			"Gradient pushes accepted and applied to the store."),
		droppedPolicy: dropped.With("policy"),
		droppedGuard:  dropped.With("guard"),
		releases: reg.Counter("dssp_release_total",
			"OK release messages delivered to workers."),
		departures: reg.Counter("dssp_departures_total",
			"Sessions deregistered before finishing: connection failures, leaves, lease evictions."),
		rejoins: reg.Counter("dssp_rejoins_total",
			"MsgRejoin registrations accepted."),
		staleness: reg.Histogram("dssp_push_staleness",
			"Iteration staleness of applied pushes (apply version minus base version minus one).",
			obs.StalenessBuckets),
		phaseDecode: phase.With("decode"),
		phaseGuard:  phase.With("guard"),
		phasePolicy: phase.With("policy"),
		releaseLag: reg.Histogram("dssp_release_lag_seconds",
			"Time from release decision to delivery readiness: how long the sequencer waited on the apply gate.",
			obs.LatencyBuckets),
		pulls: reg.Counter("dssp_pull_total",
			"Pull requests served."),
		pullSeconds: reg.Histogram("dssp_pull_seconds",
			"Pull handler latency: request arrival to last chunk enqueued.",
			obs.LatencyBuckets),
		chunksFull:      chunks.With("full"),
		chunksUnchanged: chunks.With("unchanged"),
		guardFlags: reg.Counter("dssp_guard_flags_total",
			"Anomaly flags raised by the push guard."),
		guardEvictions: reg.Counter("dssp_guard_evictions_total",
			"Workers evicted by the push guard."),
		clusterMapRequests: reg.Counter("dssp_cluster_map_requests_total",
			"Cluster-map fetches served (coordinator only; always zero elsewhere)."),
		clusterAnnounces: reg.Counter("dssp_cluster_announces_total",
			"Data-server and backup announcements accepted (coordinator only)."),
		clusterPromotions: reg.Counter("dssp_cluster_promotions_total",
			"Backup promotions applied to the cluster map (coordinator only)."),
		treePartials: reg.Counter("dssp_tree_partials_total",
			"Aggregated relay partials accepted into the store (each stands in for several logical pushes)."),
		treePartialSize: reg.Histogram("dssp_tree_partial_size",
			"Logical pushes carried by each accepted relay partial.",
			obs.SizeBuckets),
		treeChildJoins: reg.Counter("dssp_tree_child_joins_total",
			"Worker registrations accepted through relay trunks."),
		treeChildLeaves: reg.Counter("dssp_tree_child_leaves_total",
			"Worker departures forwarded by relay trunks (relay deaths sweep their children through the same counter)."),
		treeLayoutFetches: reg.Counter("dssp_tree_layout_fetches_total",
			"Aggregation-tree layout requests served."),
		ckptTotal: reg.Counter("dssp_checkpoint_total",
			"Checkpoint save attempts."),
		ckptErrors: reg.Counter("dssp_checkpoint_errors_total",
			"Checkpoint save failures."),
		ckptFailed: reg.Gauge("dssp_checkpoint_last_failed",
			"1 when the most recent checkpoint save failed, 0 otherwise."),
		ckptSeconds: reg.Histogram("dssp_checkpoint_seconds",
			"Checkpoint save duration.", obs.LatencyBuckets),
		ckptShards: reg.Counter("dssp_checkpoint_shards_written_total",
			"Shard segments serialized by checkpoint saves; unchanged shards are skipped by incremental saves and not counted."),
		ckptBytes: reg.Counter("dssp_checkpoint_bytes_written_total",
			"Bytes written by checkpoint saves (segments plus manifests)."),
	}
}

// storeMetrics instruments the store's apply pipeline. The store carries
// it only when a server installed it (Store.instrument): bare stores —
// including the pinned hot-path benchmarks — keep nil and pay a single
// pointer test per batch.
type storeMetrics struct {
	applyBatch   *obs.Histogram
	applySeconds *obs.Histogram
	cloneSeconds *obs.Histogram
	cloneReuse   *obs.Counter
	cloneAlloc   *obs.Counter
}

// newStoreMetrics registers the store metric families on reg.
func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	return &storeMetrics{
		applyBatch: reg.Histogram("dssp_store_apply_batch_size",
			"Pushes coalesced into one optimizer step by a shard applier.",
			obs.SizeBuckets),
		applySeconds: reg.Histogram("dssp_store_apply_seconds",
			"Shard applier batch latency: aggregation, COW clone, and optimizer step.",
			obs.LatencyBuckets),
		cloneSeconds: reg.Histogram("dssp_store_clone_seconds",
			"Copy-on-write clone time within a shard apply.",
			obs.LatencyBuckets),
		cloneReuse: reg.Counter("dssp_store_clone_reuse_total",
			"Copy-on-write publications that recycled a retired generation's buffers instead of allocating."),
		cloneAlloc: reg.Counter("dssp_store_clone_alloc_total",
			"Copy-on-write publications that allocated fresh parameter buffers."),
	}
}

// clientMetrics instruments the worker side: how long pulls take
// end-to-end and how long a push round-trip (send to OK) blocks the
// training loop — the live form of the paper's waiting-time metric.
type clientMetrics struct {
	pullSeconds    *obs.Histogram
	pushRTTSeconds *obs.Histogram
	iterations     *obs.Counter
}

// newClientMetrics registers the worker metric families on reg.
func newClientMetrics(reg *obs.Registry) *clientMetrics {
	return &clientMetrics{
		pullSeconds: reg.Histogram("dssp_worker_pull_seconds",
			"Worker-observed pull latency (request to fully reassembled weights).",
			obs.LatencyBuckets),
		pushRTTSeconds: reg.Histogram("dssp_worker_push_rtt_seconds",
			"Worker-observed push round-trip: gradients sent to OK received (includes policy wait).",
			obs.LatencyBuckets),
		iterations: reg.Counter("dssp_worker_iterations_total",
			"Training iterations completed (push round-trips)."),
	}
}

// observe is a nil-safe duration observation helper.
func observeSince(h *obs.Histogram, start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}
