package ps

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

func TestPartitionBySizeCoversAndBalances(t *testing.T) {
	cases := []struct {
		sizes []int
		n     int
	}{
		{[]int{10}, 1},
		{[]int{1, 1, 1, 1}, 4},
		{[]int{100, 1, 1, 1}, 2},
		{[]int{1, 1, 1, 100}, 2},
		{[]int{5, 5, 5, 5, 5, 5, 5, 5}, 3},
		{[]int{1000, 500, 250, 125, 60, 30, 15, 8, 4, 2}, 4},
	}
	for _, c := range cases {
		ranges := partitionBySize(c.sizes, c.n)
		if len(ranges) != c.n {
			t.Errorf("sizes %v, n=%d: got %d ranges", c.sizes, c.n, len(ranges))
			continue
		}
		next := 0
		for i, r := range ranges {
			if r.Start != next {
				t.Errorf("sizes %v, n=%d: range %d starts at %d, want %d", c.sizes, c.n, i, r.Start, next)
			}
			if r.End <= r.Start {
				t.Errorf("sizes %v, n=%d: range %d is empty", c.sizes, c.n, i)
			}
			next = r.End
		}
		if next != len(c.sizes) {
			t.Errorf("sizes %v, n=%d: ranges end at %d, want %d", c.sizes, c.n, next, len(c.sizes))
		}
	}
}

func TestStoreShardCountClampedToTensorCount(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(2), tensor.New(3)}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2 (clamped to tensor count)", st.Shards())
	}
	if st.NumTensors() != 2 {
		t.Fatalf("NumTensors() = %d, want 2", st.NumTensors())
	}
	start, end := st.ShardRange(0)
	if start != 0 || end == 0 {
		t.Fatalf("ShardRange(0) = [%d,%d)", start, end)
	}
}

// TestShardedStoreMatchesUnsharded applies the same update sequence to a
// single-shard store and a maximally sharded store and requires bit-identical
// parameters: sharding must not change the training math, only its locking.
func TestShardedStoreMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	initial := []*tensor.Tensor{
		tensor.New(7, 5).RandNormal(rng, 0, 1),
		tensor.New(13).RandNormal(rng, 0, 1),
		tensor.New(3, 4, 2).RandNormal(rng, 0, 1),
		tensor.New(1).RandNormal(rng, 0, 1),
		tensor.New(6, 6).RandNormal(rng, 0, 1),
	}
	// Momentum + weight decay exercises per-shard optimizer state.
	single, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.05, 0.9, 1e-4), 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.05, 0.9, 1e-4), len(initial))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != len(initial) {
		t.Fatalf("sharded store has %d shards, want %d", sharded.Shards(), len(initial))
	}

	for step := 0; step < 50; step++ {
		grads := make([]*tensor.Tensor, len(initial))
		for i, p := range initial {
			grads[i] = tensor.New(p.Shape()...).RandNormal(rng, 0, 0.1)
		}
		v1, err := single.Apply(grads)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := sharded.Apply(grads)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("step %d: versions diverge (%d vs %d)", step, v1, v2)
		}
		if step == 24 {
			single.SetLearningRate(0.01)
			sharded.SetLearningRate(0.01)
		}
	}

	p1, _ := single.Snapshot()
	p2, _ := sharded.Snapshot()
	if !bytes.Equal(tensor.EncodeTensors(p1), tensor.EncodeTensors(p2)) {
		t.Fatal("sharded and unsharded stores produced different parameters for the same update sequence")
	}
}

// TestStoreConcurrentApplySnapshotHammer drives concurrent writers and
// readers through the store; it exists to be run under -race and to verify
// the aggregate version counts every apply exactly once.
func TestStoreConcurrentApplySnapshotHammer(t *testing.T) {
	initial := []*tensor.Tensor{
		tensor.New(32, 32), tensor.New(32), tensor.New(16, 16), tensor.New(16), tensor.New(8),
	}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.01, 0.9, 0), 4)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, applies = 4, 4, 50
	var writerWg, readerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			grads := make([]*tensor.Tensor, len(initial))
			for i, p := range initial {
				grads[i] = tensor.Full(0.01, p.Shape()...)
			}
			for i := 0; i < applies; i++ {
				if _, err := st.Apply(grads); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				params, version := st.Snapshot()
				if len(params) != len(initial) || version < 0 {
					t.Errorf("snapshot returned %d tensors, version %d", len(params), version)
					return
				}
				for s := 0; s < st.Shards(); s++ {
					if ts, _, _ := st.SnapshotShard(s); len(ts) == 0 {
						t.Errorf("shard %d snapshot empty", s)
						return
					}
				}
				_ = st.Version()
				_ = st.ParamCount()
				st.SetLearningRate(0.01)
			}
		}(r)
	}

	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	if got := st.Version(); got != writers*applies {
		t.Fatalf("version = %d, want %d", got, writers*applies)
	}
}

// TestClientPullReassemblesChunkedWeights pulls from a server whose store has
// several shards and verifies the streamed chunks reassemble into exactly the
// store's parameters, in global tensor order.
func TestClientPullReassemblesChunkedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	initial := []*tensor.Tensor{
		tensor.New(9, 3).RandNormal(rng, 0, 1),
		tensor.New(4).RandNormal(rng, 0, 1),
		tensor.New(5, 5).RandNormal(rng, 0, 1),
		tensor.New(2, 2, 2).RandNormal(rng, 0, 1),
	}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 3 {
		t.Fatalf("store has %d shards, want 3", st.Shards())
	}
	srv, clients := startTestServer(t, core.MustNewASP(1), st)
	_ = srv

	pulled, version, err := clients[0].Pull()
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 {
		t.Fatalf("pulled version = %d, want 0", version)
	}
	want, _ := st.Snapshot()
	if !bytes.Equal(tensor.EncodeTensors(pulled), tensor.EncodeTensors(want)) {
		t.Fatal("chunked pull did not reassemble the store's parameters")
	}

	// After an update the pull must reflect it.
	grads := make([]*tensor.Tensor, len(initial))
	for i, p := range initial {
		grads[i] = tensor.Full(1, p.Shape()...)
	}
	if err := clients[0].PushAndWait(grads, 0, 0); err != nil {
		t.Fatal(err)
	}
	pulled, version, err = clients[0].Pull()
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("pulled version = %d, want 1", version)
	}
	want, _ = st.Snapshot()
	if !bytes.Equal(tensor.EncodeTensors(pulled), tensor.EncodeTensors(want)) {
		t.Fatal("chunked pull after push did not match the store")
	}
}

// TestConcurrentPullersSeeConsistentShards runs many pulling clients against
// a server whose store is being pushed to, under a multi-shard layout; every
// reassembled pull must carry tensors of the right shapes with every shard
// internally consistent (all elements of a tensor equal, since every push
// applies a uniform gradient).
func TestConcurrentPullersSeeConsistentShards(t *testing.T) {
	initial := []*tensor.Tensor{
		tensor.New(16, 16), tensor.New(16), tensor.New(8, 8), tensor.New(8),
	}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 5
	_, clients := startTestServer(t, core.MustNewASP(workers), st)

	grads := make([]*tensor.Tensor, len(initial))
	for i, p := range initial {
		grads[i] = tensor.Full(1, p.Shape()...)
	}

	var wg sync.WaitGroup
	// Worker 0 pushes; the rest pull concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := clients[0].PushAndWait(grads, int64(i), i); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
	}()
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				params, _, err := clients[w].Pull()
				if err != nil {
					t.Errorf("worker %d pull %d: %v", w, i, err)
					return
				}
				for j, p := range params {
					if !p.SameShape(initial[j]) {
						t.Errorf("worker %d pull %d: tensor %d shape %v, want %v",
							w, i, j, p.Shape(), initial[j].Shape())
						return
					}
					// SGD with lr=1 and unit gradients keeps every element of
					// a tensor identical; a torn tensor would break this.
					d := p.Data()
					for _, v := range d {
						if v != d[0] {
							t.Errorf("worker %d pull %d: tensor %d torn (%v vs %v)", w, i, j, v, d[0])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
