package ps

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// shard is one independently locked partition of the model: a contiguous run
// of parameter tensors, the optimizer state that updates them, and a version
// counter incremented on every update applied to the shard.
//
// Each shard has its own optimizer clone so that lazily allocated
// per-parameter state (momentum velocity) is indexed by position within the
// shard, never by global tensor index.
//
// Updates are not applied by the pushing goroutine: EnqueueApply appends the
// shard's gradient slice to pending, and a persistent per-shard applier
// goroutine (Store.applier) drains the queue. When several pushes are queued
// the applier coalesces them — it sums the gradient slices and takes one
// optimizer step with one copy-on-write publication, bumping version and
// applied by the batch size so version semantics are indistinguishable from
// applying the pushes one at a time.
type shard struct {
	mu      sync.RWMutex
	gen     *paramGen
	opt     optimizer.Optimizer
	version int64

	// retired is the applier-owned pool of superseded generations awaiting
	// reuse (paramgen.go); reuses/allocs count publication buffer fates and
	// back Store.CloneStats.
	retired []*paramGen
	reuses  atomic.Int64
	allocs  atomic.Int64

	// agg replaces plain summation when a robust aggregator is configured
	// (Store.SetAggregator); nil keeps the classic sum fast path. Only the
	// applier reads it after configuration.
	agg aggregator

	// applied counts the pushes this shard has absorbed; the store-wide
	// applied version is the minimum over shards. Unlike version (which the
	// checkpoint restore path also bumps, to invalidate the packed cache) it
	// counts exactly the pushes routed through the appliers since the last
	// restore.
	applied atomic.Int64

	// pendingMu guards pending (the queue feeding this shard's applier) and
	// weights, its parallel per-entry weight list: an entry of weight k is a
	// pre-aggregated gradient standing in for k logical pushes (a relay's
	// forwarded partial), counting k tickets toward window fills and version
	// advancement. pendingWeight is the queued weight total. wake has one
	// slot and is signalled after every enqueue. spare and spareWeights are
	// the drained-out queue slices from the previous batch, recycled so the
	// steady state allocates no queue storage.
	pendingMu     sync.Mutex
	pending       [][]*tensor.Tensor
	weights       []int64
	pendingWeight int64
	spare         [][]*tensor.Tensor
	spareWeights  []int64
	wake          chan struct{}

	// sumBuf is the applier's coalescing scratch: the summed gradient slices
	// of one batch, reused across batches. Only the applier touches it.
	sumBuf []*tensor.Tensor

	// packed caches the compressed form of the published snapshot for the
	// compressed pull path; packedVersion is the shard version it encodes.
	// Guarded by packedMu, separate from mu so a cache fill never blocks
	// gradient application or uncompressed readers.
	packedMu      sync.Mutex
	packed        []compress.Packed
	packedVersion int64
}

// enqueue appends one push's gradient slice to the shard's apply queue with
// the given ticket weight (1 for an ordinary push, k for a relay partial
// standing in for k logical pushes) and wakes the applier. The tensors must
// stay unmodified until the push's last ticket is applied
// (Store.WaitApplied); the server's release gating guarantees that for every
// wire path.
func (sh *shard) enqueue(grads []*tensor.Tensor, weight int64) {
	sh.pendingMu.Lock()
	sh.pending = append(sh.pending, grads)
	sh.weights = append(sh.weights, weight)
	sh.pendingWeight += weight
	sh.pendingMu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// takePending swaps out the current queue contents, returning them as one
// batch (nil when the queue is empty). The swapped-in slices are the previous
// batch's storage, so two batches' worth of queue capacity is reused
// indefinitely.
func (sh *shard) takePending() ([][]*tensor.Tensor, []int64) {
	return sh.takeBatch(1, 0)
}

// takeBatch is the window-aware queue drain: it returns the queued pushes
// (and their parallel ticket weights) as one batch when the soft aggregation
// barrier is met — at least window tickets' worth of weight is waiting, or a
// demanded ticket (a queued release, an explicit flush) lies beyond what
// this shard has applied — and nil otherwise, leaving the queue to keep
// filling. window 1 reproduces the classic drain-whatever-is-there behaviour
// exactly.
func (sh *shard) takeBatch(window, demand int64) ([][]*tensor.Tensor, []int64) {
	sh.pendingMu.Lock()
	n := sh.pendingWeight
	if n == 0 || (n < window && demand <= sh.applied.Load()) {
		sh.pendingMu.Unlock()
		return nil, nil
	}
	batch, weights := sh.pending, sh.weights
	sh.pending = sh.spare[:0]
	sh.weights = sh.spareWeights[:0]
	sh.pendingWeight = 0
	sh.pendingMu.Unlock()
	sh.spare = batch
	sh.spareWeights = weights
	return batch, weights
}

// applyBatch absorbs one batch of queued gradient slices under the shard's
// write lock, copy-on-write: the update is written into a destination
// generation that is either a recycled retired generation (steady state:
// zero allocations) or freshly allocated buffers, and published; tensors
// already handed out to readers are never mutated. version and applied
// advance by the batch's total ticket weight — the batch size when every
// entry is an ordinary weight-1 push, more when relay partials (each
// standing in for several logical pushes) are present — so readers observe
// the same counts as applying every logical push one at a time.
//
// When the shard's optimizer supports the fused step and no robust
// aggregator is configured, the whole batch — gradient sum, weight decay,
// momentum, parameter write — is applied in one pass straight from the
// queued gradients into the destination buffers, with results bit-identical
// to the legacy sum+clone+Step sequence (optimizer.FusedStepper's contract).
//
// m and tr are the server-installed instrumentation (Store.instrument);
// both may be nil, in which case the method takes no timestamps at all.
func (sh *shard) applyBatch(batch [][]*tensor.Tensor, weights []int64, m *storeMetrics, tr *obs.PushTracer) {
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	total := int64(0)
	for _, w := range weights {
		total += w
	}
	// The aggregation seam: a configured robust aggregator reduces the batch
	// in place of the classic sum; the fused path then applies the combined
	// gradient as a batch of one. Both paths leave the queued gradient
	// slices untouched — the result aliases batch[0] or aggregator-owned
	// scratch.
	fused, _ := sh.opt.(optimizer.FusedStepper)
	var grads []*tensor.Tensor
	switch {
	case sh.agg != nil:
		grads = sh.agg.combine(batch)
	case fused != nil:
		// The fused step consumes the raw batch; no separate sum pass.
	case len(batch) > 1:
		grads = sh.sum(batch)
	default:
		grads = batch[0]
	}
	sh.mu.Lock()
	var cloneStart time.Time
	if m != nil {
		cloneStart = time.Now()
	}
	cur := sh.gen
	next := sh.takeGen(m)
	if m != nil {
		m.cloneSeconds.Observe(time.Since(cloneStart).Seconds())
	}
	switch {
	case fused != nil && grads == nil:
		fused.StepInto(next.params, cur.params, batch)
	case fused != nil:
		fused.StepInto(next.params, cur.params, [][]*tensor.Tensor{grads})
	default:
		for i, p := range cur.params {
			copy(next.params[i].Data(), p.Data())
		}
		sh.opt.Step(next.params, grads)
	}
	sh.gen = next
	sh.version += total
	sh.mu.Unlock()
	sh.retireGen(cur)
	// Every push spans every shard, so this shard's applied counter walks
	// the same ticket sequence the store hands out (the checkpoint restore
	// path re-bases it); the batch covered tickets (to-total, to].
	to := sh.applied.Add(total)
	if m != nil {
		m.applyBatch.Observe(float64(total))
		m.applySeconds.Observe(time.Since(start).Seconds())
	}
	if tr != nil {
		tr.Applied(to-total, to, int(total), time.Now())
	}
}

// sum coalesces a batch into the shard's reused summation scratch. The
// queued gradient slices themselves are read-only.
func (sh *shard) sum(batch [][]*tensor.Tensor) []*tensor.Tensor {
	first := batch[0]
	if sh.sumBuf == nil {
		sh.sumBuf = make([]*tensor.Tensor, len(first))
		for i, g := range first {
			sh.sumBuf[i] = tensor.New(g.Shape()...)
		}
	}
	for i, g := range first {
		copy(sh.sumBuf[i].Data(), g.Data())
	}
	for _, grads := range batch[1:] {
		for i, g := range grads {
			sh.sumBuf[i].Add(g)
		}
	}
	return sh.sumBuf
}

// shardRange is the half-open interval of global tensor indices [Start, End)
// owned by one shard. Shards are contiguous so that a weights chunk on the
// wire is described by a single base offset.
type shardRange struct {
	Start, End int
}

// defaultShards picks the shard count when the caller does not: one shard per
// available CPU, capped at the tensor count (a shard must own at least one
// tensor).
func defaultShards(tensors int) int {
	n := runtime.GOMAXPROCS(0)
	if n > tensors {
		n = tensors
	}
	if n < 1 {
		n = 1
	}
	return n
}

// partitionBySize splits tensors with the given element counts into n
// contiguous, size-balanced blocks. It greedily closes a block once it holds
// its proportional share of the remaining elements, while always leaving
// enough tensors for the remaining blocks; every block is non-empty and the
// blocks cover [0, len(sizes)) exactly. n must be in [1, len(sizes)].
func partitionBySize(sizes []int, n int) []shardRange {
	total := 0
	for _, s := range sizes {
		total += s
	}
	ranges := make([]shardRange, 0, n)
	start := 0
	remaining := total
	for b := 0; b < n; b++ {
		blocksLeft := n - b
		// This block must leave at least blocksLeft-1 tensors for its
		// successors.
		lastStart := len(sizes) - (blocksLeft - 1)
		end := start + 1
		acc := sizes[start]
		target := remaining / blocksLeft
		for end < lastStart && acc < target {
			acc += sizes[end]
			end++
		}
		if b == n-1 {
			end = len(sizes)
		}
		ranges = append(ranges, shardRange{Start: start, End: end})
		remaining -= acc
		start = end
	}
	return ranges
}
