package ps

import (
	"runtime"
	"sync"

	"dssp/internal/compress"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// shard is one independently locked partition of the model: a contiguous run
// of parameter tensors, the optimizer state that updates them, and a version
// counter incremented on every update applied to the shard.
//
// Each shard has its own optimizer clone so that lazily allocated
// per-parameter state (momentum velocity) is indexed by position within the
// shard, never by global tensor index.
type shard struct {
	mu      sync.RWMutex
	params  []*tensor.Tensor
	opt     optimizer.Optimizer
	version int64

	// packed caches the compressed form of the published snapshot for the
	// compressed pull path; packedVersion is the shard version it encodes.
	// Guarded by packedMu, separate from mu so a cache fill never blocks
	// gradient application or uncompressed readers.
	packedMu      sync.Mutex
	packed        []compress.Packed
	packedVersion int64
}

// viewVersioned returns the shard's currently published tensors together
// with the shard-local version that published them.
func (sh *shard) viewVersioned() ([]*tensor.Tensor, int64) {
	sh.mu.RLock()
	params, version := sh.params, sh.version
	sh.mu.RUnlock()
	return params, version
}

// shardRange is the half-open interval of global tensor indices [Start, End)
// owned by one shard. Shards are contiguous so that a weights chunk on the
// wire is described by a single base offset.
type shardRange struct {
	Start, End int
}

// defaultShards picks the shard count when the caller does not: one shard per
// available CPU, capped at the tensor count (a shard must own at least one
// tensor).
func defaultShards(tensors int) int {
	n := runtime.GOMAXPROCS(0)
	if n > tensors {
		n = tensors
	}
	if n < 1 {
		n = 1
	}
	return n
}

// partitionBySize splits tensors with the given element counts into n
// contiguous, size-balanced blocks. It greedily closes a block once it holds
// its proportional share of the remaining elements, while always leaving
// enough tensors for the remaining blocks; every block is non-empty and the
// blocks cover [0, len(sizes)) exactly. n must be in [1, len(sizes)].
func partitionBySize(sizes []int, n int) []shardRange {
	total := 0
	for _, s := range sizes {
		total += s
	}
	ranges := make([]shardRange, 0, n)
	start := 0
	remaining := total
	for b := 0; b < n; b++ {
		blocksLeft := n - b
		// This block must leave at least blocksLeft-1 tensors for its
		// successors.
		lastStart := len(sizes) - (blocksLeft - 1)
		end := start + 1
		acc := sizes[start]
		target := remaining / blocksLeft
		for end < lastStart && acc < target {
			acc += sizes[end]
			end++
		}
		if b == n-1 {
			end = len(sizes)
		}
		ranges = append(ranges, shardRange{Start: start, End: end})
		remaining -= acc
		start = end
	}
	return ranges
}
