package ps

import (
	"testing"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/transport"
)

// codecBenchConfigs are the wire configurations every codec benchmark
// compares: the identity baseline first, then each lossy codec.
func codecBenchConfigs() []compress.Config {
	return []compress.Config{
		{},
		{Codec: compress.FP16},
		{Codec: compress.Int8},
		{Codec: compress.TopK, TopK: 0.1},
	}
}

// startBenchClient wires one client to a fresh ASP server speaking cfg and
// returns the client (the pull path compresses when cfg.Pull is set).
func startBenchClient(b *testing.B, cfg compress.Config) *Client {
	b.Helper()
	st, err := NewStoreSharded(benchModel(), optimizer.NewSGD(0.01), 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Workers: 1,
		Policy:  core.MustNewASP(1),
		Store:   st,
		Options: Options{Compression: cfg},
	})
	if err != nil {
		b.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	b.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})
	conn, err := listener.Dial()
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewClientCompressed(conn, 0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	if err := client.Register(); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkPushLatencyByCodec measures a full push round trip — worker-side
// compression, server-side decompression, policy decision and store apply —
// per codec against the uncompressed baseline, reporting the bytes each
// push put on the wire.
func BenchmarkPushLatencyByCodec(b *testing.B) {
	for _, cfg := range codecBenchConfigs() {
		b.Run(cfg.String(), func(b *testing.B) {
			client := startBenchClient(b, cfg)
			grads := benchGrads()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.PushAndWait(grads, int64(i), i); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pushed, _ := client.Traffic()
			b.ReportMetric(float64(pushed)/float64(b.N), "wire-B/op")
		})
	}
}

// BenchmarkPullLatencyByCodec measures a full pull round trip per codec with
// pull-path compression enabled (value codecs only; topk pulls stay dense by
// design), reporting the bytes each pull moved. The store's per-shard packed
// cache makes the quantization cost amortize across pulls.
func BenchmarkPullLatencyByCodec(b *testing.B) {
	for _, cfg := range []compress.Config{
		{},
		{Codec: compress.FP16, Pull: true},
		{Codec: compress.Int8, Pull: true},
	} {
		b.Run(cfg.String(), func(b *testing.B) {
			client := startBenchClient(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := client.Pull(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, pulled := client.Traffic()
			b.ReportMetric(float64(pulled)/float64(b.N), "wire-B/op")
		})
	}
}

// BenchmarkCompressedTCPPushPull measures the worker iteration over the real
// TCP transport per wire format and codec: this is where the binary frame
// protocol's smaller dense encoding and alias-the-buffer decode turn into
// round-trip latency, and where smaller compressed payloads turn into fewer
// encoded bytes and fewer syscalls. `make proto-bench` runs the gob-vs-binary
// slice of this suite.
func BenchmarkCompressedTCPPushPull(b *testing.B) {
	for _, wire := range []transport.WireFormat{transport.WireBinary, transport.WireGob} {
		for _, cfg := range codecBenchConfigs() {
			b.Run(string(wire)+"/"+cfg.String(), func(b *testing.B) {
				st, err := NewStoreSharded(benchModel(), optimizer.NewSGD(0.01), 0)
				if err != nil {
					b.Fatal(err)
				}
				srv, err := NewServer(ServerConfig{
					Workers: 1,
					Policy:  core.MustNewASP(1),
					Store:   st,
					Options: Options{Compression: cfg},
				})
				if err != nil {
					b.Fatal(err)
				}
				listener, err := transport.ListenWire("127.0.0.1:0", wire)
				if err != nil {
					b.Fatal(err)
				}
				go func() { _ = srv.Serve(listener) }()
				b.Cleanup(func() {
					srv.Stop()
					listener.Close()
				})
				conn, err := transport.DialWire(listener.Addr(), wire)
				if err != nil {
					b.Fatal(err)
				}
				client, err := NewClientCompressed(conn, 0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { client.Close() })
				if err := client.Register(); err != nil {
					b.Fatal(err)
				}
				grads := benchGrads()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := client.PushAndWait(grads, int64(i), i); err != nil {
						b.Fatal(err)
					}
					if _, _, err := client.Pull(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
