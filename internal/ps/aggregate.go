package ps

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dssp/internal/tensor"
)

// Aggregator kinds accepted by AggregatorConfig.Kind.
const (
	// AggSum is plain gradient summation — the classic parameter-server
	// update and the default. It is the undefended baseline: a single
	// Byzantine worker scaling its gradients steers the whole model.
	AggSum = "sum"
	// AggClipped is norm-clipped summation: each push's per-tensor gradient
	// is scaled down to an L2 norm of at most ClipNorm before summing, so no
	// single push can dominate an update. Tensors with a non-finite norm
	// (NaN/Inf gradients) contribute nothing.
	AggClipped = "clipped"
	// AggTrimmedMean is the coordinate-wise trimmed mean over an aggregation
	// window of pushes: per coordinate, the Trim fraction of extreme values
	// on each side is discarded and the mean of the rest — scaled back to
	// sum magnitude — is applied. Non-finite coordinates are rejected before
	// trimming.
	AggTrimmedMean = "trimmed-mean"
	// AggMedian is the coordinate-wise median over an aggregation window,
	// scaled to sum magnitude. The most aggressive robust estimator: up to
	// half the window may lie per coordinate.
	AggMedian = "median"
)

// Default parameters for AggregatorConfig's zero values.
const (
	// DefaultTrim is the per-side trim fraction of the trimmed-mean
	// aggregator: a quarter off each end tolerates one attacker in a window
	// of four.
	DefaultTrim = 0.25
	// DefaultFlushInterval is the window watchdog's tick: a partial
	// aggregation window nobody completes (stragglers, departed workers) is
	// force-published after at most two ticks, bounding the extra release
	// latency windowed aggregation can add.
	DefaultFlushInterval = 2 * time.Millisecond
)

// AggregatorConfig selects how the per-shard appliers reduce a batch of
// queued pushes into one optimizer step. The zero value is plain summation —
// exactly the classic pipeline.
type AggregatorConfig struct {
	// Kind is AggSum (""), AggClipped, AggTrimmedMean or AggMedian.
	Kind string
	// ClipNorm is the per-tensor L2 cap of the clipped aggregator; it must
	// be positive for AggClipped and is ignored elsewhere.
	ClipNorm float64
	// Trim is the trimmed-mean per-side trim fraction in [0, 0.5); 0 selects
	// DefaultTrim. Ignored by the other kinds.
	Trim float64
	// Window is the aggregation window: how many pushes the appliers try to
	// collect before taking a robust step. 0 lets the server pick — 1 for
	// sum/clipped (per-push, no added latency), the worker count for the
	// windowed robust kinds. Partial windows are force-published whenever a
	// release is waiting on them, so paradigms that release per push (ASP,
	// SSP, DSSP) stay live; what the window buys is that concurrent pushes
	// are aggregated robustly instead of summed.
	Window int
	// FlushInterval is the watchdog tick bounding how long a partial window
	// may sit unpublished; 0 selects DefaultFlushInterval. Ignored when the
	// effective window is 1.
	FlushInterval time.Duration
}

// Windowed reports whether the configured kind aggregates over a multi-push
// window by default (the robust order statistics need several contributions
// to reject outliers).
func (c AggregatorConfig) Windowed() bool {
	return c.Kind == AggTrimmedMean || c.Kind == AggMedian
}

// Normalized maps zero values onto their explicit form.
func (c AggregatorConfig) Normalized() AggregatorConfig {
	if c.Kind == "" {
		c.Kind = AggSum
	}
	if c.Kind == AggTrimmedMean && c.Trim == 0 {
		c.Trim = DefaultTrim
	}
	if c.Kind != AggTrimmedMean {
		c.Trim = 0
	}
	if c.Kind != AggClipped {
		c.ClipNorm = 0
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	return c
}

// Validate checks the configuration.
func (c AggregatorConfig) Validate() error {
	switch c.Kind {
	case "", AggSum, AggTrimmedMean, AggMedian:
	case AggClipped:
		if c.ClipNorm <= 0 {
			return fmt.Errorf("ps: clipped aggregator needs a positive clip norm, got %g", c.ClipNorm)
		}
	default:
		return fmt.Errorf("ps: unknown aggregator %q (want %s, %s, %s or %s)",
			c.Kind, AggSum, AggClipped, AggTrimmedMean, AggMedian)
	}
	if c.Trim < 0 || c.Trim >= 0.5 {
		return fmt.Errorf("ps: trim fraction %g outside [0, 0.5)", c.Trim)
	}
	if c.Window < 0 {
		return fmt.Errorf("ps: aggregation window must be non-negative, got %d", c.Window)
	}
	return nil
}

// String renders the configuration, e.g. "trimmed-mean(0.25)/w4".
func (c AggregatorConfig) String() string {
	c = c.Normalized()
	s := c.Kind
	switch c.Kind {
	case AggClipped:
		s = fmt.Sprintf("%s(%g)", c.Kind, c.ClipNorm)
	case AggTrimmedMean:
		s = fmt.Sprintf("%s(%g)", c.Kind, c.Trim)
	}
	if c.Window > 0 {
		s = fmt.Sprintf("%s/w%d", s, c.Window)
	}
	return s
}

// aggregator reduces one batch of queued gradient slices into the single
// update a shard applies. Each shard owns its own instance (implementations
// keep reusable scratch), and the batch's tensors are read-only: the result
// is either an alias of one input (the sum fast path) or written into
// scratch owned by the aggregator.
type aggregator interface {
	// combine reduces batch (len >= 1, homogeneous shapes) into one gradient
	// slice whose magnitude matches the sum of the batch — a window of k
	// pushes advances the version by k, so its update must scale like k
	// pushes.
	combine(batch [][]*tensor.Tensor) []*tensor.Tensor
}

// newAggregator builds one shard's aggregator for a normalized, validated
// configuration. Plain sum returns nil: the shard keeps its classic
// summation fast path, bit-identical to the pre-seam pipeline.
func newAggregator(cfg AggregatorConfig) aggregator {
	switch cfg.Kind {
	case AggClipped:
		return &clippedSum{clip: cfg.ClipNorm}
	case AggTrimmedMean:
		return &coordinateRobust{trim: cfg.Trim}
	case AggMedian:
		return &coordinateRobust{median: true}
	default:
		return nil
	}
}

// scratchFor returns a scratch gradient slice shaped like the reference,
// reusing buf when it is already allocated.
func scratchFor(buf []*tensor.Tensor, ref []*tensor.Tensor) []*tensor.Tensor {
	if buf != nil {
		return buf
	}
	buf = make([]*tensor.Tensor, len(ref))
	for i, g := range ref {
		buf[i] = tensor.New(g.Shape()...)
	}
	return buf
}

// clippedSum sums the batch with each push's tensors norm-clipped first: a
// tensor whose L2 norm exceeds clip is scaled down to exactly clip, and a
// tensor whose norm is not finite (NaN/Inf gradients) is rejected outright.
// Because shards own whole tensors, the per-tensor norm is computed over the
// tensor's full coordinate set — clipping is exact, not per-fragment.
type clippedSum struct {
	clip float64
	buf  []*tensor.Tensor
}

func (a *clippedSum) combine(batch [][]*tensor.Tensor) []*tensor.Tensor {
	a.buf = scratchFor(a.buf, batch[0])
	for i := range a.buf {
		out := a.buf[i].Data()
		for j := range out {
			out[j] = 0
		}
		for _, grads := range batch {
			src := grads[i].Data()
			norm := 0.0
			for _, v := range src {
				norm += float64(v) * float64(v)
			}
			norm = math.Sqrt(norm)
			if math.IsNaN(norm) || math.IsInf(norm, 0) {
				continue // poisoned tensor: contributes nothing
			}
			scale := float32(1)
			if norm > a.clip {
				scale = float32(a.clip / norm)
			}
			for j, v := range src {
				out[j] += v * scale
			}
		}
	}
	return a.buf
}

// coordinateRobust implements the windowed order-statistic aggregators:
// coordinate-wise trimmed mean (trim > 0) or median (median == true) over
// the batch, scaled by the batch size so a window of k pushes has the
// magnitude of k pushes. Non-finite values are excluded per coordinate
// before the statistic; a coordinate with no finite contribution yields 0.
type coordinateRobust struct {
	trim   float64
	median bool
	buf    []*tensor.Tensor
	vals   []float64
}

func (a *coordinateRobust) combine(batch [][]*tensor.Tensor) []*tensor.Tensor {
	k := len(batch)
	a.buf = scratchFor(a.buf, batch[0])
	if cap(a.vals) < k {
		a.vals = make([]float64, 0, k)
	}
	for i := range a.buf {
		out := a.buf[i].Data()
		for j := range out {
			vals := a.vals[:0]
			for _, grads := range batch {
				v := float64(grads[i].Data()[j])
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				vals = append(vals, v)
			}
			out[j] = float32(float64(k) * a.statistic(vals))
		}
	}
	return a.buf
}

// statistic computes the configured order statistic of the finite values of
// one coordinate. vals is scratch and may be reordered.
func (a *coordinateRobust) statistic(vals []float64) float64 {
	m := len(vals)
	if m == 0 {
		return 0
	}
	if m == 1 {
		return vals[0]
	}
	sort.Float64s(vals)
	if a.median {
		if m%2 == 1 {
			return vals[m/2]
		}
		return (vals[m/2-1] + vals[m/2]) / 2
	}
	t := int(math.Ceil(a.trim * float64(m)))
	if 2*t >= m {
		// Too few values to trim both sides: fall back to the median, the
		// limit of trimming everything but the middle.
		if m%2 == 1 {
			return vals[m/2]
		}
		return (vals[m/2-1] + vals[m/2]) / 2
	}
	sum := 0.0
	for _, v := range vals[t : m-t] {
		sum += v
	}
	return sum / float64(m-2*t)
}
