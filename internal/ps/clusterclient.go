package ps

import (
	"errors"
	"fmt"
	"time"

	"dssp/internal/compress"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// RemoteError is an error a server reported explicitly (MsgError) — a
// deliberate rejection, as opposed to a transport failure that retry might
// cure. Callers use errors.As to stop retrying on it.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// ClusterClientConfig tunes a cluster worker's client side.
type ClusterClientConfig struct {
	// Compression is the gradient codec spoken with the data servers (the
	// coordinator leg always negotiates whatever the coordinator speaks —
	// metadata pushes carry no payload worth compressing).
	Compression compress.Config
	// DeltaPull requests version-gated delta pulls on every data link.
	DeltaPull bool
	// MapTimeout bounds how long the initial map fetch retries until the
	// coordinator serves a complete map (all shards owned). Default 10s.
	MapTimeout time.Duration
	// RecoverTimeout bounds how long a failed data link retries — refetching
	// the map and redialing the (possibly promoted) owner — before the
	// iteration fails for good. It must exceed the backups' promotion grace
	// or a worker gives up just before the new owner appears. Default 15s.
	RecoverTimeout time.Duration
}

// dataLink is one registered connection to a data server: the shard range it
// serves, the protocol client on it, and the server's last pulled version
// (the base fragment pushes claim).
type dataLink struct {
	entry   transport.ServerEntry
	conn    transport.Conn
	client  *Client
	version int64
	hbStop  func()
}

// ClusterClient is the worker-side handle to a server group (PROTOCOL.md
// §6): it learns the shard→server map from the coordinator, pulls and pushes
// gradient fragments against every data server, and runs the synchronization
// protocol proper — the push that blocks until the paradigm releases the
// worker — against the coordinator alone.
//
// Like Client, a ClusterClient belongs to one worker goroutine.
//
// Failure handling is asymmetric by design. A dead data link recovers: the
// client refetches the map until a dialable owner for the same shard range
// appears (the primary back up, or its promoted backup) and retries the
// operation, so a data-server crash costs the worker a pause, not the run. A
// dead coordinator does not: it is the single serialization point for
// staleness decisions, and every coordinator-leg error fails fast to the
// caller (DESIGN.md §10).
type ClusterClient struct {
	dial      func(addr string) (transport.Conn, error)
	coordAddr string
	worker    int
	cfg       ClusterClientConfig

	coord     *Client
	coordConn transport.Conn
	links     []*dataLink

	mapVersion   int64
	globalShards int
	total        int

	// lastVersion is the min data-server version of the last Pull — the base
	// the coordinator push claims, in the same units as the coordinator's
	// store version (both count applied global pushes).
	lastVersion int64

	assembled  []*tensor.Tensor
	hbInterval time.Duration
}

// NewClusterClient connects worker to the group coordinated at coordAddr:
// it fetches the cluster map (retrying until complete), registers with the
// coordinator in cluster mode, and opens a registered link to every data
// server. dial opens a connection to an advertised address — injectable so
// in-process transports (tests, the trainer) and TCP share the code.
func NewClusterClient(dial func(addr string) (transport.Conn, error), coordAddr string, worker int, cfg ClusterClientConfig) (*ClusterClient, error) {
	if dial == nil {
		return nil, fmt.Errorf("ps: cluster client needs a dialer")
	}
	if cfg.MapTimeout <= 0 {
		cfg.MapTimeout = 10 * time.Second
	}
	if cfg.RecoverTimeout <= 0 {
		cfg.RecoverTimeout = 15 * time.Second
	}
	c := &ClusterClient{dial: dial, coordAddr: coordAddr, worker: worker, cfg: cfg}
	m, err := c.waitForMap(time.Now().Add(cfg.MapTimeout))
	if err != nil {
		return nil, err
	}
	c.adoptMapHeader(m)

	conn, err := dial(coordAddr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial coordinator %s: %w", coordAddr, err)
	}
	coord, err := NewClientCompressed(conn, worker, compress.Config{Codec: compress.Auto})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	coord.SetCluster(true)
	if err := coord.Register(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ps: register with coordinator: %w", err)
	}
	c.coord, c.coordConn = coord, conn

	for _, e := range m.Servers {
		link, err := c.openLink(e)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.links = append(c.links, link)
	}
	return c, nil
}

// Worker returns the worker ID this client represents.
func (c *ClusterClient) Worker() int { return c.worker }

// MapVersion returns the version of the cluster map the client last adopted.
func (c *ClusterClient) MapVersion() int64 { return c.mapVersion }

// Servers returns the data-server entries the client currently routes to,
// in shard order.
func (c *ClusterClient) Servers() []transport.ServerEntry {
	out := make([]transport.ServerEntry, len(c.links))
	for i, l := range c.links {
		out[i] = l.entry
	}
	return out
}

// adoptMapHeader records the group-wide constants a (complete) map carries.
func (c *ClusterClient) adoptMapHeader(m transport.Message) {
	c.mapVersion = m.MapVersion
	c.globalShards = m.StoreShards
	c.total = m.Total
}

// FetchClusterMap asks the coordinator at addr for its current map on a
// fresh, dedicated connection — never on a registered session, whose stream
// interleaves asynchronous release OKs with replies. The connection is
// closed before returning.
func FetchClusterMap(dial func(addr string) (transport.Conn, error), addr string) (transport.Message, error) {
	conn, err := dial(addr)
	if err != nil {
		return transport.Message{}, fmt.Errorf("ps: dial coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.Send(transport.Message{Type: transport.MsgClusterMap}); err != nil {
		return transport.Message{}, fmt.Errorf("ps: cluster map request to %s: %w", addr, err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return transport.Message{}, fmt.Errorf("ps: cluster map from %s: %w", addr, err)
	}
	switch msg.Type {
	case transport.MsgError:
		return transport.Message{}, fmt.Errorf("ps: cluster map from %s: %w", addr, &RemoteError{Msg: msg.Error})
	case transport.MsgClusterMap:
		return msg, nil
	default:
		return transport.Message{}, fmt.Errorf("ps: cluster map from %s: unexpected %v reply", addr, msg.Type)
	}
}

// validateMap checks a map reply for completeness: entries in shard order
// covering every global shard and tensor exactly once. A coordinator whose
// data servers are still announcing serves partial maps; callers retry until
// coverage closes.
func validateMap(m transport.Message) error {
	if m.StoreShards <= 0 || m.Total <= 0 {
		return fmt.Errorf("ps: cluster map lacks the group layout (%d shards, %d tensors)", m.StoreShards, m.Total)
	}
	if len(m.Servers) == 0 {
		return fmt.Errorf("ps: cluster map has no data servers yet")
	}
	wantShard, wantTensor := 0, 0
	for i, e := range m.Servers {
		if e.ShardLo != wantShard || e.TensorLo != wantTensor {
			return fmt.Errorf("ps: cluster map entry %d starts at shard %d/tensor %d, want %d/%d",
				i, e.ShardLo, e.TensorLo, wantShard, wantTensor)
		}
		if e.ShardHi <= e.ShardLo || e.TensorHi <= e.TensorLo {
			return fmt.Errorf("ps: cluster map entry %d has an empty range", i)
		}
		wantShard, wantTensor = e.ShardHi, e.TensorHi
	}
	if wantShard != m.StoreShards || wantTensor != m.Total {
		return fmt.Errorf("ps: cluster map covers %d/%d shards and %d/%d tensors",
			wantShard, m.StoreShards, wantTensor, m.Total)
	}
	return nil
}

// waitForMap fetches the map until it validates complete or the deadline
// passes. Transport failures are retried (the coordinator may still be
// starting); an explicit server rejection ("not a cluster coordinator") is
// permanent and returned immediately.
func (c *ClusterClient) waitForMap(deadline time.Time) (transport.Message, error) {
	backoff := 5 * time.Millisecond
	for {
		m, err := FetchClusterMap(c.dial, c.coordAddr)
		if err == nil {
			err = validateMap(m)
			if err == nil {
				return m, nil
			}
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return transport.Message{}, err
		}
		if time.Now().After(deadline) {
			return transport.Message{}, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 200*time.Millisecond {
			backoff = 200 * time.Millisecond
		}
	}
}

// openLink dials one data server and registers on it.
func (c *ClusterClient) openLink(e transport.ServerEntry) (*dataLink, error) {
	conn, err := c.dial(e.Addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial data server %s: %w", e.Addr, err)
	}
	client, err := NewClientCompressed(conn, c.worker, c.cfg.Compression)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	client.SetDeltaPull(c.cfg.DeltaPull)
	client.SetCluster(true)
	if err := client.Register(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ps: register with data server %s: %w", e.Addr, err)
	}
	link := &dataLink{entry: e, conn: conn, client: client}
	if c.hbInterval > 0 {
		link.hbStop = client.StartHeartbeats(c.hbInterval)
	}
	return link, nil
}

// closeLink tears one link down (idempotent on a nil hbStop).
func closeLink(l *dataLink) {
	if l.hbStop != nil {
		l.hbStop()
	}
	_ = l.conn.Close()
}

// recover replaces a dead data link: it refetches the map until the entry
// owning the same shard range is dialable again — the restarted primary, or
// the backup a promotion routed in — and registers a fresh session there.
// cause is returned (wrapped) if the recover window closes first.
func (c *ClusterClient) recover(i int, cause error) error {
	old := c.links[i]
	closeLink(old)
	deadline := time.Now().Add(c.cfg.RecoverTimeout)
	backoff := 5 * time.Millisecond
	for {
		m, err := FetchClusterMap(c.dial, c.coordAddr)
		if err == nil {
			err = validateMap(m)
		}
		if err == nil {
			var entry *transport.ServerEntry
			for j := range m.Servers {
				if m.Servers[j].ShardLo == old.entry.ShardLo && m.Servers[j].ShardHi == old.entry.ShardHi {
					entry = &m.Servers[j]
					break
				}
			}
			if entry == nil {
				err = fmt.Errorf("ps: cluster map no longer lists shards [%d, %d)", old.entry.ShardLo, old.entry.ShardHi)
			} else {
				var link *dataLink
				if link, err = c.openLink(*entry); err == nil {
					c.adoptMapHeader(m)
					c.links[i] = link
					return nil
				}
			}
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return fmt.Errorf("ps: data link for shards [%d, %d) unrecoverable: %w (after %v)",
				old.entry.ShardLo, old.entry.ShardHi, err, cause)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ps: data link for shards [%d, %d) did not recover: %w (last: %v)",
				old.entry.ShardLo, old.entry.ShardHi, cause, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
}

// Pull assembles the global weights from every data server and returns them
// with the minimum data-server version seen — the conservative base for this
// iteration's staleness accounting, exactly as a chunked single-server pull
// reports the smallest chunk version. The returned slice and tensors follow
// Client.Pull's read-only contract. A dead link recovers mid-pull; the pull
// against its replacement re-runs for that range only (weights are
// idempotent reads).
func (c *ClusterClient) Pull() ([]*tensor.Tensor, int64, error) {
	if cap(c.assembled) < c.total {
		c.assembled = make([]*tensor.Tensor, c.total)
	}
	out := c.assembled[:c.total]
	version := int64(-1)
	for i := range c.links {
		ts, v, err := c.linkPull(i)
		if err != nil {
			return nil, 0, err
		}
		e := c.links[i].entry
		if len(ts) != e.TensorHi-e.TensorLo {
			return nil, 0, fmt.Errorf("ps: data server %s returned %d tensors for range [%d, %d)",
				e.Addr, len(ts), e.TensorLo, e.TensorHi)
		}
		copy(out[e.TensorLo:e.TensorHi], ts)
		c.links[i].version = v
		if version < 0 || v < version {
			version = v
		}
	}
	c.lastVersion = version
	return out, version, nil
}

// linkPull pulls one link, recovering it on failure.
func (c *ClusterClient) linkPull(i int) ([]*tensor.Tensor, int64, error) {
	for {
		ts, v, err := c.links[i].client.Pull()
		if err == nil {
			return ts, v, nil
		}
		if rerr := c.recover(i, err); rerr != nil {
			return nil, 0, rerr
		}
	}
}

// PushAndWait pushes one global gradient and blocks until the paradigm
// releases the worker. The fragments fan out to every data server first
// (PushAsync on each link, then one WaitOK per link — an OK from a data
// server means "fragment applied", so by the time the coordinator leg runs,
// this iteration's bytes are visible group-wide; BSP's all-updates-visible
// guarantee reduces to the single-server argument). The final metadata-only
// push to the coordinator is the one the synchronization policy gates.
//
// A data-link failure recovers and re-sends that fragment; a fragment whose
// OK was lost in the crash may therefore apply twice, the same at-least-once
// semantics a single-server reconnect has. A coordinator failure fails fast.
func (c *ClusterClient) PushAndWait(grads []*tensor.Tensor, baseVersion int64, iteration int) error {
	if len(grads) != c.total {
		return fmt.Errorf("ps: cluster push carries %d tensors, model has %d", len(grads), c.total)
	}
	failed := make([]bool, len(c.links))
	anyFailed := false
	for i, l := range c.links {
		if err := l.client.PushAsync(grads[l.entry.TensorLo:l.entry.TensorHi], l.version, iteration); err != nil {
			failed[i] = true
			anyFailed = true
		}
	}
	for i, l := range c.links {
		if failed[i] {
			continue
		}
		if err := l.client.WaitOK(); err != nil {
			failed[i] = true
			anyFailed = true
		}
	}
	if anyFailed {
		for i := range c.links {
			if !failed[i] {
				continue
			}
			if err := c.retryFragment(i, grads, iteration); err != nil {
				return err
			}
		}
	}
	return c.coordPush(baseVersion, iteration)
}

// retryFragment recovers link i and re-sends its fragment until it lands.
func (c *ClusterClient) retryFragment(i int, grads []*tensor.Tensor, iteration int) error {
	err := fmt.Errorf("ps: fragment push to %s failed", c.links[i].entry.Addr)
	for {
		if rerr := c.recover(i, err); rerr != nil {
			return rerr
		}
		l := c.links[i]
		err = l.client.PushAsync(grads[l.entry.TensorLo:l.entry.TensorHi], l.version, iteration)
		if err == nil {
			err = l.client.WaitOK()
		}
		if err == nil {
			return nil
		}
	}
}

// coordPush runs the synchronization leg: a metadata-only push the
// coordinator's policy gates. Coordinator errors are final.
func (c *ClusterClient) coordPush(baseVersion int64, iteration int) error {
	if err := c.coord.PushAndWait(nil, baseVersion, iteration); err != nil {
		return fmt.Errorf("ps: cluster coordinator: %w", err)
	}
	return nil
}

// Done reports completion to the coordinator and every data server.
func (c *ClusterClient) Done() error {
	err := c.coord.Done()
	for _, l := range c.links {
		if derr := l.client.Done(); err == nil {
			err = derr
		}
	}
	return err
}

// StartHeartbeats begins liveness heartbeats on the coordinator link and
// every data link, and returns a stop function. Links recovered later
// inherit the interval.
func (c *ClusterClient) StartHeartbeats(interval time.Duration) (stop func()) {
	c.hbInterval = interval
	coordStop := c.coord.StartHeartbeats(interval)
	for _, l := range c.links {
		l.hbStop = l.client.StartHeartbeats(interval)
	}
	return func() {
		coordStop()
		for _, l := range c.links {
			if l.hbStop != nil {
				l.hbStop()
			}
		}
	}
}

// Traffic sums the payload bytes pushed and pulled across every link,
// coordinator included.
func (c *ClusterClient) Traffic() (pushed, pulled int64) {
	pushed, pulled = c.coord.Traffic()
	for _, l := range c.links {
		p, q := l.client.Traffic()
		pushed += p
		pulled += q
	}
	return pushed, pulled
}

// Codec returns the gradient codec negotiated on the data links (useful when
// the configuration left it on auto).
func (c *ClusterClient) Codec() string {
	if len(c.links) == 0 {
		return ""
	}
	return c.links[0].client.Compression().Codec
}

// Close releases every connection.
func (c *ClusterClient) Close() error {
	var err error
	if c.coordConn != nil {
		err = c.coordConn.Close()
	}
	for _, l := range c.links {
		closeLink(l)
	}
	return err
}
