package ps

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// timeoutChan returns a channel that closes after a generous deadline, for
// bounding WaitApplied in tests that would otherwise hang on a bug.
func timeoutChan(t *testing.T) <-chan struct{} {
	t.Helper()
	ch := make(chan struct{})
	timer := time.AfterFunc(5*time.Second, func() { close(ch) })
	t.Cleanup(func() { timer.Stop() })
	return ch
}

// refTrimmedMean is the straight-line reference implementation the aggregator
// is checked against: per coordinate, sort the finite values, drop
// ceil(trim*m) from each side (falling back to the median when that leaves
// nothing), average, and scale by the batch size.
func refTrimmedMean(batch [][]float32, trim float64, k int) []float64 {
	n := len(batch[0])
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		var vals []float64
		for _, push := range batch {
			v := float64(push[j])
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		out[j] = float64(k) * refStatistic(vals, trim, false)
	}
	return out
}

func refMedian(vals []float64) float64 {
	m := len(vals)
	if m == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	if m%2 == 1 {
		return sorted[m/2]
	}
	return (sorted[m/2-1] + sorted[m/2]) / 2
}

func refStatistic(vals []float64, trim float64, median bool) float64 {
	m := len(vals)
	if m == 0 {
		return 0
	}
	if median {
		return refMedian(vals)
	}
	t := int(math.Ceil(trim * float64(m)))
	if 2*t >= m {
		return refMedian(vals)
	}
	sorted := append([]float64(nil), vals...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	sum := 0.0
	for _, v := range sorted[t : m-t] {
		sum += v
	}
	return sum / float64(m-2*t)
}

// batchOf wraps raw coordinate slices as single-tensor gradient slices.
func batchOf(pushes ...[]float32) [][]*tensor.Tensor {
	out := make([][]*tensor.Tensor, len(pushes))
	for i, p := range pushes {
		out[i] = []*tensor.Tensor{tensor.FromSlice(append([]float32(nil), p...), len(p))}
	}
	return out
}

func TestAggregatorConfigValidate(t *testing.T) {
	cases := []struct {
		cfg AggregatorConfig
		ok  bool
	}{
		{AggregatorConfig{}, true},
		{AggregatorConfig{Kind: AggSum}, true},
		{AggregatorConfig{Kind: AggTrimmedMean}, true},
		{AggregatorConfig{Kind: AggMedian, Window: 4}, true},
		{AggregatorConfig{Kind: AggClipped, ClipNorm: 1.5}, true},
		{AggregatorConfig{Kind: AggClipped}, false}, // needs clip norm
		{AggregatorConfig{Kind: "krum"}, false},     // unknown kind
		{AggregatorConfig{Kind: AggTrimmedMean, Trim: 0.5}, false},
		{AggregatorConfig{Kind: AggSum, Window: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Normalized().Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.cfg, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: validation passed, want error", c.cfg)
		}
	}
}

func TestTrimmedMeanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		n := 1 + rng.Intn(17)
		raw := make([][]float32, k)
		for i := range raw {
			raw[i] = make([]float32, n)
			for j := range raw[i] {
				raw[i][j] = float32(rng.NormFloat64() * 3)
			}
		}
		agg := newAggregator(AggregatorConfig{Kind: AggTrimmedMean}.Normalized())
		got := agg.combine(batchOf(raw...))[0].Data()
		want := refTrimmedMean(raw, DefaultTrim, k)
		for j := range want {
			if math.Abs(float64(got[j])-want[j]) > 1e-4 {
				t.Fatalf("trial %d coord %d: trimmed mean %g, reference %g", trial, j, got[j], want[j])
			}
		}
	}
}

func TestMedianMatchesReference(t *testing.T) {
	raw := [][]float32{
		{1, -4, 2.5, 0},
		{2, -3, 100, 0},
		{3, -2, -100, 1},
		{4, -1, 2.75, -1},
		{5, 0, 2.25, 0},
	}
	agg := newAggregator(AggregatorConfig{Kind: AggMedian}.Normalized())
	got := agg.combine(batchOf(raw...))[0].Data()
	for j := 0; j < len(raw[0]); j++ {
		var vals []float64
		for _, p := range raw {
			vals = append(vals, float64(p[j]))
		}
		want := 5 * refMedian(vals)
		if math.Abs(float64(got[j])-want) > 1e-5 {
			t.Fatalf("coord %d: median %g, reference %g", j, got[j], want)
		}
	}
}

// TestTrimmedMeanRejectsOutlier is the defense property in miniature: one
// attacker scaling its gradient 100x inside a window of four must not move
// the aggregate far from the honest trimmed mean.
func TestTrimmedMeanRejectsOutlier(t *testing.T) {
	honest := []float32{1, -1, 0.5}
	attack := []float32{100, -100, 50}
	batch := batchOf(honest, honest, honest, attack)
	agg := newAggregator(AggregatorConfig{Kind: AggTrimmedMean}.Normalized())
	got := agg.combine(batch)[0].Data()
	for j, h := range honest {
		want := 4 * float64(h) // all-honest trimmed mean scaled by the window
		if math.Abs(float64(got[j])-want) > 1e-4 {
			t.Fatalf("coord %d: %g leaked attacker influence (want %g)", j, got[j], want)
		}
	}

	// Plain sum, by contrast, is dominated by the attacker.
	sum := 0.0
	for _, p := range batchOf(honest, honest, honest, attack) {
		sum += float64(p[0].Data()[0])
	}
	if math.Abs(sum) < 50 {
		t.Fatalf("sum baseline unexpectedly robust: %g", sum)
	}
}

// TestRobustAggregatorsRejectNaN checks the NaN/Inf screening: poisoned
// coordinates must be excluded rather than propagated into the weights.
func TestRobustAggregatorsRejectNaN(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	honest := []float32{1, 2, -3}
	poisoned := []float32{nan, inf, 4}
	for _, kind := range []string{AggTrimmedMean, AggMedian} {
		agg := newAggregator(AggregatorConfig{Kind: kind}.Normalized())
		got := agg.combine(batchOf(honest, honest, poisoned))[0].Data()
		for j, v := range got {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s coord %d: non-finite aggregate %g", kind, j, v)
			}
		}
		// Coordinates 0 and 1 must come from the honest pushes alone.
		for j := 0; j < 2; j++ {
			want := 3 * float64(honest[j]) // median of {h, h} = h, scaled by k=3
			if math.Abs(float64(got[j])-want) > 1e-5 {
				t.Fatalf("%s coord %d: %g, want %g from honest values", kind, j, got[j], want)
			}
		}
	}

	// Clipped sum drops whole non-finite tensors.
	agg := newAggregator(AggregatorConfig{Kind: AggClipped, ClipNorm: 1000}.Normalized())
	got := agg.combine(batchOf(honest, poisoned))[0].Data()
	for j, v := range got {
		if math.Abs(float64(v)-float64(honest[j])) > 1e-5 {
			t.Fatalf("clipped coord %d: %g, want honest-only %g", j, v, honest[j])
		}
	}
}

func TestClippedSumCapsNorm(t *testing.T) {
	big := []float32{30, 40} // L2 norm 50
	agg := newAggregator(AggregatorConfig{Kind: AggClipped, ClipNorm: 5}.Normalized())
	got := agg.combine(batchOf(big))[0].Data()
	norm := math.Hypot(float64(got[0]), float64(got[1]))
	if math.Abs(norm-5) > 1e-4 {
		t.Fatalf("clipped norm %g, want 5", norm)
	}
	// Direction preserved.
	if got[0] <= 0 || got[1] <= 0 || math.Abs(float64(got[1]/got[0])-40.0/30.0) > 1e-4 {
		t.Fatalf("clipping changed direction: %v", got)
	}
	// Under the cap, untouched.
	small := []float32{0.3, 0.4}
	got = agg.combine(batchOf(small))[0].Data()
	if got[0] != 0.3 || got[1] != 0.4 {
		t.Fatalf("clipping modified an under-cap tensor: %v", got)
	}
}

// TestStoreWindowedAggregation drives the full pipeline: a store configured
// with trimmed-mean/window-3 must hold pushes until the window fills, apply
// one robust step, and advance the version by the window size.
func TestStoreWindowedAggregation(t *testing.T) {
	params := tensor.FromSlice([]float32{0, 0}, 2)
	st, err := NewStoreSharded([]*tensor.Tensor{params}, optimizer.NewSGD(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetAggregator(AggregatorConfig{Kind: AggTrimmedMean, Window: 3}); err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	push := func(a, b float32) int64 {
		ticket, err := st.EnqueueApply([]*tensor.Tensor{tensor.FromSlice([]float32{a, b}, 2)})
		if err != nil {
			t.Fatal(err)
		}
		return ticket
	}
	push(1, 10)
	push(1, 10)
	t3 := push(100, -100) // the attacker; trimmed away per coordinate
	st.WaitApplied(t3, nil)
	if v := st.Version(); v != 3 {
		t.Fatalf("version %d after a window of 3, want 3", v)
	}
	snap, _ := st.Snapshot()
	got := snap[0].Data()
	// SGD lr=1: params -= trimmedMean*3 = -(1,10)*3.
	if math.Abs(float64(got[0])+3) > 1e-4 || math.Abs(float64(got[1])+30) > 1e-4 {
		t.Fatalf("weights %v leaked the outlier, want [-3 -30]", got)
	}
}

// TestStoreFlushPublishesPartialWindow: a demanded ticket must not wait for a
// full window.
func TestStoreFlushPublishesPartialWindow(t *testing.T) {
	params := tensor.FromSlice([]float32{0}, 1)
	st, err := NewStoreSharded([]*tensor.Tensor{params}, optimizer.NewSGD(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetAggregator(AggregatorConfig{Kind: AggMedian, Window: 8}); err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ticket, err := st.EnqueueApply([]*tensor.Tensor{tensor.FromSlice([]float32{1}, 1)})
	if err != nil {
		t.Fatal(err)
	}
	st.Flush()
	if !st.WaitApplied(ticket, timeoutChan(t)) {
		t.Fatal("flush did not publish the partial window")
	}
}
