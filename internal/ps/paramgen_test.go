package ps

import (
	"math/rand"
	"sync"
	"testing"

	"dssp/internal/compress"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// TestSteadyStateApplyAllocatesNoClones pins the headline property of the
// refcounted generations: with no reader escaping buffers, a store settles
// into double-buffering and copy-on-write publication stops allocating —
// every publication past warm-up recycles a retired generation.
func TestSteadyStateApplyAllocatesNoClones(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(16, 8), tensor.New(32), tensor.New(5)}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.05, 0.9, 1e-4), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{16, 8}, {32}, {5}}

	const warmup, steady = 4, 40
	for i := 0; i < warmup; i++ {
		if _, err := st.Apply(randomGrads(rng, shapes...)); err != nil {
			t.Fatal(err)
		}
	}
	_, allocAfterWarmup := st.CloneStats()

	var ticket int64

	for i := 0; i < steady; i++ {
		if ticket, err = st.Apply(randomGrads(rng, shapes...)); err != nil {
			t.Fatal(err)
		}
	}
	if !st.WaitApplied(ticket, nil) {
		t.Fatal("WaitApplied failed")
	}
	reused, allocated := st.CloneStats()
	if allocated != allocAfterWarmup {
		t.Fatalf("steady-state applies allocated %d new generations (had %d after warmup); want 0 new",
			allocated-allocAfterWarmup, allocAfterWarmup)
	}
	if reused == 0 {
		t.Fatal("no generation was ever reused")
	}
}

// TestViewedGenerationIsNeverRecycled: a generation handed out through the
// escaping view API keeps its exact contents forever, no matter how many
// updates the store applies afterwards — the applier must not reclaim its
// buffers as write destinations.
func TestViewedGenerationIsNeverRecycled(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(8, 4), tensor.New(9)}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{8, 4}, {9}}
	if _, err := st.Apply(randomGrads(rng, shapes...)); err != nil {
		t.Fatal(err)
	}

	viewed, _, _, _, _ := st.ViewShardDelta(0, -1)
	frozen := make([][]float32, len(viewed))
	for i, p := range viewed {
		frozen[i] = append([]float32(nil), p.Data()...)
	}

	var ticket int64
	for i := 0; i < 10; i++ {
		if ticket, err = st.Apply(randomGrads(rng, shapes...)); err != nil {
			t.Fatal(err)
		}
	}
	if !st.WaitApplied(ticket, nil) {
		t.Fatal("WaitApplied failed")
	}
	for i, p := range viewed {
		d := p.Data()
		for j := range d {
			if d[j] != frozen[i][j] {
				t.Fatalf("escaped view mutated: tensor %d element %d changed from %v to %v",
					i, j, frozen[i][j], d[j])
			}
		}
	}
}

// TestAcquireShardDeltaReleasesUnchanged: the bounded-reader pull API must
// not leak references on the Unchanged fast path, or the touched generation
// would be pinned out of reuse forever.
func TestAcquireShardDeltaReleasesUnchanged(t *testing.T) {
	st, err := NewStoreSharded([]*tensor.Tensor{tensor.New(4)}, optimizer.NewSGD(0.1), 1)
	if err != nil {
		t.Fatal(err)
	}
	params, gen, _, _, shardV, unchanged := st.AcquireShardDelta(0, -1)
	if unchanged || gen == nil || params == nil {
		t.Fatal("first acquire must return the payload")
	}
	gen.release()
	_, gen2, _, _, _, unchanged := st.AcquireShardDelta(0, shardV)
	if !unchanged || gen2 != nil {
		t.Fatal("acquire at the current version must report unchanged with no reference")
	}
	gen2.release() // nil release is a no-op
	if n := st.shards[0].gen.refs.Load(); n != 0 {
		t.Fatalf("current generation holds %d leaked references", n)
	}
}

// TestRefcountedReuseHammer races every reader class against the applier's
// buffer recycling: bounded acquires (the serializing pull path), snapshots,
// packed-cache fills, and escaping views, all while applies publish and
// retire generations as fast as they can. Run with -race, this is the proof
// that reuse never hands a reader's buffer to the optimizer as a write
// destination.
func TestRefcountedReuseHammer(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(64, 8), tensor.New(128), tensor.New(16, 3)}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.01, 0.9, 1e-4), 3)
	if err != nil {
		t.Fatal(err)
	}
	shapes := [][]int{{64, 8}, {128}, {16, 3}}
	const (
		writers = 2
		applies = 150
		readers = 6
	)
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	// Writers: push gradients through the full apply pipeline.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < applies; i++ {
				ticket, err := st.Apply(randomGrads(rng, shapes...))
				if err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if i%16 == 0 {
					st.WaitApplied(ticket, stop)
				}
			}
		}(int64(w + 1))
	}

	// Readers: every access pattern the store exports, mixed per iteration.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(kind int) {
			defer readerWG.Done()
			sink := float32(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					_ = sink
					return
				default:
				}
				shard := i % st.Shards()
				switch kind % 4 {
				case 0: // bounded acquire, read everything, release
					params, gen, _, _, _, unchanged := st.AcquireShardDelta(shard, -1)
					if !unchanged {
						for _, p := range params {
							for _, v := range p.Data() {
								sink += v
							}
						}
					}
					gen.release()
				case 1: // deep-copy snapshot of one shard
					params, _, _ := st.SnapshotShard(shard)
					for _, p := range params {
						sink += p.Data()[0]
					}
				case 2: // packed-cache fill (bounded borrow inside the store)
					packed, _, _, _, unchanged := st.PackShardDelta(shard, -1, func(ps []*tensor.Tensor) []compress.Packed {
						out := make([]compress.Packed, len(ps))
						for j, p := range ps {
							d := p.Data()
							for _, v := range d {
								sink += v
							}
							out[j] = compress.Packed{Payload: []byte{byte(len(d))}}
						}
						return out
					})
					if !unchanged && len(packed) == 0 {
						t.Error("packed fill returned nothing")
						return
					}
				case 3: // escaping view: buffers must stay immutable forever
					params, _, _, _, unchanged := st.ViewShardDelta(shard, -1)
					if !unchanged {
						for _, p := range params {
							sink += p.Data()[len(p.Data())-1]
						}
					}
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	st.Close()
	reused, allocated := st.CloneStats()
	t.Logf("hammer: %d generations reused, %d allocated", reused, allocated)
}

// BenchmarkStoreApplySteadyState drives the full apply pipeline —
// publication, generation recycling, fused optimizer step — on a bare store.
// The alloc figure is the one the refcounted clones are about: steady state
// should be dominated by the WaitApplied handshake, not parameter copies.
func BenchmarkStoreApplySteadyState(b *testing.B) {
	initial := []*tensor.Tensor{tensor.New(256, 128), tensor.New(256)}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.05, 0.9, 1e-4), 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	grads := randomGrads(rng, []int{256, 128}, []int{256})
	if _, err := st.Apply(grads); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ticket int64
	for i := 0; i < b.N; i++ {
		if ticket, err = st.Apply(grads); err != nil {
			b.Fatal(err)
		}
	}
	if !st.WaitApplied(ticket, nil) {
		b.Fatal("WaitApplied failed")
	}
	b.StopTimer()
	reused, allocated := st.CloneStats()
	if b.N > 8 && allocated > int64(st.Shards()*3) {
		b.Fatalf("apply allocated %d generations over %d iterations (reused %d); steady state should recycle",
			allocated, b.N, reused)
	}
}
