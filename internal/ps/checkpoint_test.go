package ps

import (
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// randomGrads returns deterministic pseudo-random gradients matching shapes.
func randomGrads(rng *rand.Rand, shapes ...[]int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(shapes))
	for i, shape := range shapes {
		t := tensor.New(shape...)
		d := t.Data()
		for j := range d {
			d[j] = float32(rng.NormFloat64())
		}
		out[i] = t
	}
	return out
}

// buildStore creates a store over two tensors with a momentum optimizer (so
// checkpoints carry real optimizer state) and applies steps updates.
func buildStore(t *testing.T, shards, steps int, seed int64) *Store {
	t.Helper()
	initial := []*tensor.Tensor{tensor.New(3, 4), tensor.New(7)}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.1, 0.9, 0.0001), shards)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		if _, err := st.Apply(randomGrads(rng, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// assertStoresEqual fails unless both stores publish bit-identical weights
// and the same version.
func assertStoresEqual(t *testing.T, a, b *Store, context string) {
	t.Helper()
	pa, va := a.Snapshot()
	pb, vb := b.Snapshot()
	if va != vb {
		t.Fatalf("%s: versions differ: %d vs %d", context, va, vb)
	}
	for i := range pa {
		da, db := pa[i].Data(), pb[i].Data()
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("%s: tensor %d element %d differs: %v vs %v", context, i, j, da[j], db[j])
			}
		}
	}
}

func TestCheckpointRoundTripIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := CheckpointFile(dir)

	src := buildStore(t, 2, 5, 1)
	if err := src.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	dst := buildStore(t, 2, 0, 1)
	if err := dst.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, src, dst, "after restore")

	// The restored optimizer state must match too: applying the same
	// gradients to both stores keeps them bit-identical, which fails if
	// momentum velocity was lost or zeroed.
	rng1 := rand.New(rand.NewSource(42))
	rng2 := rand.New(rand.NewSource(42))
	for i := 0; i < 3; i++ {
		if _, err := src.Apply(randomGrads(rng1, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Apply(randomGrads(rng2, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
	}
	assertStoresEqual(t, src, dst, "after post-restore updates")
}

func TestCheckpointRestoresAcrossShardCounts(t *testing.T) {
	// A checkpoint written by a 1-shard server restores into a 2-shard store
	// and vice versa: tensors are stored flat by global index.
	dir := t.TempDir()
	path := CheckpointFile(dir)
	src := buildStore(t, 1, 4, 9)
	if err := src.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	dst := buildStore(t, 2, 0, 9)
	if err := dst.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, src, dst, "cross-shard restore")
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	dir := t.TempDir()
	path := CheckpointFile(dir)
	src := buildStore(t, 1, 1, 3)
	if err := src.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	other, err := NewStore([]*tensor.Tensor{tensor.New(5)}, optimizer.NewSGD(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreCheckpoint(path); err == nil {
		t.Fatal("restore into a different model succeeded")
	}
}

// TestRestoreCheckpointWithoutState: a checkpoint whose gob stream carries
// no optimizer state (an older writer's struct) restores with none instead
// of panicking on the missing slice.
func TestRestoreCheckpointWithoutState(t *testing.T) {
	type legacyCheckpoint struct {
		Version      int64
		LearningRate float64
		Shapes       [][]int
		Params       [][]float32
	}
	src := buildStore(t, 1, 2, 4)
	params, version := src.Snapshot()
	legacy := legacyCheckpoint{Version: version, LearningRate: 0.1}
	for _, p := range params {
		legacy.Shapes = append(legacy.Shapes, p.Shape())
		legacy.Params = append(legacy.Params, p.Data())
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dst := buildStore(t, 1, 0, 4)
	if err := dst.RestoreCheckpoint(path); err != nil {
		t.Fatalf("restore without state: %v", err)
	}
	assertStoresEqual(t, src, dst, "stateless restore")
}

func TestRestoreMissingCheckpointFails(t *testing.T) {
	st := buildStore(t, 1, 0, 1)
	if err := st.RestoreCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("restoring a missing checkpoint succeeded")
	}
}

// TestIncrementalCheckpointRoundTrip: a manifest-format checkpoint restores
// bit-identically, including momentum — verified by driving both stores with
// identical gradients afterwards, which diverges if velocity was lost.
func TestIncrementalCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := buildStore(t, 2, 5, 11)
	ckpt := NewCheckpointer(src, dir)
	if _, _, err := ckpt.Save(false); err != nil {
		t.Fatal(err)
	}
	dst := buildStore(t, 2, 0, 11)
	if err := dst.RestoreCheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, src, dst, "manifest restore")

	rng1 := rand.New(rand.NewSource(13))
	rng2 := rand.New(rand.NewSource(13))
	for i := 0; i < 3; i++ {
		if _, err := src.Apply(randomGrads(rng1, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Apply(randomGrads(rng2, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
	}
	assertStoresEqual(t, src, dst, "post-restore updates after manifest restore")
}

// TestIncrementalCheckpointRestoresAcrossShardCounts: segments are keyed by
// global tensor index, so a manifest written by a 2-shard store restores
// into a 1-shard one.
func TestIncrementalCheckpointRestoresAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	src := buildStore(t, 2, 4, 17)
	if _, _, err := NewCheckpointer(src, dir).Save(false); err != nil {
		t.Fatal(err)
	}
	dst := buildStore(t, 1, 0, 17)
	if err := dst.RestoreCheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, src, dst, "cross-shard manifest restore")
}

// TestIncrementalCheckpointSkipsCleanShards pins the incremental save's
// defining behavior: a save with no intervening updates serializes zero
// shard segments and writes only a manifest — a small fraction of a full
// save — while a forced full save rewrites everything.
func TestIncrementalCheckpointSkipsCleanShards(t *testing.T) {
	dir := t.TempDir()
	// A realistically sized model, so "manifest only" versus "weights" is a
	// meaningful byte ratio rather than two small gob blobs.
	initial := []*tensor.Tensor{tensor.New(128, 64), tensor.New(96, 32)}
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.1, 0.9, 1e-4), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	shapes := [][]int{{128, 64}, {96, 32}}
	for i := 0; i < 3; i++ {
		if _, err := st.Apply(randomGrads(rng, shapes...)); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := NewCheckpointer(st, dir)

	shards, fullBytes, err := ckpt.Save(false)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 2 {
		t.Fatalf("first save wrote %d shards, want 2", shards)
	}

	// Nothing changed: the incremental save must skip every shard, and its
	// bytes (manifest only) must be far below a full snapshot's.
	shards, idleBytes, err := ckpt.Save(false)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 0 {
		t.Fatalf("idle save wrote %d shards, want 0", shards)
	}
	if idleBytes*20 >= fullBytes {
		t.Fatalf("idle save wrote %d bytes, full save %d; want ≪", idleBytes, fullBytes)
	}
	// The skipping save still leaves a fully restorable checkpoint.
	dst, err := NewStoreSharded([]*tensor.Tensor{tensor.New(128, 64), tensor.New(96, 32)},
		optimizer.NewSGDMomentum(0.1, 0.9, 1e-4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreCheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, st, dst, "restore after idle save")

	// full=true rewrites clean shards anyway (the Stop path).
	shards, _, err = ckpt.Save(true)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 2 {
		t.Fatalf("full save wrote %d shards, want 2", shards)
	}

	// After an update every shard is dirty again (each push spans the whole
	// model), so the next incremental save rewrites both.
	if _, err := st.Apply(randomGrads(rng, shapes...)); err != nil {
		t.Fatal(err)
	}
	shards, _, err = ckpt.Save(false)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 2 {
		t.Fatalf("post-update save wrote %d shards, want 2", shards)
	}
}

// TestIncrementalCheckpointGCsStaleSegments: superseded segment files are
// deleted once the manifest that stops referencing them is durable, so the
// directory holds one live segment per shard plus the manifest.
func TestIncrementalCheckpointGCsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	st := buildStore(t, 2, 2, 31)
	ckpt := NewCheckpointer(st, dir)
	rng := rand.New(rand.NewSource(37))
	for round := 0; round < 3; round++ {
		if _, _, err := ckpt.Save(false); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Apply(randomGrads(rng, []int{3, 4}, []int{7})); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("checkpoint dir holds %d segment files after 3 saves, want 2 (stale ones collected): %v", len(segs), segs)
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, ".ckpt-*")); len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
}

// TestSaveCheckpointLeavesNoTempFiles: the durable-write path (temp, fsync,
// rename, directory fsync) must clean up after itself in the legacy format
// too.
func TestSaveCheckpointLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st := buildStore(t, 1, 2, 41)
	if err := st.SaveCheckpoint(CheckpointFile(dir)); err != nil {
		t.Fatal(err)
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, ".ckpt-*")); len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
}

// TestServerCheckpointsPeriodicallyAndOnStop drives checkpoints through the
// server: pushes trigger interval saves, Stop writes the final state, and a
// fresh store restored from the file resumes at the stopped version.
func TestServerCheckpointsPeriodicallyAndOnStop(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore([]*tensor.Tensor{tensor.New(4)}, optimizer.NewSGD(1.0))
	if err != nil {
		t.Fatal(err)
	}
	policy := core.MustNewASP(1)
	srv, err := NewServer(ServerConfig{
		Workers: 1,
		Policy:  policy,
		Store:   st,
		Options: Options{Checkpoint: CheckpointConfig{Dir: dir, Every: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()

	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, 0)
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 2, 3, 4}, 4)}
	for i := 0; i < 5; i++ {
		if err := c.PushAndWait(grad, int64(i), i); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Stop()
	listener.Close()
	if err := srv.CheckpointError(); err != nil {
		t.Fatalf("checkpoint error: %v", err)
	}

	restored, err := NewStore([]*tensor.Tensor{tensor.New(4)}, optimizer.NewSGD(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpointDir(dir); err != nil {
		t.Fatal(err)
	}
	// Stop's final save captured all 5 updates.
	if got := restored.Version(); got != 5 {
		t.Fatalf("restored version = %d, want 5", got)
	}
	assertStoresEqual(t, st, restored, "server checkpoint")
}
