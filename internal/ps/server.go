package ps

import (
	"fmt"
	"sync"
	"time"

	"dssp/internal/core"
	"dssp/internal/metrics"
	"dssp/internal/transport"
)

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of workers expected to register.
	Workers int
	// Policy is the synchronization paradigm deciding when pushed workers are
	// released (BSP, ASP, SSP, DSSP, ...).
	Policy core.Policy
	// Store holds the global weights and applies updates.
	Store *Store
	// Clock supplies timestamps for the policy; nil means time.Now. The
	// trainer injects an accelerated clock when it simulates heterogeneous
	// hardware.
	Clock func() time.Time
}

// Server is the parameter server: it accepts worker connections, applies
// pushed gradients to the store, and releases workers according to the
// configured synchronization policy.
//
// Requests are handled on the connection goroutines themselves rather than
// being funneled through a central run loop. Pulls touch only the store's
// per-shard read locks, so any number of workers pull concurrently and a
// pull streams each shard to the wire as soon as that shard is unlocked.
// Pushes serialize on policyMu — the release decision and the gradient
// application must form one atomic step for the paradigm semantics (a BSP
// round's updates are all applied before any worker is released) — but the
// application itself is shard-parallel inside the store, so a push uses
// multiple cores and blocks concurrent pulls only shard by shard.
type Server struct {
	cfg   ServerConfig
	clock func() time.Time

	mu       sync.Mutex
	outboxes map[int]chan transport.Message
	finished map[int]bool
	done     int
	stopOnce sync.Once
	stopped  chan struct{}
	allDone  chan struct{}
	wg       sync.WaitGroup

	// policyMu serializes push handling: the policy decision, the store
	// update, the metrics derived from them, and the choice of workers to
	// release.
	policyMu  sync.Mutex
	staleness *metrics.Histogram
	waits     *metrics.WaitTracker
	pushes    int
	dropped   int
	pushedAt  map[int]time.Time
}

// NewServer returns a parameter server with the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ps: server needs a positive worker count, got %d", cfg.Workers)
	}
	if cfg.Policy == nil || cfg.Store == nil {
		return nil, fmt.Errorf("ps: server needs a policy and a store")
	}
	if cfg.Policy.NumWorkers() != cfg.Workers {
		return nil, fmt.Errorf("ps: policy coordinates %d workers, server expects %d",
			cfg.Policy.NumWorkers(), cfg.Workers)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Server{
		cfg:       cfg,
		clock:     clock,
		outboxes:  make(map[int]chan transport.Message),
		finished:  make(map[int]bool),
		stopped:   make(chan struct{}),
		allDone:   make(chan struct{}),
		staleness: metrics.NewHistogram(),
		waits:     metrics.NewWaitTracker(cfg.Workers),
		pushedAt:  make(map[int]time.Time),
	}, nil
}

// Serve accepts worker connections from the listener until Stop is called or
// the listener fails. It blocks; run it in its own goroutine when the caller
// also drives workers.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return fmt.Errorf("ps: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// HandleConn serves a single pre-established connection (used with the
// in-process transport). It returns when the worker disconnects or the
// server stops.
func (s *Server) HandleConn(conn transport.Conn) {
	s.handleConn(conn)
}

// Stop shuts the server down: connection writers exit and pending work is
// abandoned. It is safe to call multiple times.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
}

// AllWorkersDone returns a channel that is closed once every expected worker
// has sent MsgDone.
func (s *Server) AllWorkersDone() <-chan struct{} { return s.allDone }

// handleConn reads messages from one worker connection and services them on
// this goroutine. The worker protocol is lock-step (one outstanding request
// per worker), so handling in-line costs no pipeline depth, while requests
// from different workers run fully in parallel.
func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	var workerID = -1
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.MsgRegister:
			workerID = msg.Worker
			if workerID < 0 || workerID >= s.cfg.Workers {
				_ = conn.Send(transport.Message{
					Type:  transport.MsgError,
					Error: fmt.Sprintf("worker id %d out of range [0,%d)", workerID, s.cfg.Workers),
				})
				return
			}
			outbox := make(chan transport.Message, 64)
			s.mu.Lock()
			s.outboxes[workerID] = outbox
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.writer(conn, outbox)
			}()
			s.enqueueOut(workerID, transport.Message{Type: transport.MsgRegistered, Worker: workerID})

		case transport.MsgPush:
			if workerID < 0 {
				return
			}
			s.handlePush(workerID, msg.Tensors, msg.Version)

		case transport.MsgPull:
			if workerID < 0 {
				return
			}
			s.handlePull(workerID)

		case transport.MsgDone:
			if workerID < 0 {
				return
			}
			s.handleDone(workerID)

		case transport.MsgShutdown:
			return

		default:
			// Unknown message types are ignored to keep the protocol
			// forward-compatible.
		}
	}
}

// writer drains one worker's outbox onto its connection.
func (s *Server) writer(conn transport.Conn, outbox <-chan transport.Message) {
	for {
		select {
		case msg, ok := <-outbox:
			if !ok {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		case <-s.stopped:
			return
		}
	}
}

// enqueueOut places a message on a worker's outbox, dropping it if the worker
// never registered or the server is stopping.
func (s *Server) enqueueOut(worker int, msg transport.Message) {
	s.mu.Lock()
	outbox, ok := s.outboxes[worker]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case outbox <- msg:
	case <-s.stopped:
	}
}

// handlePush applies a pushed gradient and releases workers per the policy.
// Decoding the wire tensors happens outside policyMu so that payload
// conversion from many workers overlaps; the policy decision and the store
// update hold the lock.
func (s *Server) handlePush(worker int, wire []transport.WireTensor, baseVersion int64) {
	grads, decodeErr := transport.FromWire(wire)

	now := s.clock()
	s.policyMu.Lock()
	decision := s.cfg.Policy.OnPush(core.WorkerID(worker), now)

	if decision.Drop {
		s.dropped++
	} else {
		err := decodeErr
		var applied int64
		if err == nil {
			applied, err = s.cfg.Store.Apply(grads)
		}
		if err != nil {
			s.policyMu.Unlock()
			s.enqueueOut(worker, transport.Message{Type: transport.MsgError, Error: err.Error()})
			return
		}
		s.pushes++
		s.staleness.Observe(int(applied - 1 - baseVersion))
	}

	s.pushedAt[worker] = now
	for _, id := range decision.Release {
		w := int(id)
		if at, ok := s.pushedAt[w]; ok {
			s.waits.Record(w, now.Sub(at))
			delete(s.pushedAt, w)
		}
	}
	s.policyMu.Unlock()

	for _, id := range decision.Release {
		w := int(id)
		s.enqueueOut(w, transport.Message{Type: transport.MsgOK, Worker: w})
	}
}

// handlePull streams the current weights to a worker, one chunk per store
// shard. Each chunk references the shard's copy-on-write snapshot — the
// server copies nothing — and goes onto the wire as soon as the shard's
// reference is grabbed, so pulls from different workers, and a pull
// overlapping an in-flight push on other shards, proceed concurrently. The
// worker-side wire decode copies the data, keeping workers isolated.
func (s *Server) handlePull(worker int) {
	st := s.cfg.Store
	shards := st.Shards()
	total := st.NumTensors()
	for i := 0; i < shards; i++ {
		params, base, version := st.ViewShard(i)
		s.enqueueOut(worker, transport.Message{
			Type:    transport.MsgWeights,
			Worker:  worker,
			Version: version,
			Shard:   i,
			Shards:  shards,
			Base:    base,
			Total:   total,
			Tensors: transport.ToWireOwned(params),
		})
	}
}

// handleDone records a worker's completion and closes AllWorkersDone once
// every expected worker reported in.
func (s *Server) handleDone(worker int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished[worker] {
		return
	}
	s.finished[worker] = true
	s.done++
	if s.done == s.cfg.Workers {
		close(s.allDone)
	}
}

// Staleness returns the histogram of staleness values of applied updates
// (current store version minus the version the gradient was computed from).
// The histogram is not synchronized; read it only after the run has
// completed (e.g. after AllWorkersDone).
func (s *Server) Staleness() *metrics.Histogram { return s.staleness }

// Waits returns the per-worker waiting-time tracker. Like Staleness, read it
// only after the run has completed.
func (s *Server) Waits() *metrics.WaitTracker { return s.waits }

// Pushes returns the number of gradient updates applied.
func (s *Server) Pushes() int {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.pushes
}

// Dropped returns the number of pushed updates dropped by the policy
// (non-zero only for the backup-worker baseline).
func (s *Server) Dropped() int {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.dropped
}
