package ps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/metrics"
	"dssp/internal/obs"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of worker slots: worker IDs live in [0, Workers).
	// All slots are expected to register for a classic fixed-membership run;
	// with Elastic set the population may shrink and grow during the run.
	Workers int
	// Policy is the synchronization paradigm deciding when pushed workers are
	// released (BSP, ASP, SSP, DSSP, ...). Its membership hooks
	// (OnJoin/OnLeave) are driven by the session layer: a dead connection or
	// an expired lease removes the worker from barrier and staleness
	// accounting so its peers never deadlock on a crash.
	Policy core.Policy
	// Store holds the global weights and applies updates.
	Store *Store
	// Options is the shared serving-knob surface (compression, aggregator,
	// guard, elasticity, heartbeat, checkpointing) — the same embedded struct
	// the trainer and the public configs expose, so field names like
	// cfg.Compression keep working unchanged.
	Options
	// DisableDeltaPull refuses workers' requests for version-gated delta
	// pulls, forcing every pull to carry full weight chunks. The zero value
	// grants delta pulls to any worker that asks (workers that never ask are
	// unaffected); disabling exists for A/B measurement and for debugging
	// suspected cache-consistency issues.
	DisableDeltaPull bool
	// Clock supplies timestamps for the policy; nil means time.Now. The
	// trainer injects an accelerated clock when it simulates heterogeneous
	// hardware.
	Clock func() time.Time
	// Metrics is the registry the server's runtime instrumentation lives on
	// (counters, gauges, histograms; see docs/METRICS.md). Nil creates a
	// private registry — instrumentation is always on, and a caller that
	// wants to scrape or snapshot it passes its own registry (or reads
	// Server.Registry()).
	Metrics *obs.Registry
	// Trace configures sampled push-lifecycle tracing. The zero value keeps
	// the default 1-in-DefaultTraceEvery sampling; Every < 0 disables
	// tracing entirely.
	Trace obs.TraceConfig
	// Cluster configures the server-group role (PROTOCOL.md §6). The zero
	// value is a classic standalone server. With Coordinator set the server
	// owns the group's policy layer: it serves the cluster map, accepts
	// metadata-only pushes from cluster workers, and never carries weight
	// bytes (its store is a placeholder).
	Cluster ClusterConfig
}

// DefaultTraceEvery is the push-lifecycle trace sampling period when
// ServerConfig.Trace leaves Every at zero: one in every 64 pushes is traced.
const DefaultTraceEvery = 64

// DefaultHeartbeatTimeout is the lease length used when an elastic server
// does not specify one.
const DefaultHeartbeatTimeout = 5 * time.Second

// Server is the parameter server: it accepts worker connections, applies
// pushed gradients to the store, and releases workers according to the
// configured synchronization policy.
//
// Worker identity is a session, not an array slot: registration creates a
// session, every message refreshes its lease, and a Recv error, a graceful
// MsgLeave, or a missed-heartbeat eviction deregisters it and tells the
// policy the worker left — releasing any peers its departure unblocks. A
// worker may later rejoin (MsgRejoin) and re-enter synchronization
// accounting without restarting the run.
//
// Requests are handled on the connection goroutines themselves rather than
// being funneled through a central run loop. Pulls touch only the store's
// per-shard read locks, so any number of workers pull concurrently and a
// pull streams each shard to the wire as soon as that shard is unlocked.
//
// The push path is a pipeline. Only the cheap, ordering-sensitive step runs
// under policyMu: the policy decision, the ticket (version) assignment via
// Store.EnqueueApply, and the staleness and wait accounting derived from
// them. The gradient application itself happens on the store's persistent
// per-shard applier goroutines, so pushes from N workers overlap — shard i
// of push A applies concurrently with shard j of push B, and queued pushes
// coalesce into shared optimizer steps. Paradigm semantics survive because
// release delivery is gated, not the application: every release decision is
// queued to a sequencer that waits until the store's applied version reaches
// what was reserved at decision time before sending a single OK (a BSP
// round's updates are therefore all visible before any worker is released,
// exactly as when the application ran under the lock).
type Server struct {
	cfg ServerConfig
	// compression is cfg.Compression in normalized form, the single source
	// of truth for what the wire speaks.
	compression compress.Config
	clock       func() time.Time
	hbTimeout   time.Duration

	// guard screens pushes for anomalies and evicts repeat offenders; nil
	// when GuardConfig.Enabled is unset.
	guard *guard
	// fullWindow is the configured aggregation window (0 when the classic
	// per-push pipeline runs). As workers finish or depart for good the
	// server shrinks the store's live window below it, so a thinning cohort
	// never leaves partial windows waiting out the watchdog.
	fullWindow int

	sessions *sessionTable

	mu sync.Mutex
	// joined records every worker slot that registered at least once.
	joined   map[int]bool
	finished map[int]bool
	// routes maps worker slots joined through an aggregation relay to the
	// trunk session carrying them: such workers have no session of their own,
	// so presence checks (completion, window shrinking) and release delivery
	// consult the route instead. A worker is either routed or directly
	// sessioned, never both.
	routes map[int]*session
	// departedAt records when an unfinished worker's session last ended; a
	// worker inside the rejoin grace window (one heartbeat timeout) is
	// treated as "coming back", not gone, by elastic completion.
	departedAt map[int]time.Time
	done       int
	// allDoneClosed latches the completion broadcast.
	allDoneClosed bool
	ckptErr       error
	stopOnce      sync.Once
	stopped       chan struct{}
	allDone       chan struct{}
	wg            sync.WaitGroup

	// releases feeds the release sequencer: decisions enter in policyMu
	// order (enqueued while holding it), each gated on the pipeline depth
	// reserved at decision time, so OKs leave in decision order once the
	// updates they depend on are visible.
	releases chan releaseBatch

	// reg is the metrics registry (cfg.Metrics or a private one), sm the
	// resolved instrument bundle, tracer the sampled push-lifecycle tracer
	// (nil when disabled). The registry's atomics are the only counters the
	// server keeps: the public accessors, the end-of-run summary and the
	// /statusz snapshot all read the same series a /metrics scrape exports.
	reg    *obs.Registry
	sm     *serverMetrics
	tracer *obs.PushTracer

	// policyMu serializes membership and push handling: the policy decision,
	// the ticket assignment that orders the update, the metrics derived from
	// them, and the choice of workers to release.
	policyMu  sync.Mutex
	staleness *metrics.Histogram
	waits     *metrics.WaitTracker
	pushedAt  map[int]time.Time

	// cluster is the coordinator's live group map; replicaSeq hands out the
	// negative session keys replica (backup) registrations live under — and
	// relay trunks, which multiplex many logical workers over one negative-key
	// session; zeroGrad is the shared placeholder gradient a coordinator
	// applies for metadata-only pushes (appliers only read gradients, so
	// sharing is safe).
	cluster    clusterState
	replicaSeq atomic.Int64
	zeroGrad   []*tensor.Tensor

	// tree is the aggregation-tree layout advertised to workers: the child
	// ranges each registered relay covers (tree.go). Advisory — actual routing
	// follows the joins workers perform — but it is what keeps re-parenting
	// after a relay death deterministic.
	tree treeState

	// ckptBusy limits checkpoint saves to one in flight.
	ckptBusy atomic.Bool
	// ckptMu serializes checkpoint writes: an async interval save that
	// snapshotted older state must not land its rename after the final save
	// from Stop. It also guards ckpt, the incremental checkpointer that
	// remembers which shard versions the last save wrote.
	ckptMu sync.Mutex
	ckpt   *Checkpointer
}

// NewServer returns a parameter server with the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ps: server needs a positive worker count, got %d", cfg.Workers)
	}
	if cfg.Policy == nil || cfg.Store == nil {
		return nil, fmt.Errorf("ps: server needs a policy and a store")
	}
	if cfg.Policy.NumWorkers() != cfg.Workers {
		return nil, fmt.Errorf("ps: policy coordinates %d workers, server expects %d",
			cfg.Policy.NumWorkers(), cfg.Workers)
	}
	opts, err := cfg.Options.Normalized()
	if err != nil {
		return nil, err
	}
	cfg.Options = opts
	if cfg.Cluster.Coordinator {
		if cfg.Cluster.GlobalShards <= 0 || cfg.Cluster.TotalTensors <= 0 {
			return nil, fmt.Errorf("ps: coordinator needs the group's global shard and tensor counts, got %d/%d",
				cfg.Cluster.GlobalShards, cfg.Cluster.TotalTensors)
		}
		// The guard keys its flood detector on pull cadence, and cluster
		// workers pull from data servers, never from the coordinator — every
		// honest worker would look like a flooder here. The guard belongs on
		// the data servers (DESIGN.md §10).
		if cfg.Guard.Enabled {
			return nil, fmt.Errorf("ps: anomaly guard runs on data servers, not the coordinator")
		}
	}
	// Install the aggregation strategy before any push can reach the store.
	// Windowed robust kinds with no explicit window aggregate over the full
	// cohort: the order statistics need the honest majority in-window to
	// out-vote an attacker.
	agg := cfg.Aggregator
	if agg.Windowed() && agg.Window == 0 {
		agg.Window = cfg.Workers
	}
	if agg.Kind != AggSum || agg.Window > 1 {
		if err := cfg.Store.SetAggregator(agg); err != nil {
			return nil, err
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	hbTimeout := cfg.HeartbeatTimeout
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	trace := cfg.Trace
	if trace.Every == 0 {
		trace.Every = DefaultTraceEvery
	}
	tracer := obs.NewPushTracer(trace)
	s := &Server{
		cfg:         cfg,
		compression: cfg.Compression,
		guard:       newGuard(cfg.Guard, cfg.Workers),
		fullWindow:  agg.Window,
		clock:       clock,
		hbTimeout:   hbTimeout,
		sessions:    newSessionTable(),
		joined:      make(map[int]bool),
		finished:    make(map[int]bool),
		departedAt:  make(map[int]time.Time),
		routes:      make(map[int]*session),
		stopped:     make(chan struct{}),
		allDone:     make(chan struct{}),
		releases:    make(chan releaseBatch, 256),
		staleness:   metrics.NewHistogram(),
		waits:       metrics.NewWaitTracker(cfg.Workers),
		pushedAt:    make(map[int]time.Time),
		reg:         reg,
		sm:          newServerMetrics(reg),
		tracer:      tracer,
	}
	if cfg.Cluster.Coordinator {
		// Metadata-only pushes carry no payload; the policy still needs
		// EnqueueApply to assign the ticket and advance the version, so a
		// shared zero gradient matching the placeholder store stands in.
		snap, _ := cfg.Store.Snapshot()
		s.zeroGrad = make([]*tensor.Tensor, len(snap))
		for i, p := range snap {
			s.zeroGrad[i] = tensor.New(p.Shape()...)
		}
		reg.GaugeFunc("dssp_cluster_map_version",
			"Coordinator cluster-map version: bumped by every announce and promotion.",
			func() float64 {
				s.cluster.mu.Lock()
				defer s.cluster.mu.Unlock()
				return float64(s.cluster.mapVersion)
			})
		reg.GaugeFunc("dssp_cluster_servers",
			"Data servers currently in the coordinator's cluster map.",
			func() float64 {
				s.cluster.mu.Lock()
				defer s.cluster.mu.Unlock()
				return float64(len(s.cluster.entries))
			})
	}
	// The store carries the apply-pipeline instrumentation only when serving
	// (bare stores stay unmetered); the guard reports its flags and
	// evictions onto the same registry.
	cfg.Store.instrument(newStoreMetrics(reg), tracer)
	if s.guard != nil {
		s.guard.flagsC = s.sm.guardFlags
		s.guard.evictC = s.sm.guardEvictions
	}
	// Liveness gauges are evaluated at scrape time, so they cost nothing
	// between scrapes.
	reg.GaugeFunc("dssp_sessions_active",
		"Worker sessions currently registered.",
		func() float64 { return float64(len(s.sessions.list())) })
	reg.GaugeFunc("dssp_workers_finished",
		"Worker slots that reported Done.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.done) })
	reg.GaugeFunc("dssp_tree_relays",
		"Aggregation relays currently registered on this server.",
		func() float64 {
			s.tree.mu.Lock()
			defer s.tree.mu.Unlock()
			return float64(len(s.tree.relays))
		})
	reg.GaugeFunc("dssp_tree_routed_workers",
		"Worker slots currently joined through an aggregation relay.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.routes)) })
	reg.GaugeFunc("dssp_store_version",
		"Applied store version: updates visible on every shard.",
		func() float64 { return float64(cfg.Store.Version()) })
	reg.GaugeFunc("dssp_store_reserved",
		"Push tickets accepted into the apply pipeline.",
		func() float64 { return float64(cfg.Store.Reserved()) })
	reg.GaugeFunc("dssp_store_queue_depth",
		"Apply-pipeline backlog: tickets reserved but not yet globally visible.",
		func() float64 { return float64(cfg.Store.QueueDepth()) })
	reg.GaugeFunc("dssp_store_shards",
		"Number of parameter shards.",
		func() float64 { return float64(cfg.Store.Shards()) })
	reg.GaugeFunc("dssp_store_window",
		"Aggregation window currently in effect (1 = per-push pipeline).",
		func() float64 { return float64(cfg.Store.Window()) })
	// The seam between coalesced application and the paradigms: a policy
	// that wants to observe batched version advances gets them under
	// policyMu, interleaved consistently with its OnPush/OnJoin/OnLeave
	// calls, from a dedicated pump goroutine. The pump — never the store's
	// appliers — takes policyMu, so gradient application can outrun a busy
	// policy instead of deadlocking behind it.
	if bo, ok := cfg.Policy.(core.BatchObserver); ok {
		s.wg.Add(1)
		// The observation baseline is read here, synchronously: every
		// advance past the version the server was constructed at is
		// delivered, even ones landing before the pump goroutine first runs.
		go s.observerPump(bo, cfg.Store.Version())
	}
	s.wg.Add(1)
	go s.releaser()
	if cfg.Elastic {
		// An elastic server starts with an empty active set: policies assume
		// every slot participates from construction, but here membership is
		// what registration says it is. Without this, a restarted server
		// would wait on phantom workers that finished against its
		// predecessor and will never join.
		now := clock()
		for w := 0; w < cfg.Workers; w++ {
			cfg.Policy.OnLeave(core.WorkerID(w), now)
		}
		s.wg.Add(1)
		go s.leaseMonitor()
	}
	return s, nil
}

// Serve accepts worker connections from the listener until Stop is called or
// the listener fails. It blocks; run it in its own goroutine when the caller
// also drives workers.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return fmt.Errorf("ps: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// HandleConn serves a single pre-established connection (used with the
// in-process transport). It returns when the worker disconnects or the
// server stops.
func (s *Server) HandleConn(conn transport.Conn) {
	s.handleConn(conn)
}

// Stop shuts the server down: every live session ends and its connection is
// closed — a worker blocked on a release sees the failure immediately and
// can reconnect to a successor server instead of hanging on a half-dead
// socket — and pending work is abandoned. When checkpointing is configured a
// final checkpoint is written before Stop returns. It is safe to call
// multiple times.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		for _, sess := range s.sessions.list() {
			sess.end()
			_ = sess.conn.Close()
		}
		s.closePeers()
		// Drain the apply pipeline so the final checkpoint holds every
		// accepted update, then park the store's applier goroutines.
		s.cfg.Store.Close()
		if s.cfg.Checkpoint.Enabled() {
			// Full save: a stopping server leaves every shard freshly
			// written, so the directory restores without depending on
			// segments from earlier processes.
			s.saveCheckpoint(true)
		}
	})
}

// saveCheckpoint writes one checkpoint, serialized against concurrent saves
// so the directory always ends up holding the newest snapshot taken: the
// store version only moves forward, each save snapshots at call time, and
// the mutex forces their manifest renames into call order. Interval saves
// are incremental — only shards that published since the last save are
// serialized; full forces every shard out (the final save on Stop).
func (s *Server) saveCheckpoint(full bool) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.ckpt == nil {
		s.ckpt = NewCheckpointer(s.cfg.Store, s.cfg.Checkpoint.Dir)
	}
	start := time.Now()
	shards, bytes, err := s.ckpt.Save(full)
	s.sm.ckptSeconds.Observe(time.Since(start).Seconds())
	s.sm.ckptTotal.Inc()
	s.sm.ckptShards.Add(uint64(shards))
	s.sm.ckptBytes.Add(uint64(bytes))
	if err != nil {
		s.sm.ckptErrors.Inc()
		s.sm.ckptFailed.Set(1)
	} else {
		s.sm.ckptFailed.Set(0)
	}
	s.recordCheckpointErr(err)
}

// AllWorkersDone returns a channel that is closed once training is complete:
// every worker slot sent MsgDone, or — on an elastic server — every worker
// that ever joined has either finished or departed for good (at least one
// must have finished).
func (s *Server) AllWorkersDone() <-chan struct{} { return s.allDone }

// handleConn reads messages from one worker connection and services them on
// this goroutine. The worker protocol is lock-step (one outstanding request
// per worker), so handling in-line costs no pipeline depth, while requests
// from different workers run fully in parallel.
func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	var sess *session
	for {
		msg, err := conn.Recv()
		if err != nil {
			// A dead connection is a departure: deregister the session and
			// tell the policy, so peers blocked on this worker are released
			// instead of deadlocking.
			if sess != nil {
				s.leave(sess)
			}
			return
		}
		if sess != nil {
			if !s.sessions.current(sess) {
				// The session was superseded by a new registration or evicted
				// by the lease monitor while this request was in flight. Tell
				// the worker to rejoin rather than leave it waiting on
				// replies that will never come.
				_ = conn.Send(transport.Message{
					Type:  transport.MsgError,
					Error: fmt.Sprintf("session for worker %d expired; rejoin", sess.worker),
				})
				return
			}
			sess.touch(s.clock())
		}
		switch msg.Type {
		case transport.MsgRegister, transport.MsgRejoin:
			if sess != nil && sess.relay {
				// A registration arriving on an established trunk is a child
				// worker joining through the relay, not a new session.
				s.handleChildJoin(sess, msg)
				continue
			}
			sess = s.handleRegister(conn, msg)
			if sess == nil {
				return
			}

		case transport.MsgHeartbeat:
			// Liveness only; touch above already refreshed the lease.

		case transport.MsgPush:
			if sess == nil {
				return
			}
			if sess.relay {
				s.handleRelayPush(sess, msg)
				continue
			}
			s.handlePush(sess, msg)

		case transport.MsgPull:
			if sess == nil {
				return
			}
			s.handlePull(sess, msg)

		case transport.MsgDone:
			if sess == nil {
				return
			}
			if sess.relay {
				// Forwarded on behalf of a routed child; the trunk itself never
				// finishes — it ends by closing its connection.
				if msg.Worker >= 0 && msg.Worker < s.cfg.Workers {
					s.handleDone(msg.Worker)
				}
				continue
			}
			s.handleDone(sess.worker)

		case transport.MsgLeave:
			if sess != nil && sess.relay {
				// A routed child departed; the trunk stays up for its siblings.
				s.handleChildLeave(sess, msg.Worker)
				continue
			}
			if sess != nil {
				s.leave(sess)
			}
			return

		case transport.MsgClusterMap:
			s.handleClusterMap(conn, msg)

		case transport.MsgServerAnnounce:
			// The announcing data server parks on this connection as its
			// liveness watch; track it so Stop closes it (it never becomes a
			// worker session, so the session sweep would miss it).
			s.trackPeer(conn)
			defer s.untrackPeer(conn)
			s.handleServerAnnounce(conn, msg)

		case transport.MsgPromote:
			s.handlePromote(conn, msg)

		case transport.MsgShutdown:
			return

		default:
			// Unknown message types are ignored to keep the protocol
			// forward-compatible.
		}
	}
}

// handleRegister services MsgRegister and MsgRejoin: it negotiates the
// codec, installs a session (superseding a stale one for the same slot),
// notifies the policy of the join, and acknowledges with the store's current
// version. It returns nil when the worker was rejected.
func (s *Server) handleRegister(conn transport.Conn, msg transport.Message) *session {
	worker := msg.Worker
	if msg.Relay {
		// An aggregation-relay trunk. Like a replica it lives under a private
		// negative key outside the worker range; unlike one it multiplexes
		// many logical workers (child joins, summed pushes, departures) over
		// this single session. Reject configurations whose per-push machinery
		// cannot attribute a pre-summed partial to individual workers.
		if err := s.relayAdmissible(msg); err != nil {
			_ = conn.Send(transport.Message{Type: transport.MsgError, Error: err.Error()})
			return nil
		}
		worker = -1 - int(s.replicaSeq.Add(1)-1)
	} else if msg.Replica {
		// Replica (backup-replication) sessions live under negative keys so
		// they can never collide with a worker slot, and stay invisible to the
		// policy, the guard and completion accounting: a replica is a
		// read-only observer, not a cohort member.
		worker = -1 - int(s.replicaSeq.Add(1)-1)
	} else if worker < 0 || worker >= s.cfg.Workers {
		_ = conn.Send(transport.Message{
			Type:  transport.MsgError,
			Error: fmt.Sprintf("worker id %d out of range [0,%d)", worker, s.cfg.Workers),
		})
		return nil
	}
	if s.cfg.Cluster.Coordinator && !msg.Cluster {
		// A classic worker pointed at the coordinator would train against the
		// placeholder store — reject loudly instead of silently not learning.
		_ = conn.Send(transport.Message{
			Type:  transport.MsgError,
			Error: "this server is a cluster coordinator; workers must register in cluster mode (fetch the cluster map)",
		})
		return nil
	}
	// Codec negotiation: the worker either adopts the server's
	// configuration (compress.Auto) or must match it exactly —
	// mixed-codec streams would silently corrupt staleness-critical
	// state, so mismatches are rejected before any payload flows.
	requested := compress.Config{Codec: msg.Codec, TopK: msg.CodecTopK, Pull: msg.CodecPull}.Normalized()
	if requested.Codec != compress.Auto && !requested.Equal(s.compression) {
		_ = conn.Send(transport.Message{
			Type: transport.MsgError,
			Error: fmt.Sprintf("compression mismatch: worker %d registered with codec %s, server speaks %s",
				worker, requested, s.compression),
		})
		return nil
	}
	rejoined := msg.Type == transport.MsgRejoin
	sess, old := s.sessions.register(worker, conn, rejoined, s.clock())
	// Delta-pull negotiation: granted whenever the worker asks and the
	// server is not configured to refuse. Workers that never ask (v1 binary
	// peers, old gob builds, -delta-pull=false) keep full pulls.
	sess.deltaPull = msg.DeltaPull && !s.cfg.DisableDeltaPull
	sess.relay = msg.Relay
	// Registration racing Stop: a worker that lands on a dying server (the
	// listener stays open for the final checkpoint write) must be turned
	// away, or it waits forever on a writer that exited with the server.
	// Whichever of Stop's teardown loop and this check runs second sees the
	// session and ends it.
	select {
	case <-s.stopped:
		s.sessions.drop(sess)
		sess.end()
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: "server stopped; find its successor"})
		return nil
	default:
	}
	if old != nil {
		// The slot had a live session — a zombie connection or a worker that
		// reconnected before its crash was detected. End it so its writer
		// goroutine exits now rather than leaking until server stop, and
		// close its connection so its reader unblocks; drop compares session
		// identity, so the zombie's death cannot deregister the new session.
		old.end()
		_ = old.conn.Close()
	}
	if worker >= 0 {
		s.mu.Lock()
		s.joined[worker] = true
		// A direct registration supersedes any relay route the slot held: the
		// worker re-parented to the root itself. The old relay's eventual
		// MsgLeave for this child is verified against the route and ignored.
		delete(s.routes, worker)
		s.mu.Unlock()
		// A rejoin restores the slot to the pushing cohort; re-derive the window.
		s.shrinkWindow()
	}
	if sess.relay {
		// Publish the relay in the tree layout so workers (and re-parenting
		// children of a dead sibling) can find it.
		s.tree.add(sess, msg.Servers[0].Addr, msg.Servers[0].ShardHi, s.cfg.Workers)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.writer(sess)
	}()

	if worker >= 0 {
		now := s.clock()
		s.policyMu.Lock()
		if rejoined {
			s.sm.rejoins.Inc()
		}
		decision := s.cfg.Policy.OnJoin(core.WorkerID(worker), now)
		s.recordReleases(decision.Release, now)
		s.queueReleases(releaseBatch{release: decision.Release, gate: s.cfg.Store.Reserved()})
		s.policyMu.Unlock()
	}

	s.enqueueSession(sess, transport.Message{
		Type:        transport.MsgRegistered,
		Worker:      worker,
		Version:     s.cfg.Store.Version(),
		Codec:       s.compression.Codec,
		CodecTopK:   s.compression.TopK,
		CodecPull:   s.compression.Pull,
		StoreShards: s.cfg.Store.Shards(),
		DeltaPull:   sess.deltaPull,
	})
	return sess
}

// leave deregisters a session (if it is still current) and tells the policy
// the worker left, releasing any peers the departure unblocks. A worker that
// disconnects after reporting Done is an orderly exit, not a departure worth
// counting: the metric should distinguish churn from healthy runs.
func (s *Server) leave(sess *session) {
	if !s.sessions.drop(sess) {
		return
	}
	sess.end()
	if sess.relay {
		// A dead trunk takes its routed children out of the cohort in one
		// sweep; the layout drops the relay so re-parenting children land
		// elsewhere.
		s.trunkGone(sess)
		return
	}
	if sess.worker < 0 {
		// Replica sessions never entered policy or completion accounting, so
		// their departure is invisible to both.
		return
	}
	now := s.clock()
	s.mu.Lock()
	finished := s.finished[sess.worker]
	if !finished {
		s.departedAt[sess.worker] = now
	}
	s.mu.Unlock()
	s.policyMu.Lock()
	if !finished {
		s.sm.departures.Inc()
	}
	decision := s.cfg.Policy.OnLeave(core.WorkerID(sess.worker), now)
	delete(s.pushedAt, sess.worker)
	s.recordReleases(decision.Release, now)
	// A departure can complete a barrier whose updates are still in the
	// apply pipeline; its releases gate like any push's.
	s.queueReleases(releaseBatch{release: decision.Release, gate: s.cfg.Store.Reserved()})
	s.policyMu.Unlock()
	s.shrinkWindow()
	s.checkAllDone()
}

// leaseMonitor evicts sessions whose lease expired: a worker that stops
// heartbeating (hung, partitioned, SIGKILLed without the TCP stack noticing)
// is deregistered exactly like one whose connection died.
func (s *Server) leaseMonitor() {
	defer s.wg.Done()
	tick := s.hbTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-ticker.C:
			now := s.clock()
			for _, sess := range s.sessions.list() {
				if now.Sub(sess.seen()) > s.hbTimeout {
					s.leave(sess)
					_ = sess.conn.Close()
				}
			}
			// A departure inside the rejoin grace window defers completion;
			// nothing else re-evaluates it once the window elapses, so the
			// monitor does.
			s.checkAllDone()
		}
	}
}

// writerBatchMax bounds how many queued outbox messages one write coalesces:
// enough to cover a full multi-shard pull reply plus interleaved releases,
// small enough that a batch's assembled frames stay cache- and
// buffer-friendly.
const writerBatchMax = 32

// writer drains one worker's outbox onto its connection until the session
// ends or the server stops. When several messages are queued — a chunked
// pull reply, a barrier release landing behind one — and the connection can
// batch (transport.BatchSender), everything waiting is sent with one
// write/flush instead of one per message.
func (s *Server) writer(sess *session) {
	// On exit, release generation references stranded in the outbox: the
	// payloads will never be serialized, and the pins would otherwise keep
	// those buffers out of the applier's reuse pool.
	defer func() {
		for {
			select {
			case om := <-sess.outbox:
				om.ref.release()
			default:
				return
			}
		}
	}()
	batcher, _ := sess.conn.(transport.BatchSender)
	var batch []outMsg
	var wire []transport.Message
	for {
		select {
		case om := <-sess.outbox:
			if batcher == nil {
				err := sess.conn.Send(om.msg)
				// Success or failure, the transport is done reading the
				// payload once Send returns.
				om.ref.release()
				if err != nil {
					return
				}
				continue
			}
			batch = append(batch[:0], om)
			for len(batch) < writerBatchMax {
				select {
				case more := <-sess.outbox:
					batch = append(batch, more)
					continue
				default:
				}
				break
			}
			wire = wire[:0]
			for i := range batch {
				wire = append(wire, batch[i].msg)
			}
			err := batcher.SendBatch(wire)
			// Release the generation pins (the transport is done with the
			// payloads whether or not the send succeeded) and drop the
			// payload references: a pull reply's chunks alias the store's
			// published snapshots, and a shorter next batch would otherwise
			// pin the tail entries (up to a model's worth of old tensors)
			// for the session's lifetime.
			for i := range batch {
				batch[i].ref.release()
				batch[i] = outMsg{}
			}
			for i := range wire {
				wire[i] = transport.Message{}
			}
			if err != nil {
				return
			}
		case <-sess.gone:
			return
		case <-s.stopped:
			return
		}
	}
}

// enqueueOut places a message on a worker's current session outbox, dropping
// it if the worker has no live session.
func (s *Server) enqueueOut(worker int, msg transport.Message) {
	s.enqueueOutRef(worker, msg, nil)
}

// enqueueOutRef is enqueueOut for payloads pinning a store generation: ref
// travels with the message and is released by the writer after the send, or
// here when the worker has no live session.
func (s *Server) enqueueOutRef(worker int, msg transport.Message, ref *paramGen) {
	sess := s.sessions.get(worker)
	if sess == nil {
		ref.release()
		return
	}
	s.enqueueSessionRef(sess, msg, ref)
}

// enqueueSession places a message on a specific session's outbox. It never
// blocks indefinitely: a session that ends or a server that stops unblocks
// the send.
func (s *Server) enqueueSession(sess *session, msg transport.Message) {
	s.enqueueSessionRef(sess, msg, nil)
}

// enqueueSessionRef is enqueueSession with a generation reference attached;
// dropping the message (session gone, server stopped) releases it.
func (s *Server) enqueueSessionRef(sess *session, msg transport.Message, ref *paramGen) {
	select {
	case sess.outbox <- outMsg{msg: msg, ref: ref}:
	case <-sess.gone:
		ref.release()
	case <-s.stopped:
		ref.release()
	}
}

// recordReleases records waiting-time metrics for released workers. Callers
// hold policyMu.
func (s *Server) recordReleases(release []core.WorkerID, now time.Time) {
	for _, id := range release {
		w := int(id)
		if at, ok := s.pushedAt[w]; ok {
			s.waits.Record(w, now.Sub(at))
			delete(s.pushedAt, w)
		}
	}
}

// releaseTarget is one resolved release delivery: the session the OK rides —
// the worker's own for a direct worker, its relay trunk for a routed one —
// and the worker slot the OK names (the trunk demultiplexes by it).
type releaseTarget struct {
	sess   *session
	worker int
}

// releaseBatch is one release decision queued for delivery: the workers to
// send OK to, the pipeline depth (Store.Reserved) at decision time that must
// be applied before any of them goes out, and — when the triggering push
// failed — the session that gets an error instead of its OK. ticket is the
// push's version for checkpoint-interval accounting (0 when the batch did
// not apply an update). queueReleases resolves release to targets, the
// sessions the decision accounted for; delivery goes to exactly those
// sessions, never to a successor that registered while the batch waited on
// its gate.
type releaseBatch struct {
	release []core.WorkerID // decision's worker IDs, as the policy emitted them
	targets []releaseTarget // release resolved to sessions at decision time
	gate    int64
	errSess *session // the session whose push failed; nil when none
	err     error
	// errTrunk and errWorkers carry a failed relay partial's error fan-out:
	// each listed worker gets a per-child MsgError on the trunk instead of an
	// OK — the relay demultiplexes them to the children whose gradients were
	// lost.
	errTrunk   *session
	errWorkers []int
	ticket     int64
	// queuedAt stamps the decision time for the release-lag histogram (how
	// long the sequencer held the batch waiting on its apply gate); the zero
	// value skips the observation.
	queuedAt time.Time
}

// releaser is the release sequencer: it delivers queued release decisions in
// the order they were made, each only after the store's applied version has
// reached the batch's gate. This is what preserves paradigm semantics now
// that gradient application happens off policyMu — a worker released by a
// decision can never pull weights missing an update that decision accounted
// for, because its OK is held until those updates are visible on every
// shard.
func (s *Server) releaser() {
	defer s.wg.Done()
	for {
		select {
		case b := <-s.releases:
			if b.gate > 0 && !s.cfg.Store.WaitApplied(b.gate, s.stopped) {
				return // server stopped while waiting
			}
			if !b.queuedAt.IsZero() {
				s.sm.releaseLag.Observe(time.Since(b.queuedAt).Seconds())
			}
			s.sendReleases(b)
			if b.ticket > 0 {
				s.tracer.Released(b.ticket, time.Now())
			}
			if b.err != nil && b.errSess != nil {
				// The erroring worker gets the error, not an OK that would
				// let it train on as if the push had landed — on the session
				// that pushed; a successor session never sees a stale error.
				s.enqueueSession(b.errSess, transport.Message{Type: transport.MsgError, Error: b.err.Error()})
			}
			if b.err != nil && b.errTrunk != nil {
				// A failed relay partial errors every child it carried, by
				// worker, on the trunk that forwarded it.
				for _, w := range b.errWorkers {
					s.enqueueSession(b.errTrunk, transport.Message{
						Type:   transport.MsgError,
						Worker: w,
						Error:  b.err.Error(),
					})
				}
			}
			if b.ticket > 0 {
				s.maybeCheckpoint(b.ticket)
			}
		case <-s.stopped:
			return
		}
	}
}

// observerPump follows the store's applied version and reports every
// advance to a policy implementing core.BatchObserver, under policyMu so
// the calls interleave consistently with the policy's other hooks. Advances
// that land while the policy is busy merge into one call whose batch is the
// sum — the version stream stays gapless and monotone.
func (s *Server) observerPump(bo core.BatchObserver, seen int64) {
	defer s.wg.Done()
	for {
		if !s.cfg.Store.WaitApplied(seen+1, s.stopped) {
			return // server stopped
		}
		v := s.cfg.Store.Version()
		s.policyMu.Lock()
		bo.OnBatchApplied(v, int(v-seen))
		s.policyMu.Unlock()
		seen = v
	}
}

// queueReleases resolves a release decision's workers to their current
// sessions and hands the batch to the sequencer. Callers hold policyMu,
// which is what keeps the queue in decision order and the gates monotone —
// and what makes the resolution exact: membership hooks run under the same
// lock, so the sessions captured here are precisely the ones the decision
// accounted for. Pinning sessions now, instead of re-resolving worker IDs
// at send time, means a worker that leaves and rejoins while the batch
// waits on its apply gate can never receive a stale OK on its successor
// session — enqueueSession drops messages for ended sessions. A full queue
// blocks the caller, never the sequencer; batches that would deliver
// nothing are dropped at the door.
func (s *Server) queueReleases(b releaseBatch) {
	if len(b.release) == 0 && b.err == nil && b.ticket == 0 {
		return
	}
	for _, id := range b.release {
		w := int(id)
		if sess := s.sessions.get(w); sess != nil {
			b.targets = append(b.targets, releaseTarget{sess: sess, worker: w})
		} else if trunk := s.routeFor(w); trunk != nil {
			// Relay-routed workers have no session; their OK travels on the
			// trunk, tagged with the worker it names, and the relay delivers
			// it to the child.
			b.targets = append(b.targets, releaseTarget{sess: trunk, worker: w})
		}
	}
	select {
	case s.releases <- b:
	case <-s.stopped:
	}
}

// routeFor returns the trunk session currently carrying a routed worker, or
// nil for directly sessioned (or absent) workers.
func (s *Server) routeFor(w int) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.routes[w]
}

// sendReleases delivers the batch's OK signals — the single implementation
// of release delivery for push, join and leave decisions. The batch's error
// carve-outs are honored: the direct session whose push failed, and the
// children of a failed relay partial, must not receive an OK that would let
// them train on as if the push had landed (the releaser sends them the error
// instead).
func (s *Server) sendReleases(b releaseBatch) {
	for _, t := range b.targets {
		if t.sess == b.errSess {
			continue
		}
		if t.sess == b.errTrunk && intsContain(b.errWorkers, t.worker) {
			continue
		}
		s.enqueueSession(t.sess, transport.Message{Type: transport.MsgOK, Worker: t.worker})
		s.sm.releases.Inc()
	}
}

// intsContain reports whether xs contains v (errWorkers is relay-fanout
// sized, so a linear scan beats building a set).
func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// handlePush accepts a pushed gradient and queues the policy's release
// decision. Decoding the wire tensors — including codec decompression —
// happens outside policyMu so payload conversion from many workers overlaps.
// Under the lock only the ordering-sensitive step runs: the policy decision,
// the ticket assignment (Store.EnqueueApply hands the gradients to the
// per-shard applier pipeline without waiting), and the staleness accounting,
// which observes the ticket — the version the push lands at — and therefore
// matches the serial path exactly. The release decision is queued to the
// sequencer gated on everything reserved so far, so no released worker can
// outrun the application of the updates its release depends on.
func (s *Server) handlePush(sess *session, msg transport.Message) {
	worker := sess.worker
	if worker < 0 {
		s.enqueueSession(sess, transport.Message{
			Type:  transport.MsgError,
			Error: "replica sessions are read-only",
		})
		return
	}
	baseVersion := msg.Version
	tr := s.tracer.Sample(worker, msg.Iteration)
	if tr != nil {
		tr.Base = baseVersion
	}
	decodeStart := time.Now()
	var grads []*tensor.Tensor
	var decodeErr error
	if s.cfg.Cluster.Coordinator && len(msg.Tensors) == 0 && len(msg.Packed) == 0 {
		// Metadata-only cluster push: the bytes went to the data servers; the
		// coordinator applies a shared zero gradient so the ticket/version
		// machinery — and everything staleness is defined against — runs
		// exactly as on a classic server.
		grads = s.zeroGrad
	} else {
		grads, decodeErr = s.decodePush(sess, msg)
	}
	s.sm.phaseDecode.Observe(time.Since(decodeStart).Seconds())

	var guardDrop bool
	if s.guard != nil {
		guardStart := time.Now()
		screened := grads
		if decodeErr != nil {
			screened = nil
		}
		verdict := s.guard.checkPush(worker, baseVersion, s.cfg.Store.Reserved(), screened)
		s.sm.phaseGuard.Observe(time.Since(guardStart).Seconds())
		if verdict.evict {
			// Strikes exhausted: the worker departs through the same path as a
			// lease eviction — the policy counts it out and releases any peers
			// its absence unblocks, and the closed connection tells the worker.
			s.tracer.Abandon(tr, "guard")
			s.leave(sess)
			_ = sess.conn.Close()
			return
		}
		guardDrop = verdict.drop
	}
	if tr != nil {
		tr.ScreenedAt = time.Now()
	}

	now := s.clock()
	// The policy phase is timed from before the lock, so contention on
	// policyMu — the serialization cost the pipelined design exists to
	// shrink — shows up in the histogram rather than hiding.
	policyStart := time.Now()
	s.policyMu.Lock()
	if !s.sessions.current(sess) {
		// The session was evicted while the payload was decoding; the
		// policy already counted the worker out, so the push is void.
		s.policyMu.Unlock()
		s.tracer.Abandon(tr, "superseded")
		return
	}
	decision := s.cfg.Policy.OnPush(core.WorkerID(worker), now)

	var pushErr error
	var ticket int64
	if decision.Drop || guardDrop {
		// Policy-dropped (backup-worker baseline) or guard-rejected: the
		// gradients never reach the store, but the policy has counted the
		// push, so its releases still flow — a barrier paradigm must not
		// deadlock on a rejected payload.
		if guardDrop {
			s.sm.droppedGuard.Inc()
			s.tracer.Abandon(tr, "guard")
		} else {
			s.sm.droppedPolicy.Inc()
			s.tracer.Abandon(tr, "policy")
		}
		tr = nil
	} else {
		err := decodeErr
		if err == nil {
			ticket, err = s.cfg.Store.EnqueueApply(grads)
		}
		if err != nil {
			// The policy has already counted this push and may have decided
			// to release other workers — their releases must still go out
			// or a barrier paradigm deadlocks on a single bad payload. Only
			// the pushing worker learns of the failure.
			pushErr = err
			s.tracer.Abandon(tr, "error")
			tr = nil
		} else {
			s.sm.pushes.Inc()
			stale := int(ticket - 1 - baseVersion)
			if stale < 0 && s.cfg.Cluster.Coordinator {
				// Cluster workers report the min data-server version as their
				// base; fragments apply before the metadata push lands, so the
				// base can transiently run ahead of the coordinator's clock.
				stale = 0
			}
			s.staleness.Observe(stale)
			s.sm.staleness.Observe(float64(stale))
			if tr != nil {
				tr.Ticket = ticket
				tr.Staleness = stale
				tr.EnqueuedAt = time.Now()
				s.tracer.Track(tr)
			}
		}
	}

	s.pushedAt[worker] = now
	s.recordReleases(decision.Release, now)
	var errSess *session
	if pushErr != nil {
		errSess = sess
	}
	s.queueReleases(releaseBatch{
		release:  decision.Release,
		gate:     s.cfg.Store.Reserved(),
		errSess:  errSess,
		err:      pushErr,
		ticket:   ticket,
		queuedAt: time.Now(),
	})
	s.policyMu.Unlock()
	s.sm.phasePolicy.Observe(time.Since(policyStart).Seconds())
}

// maybeCheckpoint writes a checkpoint when the applied version crosses the
// configured interval. The save runs on its own goroutine — checkpointing
// must never stall push handling — with at most one save in flight; an
// interval tick arriving mid-save is skipped (the next one covers it).
func (s *Server) maybeCheckpoint(version int64) {
	every := s.cfg.Checkpoint.Every
	if !s.cfg.Checkpoint.Enabled() || every <= 0 || version%int64(every) != 0 {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.ckptBusy.Store(false)
		s.saveCheckpoint(false)
	}()
}

// recordCheckpointErr remembers the most recent checkpoint failure.
func (s *Server) recordCheckpointErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.ckptErr = err
	s.mu.Unlock()
}

// CheckpointError returns the most recent checkpoint write failure, if any.
// Checkpoint saves are best-effort: a failure never interrupts training.
func (s *Server) CheckpointError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptErr
}

// decodePush converts a push message's payload into gradient tensors,
// decompressing packed payloads under the negotiated codec. A compressed
// push arriving on an uncompressed server (or vice versa) is a protocol
// violation — registration negotiates the codec — and fails the push.
//
// The decode reuses per-session buffers wherever ownership allows: packed
// payloads decompress into the session's gradient scratch (the lock-step
// protocol guarantees the previous push's tensors are no longer needed),
// and a dense push whose message owns its wire buffer is aliased rather
// than copied. Store.Apply only reads gradients, so neither reuse can leak
// into the published weights.
func (s *Server) decodePush(sess *session, msg transport.Message) ([]*tensor.Tensor, error) {
	compressed := msg.Codec != "" || len(msg.Packed) > 0
	switch {
	case compressed && (!s.compression.Enabled() || msg.Codec != s.compression.Codec):
		return nil, fmt.Errorf("push compressed with codec %q but server speaks %s", msg.Codec, s.compression)
	case compressed:
		grads, err := compress.DecompressAllReuse(msg.Packed, sess.decodeScratch)
		if err != nil {
			return nil, err
		}
		sess.decodeScratch = grads
		return grads, nil
	case s.compression.Enabled():
		return nil, fmt.Errorf("uncompressed push but server speaks %s", s.compression)
	case msg.PayloadOwned():
		return transport.FromWireOwned(msg.Tensors)
	default:
		return transport.FromWire(msg.Tensors)
	}
}

// handlePull streams the current weights to a worker, one chunk per store
// shard. Each chunk references the shard's copy-on-write snapshot — the
// server copies nothing — and goes onto the wire as soon as the shard's
// reference is grabbed, so pulls from different workers, and a pull
// overlapping an in-flight push on other shards, proceed concurrently. The
// worker-side wire decode copies the data, keeping workers isolated.
//
// With pull compression negotiated, each chunk instead carries the shard's
// packed form from the store's per-shard cache: the quantization pass runs
// once per shard update, not once per pull, so fan-out to many workers
// stays cheap.
//
// A session that negotiated delta pulls may send its cached per-shard
// versions (PullVersions); shards still at the version the worker holds are
// answered with a payload-free Unchanged chunk, so a worker that pulls when
// little or nothing has changed re-downloads only what did. For such
// sessions — and only such sessions, the fields being protocol-v2 — every
// chunk carries its shard-local publication version for the worker's next
// request; replies to un-negotiated sessions use no v2 field and stay
// decodable by v1-only peers.
func (s *Server) handlePull(sess *session, req transport.Message) {
	worker := sess.worker
	s.sm.pulls.Inc()
	pullStart := time.Now()
	defer func() { s.sm.pullSeconds.Observe(time.Since(pullStart).Seconds()) }()
	if s.guard != nil && worker >= 0 {
		// Replica sessions sit outside the guard's per-slot clock accounting.
		s.guard.observePull(worker)
	}
	st := s.cfg.Store
	shards := st.Shards()
	total := st.NumTensors()
	compressPull := s.compression.Pull && s.compression.Enabled()
	have := req.PullVersions
	if !sess.deltaPull || len(have) != shards {
		// Un-negotiated, first-pull, or malformed gating state: serve full
		// chunks. A length mismatch cannot happen with a well-behaved client
		// (the shard count is fixed per server) but must not gate wrongly.
		have = nil
	}
	for i := 0; i < shards; i++ {
		haveV := int64(-1)
		if have != nil {
			haveV = have[i]
		}
		msg := transport.Message{
			Type:   transport.MsgWeights,
			Worker: worker,
			Shard:  i,
			Shards: shards,
			Total:  total,
		}
		// ref pins the store generation an uncompressed chunk aliases until
		// the writer has serialized it; nil for every other chunk kind.
		var ref *paramGen
		if compressPull {
			packed, base, version, shardV, unchanged := st.PackShardDelta(i, haveV, s.packShard)
			msg.Base = base
			msg.Version = version
			if sess.deltaPull {
				// ShardVersion is a v2 wire field scoped to negotiated
				// sessions (PROTOCOL.md §5a): stamping it on every reply
				// would promote the frame to protocol v2 and break v1-only
				// peers that never asked for delta pulls.
				msg.ShardVersion = shardV
			}
			if unchanged {
				msg.Unchanged = true
				s.sm.chunksUnchanged.Inc()
			} else {
				msg.Codec = s.compression.Codec
				msg.Packed = packed
				s.sm.chunksFull.Inc()
			}
		} else if sess.serializes {
			// The transport serializes payloads inside Send, so the chunk
			// only needs the generation pinned until the writer's send
			// returns — a bounded borrow the applier's buffer reuse can see
			// through, instead of ViewShardDelta's permanent escape.
			params, gen, base, version, shardV, unchanged := st.AcquireShardDelta(i, haveV)
			msg.Base = base
			msg.Version = version
			if sess.deltaPull {
				msg.ShardVersion = shardV
			}
			if unchanged {
				msg.Unchanged = true
				s.sm.chunksUnchanged.Inc()
			} else {
				msg.Tensors = transport.ToWireOwned(params)
				ref = gen
				s.sm.chunksFull.Inc()
			}
		} else {
			params, base, version, shardV, unchanged := st.ViewShardDelta(i, haveV)
			msg.Base = base
			msg.Version = version
			if sess.deltaPull {
				msg.ShardVersion = shardV
			}
			if unchanged {
				msg.Unchanged = true
				s.sm.chunksUnchanged.Inc()
			} else {
				msg.Tensors = transport.ToWireOwned(params)
				s.sm.chunksFull.Inc()
			}
		}
		s.enqueueOutRef(worker, msg, ref)
	}
}

// packShard is the Store.PackShard callback compressing one shard's
// published snapshot with the server's codec (stateless: no error feedback
// on the pull path).
func (s *Server) packShard(params []*tensor.Tensor) []compress.Packed {
	return compress.Pack(params, s.compression)
}

// handleDone records a worker's completion.
func (s *Server) handleDone(worker int) {
	s.mu.Lock()
	if !s.finished[worker] {
		s.finished[worker] = true
		s.done++
	}
	s.mu.Unlock()
	s.shrinkWindow()
	s.checkAllDone()
}

// shrinkWindow adapts the store's aggregation window to the cohort still
// pushing: finished workers and sessions gone past recall never contribute
// again, so a window sized for the full cohort would leave every remaining
// batch to the watchdog. It also flushes, so a partial window the departed
// worker was the missing contributor to publishes now rather than at the
// next tick. Never grows the window beyond the configured one.
func (s *Server) shrinkWindow() {
	if s.fullWindow <= 1 {
		return
	}
	gone := 0
	s.mu.Lock()
	for w := range s.joined {
		if s.finished[w] || (s.sessions.get(w) == nil && s.routes[w] == nil && !s.departedAt[w].IsZero()) {
			gone++
		}
	}
	s.mu.Unlock()
	w := s.fullWindow - gone
	if w < 1 {
		w = 1
	}
	s.cfg.Store.SetWindow(w)
	s.cfg.Store.Flush()
}

// GuardStats snapshots the anomaly guard's accounting (zero when the guard
// is disabled). Safe to call at any time; typically read after the run.
func (s *Server) GuardStats() GuardStats {
	if s.guard == nil {
		return GuardStats{}
	}
	return s.guard.stats()
}

// checkAllDone closes AllWorkersDone when training is complete. The classic
// condition is every worker slot reporting Done. An elastic server also
// completes when every slot that ever joined is finished or has departed
// for good — a permanently gone worker must not keep the server alive —
// provided at least one worker actually finished. "For good" means its
// session has been gone for longer than one heartbeat timeout: a worker
// mid-reconnect (redialing with backoff after a transient failure) must not
// be counted out, so departures inside that grace window defer completion
// and the lease monitor re-checks once the window elapses.
func (s *Server) checkAllDone() {
	complete := false
	s.mu.Lock()
	if !s.allDoneClosed {
		switch {
		case s.done == s.cfg.Workers:
			complete = true
		case s.cfg.Elastic && s.done > 0:
			complete = true
			now := s.clock()
			for w := range s.joined {
				if s.finished[w] {
					continue
				}
				if s.sessions.get(w) != nil || s.routes[w] != nil || now.Sub(s.departedAt[w]) <= s.hbTimeout {
					complete = false
					break
				}
			}
		}
		if complete {
			s.allDoneClosed = true
			close(s.allDone)
		}
	}
	s.mu.Unlock()
}

// Staleness returns the histogram of staleness values of applied updates
// (current store version minus the version the gradient was computed from).
// The histogram is not synchronized; read it only after the run has
// completed (e.g. after AllWorkersDone).
func (s *Server) Staleness() *metrics.Histogram { return s.staleness }

// Waits returns the per-worker waiting-time tracker. Like Staleness, read it
// only after the run has completed.
func (s *Server) Waits() *metrics.WaitTracker { return s.waits }

// Pushes returns the number of gradient updates applied.
func (s *Server) Pushes() int { return int(s.sm.pushes.Value()) }

// Dropped returns the number of pushed updates rejected without reaching the
// store — dropped by the policy (the backup-worker baseline) or by the
// anomaly guard.
func (s *Server) Dropped() int {
	return int(s.sm.droppedPolicy.Value() + s.sm.droppedGuard.Value())
}

// Rejoins returns the number of MsgRejoin registrations accepted.
func (s *Server) Rejoins() int { return int(s.sm.rejoins.Value()) }

// Departures returns the number of sessions deregistered — connection
// failures, graceful leaves and lease evictions combined.
func (s *Server) Departures() int { return int(s.sm.departures.Value()) }

// Registry returns the metrics registry the server's instrumentation lives
// on (the one passed via ServerConfig.Metrics, or the private one created in
// its absence). Scrape it with obs.Registry.WriteProm or snapshot it with
// Snapshot.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Traces returns the completed push-lifecycle traces, oldest first (nil when
// tracing is disabled).
func (s *Server) Traces() []obs.PushTrace { return s.tracer.Traces() }

// SessionStatus describes one live worker session in a Status snapshot.
type SessionStatus struct {
	Worker    int       `json:"worker"`
	Rejoined  bool      `json:"rejoined"`
	DeltaPull bool      `json:"delta_pull"`
	LastSeen  time.Time `json:"last_seen"`
}

// ServerStatus is a point-in-time introspection snapshot of the server — the
// payload /statusz serves and the single consistent source the end-of-run
// summary prints from.
type ServerStatus struct {
	Workers  int  `json:"workers"`
	Elastic  bool `json:"elastic"`
	Finished int  `json:"finished"`

	Version       int64   `json:"version"`
	Reserved      int64   `json:"reserved"`
	QueueDepth    int64   `json:"queue_depth"`
	ShardVersions []int64 `json:"shard_versions"`
	Window        int64   `json:"window"`
	FullWindow    int     `json:"full_window,omitempty"`

	Pushes     uint64 `json:"pushes"`
	Dropped    uint64 `json:"dropped"`
	Releases   uint64 `json:"releases"`
	Departures uint64 `json:"departures"`
	Rejoins    uint64 `json:"rejoins"`

	Guard           GuardStats      `json:"guard"`
	CheckpointError string          `json:"checkpoint_error,omitempty"`
	TracesCompleted uint64          `json:"traces_completed,omitempty"`
	Sessions        []SessionStatus `json:"sessions"`
}

// Status snapshots the server's live state for /statusz and end-of-run
// reporting. Counters come from the same registry series /metrics exports;
// the snapshot is internally consistent per field, not atomic across fields.
func (s *Server) Status() ServerStatus {
	st := ServerStatus{
		Workers:         s.cfg.Workers,
		Elastic:         s.cfg.Elastic,
		Version:         s.cfg.Store.Version(),
		Reserved:        s.cfg.Store.Reserved(),
		QueueDepth:      s.cfg.Store.QueueDepth(),
		ShardVersions:   s.cfg.Store.ShardVersions(),
		Window:          s.cfg.Store.Window(),
		FullWindow:      s.fullWindow,
		Pushes:          s.sm.pushes.Value(),
		Dropped:         s.sm.droppedPolicy.Value() + s.sm.droppedGuard.Value(),
		Releases:        s.sm.releases.Value(),
		Departures:      s.sm.departures.Value(),
		Rejoins:         s.sm.rejoins.Value(),
		Guard:           s.GuardStats(),
		TracesCompleted: s.tracer.Total(),
	}
	if err := s.CheckpointError(); err != nil {
		st.CheckpointError = err.Error()
	}
	s.mu.Lock()
	st.Finished = s.done
	s.mu.Unlock()
	sessions := s.sessions.list()
	st.Sessions = make([]SessionStatus, 0, len(sessions))
	for _, sess := range sessions {
		st.Sessions = append(st.Sessions, SessionStatus{
			Worker:    sess.worker,
			Rejoined:  sess.rejoined,
			DeltaPull: sess.deltaPull,
			LastSeen:  sess.seen(),
		})
	}
	return st
}
