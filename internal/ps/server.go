package ps

import (
	"fmt"
	"sync"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/metrics"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of workers expected to register.
	Workers int
	// Policy is the synchronization paradigm deciding when pushed workers are
	// released (BSP, ASP, SSP, DSSP, ...).
	Policy core.Policy
	// Store holds the global weights and applies updates.
	Store *Store
	// Compression selects the gradient codec this server speaks. Workers
	// must register with a matching configuration (or compress.Auto) or are
	// rejected. With Compression.Pull set, weight chunks on the pull path
	// are compressed too.
	Compression compress.Config
	// Clock supplies timestamps for the policy; nil means time.Now. The
	// trainer injects an accelerated clock when it simulates heterogeneous
	// hardware.
	Clock func() time.Time
}

// Server is the parameter server: it accepts worker connections, applies
// pushed gradients to the store, and releases workers according to the
// configured synchronization policy.
//
// Requests are handled on the connection goroutines themselves rather than
// being funneled through a central run loop. Pulls touch only the store's
// per-shard read locks, so any number of workers pull concurrently and a
// pull streams each shard to the wire as soon as that shard is unlocked.
// Pushes serialize on policyMu — the release decision and the gradient
// application must form one atomic step for the paradigm semantics (a BSP
// round's updates are all applied before any worker is released) — but the
// application itself is shard-parallel inside the store, so a push uses
// multiple cores and blocks concurrent pulls only shard by shard.
type Server struct {
	cfg ServerConfig
	// compression is cfg.Compression in normalized form, the single source
	// of truth for what the wire speaks.
	compression compress.Config
	clock       func() time.Time

	mu       sync.Mutex
	outboxes map[int]chan transport.Message
	finished map[int]bool
	done     int
	stopOnce sync.Once
	stopped  chan struct{}
	allDone  chan struct{}
	wg       sync.WaitGroup

	// policyMu serializes push handling: the policy decision, the store
	// update, the metrics derived from them, and the choice of workers to
	// release.
	policyMu  sync.Mutex
	staleness *metrics.Histogram
	waits     *metrics.WaitTracker
	pushes    int
	dropped   int
	pushedAt  map[int]time.Time
}

// NewServer returns a parameter server with the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ps: server needs a positive worker count, got %d", cfg.Workers)
	}
	if cfg.Policy == nil || cfg.Store == nil {
		return nil, fmt.Errorf("ps: server needs a policy and a store")
	}
	if cfg.Policy.NumWorkers() != cfg.Workers {
		return nil, fmt.Errorf("ps: policy coordinates %d workers, server expects %d",
			cfg.Policy.NumWorkers(), cfg.Workers)
	}
	compression := cfg.Compression.Normalized()
	if err := compression.Validate(false); err != nil {
		return nil, fmt.Errorf("ps: server compression: %w", err)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Server{
		cfg:         cfg,
		compression: compression,
		clock:       clock,
		outboxes:    make(map[int]chan transport.Message),
		finished:    make(map[int]bool),
		stopped:     make(chan struct{}),
		allDone:     make(chan struct{}),
		staleness:   metrics.NewHistogram(),
		waits:       metrics.NewWaitTracker(cfg.Workers),
		pushedAt:    make(map[int]time.Time),
	}, nil
}

// Serve accepts worker connections from the listener until Stop is called or
// the listener fails. It blocks; run it in its own goroutine when the caller
// also drives workers.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return fmt.Errorf("ps: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// HandleConn serves a single pre-established connection (used with the
// in-process transport). It returns when the worker disconnects or the
// server stops.
func (s *Server) HandleConn(conn transport.Conn) {
	s.handleConn(conn)
}

// Stop shuts the server down: connection writers exit and pending work is
// abandoned. It is safe to call multiple times.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
}

// AllWorkersDone returns a channel that is closed once every expected worker
// has sent MsgDone.
func (s *Server) AllWorkersDone() <-chan struct{} { return s.allDone }

// handleConn reads messages from one worker connection and services them on
// this goroutine. The worker protocol is lock-step (one outstanding request
// per worker), so handling in-line costs no pipeline depth, while requests
// from different workers run fully in parallel.
func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	var workerID = -1
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.MsgRegister:
			workerID = msg.Worker
			if workerID < 0 || workerID >= s.cfg.Workers {
				_ = conn.Send(transport.Message{
					Type:  transport.MsgError,
					Error: fmt.Sprintf("worker id %d out of range [0,%d)", workerID, s.cfg.Workers),
				})
				return
			}
			// Codec negotiation: the worker either adopts the server's
			// configuration (compress.Auto) or must match it exactly —
			// mixed-codec streams would silently corrupt staleness-critical
			// state, so mismatches are rejected before any payload flows.
			requested := compress.Config{Codec: msg.Codec, TopK: msg.CodecTopK, Pull: msg.CodecPull}.Normalized()
			if requested.Codec != compress.Auto && !requested.Equal(s.compression) {
				_ = conn.Send(transport.Message{
					Type: transport.MsgError,
					Error: fmt.Sprintf("compression mismatch: worker %d registered with codec %s, server speaks %s",
						workerID, requested, s.compression),
				})
				return
			}
			outbox := make(chan transport.Message, 64)
			s.mu.Lock()
			s.outboxes[workerID] = outbox
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.writer(conn, outbox)
			}()
			s.enqueueOut(workerID, transport.Message{
				Type:        transport.MsgRegistered,
				Worker:      workerID,
				Codec:       s.compression.Codec,
				CodecTopK:   s.compression.TopK,
				CodecPull:   s.compression.Pull,
				StoreShards: s.cfg.Store.Shards(),
			})

		case transport.MsgPush:
			if workerID < 0 {
				return
			}
			s.handlePush(workerID, msg)

		case transport.MsgPull:
			if workerID < 0 {
				return
			}
			s.handlePull(workerID)

		case transport.MsgDone:
			if workerID < 0 {
				return
			}
			s.handleDone(workerID)

		case transport.MsgShutdown:
			return

		default:
			// Unknown message types are ignored to keep the protocol
			// forward-compatible.
		}
	}
}

// writer drains one worker's outbox onto its connection.
func (s *Server) writer(conn transport.Conn, outbox <-chan transport.Message) {
	for {
		select {
		case msg, ok := <-outbox:
			if !ok {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		case <-s.stopped:
			return
		}
	}
}

// enqueueOut places a message on a worker's outbox, dropping it if the worker
// never registered or the server is stopping.
func (s *Server) enqueueOut(worker int, msg transport.Message) {
	s.mu.Lock()
	outbox, ok := s.outboxes[worker]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case outbox <- msg:
	case <-s.stopped:
	}
}

// handlePush applies a pushed gradient and releases workers per the policy.
// Decoding the wire tensors — including codec decompression — happens
// outside policyMu so that payload conversion from many workers overlaps;
// the policy decision and the store update hold the lock.
func (s *Server) handlePush(worker int, msg transport.Message) {
	baseVersion := msg.Version
	grads, decodeErr := s.decodePush(msg)

	now := s.clock()
	s.policyMu.Lock()
	decision := s.cfg.Policy.OnPush(core.WorkerID(worker), now)

	var pushErr error
	if decision.Drop {
		s.dropped++
	} else {
		err := decodeErr
		var applied int64
		if err == nil {
			applied, err = s.cfg.Store.Apply(grads)
		}
		if err != nil {
			// The policy has already counted this push and may have decided
			// to release other workers — their releases must still go out
			// below or a barrier paradigm deadlocks on a single bad payload.
			// Only the pushing worker learns of the failure.
			pushErr = err
		} else {
			s.pushes++
			s.staleness.Observe(int(applied - 1 - baseVersion))
		}
	}

	s.pushedAt[worker] = now
	for _, id := range decision.Release {
		w := int(id)
		if at, ok := s.pushedAt[w]; ok {
			s.waits.Record(w, now.Sub(at))
			delete(s.pushedAt, w)
		}
	}
	s.policyMu.Unlock()

	for _, id := range decision.Release {
		w := int(id)
		if pushErr != nil && w == worker {
			// The erroring worker gets the error, not an OK that would let
			// it train on as if the push had landed.
			continue
		}
		s.enqueueOut(w, transport.Message{Type: transport.MsgOK, Worker: w})
	}
	if pushErr != nil {
		s.enqueueOut(worker, transport.Message{Type: transport.MsgError, Error: pushErr.Error()})
	}
}

// decodePush converts a push message's payload into gradient tensors,
// decompressing packed payloads under the negotiated codec. A compressed
// push arriving on an uncompressed server (or vice versa) is a protocol
// violation — registration negotiates the codec — and fails the push.
func (s *Server) decodePush(msg transport.Message) ([]*tensor.Tensor, error) {
	compressed := msg.Codec != "" || len(msg.Packed) > 0
	switch {
	case compressed && (!s.compression.Enabled() || msg.Codec != s.compression.Codec):
		return nil, fmt.Errorf("push compressed with codec %q but server speaks %s", msg.Codec, s.compression)
	case compressed:
		return compress.DecompressAll(msg.Packed)
	case s.compression.Enabled():
		return nil, fmt.Errorf("uncompressed push but server speaks %s", s.compression)
	default:
		return transport.FromWire(msg.Tensors)
	}
}

// handlePull streams the current weights to a worker, one chunk per store
// shard. Each chunk references the shard's copy-on-write snapshot — the
// server copies nothing — and goes onto the wire as soon as the shard's
// reference is grabbed, so pulls from different workers, and a pull
// overlapping an in-flight push on other shards, proceed concurrently. The
// worker-side wire decode copies the data, keeping workers isolated.
//
// With pull compression negotiated, each chunk instead carries the shard's
// packed form from the store's per-shard cache: the quantization pass runs
// once per shard update, not once per pull, so fan-out to many workers
// stays cheap.
func (s *Server) handlePull(worker int) {
	st := s.cfg.Store
	shards := st.Shards()
	total := st.NumTensors()
	compressPull := s.compression.Pull && s.compression.Enabled()
	for i := 0; i < shards; i++ {
		msg := transport.Message{
			Type:   transport.MsgWeights,
			Worker: worker,
			Shard:  i,
			Shards: shards,
			Total:  total,
		}
		if compressPull {
			packed, base, version := st.PackShard(i, s.packShard)
			msg.Codec = s.compression.Codec
			msg.Packed = packed
			msg.Base = base
			msg.Version = version
		} else {
			params, base, version := st.ViewShard(i)
			msg.Tensors = transport.ToWireOwned(params)
			msg.Base = base
			msg.Version = version
		}
		s.enqueueOut(worker, msg)
	}
}

// packShard is the Store.PackShard callback compressing one shard's
// published snapshot with the server's codec (stateless: no error feedback
// on the pull path).
func (s *Server) packShard(params []*tensor.Tensor) []compress.Packed {
	return compress.Pack(params, s.compression)
}

// handleDone records a worker's completion and closes AllWorkersDone once
// every expected worker reported in.
func (s *Server) handleDone(worker int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished[worker] {
		return
	}
	s.finished[worker] = true
	s.done++
	if s.done == s.cfg.Workers {
		close(s.allDone)
	}
}

// Staleness returns the histogram of staleness values of applied updates
// (current store version minus the version the gradient was computed from).
// The histogram is not synchronized; read it only after the run has
// completed (e.g. after AllWorkersDone).
func (s *Server) Staleness() *metrics.Histogram { return s.staleness }

// Waits returns the per-worker waiting-time tracker. Like Staleness, read it
// only after the run has completed.
func (s *Server) Waits() *metrics.WaitTracker { return s.waits }

// Pushes returns the number of gradient updates applied.
func (s *Server) Pushes() int {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.pushes
}

// Dropped returns the number of pushed updates dropped by the policy
// (non-zero only for the backup-worker baseline).
func (s *Server) Dropped() int {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.dropped
}
