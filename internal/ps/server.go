package ps

import (
	"fmt"
	"sync"
	"time"

	"dssp/internal/core"
	"dssp/internal/metrics"
	"dssp/internal/transport"
)

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of workers expected to register.
	Workers int
	// Policy is the synchronization paradigm deciding when pushed workers are
	// released (BSP, ASP, SSP, DSSP, ...).
	Policy core.Policy
	// Store holds the global weights and applies updates.
	Store *Store
	// Clock supplies timestamps for the policy; nil means time.Now. The
	// trainer injects an accelerated clock when it simulates heterogeneous
	// hardware.
	Clock func() time.Time
}

// Server is the parameter server: it accepts worker connections, applies
// pushed gradients to the store, and releases workers according to the
// configured synchronization policy.
type Server struct {
	cfg   ServerConfig
	clock func() time.Time

	commands chan serverCmd

	mu        sync.Mutex
	outboxes  map[int]chan transport.Message
	finished  map[int]bool
	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	allDone   chan struct{}
	wg        sync.WaitGroup

	// Metrics, owned by the run loop.
	staleness  *metrics.Histogram
	waits      *metrics.WaitTracker
	pushes     int
	dropped    int
	pushedAt   map[int]time.Time
	runStarted time.Time
}

// serverCmd is one unit of work for the central run loop.
type serverCmd struct {
	kind    cmdKind
	worker  int
	grads   []transport.WireTensor
	version int64
	reply   chan error
}

type cmdKind int

const (
	cmdPush cmdKind = iota + 1
	cmdPull
	cmdDone
)

// NewServer returns a parameter server with the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("ps: server needs a positive worker count, got %d", cfg.Workers)
	}
	if cfg.Policy == nil || cfg.Store == nil {
		return nil, fmt.Errorf("ps: server needs a policy and a store")
	}
	if cfg.Policy.NumWorkers() != cfg.Workers {
		return nil, fmt.Errorf("ps: policy coordinates %d workers, server expects %d",
			cfg.Policy.NumWorkers(), cfg.Workers)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Server{
		cfg:       cfg,
		clock:     clock,
		commands:  make(chan serverCmd, cfg.Workers*4),
		outboxes:  make(map[int]chan transport.Message),
		finished:  make(map[int]bool),
		stopped:   make(chan struct{}),
		allDone:   make(chan struct{}),
		staleness: metrics.NewHistogram(),
		waits:     metrics.NewWaitTracker(cfg.Workers),
		pushedAt:  make(map[int]time.Time),
	}, nil
}

// Serve accepts worker connections from the listener until Stop is called or
// the listener fails. It blocks; run it in its own goroutine when the caller
// also drives workers.
func (s *Server) Serve(l transport.Listener) error {
	s.startRunLoop()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return fmt.Errorf("ps: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// HandleConn serves a single pre-established connection (used with the
// in-process transport). It returns when the worker disconnects or the
// server stops.
func (s *Server) HandleConn(conn transport.Conn) {
	s.startRunLoop()
	s.handleConn(conn)
}

// startRunLoop launches the central command-processing goroutine once.
func (s *Server) startRunLoop() {
	s.startOnce.Do(func() {
		s.runStarted = s.clock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.run()
		}()
	})
}

// Stop shuts the server down: the run loop exits and all worker outboxes are
// closed. It is safe to call multiple times.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
}

// AllWorkersDone returns a channel that is closed once every expected worker
// has sent MsgDone.
func (s *Server) AllWorkersDone() <-chan struct{} { return s.allDone }

// handleConn reads messages from one worker connection and forwards them to
// the run loop.
func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	var workerID = -1
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.MsgRegister:
			workerID = msg.Worker
			if workerID < 0 || workerID >= s.cfg.Workers {
				_ = conn.Send(transport.Message{
					Type:  transport.MsgError,
					Error: fmt.Sprintf("worker id %d out of range [0,%d)", workerID, s.cfg.Workers),
				})
				return
			}
			outbox := make(chan transport.Message, 64)
			s.mu.Lock()
			s.outboxes[workerID] = outbox
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.writer(conn, outbox)
			}()
			s.enqueueOut(workerID, transport.Message{Type: transport.MsgRegistered, Worker: workerID})

		case transport.MsgPush:
			if workerID < 0 {
				return
			}
			s.submit(serverCmd{kind: cmdPush, worker: workerID, grads: msg.Tensors, version: msg.Version})

		case transport.MsgPull:
			if workerID < 0 {
				return
			}
			s.submit(serverCmd{kind: cmdPull, worker: workerID})

		case transport.MsgDone:
			if workerID < 0 {
				return
			}
			s.submit(serverCmd{kind: cmdDone, worker: workerID})

		case transport.MsgShutdown:
			return

		default:
			// Unknown message types are ignored to keep the protocol
			// forward-compatible.
		}
	}
}

// submit forwards a command to the run loop unless the server has stopped.
func (s *Server) submit(cmd serverCmd) {
	select {
	case s.commands <- cmd:
	case <-s.stopped:
	}
}

// writer drains one worker's outbox onto its connection.
func (s *Server) writer(conn transport.Conn, outbox <-chan transport.Message) {
	for {
		select {
		case msg, ok := <-outbox:
			if !ok {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		case <-s.stopped:
			return
		}
	}
}

// enqueueOut places a message on a worker's outbox, dropping it if the worker
// never registered or the server is stopping.
func (s *Server) enqueueOut(worker int, msg transport.Message) {
	s.mu.Lock()
	outbox, ok := s.outboxes[worker]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case outbox <- msg:
	case <-s.stopped:
	}
}

// run is the central loop: it serializes all store mutations and policy
// decisions, mirroring the single logical server of the paper.
func (s *Server) run() {
	doneWorkers := 0
	for {
		select {
		case <-s.stopped:
			return
		case cmd := <-s.commands:
			switch cmd.kind {
			case cmdPush:
				s.handlePush(cmd)
			case cmdPull:
				s.handlePull(cmd)
			case cmdDone:
				s.mu.Lock()
				if !s.finished[cmd.worker] {
					s.finished[cmd.worker] = true
					doneWorkers++
				}
				s.mu.Unlock()
				if doneWorkers == s.cfg.Workers {
					close(s.allDone)
				}
			}
		}
	}
}

// handlePush applies a pushed gradient and releases workers per the policy.
func (s *Server) handlePush(cmd serverCmd) {
	now := s.clock()
	decision := s.cfg.Policy.OnPush(core.WorkerID(cmd.worker), now)

	if decision.Drop {
		s.dropped++
	} else {
		grads, err := transport.FromWire(cmd.grads)
		if err == nil {
			_, err = s.cfg.Store.Apply(grads)
		}
		if err != nil {
			s.enqueueOut(cmd.worker, transport.Message{Type: transport.MsgError, Error: err.Error()})
			return
		}
		s.pushes++
		s.staleness.Observe(int(s.cfg.Store.Version() - 1 - cmd.version))
	}

	s.pushedAt[cmd.worker] = now
	for _, id := range decision.Release {
		w := int(id)
		if at, ok := s.pushedAt[w]; ok {
			s.waits.Record(w, now.Sub(at))
			delete(s.pushedAt, w)
		}
		s.enqueueOut(w, transport.Message{Type: transport.MsgOK, Worker: w})
	}
}

// handlePull sends the current weights to a worker.
func (s *Server) handlePull(cmd serverCmd) {
	params, version := s.cfg.Store.Snapshot()
	s.enqueueOut(cmd.worker, transport.Message{
		Type:    transport.MsgWeights,
		Worker:  cmd.worker,
		Version: version,
		Tensors: transport.ToWire(params),
	})
}

// Staleness returns the histogram of staleness values of applied updates
// (current store version minus the version the gradient was computed from).
func (s *Server) Staleness() *metrics.Histogram { return s.staleness }

// Waits returns the per-worker waiting-time tracker.
func (s *Server) Waits() *metrics.WaitTracker { return s.waits }

// Pushes returns the number of gradient updates applied.
func (s *Server) Pushes() int { return s.pushes }

// Dropped returns the number of pushed updates dropped by the policy
// (non-zero only for the backup-worker baseline).
func (s *Server) Dropped() int { return s.dropped }
