package ps

import (
	"math"
	"testing"

	"dssp/internal/tensor"
)

func gradsOf(vals ...float32) []*tensor.Tensor {
	return []*tensor.Tensor{tensor.FromSlice(append([]float32(nil), vals...), len(vals))}
}

func TestGuardDisabledIsNil(t *testing.T) {
	if g := newGuard(GuardConfig{}, 4); g != nil {
		t.Fatal("disabled guard must be nil")
	}
}

// TestGuardNormOutlier walks the full strike sequence: honest pushes build
// the baseline, outliers are flagged and dropped, and the third strike
// evicts.
func TestGuardNormOutlier(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true}, 2)

	// Build a baseline of honest norms (needs >= 4 samples).
	for i := 0; i < 6; i++ {
		g.observePull(0)
		if v := g.checkPush(0, 0, 0, gradsOf(1, 1)); v.drop || v.evict {
			t.Fatalf("honest push %d flagged: %+v", i, v)
		}
	}

	// An 8x-median outlier (norm ~ sqrt(2)*100 vs median sqrt(2)).
	for strike := 1; strike <= DefaultMaxStrikes; strike++ {
		g.observePull(1)
		v := g.checkPush(1, 0, 0, gradsOf(100, 100))
		if !v.drop {
			t.Fatalf("outlier push %d not dropped", strike)
		}
		wantEvict := strike == DefaultMaxStrikes
		if v.evict != wantEvict {
			t.Fatalf("strike %d: evict=%v, want %v", strike, v.evict, wantEvict)
		}
	}

	st := g.stats()
	if st.Flags[1] != DefaultMaxStrikes || st.Flags[0] != 0 {
		t.Fatalf("flags %v, want worker 1 = %d", st.Flags, DefaultMaxStrikes)
	}
	if len(st.Evicted) != 1 || st.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", st.Evicted)
	}
	if st.DroppedPushes != DefaultMaxStrikes {
		t.Fatalf("dropped %d, want %d", st.DroppedPushes, DefaultMaxStrikes)
	}
}

// TestGuardOutlierDoesNotPoisonBaseline: flagged pushes must not enter the
// norm ring, so an attacker cannot escalate its magnitude gradually by
// dragging the median upward with accepted outliers.
func TestGuardOutlierDoesNotPoisonBaseline(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true, MaxStrikes: 100}, 1)
	for i := 0; i < 6; i++ {
		g.observePull(0)
		g.checkPush(0, 0, 0, gradsOf(1))
	}
	for i := 0; i < 10; i++ {
		g.observePull(0)
		if v := g.checkPush(0, 0, 0, gradsOf(50)); !v.drop {
			t.Fatalf("outlier %d accepted: baseline was poisoned", i)
		}
	}
}

func TestGuardLyingClock(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true}, 1)
	g.observePull(0)
	// Claiming base 10 when the server has only reserved 5 is impossible.
	if v := g.checkPush(0, 10, 5, gradsOf(1)); !v.drop {
		t.Fatal("future-version push not dropped")
	}
	g.observePull(0)
	// Staleness in the other direction is normal.
	if v := g.checkPush(0, 3, 5, gradsOf(1)); v.drop {
		t.Fatal("stale-but-honest push dropped")
	}
}

func TestGuardPushFlood(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true, FloodSlack: 2}, 1)
	g.observePull(0)
	for i := 0; i < 2; i++ {
		if v := g.checkPush(0, 0, 0, gradsOf(1)); v.drop {
			t.Fatalf("push %d within slack dropped", i)
		}
	}
	if v := g.checkPush(0, 0, 0, gradsOf(1)); !v.drop {
		t.Fatal("flood push not dropped")
	}
	// A pull resets the flood counter.
	g.observePull(0)
	if v := g.checkPush(0, 0, 0, gradsOf(1)); v.drop {
		t.Fatal("post-pull push dropped")
	}
}

func TestGuardNaNPush(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true}, 1)
	g.observePull(0)
	// NaN needs no baseline: flagged from the very first push.
	if v := g.checkPush(0, 0, 0, gradsOf(float32(math.NaN()))); !v.drop {
		t.Fatal("NaN push not dropped")
	}
	g.observePull(0)
	if v := g.checkPush(0, 0, 0, gradsOf(float32(math.Inf(-1)))); !v.drop {
		t.Fatal("Inf push not dropped")
	}
}

// TestGuardNilGrads: a decode failure screens clocks only.
func TestGuardNilGrads(t *testing.T) {
	g := newGuard(GuardConfig{Enabled: true}, 1)
	g.observePull(0)
	if v := g.checkPush(0, 0, 0, nil); v.drop {
		t.Fatal("nil grads with honest clock dropped")
	}
	g.observePull(0)
	if v := g.checkPush(0, 99, 0, nil); !v.drop {
		t.Fatal("nil grads with lying clock not dropped")
	}
}
