package ps

import (
	"sync/atomic"

	"dssp/internal/tensor"
)

// paramGen is one published generation of a shard's parameters: the tensor
// buffers one copy-on-write publication wrote, plus the bookkeeping that
// decides when those buffers may be written again.
//
// The applier would otherwise allocate a full parameter copy per batch just
// to honor publication immutability. Refcounting makes the steady state
// double-buffered instead: once every reader of a retired generation has
// released it, the applier reuses its buffers as the destination of the next
// fused optimizer step, and apply allocates nothing.
//
// Two reader classes exist:
//
//   - Bounded readers (the TCP pull path, the compressed-pack fill,
//     snapshots and checkpoints) hold a reference for the duration of the
//     read: acquire under the shard's read lock, release when the data has
//     been copied, packed, or serialized. refs therefore reaches zero again.
//
//   - Unbounded readers (the public View accessors and the in-process
//     channel transport, whose messages alias tensors for as long as the
//     peer keeps them) mark the generation escaped. An escaped generation is
//     never reused — its buffers stay immutable forever and the garbage
//     collector reclaims them.
//
// Memory-model argument for reuse safety: a reference (or the escaped mark)
// is only ever taken while the generation is the shard's current one, under
// sh.mu.RLock. The applier retires a generation under sh.mu.Lock, which
// orders it after every in-flight acquisition; from then on no new reference
// can appear. Seeing refs == 0 && !escaped on a retired generation therefore
// proves all reads of its buffers happened before (the release's atomic
// decrement synchronizes with the applier's load), and overwriting them
// cannot race any reader.
type paramGen struct {
	params  []*tensor.Tensor
	refs    atomic.Int64
	escaped atomic.Bool
}

// release drops one bounded-reader reference taken by shard.acquire (or
// Store.AcquireShardDelta). Must be called exactly once per acquisition,
// after the last read of the generation's tensors.
func (g *paramGen) release() {
	if g != nil {
		g.refs.Add(-1)
	}
}

// acquire returns the shard's current generation and version with a
// bounded-reader reference held; the caller must release it.
func (sh *shard) acquire() (*paramGen, int64) {
	sh.mu.RLock()
	g, v := sh.gen, sh.version
	g.refs.Add(1)
	sh.mu.RUnlock()
	return g, v
}

// viewVersioned returns the shard's currently published tensors together
// with the shard-local version that published them. The tensors' lifetime is
// unbounded from the store's point of view, so the generation is marked
// escaped and its buffers are permanently retired from reuse.
func (sh *shard) viewVersioned() ([]*tensor.Tensor, int64) {
	sh.mu.RLock()
	g, v := sh.gen, sh.version
	g.escaped.Store(true)
	sh.mu.RUnlock()
	return g.params, v
}

// retiredGens bounds the applier's reuse pool. Two is the steady-state need:
// with generation n current, generation n-1 may still be read by pulls that
// grabbed it just before publication, and generation n-2 is the one whose
// readers have drained — the reuse candidate. Anything older is either
// escaped or pinned by an unusually slow reader; dropping it to the garbage
// collector costs one allocation later but keeps the pool scan O(1).
const retiredGens = 2

// takeGen returns the destination generation for the next publication:
// a retired generation whose buffers are provably quiescent when one exists,
// otherwise freshly allocated buffers shaped like the current parameters.
// Only the shard's applier calls it (single goroutine), under sh.mu.
func (sh *shard) takeGen(m *storeMetrics) *paramGen {
	for i, g := range sh.retired {
		if !g.escaped.Load() && g.refs.Load() == 0 {
			sh.retired = append(sh.retired[:i], sh.retired[i+1:]...)
			sh.reuses.Add(1)
			if m != nil {
				m.cloneReuse.Inc()
			}
			return g
		}
	}
	params := make([]*tensor.Tensor, len(sh.gen.params))
	for i, p := range sh.gen.params {
		params[i] = tensor.New(p.Shape()...)
	}
	sh.allocs.Add(1)
	if m != nil {
		m.cloneAlloc.Inc()
	}
	return &paramGen{params: params}
}

// retireGen moves the superseded generation into the reuse pool, evicting
// the oldest entry beyond the cap. Called by the applier right after
// publishing its successor.
func (sh *shard) retireGen(g *paramGen) {
	sh.retired = append(sh.retired, g)
	if len(sh.retired) > retiredGens {
		sh.retired = append(sh.retired[:0], sh.retired[1:]...)
	}
}

// CloneStats returns how many copy-on-write publications recycled a retired
// generation versus allocated fresh buffers, summed over shards. The
// counters are maintained unconditionally (unlike the optional metrics
// registry), so tests can assert the steady state allocates nothing.
func (s *Store) CloneStats() (reused, allocated int64) {
	for _, sh := range s.shards {
		reused += sh.reuses.Load()
		allocated += sh.allocs.Load()
	}
	return reused, allocated
}

// AcquireShardDelta is ViewShardDelta for bounded readers: the returned
// tensors are valid until release is called on the returned generation, and
// the read does not permanently exclude the underlying buffers from the
// applier's reuse pool the way ViewShardDelta's escape semantics do. The
// server's serializing pull path uses it so that steady-state pulls and
// applies recycle buffers instead of allocating.
//
// release (paramGen.release) must be called exactly once, after the caller
// is completely done with params — for a wire path, after the message
// carrying them has been fully serialized. A nil generation is returned for
// an unchanged shard; releasing nil is a no-op.
func (s *Store) AcquireShardDelta(i int, have int64) (params []*tensor.Tensor, gen *paramGen, base int, version, shardVersion int64, unchanged bool) {
	version = s.version.Load()
	base = s.ranges[i].Start
	g, shardVersion := s.shards[i].acquire()
	if have >= 0 && have == shardVersion {
		g.release()
		return nil, nil, base, version, shardVersion, true
	}
	return g.params, g, base, version, shardVersion, false
}
