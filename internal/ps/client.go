package ps

import (
	"fmt"

	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// Client is the worker-side handle to the parameter server, implementing the
// worker protocol of Algorithm 1: register once, pull the initial weights,
// then repeatedly push gradients, wait for OK, and pull fresh weights.
type Client struct {
	conn   transport.Conn
	worker int
}

// NewClient wraps a connection for the given worker ID.
func NewClient(conn transport.Conn, worker int) *Client {
	return &Client{conn: conn, worker: worker}
}

// Worker returns the worker ID this client represents.
func (c *Client) Worker() int { return c.worker }

// Register announces the worker to the server and waits for the
// acknowledgement.
func (c *Client) Register() error {
	if err := c.conn.Send(transport.Message{Type: transport.MsgRegister, Worker: c.worker}); err != nil {
		return fmt.Errorf("ps: register worker %d: %w", c.worker, err)
	}
	msg, err := c.recv()
	if err != nil {
		return err
	}
	if msg.Type != transport.MsgRegistered {
		return fmt.Errorf("ps: worker %d expected Registered, got %v", c.worker, msg.Type)
	}
	return nil
}

// Pull retrieves the current global weights and their version. The server
// streams the weights as one chunk per parameter-store shard; Pull
// reassembles them in arrival order and reports the smallest version seen
// across chunks, the conservative choice for staleness accounting when a
// gradient application lands mid-pull.
func (c *Client) Pull() ([]*tensor.Tensor, int64, error) {
	if err := c.conn.Send(transport.Message{Type: transport.MsgPull, Worker: c.worker}); err != nil {
		return nil, 0, fmt.Errorf("ps: pull request from worker %d: %w", c.worker, err)
	}
	msg, err := c.recv()
	if err != nil {
		return nil, 0, err
	}
	if msg.Type != transport.MsgWeights {
		return nil, 0, fmt.Errorf("ps: worker %d expected Weights, got %v", c.worker, msg.Type)
	}
	if msg.Shards <= 1 {
		// Unchunked reply from a single-shard store.
		params, err := transport.FromWire(msg.Tensors)
		if err != nil {
			return nil, 0, err
		}
		return params, msg.Version, nil
	}

	chunks := msg.Shards
	total := msg.Total
	if total <= 0 {
		return nil, 0, fmt.Errorf("ps: worker %d received chunked weights with total %d tensors", c.worker, total)
	}
	params := make([]*tensor.Tensor, total)
	version := msg.Version
	placed := 0
	for chunk := 0; ; chunk++ {
		if msg.Shards != chunks || msg.Total != total {
			return nil, 0, fmt.Errorf("ps: worker %d received inconsistent weight chunks (%d/%d shards, %d/%d tensors)",
				c.worker, msg.Shards, chunks, msg.Total, total)
		}
		ts, err := transport.FromWire(msg.Tensors)
		if err != nil {
			return nil, 0, err
		}
		if msg.Base < 0 || msg.Base+len(ts) > total {
			return nil, 0, fmt.Errorf("ps: worker %d received weight chunk [%d,%d) outside [0,%d)",
				c.worker, msg.Base, msg.Base+len(ts), total)
		}
		for i, t := range ts {
			if params[msg.Base+i] != nil {
				return nil, 0, fmt.Errorf("ps: worker %d received tensor %d twice", c.worker, msg.Base+i)
			}
			params[msg.Base+i] = t
		}
		placed += len(ts)
		if msg.Version < version {
			version = msg.Version
		}
		if chunk == chunks-1 {
			break
		}
		if msg, err = c.recv(); err != nil {
			return nil, 0, err
		}
		if msg.Type != transport.MsgWeights {
			return nil, 0, fmt.Errorf("ps: worker %d expected Weights chunk, got %v", c.worker, msg.Type)
		}
	}
	if placed != total {
		return nil, 0, fmt.Errorf("ps: worker %d reassembled %d of %d tensors", c.worker, placed, total)
	}
	return params, version, nil
}

// PushAndWait sends the worker's gradients (computed against baseVersion of
// the global weights) and blocks until the server sends OK, i.e. until the
// synchronization policy allows the worker to start its next iteration.
func (c *Client) PushAndWait(grads []*tensor.Tensor, baseVersion int64, iteration int) error {
	msg := transport.Message{
		Type:      transport.MsgPush,
		Worker:    c.worker,
		Iteration: iteration,
		Version:   baseVersion,
		Tensors:   transport.ToWire(grads),
	}
	if err := c.conn.Send(msg); err != nil {
		return fmt.Errorf("ps: push from worker %d: %w", c.worker, err)
	}
	reply, err := c.recv()
	if err != nil {
		return err
	}
	if reply.Type != transport.MsgOK {
		return fmt.Errorf("ps: worker %d expected OK, got %v", c.worker, reply.Type)
	}
	return nil
}

// Done tells the server the worker has finished training.
func (c *Client) Done() error {
	if err := c.conn.Send(transport.Message{Type: transport.MsgDone, Worker: c.worker}); err != nil {
		return fmt.Errorf("ps: done from worker %d: %w", c.worker, err)
	}
	return nil
}

// Close releases the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// recv reads the next message, converting server-reported errors into Go
// errors.
func (c *Client) recv() (transport.Message, error) {
	msg, err := c.conn.Recv()
	if err != nil {
		return transport.Message{}, fmt.Errorf("ps: worker %d receive: %w", c.worker, err)
	}
	if msg.Type == transport.MsgError {
		return transport.Message{}, fmt.Errorf("ps: server error: %s", msg.Error)
	}
	return msg, nil
}
