package ps

import (
	"fmt"
	"sync"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// Client is the worker-side handle to the parameter server, implementing the
// worker protocol of Algorithm 1: register once (negotiating the gradient
// codec), pull the initial weights, then repeatedly push gradients, wait for
// OK, and pull fresh weights. A Client belongs to one worker goroutine; it
// is not safe for concurrent use.
type Client struct {
	conn   transport.Conn
	worker int

	// cfg is the compression configuration — the worker's request before
	// Register, the negotiated result after. comp carries the error-feedback
	// state of a lossy codec (nil for the identity codec).
	cfg  compress.Config
	comp *compress.Compressor

	// serverShards is the server's parameter-store shard count, learned at
	// registration.
	serverShards int

	// pushedBytes and pulledBytes approximate this client's traffic in wire
	// payload bytes (tensor data plus small per-tensor headers; frame
	// overhead excluded). They let callers compare codecs without packet
	// captures.
	pushedBytes int64
	pulledBytes int64

	// pushWire holds the dense push path's reusable wire buffers: the model
	// layout never changes between pushes, so the tensor headers and data
	// slabs are recycled instead of reallocated per iteration. Safe because
	// the protocol is lock-step — the OK that unblocks the next push is only
	// sent after the server has fully decoded and applied the previous one.
	pushWire []transport.WireTensor
	// pullParams is the chunk-reassembly buffer reused across Pulls.
	pullParams []*tensor.Tensor

	// wantDelta is the worker's request for version-gated delta pulls
	// (SetDeltaPull, before Register); deltaOn is the negotiated outcome.
	wantDelta bool
	deltaOn   bool
	// cluster and replica stamp the registration with the v3 session flags:
	// cluster-mode workers (accepted by coordinators), and read-only replica
	// sessions (backup replication streams).
	cluster bool
	replica bool
	// shardCache and shardVersions are the delta-pull state: the decoded
	// tensors of the last full chunk received for each server shard, and the
	// shard-local publication version they carry. Pull echoes the versions
	// back to the server, which answers still-matching shards with a
	// payload-free Unchanged chunk served from this cache.
	shardCache    [][]*tensor.Tensor
	shardVersions []int64

	// metrics, when installed with Instrument, times the worker-observed
	// pull and push-round-trip latencies. Nil costs one pointer test.
	metrics *clientMetrics
}

// NewClient wraps a connection for the given worker ID, speaking the
// uncompressed protocol (identity codec).
func NewClient(conn transport.Conn, worker int) *Client {
	return &Client{conn: conn, worker: worker, cfg: compress.Config{}.Normalized()}
}

// NewClientCompressed wraps a connection with an explicit compression
// configuration. Use compress.Auto as the codec to adopt whatever the server
// speaks; any other codec must match the server's exactly or Register fails.
func NewClientCompressed(conn transport.Conn, worker int, cfg compress.Config) (*Client, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	return &Client{conn: conn, worker: worker, cfg: cfg}, nil
}

// Worker returns the worker ID this client represents.
func (c *Client) Worker() int { return c.worker }

// Compression returns the compression configuration: the requested one
// before Register, the negotiated one after.
func (c *Client) Compression() compress.Config { return c.cfg }

// ServerShards returns the server's parameter-store shard count as reported
// at registration (0 before Register).
func (c *Client) ServerShards() int { return c.serverShards }

// SetDeltaPull requests version-gated delta pulls from the server: Pull
// sends the per-shard versions of the weights this client already holds and
// the server skips re-sending shards that have not changed since. Call it
// before Register; the server may refuse (older builds, DisableDeltaPull),
// in which case pulls stay full-fat and DeltaPull reports false.
func (c *Client) SetDeltaPull(enabled bool) { c.wantDelta = enabled }

// DeltaPull reports whether version-gated delta pulls were negotiated with
// the server (always false before Register).
func (c *Client) DeltaPull() bool { return c.deltaOn }

// SetCluster marks the registration as cluster-mode (PROTOCOL.md §6): a
// coordinator only admits workers that set it, because a classic worker
// would unknowingly train against the coordinator's placeholder store. Call
// before Register. Plain servers ignore the flag.
func (c *Client) SetCluster(enabled bool) { c.cluster = enabled }

// SetReplica marks the registration as a read-only replica session — the
// primary→backup replication stream. The server assigns a private negative
// session key outside the worker range, keeps the session out of policy and
// completion accounting, and rejects pushes from it. Call before Register.
func (c *Client) SetReplica(enabled bool) { c.replica = enabled }

// Traffic returns the approximate payload bytes this client pushed and
// pulled so far.
func (c *Client) Traffic() (pushed, pulled int64) { return c.pushedBytes, c.pulledBytes }

// Instrument registers this worker's latency metrics (pull time, push
// round-trip time, iteration count) on reg. Call before the training loop;
// a nil registry is ignored.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.metrics = newClientMetrics(reg)
}

// Register announces the worker to the server, negotiates the gradient
// codec, and waits for the acknowledgement. A worker whose codec conflicts
// with the server's is rejected with an error; a worker registering with
// compress.Auto adopts the server's configuration.
func (c *Client) Register() error {
	return c.register(transport.MsgRegister, 0)
}

// Rejoin re-registers a worker that previously crashed or lost its
// connection, carrying the last store version it saw. The server re-enters
// the worker into synchronization accounting (Policy.OnJoin) and replies
// like a registration; training resumes with the next Pull.
func (c *Client) Rejoin(lastVersion int64) error {
	return c.register(transport.MsgRejoin, lastVersion)
}

// register implements Register and Rejoin.
func (c *Client) register(msgType transport.MessageType, lastVersion int64) error {
	// Any registration talks to a fresh server-side session — possibly a
	// restarted server with different shard contents — so the delta-pull
	// cache starts over.
	c.deltaOn = false
	c.shardCache = nil
	c.shardVersions = nil
	err := c.conn.Send(transport.Message{
		Type:      msgType,
		Worker:    c.worker,
		Version:   lastVersion,
		Codec:     c.cfg.Codec,
		CodecTopK: c.cfg.TopK,
		CodecPull: c.cfg.Pull,
		DeltaPull: c.wantDelta,
		Cluster:   c.cluster,
		Replica:   c.replica,
	})
	if err != nil {
		return fmt.Errorf("ps: register worker %d: %w", c.worker, err)
	}
	msg, err := c.recv()
	if err != nil {
		return err
	}
	if msg.Type != transport.MsgRegistered {
		return fmt.Errorf("ps: worker %d expected Registered, got %v", c.worker, msg.Type)
	}
	negotiated := compress.Config{Codec: msg.Codec, TopK: msg.CodecTopK, Pull: msg.CodecPull}.Normalized()
	if c.cfg.Codec != compress.Auto && !c.cfg.Equal(negotiated) {
		// The server accepted us but speaks something else — a protocol bug,
		// but fail loudly rather than desynchronize.
		return fmt.Errorf("ps: worker %d negotiated codec %s but server speaks %s", c.worker, c.cfg, negotiated)
	}
	c.cfg = negotiated
	if c.cfg.Enabled() {
		if c.comp, err = compress.NewCompressor(c.cfg); err != nil {
			return fmt.Errorf("ps: worker %d: %w", c.worker, err)
		}
	}
	c.serverShards = msg.StoreShards
	c.deltaOn = c.wantDelta && msg.DeltaPull
	return nil
}

// Pull retrieves the current global weights and their version. The server
// streams the weights as one chunk per parameter-store shard; Pull
// reassembles them in arrival order and reports the smallest version seen
// across chunks, the conservative choice for staleness accounting when a
// gradient application lands mid-pull.
//
// With delta pulls negotiated (SetDeltaPull before Register), every pull
// after the first sends the per-shard versions this client already holds;
// the server answers unchanged shards with payload-free chunks that Pull
// satisfies from its cache, so a pull when nothing moved transfers almost
// nothing.
//
// The returned slice (not the tensors) is reused by the next Pull, and with
// delta pulls the tensors themselves may be returned again by later Pulls —
// callers must treat both as read-only and copy what they keep. Every
// existing caller adopts the weights into its own replica immediately
// (Network.SetParams copies).
func (c *Client) Pull() ([]*tensor.Tensor, int64, error) {
	if c.metrics == nil {
		return c.pull()
	}
	start := time.Now()
	params, version, err := c.pull()
	if err == nil {
		c.metrics.pullSeconds.Observe(time.Since(start).Seconds())
	}
	return params, version, err
}

// pull implements Pull.
func (c *Client) pull() ([]*tensor.Tensor, int64, error) {
	req := transport.Message{Type: transport.MsgPull, Worker: c.worker}
	if c.deltaOn && c.cacheComplete() {
		req.PullVersions = c.shardVersions
	}
	if err := c.conn.Send(req); err != nil {
		return nil, 0, fmt.Errorf("ps: pull request from worker %d: %w", c.worker, err)
	}
	msg, err := c.recv()
	if err != nil {
		return nil, 0, err
	}
	if msg.Type != transport.MsgWeights {
		return nil, 0, fmt.Errorf("ps: worker %d expected Weights, got %v", c.worker, msg.Type)
	}
	if msg.Shards <= 1 {
		// Unchunked reply from a single-shard store.
		params, err := c.chunkTensors(msg, 1)
		if err != nil {
			return nil, 0, err
		}
		return params, msg.Version, nil
	}

	chunks := msg.Shards
	total := msg.Total
	if total <= 0 {
		return nil, 0, fmt.Errorf("ps: worker %d received chunked weights with total %d tensors", c.worker, total)
	}
	if cap(c.pullParams) < total {
		c.pullParams = make([]*tensor.Tensor, total)
	}
	params := c.pullParams[:total]
	for i := range params {
		params[i] = nil
	}
	version := msg.Version
	placed := 0
	for chunk := 0; ; chunk++ {
		if msg.Shards != chunks || msg.Total != total {
			return nil, 0, fmt.Errorf("ps: worker %d received inconsistent weight chunks (%d/%d shards, %d/%d tensors)",
				c.worker, msg.Shards, chunks, msg.Total, total)
		}
		ts, err := c.chunkTensors(msg, chunks)
		if err != nil {
			return nil, 0, err
		}
		if msg.Base < 0 || msg.Base+len(ts) > total {
			return nil, 0, fmt.Errorf("ps: worker %d received weight chunk [%d,%d) outside [0,%d)",
				c.worker, msg.Base, msg.Base+len(ts), total)
		}
		for i, t := range ts {
			if params[msg.Base+i] != nil {
				return nil, 0, fmt.Errorf("ps: worker %d received tensor %d twice", c.worker, msg.Base+i)
			}
			params[msg.Base+i] = t
		}
		placed += len(ts)
		if msg.Version < version {
			version = msg.Version
		}
		if chunk == chunks-1 {
			break
		}
		if msg, err = c.recv(); err != nil {
			return nil, 0, err
		}
		if msg.Type != transport.MsgWeights {
			return nil, 0, fmt.Errorf("ps: worker %d expected Weights chunk, got %v", c.worker, msg.Type)
		}
	}
	if placed != total {
		return nil, 0, fmt.Errorf("ps: worker %d reassembled %d of %d tensors", c.worker, placed, total)
	}
	return params, version, nil
}

// cacheComplete reports whether the delta cache holds a decoded copy of
// every server shard — the precondition for echoing versions back. A shard
// that has never applied an update publishes version 0, which would collide
// with the zero value of an unfilled entry; checking the tensors themselves
// removes the ambiguity.
func (c *Client) cacheComplete() bool {
	if len(c.shardCache) == 0 {
		return false
	}
	for _, ts := range c.shardCache {
		if ts == nil {
			return false
		}
	}
	return true
}

// chunkTensors extracts the tensors of one Weights chunk: from the delta
// cache for a payload-free Unchanged chunk, or by decoding the payload —
// updating the cache when delta pulls are on — otherwise.
func (c *Client) chunkTensors(msg transport.Message, shards int) ([]*tensor.Tensor, error) {
	if msg.Unchanged {
		if msg.Shard < 0 || msg.Shard >= len(c.shardCache) || c.shardCache[msg.Shard] == nil {
			return nil, fmt.Errorf("ps: worker %d received an Unchanged chunk for shard %d it holds no copy of",
				c.worker, msg.Shard)
		}
		return c.shardCache[msg.Shard], nil
	}
	ts, err := c.decodeWeights(msg)
	if err != nil {
		return nil, err
	}
	if c.deltaOn && msg.Shard >= 0 && msg.Shard < shards {
		if len(c.shardCache) != shards {
			c.shardCache = make([][]*tensor.Tensor, shards)
			c.shardVersions = make([]int64, shards)
		}
		c.shardCache[msg.Shard] = ts
		c.shardVersions[msg.Shard] = msg.ShardVersion
	}
	return ts, nil
}

// decodeWeights extracts the tensors of one Weights message, decompressing
// packed chunks when the server compresses the pull path, and accounts the
// pulled bytes.
func (c *Client) decodeWeights(msg transport.Message) ([]*tensor.Tensor, error) {
	if msg.Codec != "" || len(msg.Packed) > 0 {
		if msg.Codec != c.cfg.Codec {
			return nil, fmt.Errorf("ps: worker %d received %s-compressed weights but negotiated %s",
				c.worker, msg.Codec, c.cfg)
		}
		for _, p := range msg.Packed {
			c.pulledBytes += int64(p.WireSize())
		}
		return compress.DecompressAll(msg.Packed)
	}
	c.pulledBytes += wireTensorBytes(msg.Tensors)
	if msg.PayloadOwned() {
		// The message owns its wire buffer (TCP transports), so the weights
		// can alias it instead of being copied — the zero-copy half of the
		// binary protocol's pull path.
		return transport.FromWireOwned(msg.Tensors)
	}
	return transport.FromWire(msg.Tensors)
}

// PushAndWait sends the worker's gradients (computed against baseVersion of
// the global weights) and blocks until the server sends OK, i.e. until the
// synchronization policy allows the worker to start its next iteration.
// Under a lossy codec the gradients are compressed with error feedback; the
// caller's tensors are never mutated.
func (c *Client) PushAndWait(grads []*tensor.Tensor, baseVersion int64, iteration int) error {
	if c.metrics == nil {
		return c.pushAndWait(grads, baseVersion, iteration)
	}
	start := time.Now()
	err := c.pushAndWait(grads, baseVersion, iteration)
	if err == nil {
		c.metrics.pushRTTSeconds.Observe(time.Since(start).Seconds())
		c.metrics.iterations.Inc()
	}
	return err
}

// pushAndWait implements PushAndWait.
func (c *Client) pushAndWait(grads []*tensor.Tensor, baseVersion int64, iteration int) error {
	if err := c.PushAsync(grads, baseVersion, iteration); err != nil {
		return err
	}
	return c.WaitOK()
}

// PushAsync sends the worker's gradients without waiting for the release.
// It exists for cluster workers, which fan a fragment out to every data
// server before collecting the OKs (WaitOK, once per PushAsync, in order):
// the fragments travel in parallel while each link stays lock-step. A nil
// or empty grads sends a metadata-only push (the coordinator leg).
func (c *Client) PushAsync(grads []*tensor.Tensor, baseVersion int64, iteration int) error {
	msg := transport.Message{
		Type:      transport.MsgPush,
		Worker:    c.worker,
		Iteration: iteration,
		Version:   baseVersion,
	}
	if c.comp != nil {
		msg.Codec = c.cfg.Codec
		msg.Packed = c.comp.Compress(grads)
		for _, p := range msg.Packed {
			c.pushedBytes += int64(p.WireSize())
		}
	} else {
		c.pushWire = transport.ToWireInto(c.pushWire, grads)
		msg.Tensors = c.pushWire
		c.pushedBytes += wireTensorBytes(msg.Tensors)
	}
	if err := c.conn.Send(msg); err != nil {
		return fmt.Errorf("ps: push from worker %d: %w", c.worker, err)
	}
	return nil
}

// WaitOK blocks until the server releases the worker's outstanding push.
// Exactly one WaitOK must follow every PushAsync.
func (c *Client) WaitOK() error {
	reply, err := c.recv()
	if err != nil {
		return err
	}
	if reply.Type != transport.MsgOK {
		return fmt.Errorf("ps: worker %d expected OK, got %v", c.worker, reply.Type)
	}
	return nil
}

// Done tells the server the worker has finished training.
func (c *Client) Done() error {
	if err := c.conn.Send(transport.Message{Type: transport.MsgDone, Worker: c.worker}); err != nil {
		return fmt.Errorf("ps: done from worker %d: %w", c.worker, err)
	}
	return nil
}

// Leave deregisters the worker gracefully: the server removes it from
// synchronization accounting immediately instead of waiting for the
// connection to die or the lease to expire. The connection is unusable for
// training afterwards; Rejoin on a fresh connection re-enters the run.
func (c *Client) Leave() error {
	if err := c.conn.Send(transport.Message{Type: transport.MsgLeave, Worker: c.worker}); err != nil {
		return fmt.Errorf("ps: leave from worker %d: %w", c.worker, err)
	}
	return nil
}

// StartHeartbeats begins sending liveness heartbeats every interval on a
// background goroutine, and returns a function that stops them. Heartbeats
// are one-way — the server refreshes the session lease and never replies —
// so they interleave safely with the lock-step request/reply protocol
// (Conn.Send is safe for concurrent use). The goroutine also exits when a
// heartbeat send fails, which means the connection is gone and the main
// protocol loop is about to find out.
func (c *Client) StartHeartbeats(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if c.conn.Send(transport.Message{Type: transport.MsgHeartbeat, Worker: c.worker}) != nil {
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Close releases the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// recv reads the next message, converting server-reported errors into Go
// errors.
func (c *Client) recv() (transport.Message, error) {
	msg, err := c.conn.Recv()
	if err != nil {
		return transport.Message{}, fmt.Errorf("ps: worker %d receive: %w", c.worker, err)
	}
	if msg.Type == transport.MsgError {
		return transport.Message{}, fmt.Errorf("ps: server error: %s", msg.Error)
	}
	return msg, nil
}

// wireTensorBytes approximates the wire payload of dense tensors: 4 bytes
// per value plus a small per-tensor header, mirroring compress.Packed's
// WireSize accounting.
func wireTensorBytes(ws []transport.WireTensor) int64 {
	var n int64
	for _, w := range ws {
		n += int64(4*len(w.Data) + 4*len(w.Shape) + 8)
	}
	return n
}
