package ps

import (
	"strings"
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// startElasticServer brings up a server with the given policy on an
// in-process listener and returns both plus a dialer for raw clients.
func startElasticServer(t *testing.T, policy core.Policy, cfg ServerConfig) (*Server, *transport.ChanListener) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = testStore(t, 4)
	}
	cfg.Workers = policy.NumWorkers()
	cfg.Policy = policy
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	t.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})
	return srv, listener
}

// dialClient connects and registers a raw client.
func dialClient(t *testing.T, l *transport.ChanListener, worker int) *Client {
	t.Helper()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, worker)
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDuplicateRegistrationSupersedesOldSession is the regression test for
// the outbox leak: re-registering a worker ID used to overwrite
// outboxes[workerID] without ending the old writer goroutine, stranding it
// until server stop. Now the old session ends immediately: its connection is
// closed and the new session serves the slot.
func TestDuplicateRegistrationSupersedesOldSession(t *testing.T) {
	policy := core.MustNewASP(1)
	_, listener := startElasticServer(t, policy, ServerConfig{})

	first := dialClient(t, listener, 0)
	second := dialClient(t, listener, 0)

	// The superseded session's connection must be closed by the server, so
	// a blocking receive on it terminates instead of hanging forever.
	errCh := make(chan error, 1)
	go func() {
		_, _, err := first.Pull()
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("superseded session still served a pull")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("superseded session left hanging (old outbox leaked)")
	}

	// The new session serves the slot.
	if _, _, err := second.Pull(); err != nil {
		t.Fatalf("new session pull: %v", err)
	}
	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	if err := second.PushAndWait(grad, 0, 0); err != nil {
		t.Fatalf("new session push: %v", err)
	}
}

// TestDisconnectReleasesBarrierPeers pins the core deadlock fix at the
// server level: a worker that dies mid-round must not strand its BSP peers.
func TestDisconnectReleasesBarrierPeers(t *testing.T) {
	policy := core.MustNewBSP(2)
	_, listener := startElasticServer(t, policy, ServerConfig{})

	c0 := dialClient(t, listener, 0)
	c1 := dialClient(t, listener, 1)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	okCh := make(chan error, 1)
	go func() { okCh <- c0.PushAndWait(grad, 0, 0) }()

	select {
	case err := <-okCh:
		t.Fatalf("BSP released worker 0 before the barrier: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Worker 1 crashes without pushing. Worker 0's barrier must complete.
	c1.Close()
	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("released with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker 0 deadlocked on a crashed peer")
	}
}

// TestLeaseExpiryEvictsSilentWorker drives the elastic lease monitor: a
// worker that stops heartbeating while its connection stays open is evicted
// and its peers released.
func TestLeaseExpiryEvictsSilentWorker(t *testing.T) {
	policy := core.MustNewBSP(2)
	srv, listener := startElasticServer(t, policy, ServerConfig{
		Options: Options{
			Elastic:          true,
			HeartbeatTimeout: 100 * time.Millisecond,
		},
	})

	c0 := dialClient(t, listener, 0)
	stop0 := c0.StartHeartbeats(20 * time.Millisecond)
	defer stop0()
	// Worker 1 registers and then goes silent — connection open, no
	// heartbeats, no requests: a hung process.
	_ = dialClient(t, listener, 1)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	okCh := make(chan error, 1)
	go func() { okCh <- c0.PushAndWait(grad, 0, 0) }()

	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("released with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease monitor never evicted the silent worker")
	}
	if srv.Departures() == 0 {
		t.Error("eviction not counted as a departure")
	}
}

// TestHeartbeatsKeepSlowWorkerAlive is the inverse: a worker that computes
// for longer than the lease but heartbeats on time must NOT be evicted.
func TestHeartbeatsKeepSlowWorkerAlive(t *testing.T) {
	policy := core.MustNewBSP(2)
	srv, listener := startElasticServer(t, policy, ServerConfig{
		Options: Options{
			Elastic:          true,
			HeartbeatTimeout: 150 * time.Millisecond,
		},
	})

	c0 := dialClient(t, listener, 0)
	stop0 := c0.StartHeartbeats(30 * time.Millisecond)
	defer stop0()
	c1 := dialClient(t, listener, 1)
	stop1 := c1.StartHeartbeats(30 * time.Millisecond)
	defer stop1()

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	okCh := make(chan error, 1)
	go func() { okCh <- c0.PushAndWait(grad, 0, 0) }()

	// Worker 1 "computes" for 3 lease lengths, then pushes. The barrier
	// completes with both gradients — no eviction happened in between.
	time.Sleep(450 * time.Millisecond)
	if err := c1.PushAndWait(grad, 0, 0); err != nil {
		t.Fatalf("slow-but-alive worker rejected: %v", err)
	}
	if err := <-okCh; err != nil {
		t.Fatalf("worker 0: %v", err)
	}
	if got := srv.Departures(); got != 0 {
		t.Fatalf("heartbeating worker was evicted (%d departures)", got)
	}
	if got := srv.Pushes(); got != 2 {
		t.Fatalf("pushes = %d, want 2", got)
	}
}

// TestRejoinResumesTraining kills a worker mid-run and rejoins it on a fresh
// connection: the policy re-admits it and both workers finish the run.
func TestRejoinResumesTraining(t *testing.T) {
	policy := core.MustNewBSP(2)
	srv, listener := startElasticServer(t, policy, ServerConfig{Options: Options{Elastic: true}})

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	c0 := dialClient(t, listener, 0)
	c1 := dialClient(t, listener, 1)

	// Round 1 completes normally.
	okCh := make(chan error, 1)
	go func() { okCh <- c0.PushAndWait(grad, 0, 0) }()
	if err := c1.PushAndWait(grad, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := <-okCh; err != nil {
		t.Fatal(err)
	}

	// Worker 1 crashes; worker 0 pushes and is released by the departure.
	c1.Close()
	go func() { okCh <- c0.PushAndWait(grad, 1, 1) }()
	if err := <-okCh; err != nil {
		t.Fatalf("round with crashed peer: %v", err)
	}

	// Worker 1 rejoins with the last version it saw and the barrier is
	// two-wide again: worker 0 must block until the returnee pushes.
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c1b := NewClient(conn, 1)
	if err := c1b.Rejoin(1); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	go func() { okCh <- c0.PushAndWait(grad, 2, 2) }()
	select {
	case err := <-okCh:
		t.Fatalf("barrier ignored the rejoined worker: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := c1b.PushAndWait(grad, 2, 1); err != nil {
		t.Fatalf("rejoined push: %v", err)
	}
	if err := <-okCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Rejoins(); got != 1 {
		t.Fatalf("rejoins = %d, want 1", got)
	}

	// Both report done; the elastic server completes.
	if err := c0.Done(); err != nil {
		t.Fatal(err)
	}
	if err := c1b.Done(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.AllWorkersDone():
	case <-time.After(5 * time.Second):
		t.Fatal("AllWorkersDone never fired")
	}
}

// TestElasticCompletionWithPermanentDeparture: when a worker crashes for
// good, the elastic server completes once the survivors finish and the
// crashed worker's rejoin grace window (one heartbeat timeout) elapses.
func TestElasticCompletionWithPermanentDeparture(t *testing.T) {
	policy := core.MustNewASP(2)
	srv, listener := startElasticServer(t, policy, ServerConfig{
		Options: Options{
			Elastic:          true,
			HeartbeatTimeout: 100 * time.Millisecond,
		},
	})

	c0 := dialClient(t, listener, 0)
	c1 := dialClient(t, listener, 1)
	c1.Close() // crash, never returns

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	if err := c0.PushAndWait(grad, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c0.Done(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.AllWorkersDone():
	case <-time.After(5 * time.Second):
		t.Fatal("elastic server never completed after permanent departure")
	}
}

// TestGracefulLeaveNotifiesPolicy: MsgLeave removes the worker like a crash
// would, but by explicit request.
func TestGracefulLeaveNotifiesPolicy(t *testing.T) {
	policy := core.MustNewBSP(2)
	srv, listener := startElasticServer(t, policy, ServerConfig{})

	c0 := dialClient(t, listener, 0)
	c1 := dialClient(t, listener, 1)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	okCh := make(chan error, 1)
	go func() { okCh <- c0.PushAndWait(grad, 0, 0) }()
	select {
	case err := <-okCh:
		t.Fatalf("released before the barrier: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := c1.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := <-okCh; err != nil {
		t.Fatal(err)
	}
	if got := srv.Departures(); got != 1 {
		t.Fatalf("departures = %d, want 1", got)
	}
}

// TestStaleSessionIsToldToRejoin: a request on a superseded session fails
// fast — either with the in-band rejoin hint or because the server closed
// the stale connection — instead of hanging on replies that will never come.
func TestStaleSessionIsToldToRejoin(t *testing.T) {
	policy := core.MustNewASP(1)
	_, listener := startElasticServer(t, policy, ServerConfig{Options: Options{Elastic: true}})

	conn1, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	first := NewClient(conn1, 0)
	if err := first.Register(); err != nil {
		t.Fatal(err)
	}
	_ = dialClient(t, listener, 0) // supersedes

	_, _, err = first.Pull()
	if err == nil {
		t.Fatal("stale session pull succeeded")
	}
	if !strings.Contains(err.Error(), "rejoin") && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("stale session pull error = %v, want a rejoin hint or a closed connection", err)
	}
}

// TestRegisteredCarriesStoreVersion: a (re)joining worker learns where the
// run is, which restarted workers use to resume staleness accounting.
func TestRegisteredCarriesStoreVersion(t *testing.T) {
	st, err := NewStore([]*tensor.Tensor{tensor.New(4)}, optimizer.NewSGD(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply([]*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}); err != nil {
		t.Fatal(err)
	}
	policy := core.MustNewASP(1)
	_, listener := startElasticServer(t, policy, ServerConfig{Store: st})

	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(transport.Message{Type: transport.MsgRegister, Worker: 0}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != transport.MsgRegistered || reply.Version != 1 {
		t.Fatalf("reply = %v version %d, want Registered at version 1", reply.Type, reply.Version)
	}
	conn.Close()
}
