package ps

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// startCompressedServer wires a server speaking the given codec to an
// in-process listener and returns it with its listener.
func startCompressedServer(t *testing.T, workers int, cfg compress.Config, st *Store) (*Server, *transport.ChanListener) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Workers: workers,
		Policy:  core.MustNewASP(workers),
		Store:   st,
		Options: Options{Compression: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	t.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})
	return srv, listener
}

// dialCompressed connects one client with the given configuration.
func dialCompressed(t *testing.T, l *transport.ChanListener, worker int, cfg compress.Config) (*Client, error) {
	t.Helper()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClientCompressed(conn, worker, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.Register(); err != nil {
		c.Close()
		return nil, err
	}
	t.Cleanup(func() { c.Close() })
	return c, nil
}

func TestNewServerRejectsBadCompression(t *testing.T) {
	st := testStore(t)
	for _, cfg := range []compress.Config{
		{Codec: "gzip"},
		{Codec: compress.Auto},
		{Codec: compress.TopK, Pull: true},
	} {
		_, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st, Options: Options{Compression: cfg}})
		if err == nil {
			t.Errorf("NewServer accepted compression %v", cfg)
		}
	}
}

func TestRegisterRejectsCodecMismatch(t *testing.T) {
	st := testStore(t)
	_, listener := startCompressedServer(t, 2, compress.Config{Codec: compress.Int8}, st)

	// Plain client against a compressing server.
	if _, err := dialCompressed(t, listener, 0, compress.Config{}); err == nil {
		t.Fatal("uncompressed worker registered on an int8 server")
	} else if !strings.Contains(err.Error(), "compression mismatch") {
		t.Fatalf("mismatch rejected with unrelated error: %v", err)
	}
	// Wrong codec.
	if _, err := dialCompressed(t, listener, 0, compress.Config{Codec: compress.TopK}); err == nil {
		t.Fatal("topk worker registered on an int8 server")
	}
	// Matching codec registers fine.
	if _, err := dialCompressed(t, listener, 0, compress.Config{Codec: compress.Int8}); err != nil {
		t.Fatalf("matching worker rejected: %v", err)
	}
}

func TestRegisterRejectsTopKParameterMismatch(t *testing.T) {
	st := testStore(t)
	_, listener := startCompressedServer(t, 1, compress.Config{Codec: compress.TopK, TopK: 0.25}, st)
	if _, err := dialCompressed(t, listener, 0, compress.Config{Codec: compress.TopK, TopK: 0.5}); err == nil {
		t.Fatal("worker with different topk fraction registered")
	}
	if _, err := dialCompressed(t, listener, 0, compress.Config{Codec: compress.TopK, TopK: 0.25}); err != nil {
		t.Fatalf("matching topk fraction rejected: %v", err)
	}
}

func TestRegisterAutoAdoptsServerCodec(t *testing.T) {
	st := testStore(t)
	serverCfg := compress.Config{Codec: compress.TopK, TopK: 0.5}
	_, listener := startCompressedServer(t, 1, serverCfg, st)

	c, err := dialCompressed(t, listener, 0, compress.Config{Codec: compress.Auto})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Compression(); !got.Equal(serverCfg) {
		t.Fatalf("auto client negotiated %s, want %s", got, serverCfg)
	}
	if c.ServerShards() != st.Shards() {
		t.Fatalf("client learned %d shards, server has %d", c.ServerShards(), st.Shards())
	}
	// The adopted codec must actually be used on the wire.
	if err := c.PushAndWait([]*tensor.Tensor{tensor.FromSlice([]float32{1, 2, 3, 4}, 4)}, 0, 0); err != nil {
		t.Fatalf("compressed push after auto negotiation: %v", err)
	}
}

func TestCompressedPushAppliesWithinQuantizationError(t *testing.T) {
	for _, codec := range []string{compress.FP16, compress.Int8, compress.TopK} {
		t.Run(codec, func(t *testing.T) {
			initial := []*tensor.Tensor{tensor.New(8), tensor.New(3, 5)}
			st, err := NewStore(initial, optimizer.NewSGD(1.0))
			if err != nil {
				t.Fatal(err)
			}
			cfg := compress.Config{Codec: codec, TopK: 1.0} // topk with k=n is lossless
			_, listener := startCompressedServer(t, 1, cfg, st)
			c, err := dialCompressed(t, listener, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(4))
			grads := make([]*tensor.Tensor, len(initial))
			for i, p := range initial {
				g := tensor.New(p.Shape()...)
				for j := range g.Data() {
					g.Data()[j] = float32(rng.NormFloat64())
				}
				grads[i] = g
			}
			if err := c.PushAndWait(grads, 0, 0); err != nil {
				t.Fatal(err)
			}

			params, version, err := c.Pull()
			if err != nil {
				t.Fatal(err)
			}
			if version != 1 {
				t.Fatalf("store version after push = %d, want 1", version)
			}
			// lr=1 plain SGD: params == -decoded(grads); the worst decode
			// error across codecs is int8's half quantization step.
			for i, p := range params {
				var maxAbs float64
				for _, v := range grads[i].Data() {
					if a := math.Abs(float64(v)); a > maxAbs {
						maxAbs = a
					}
				}
				tol := maxAbs/127/2 + 1e-3
				want := grads[i].Clone().Scale(-1)
				if !p.ApproxEqual(want, tol) {
					t.Fatalf("codec %s: applied update drifted beyond %g", codec, tol)
				}
			}

			pushed, pulled := c.Traffic()
			if pushed <= 0 || pulled <= 0 {
				t.Fatalf("traffic accounting missing: pushed=%d pulled=%d", pushed, pulled)
			}
		})
	}
}

func TestCompressedPullDeliversQuantizedWeights(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(16), tensor.New(4, 4)}
	rng := rand.New(rand.NewSource(9))
	for _, p := range initial {
		for j := range p.Data() {
			p.Data()[j] = float32(rng.NormFloat64())
		}
	}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := compress.Config{Codec: compress.FP16, Pull: true}
	_, listener := startCompressedServer(t, 1, cfg, st)
	c, err := dialCompressed(t, listener, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}

	params, _, err := c.Pull()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := st.Snapshot()
	for i := range want {
		// fp16 keeps ~3 decimal digits for values of magnitude ~1.
		if !params[i].ApproxEqual(want[i], 2e-3) {
			t.Fatalf("pulled tensor %d drifted beyond fp16 tolerance", i)
		}
	}
	pushed, pulled := c.Traffic()
	dense := int64(4 * st.ParamCount())
	if pulled >= dense {
		t.Fatalf("compressed pull accounted %d bytes, dense would be %d", pulled, dense)
	}
	if pushed != 0 {
		t.Fatalf("pull-only client accounted %d pushed bytes", pushed)
	}
}

// TestPushErrorStillReleasesBarrierWorkers guards the failure path of
// handlePush: when the round-completing push fails to decode or apply, the
// policy has already decided to release the barrier — those releases must
// still go out (only the erroring worker gets the error), or BSP/SSP runs
// deadlock on a single bad payload.
func TestPushErrorStillReleasesBarrierWorkers(t *testing.T) {
	st := testStore(t, 2)
	_, clients := startTestServer(t, core.MustNewBSP(2), st)

	good := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1}, 2)}
	bad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1}, 3)} // wrong shape

	released := make(chan error, 1)
	go func() { released <- clients[0].PushAndWait(good, 0, 0) }()
	time.Sleep(20 * time.Millisecond) // let worker 0 reach the barrier

	// Worker 1 completes the round with a gradient the store rejects.
	if err := clients[1].PushAndWait(bad, 0, 0); err == nil {
		t.Fatal("bad-shape push reported success")
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("barrier worker released with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker 0 never released after the round's failing push: deadlock")
	}
}

func TestPackShardCachesUntilApply(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(8), tensor.New(8)}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	pack := func(ts []*tensor.Tensor) []compress.Packed {
		calls++
		return compress.Pack(ts, compress.Config{Codec: compress.FP16})
	}

	a, _, _ := st.PackShard(0, pack)
	b, _, _ := st.PackShard(0, pack)
	if calls != 1 {
		t.Fatalf("second PackShard recompressed (calls=%d)", calls)
	}
	if len(a) == 0 || len(a) != len(b) || &a[0] != &b[0] {
		t.Fatal("second PackShard did not serve the cached packed form")
	}

	grads := []*tensor.Tensor{tensor.Full(1, 8), tensor.Full(1, 8)}
	if _, err := st.Apply(grads); err != nil {
		t.Fatal(err)
	}
	packed, _, version := st.PackShard(0, pack)
	if calls != 2 {
		t.Fatalf("PackShard after Apply served stale cache (calls=%d)", calls)
	}
	if version != 1 {
		t.Fatalf("PackShard version = %d, want 1", version)
	}
	dec, err := compress.DecompressAll(packed)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := st.Snapshot()
	for i := range want {
		if !dec[i].ApproxEqual(want[i], 1e-3) {
			t.Fatalf("packed shard tensor %d does not match store", i)
		}
	}
}
