package ps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// DefaultRelayFlushInterval is the watchdog bound on how long a relay holds
// a partial waiting for stragglers: a child that stalls without departing
// (slow hardware, a late joiner mid-barrier) delays its siblings' partial at
// most this long before it forwards incomplete.
const DefaultRelayFlushInterval = 50 * time.Millisecond

// RelayConfig configures an aggregation relay (DESIGN.md §11): a middle-tier
// process that accepts ordinary worker push sessions, coordinate-wise sums
// the gradients of up to Fanout children into one partial, and forwards a
// single ×k-weighted push upstream carrying the children's clock metadata.
type RelayConfig struct {
	// Parent dials one upstream connection (to the root server). Called twice
	// at construction: once for the trunk the control plane rides, once for
	// the read-only replica session the pull cache refreshes through.
	Parent func() (transport.Conn, error)
	// Fanout is the number of children this relay covers in the root's tree
	// layout. Must be at least 1.
	Fanout int
	// Advertise is the child-facing address published in the layout — what
	// workers covered by this relay dial.
	Advertise string
	// Compression is the codec request carried on the trunk registration;
	// compress.Auto adopts whatever the root speaks. Children negotiate
	// against the root's configuration exactly as if directly connected.
	Compression compress.Config
	// HeartbeatInterval is the cadence of upstream liveness heartbeats
	// (trunk and pull sessions); 0 disables them.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the child-session lease: a child silent for longer
	// is evicted exactly as the root's lease monitor would. 0 disables child
	// leases (connection death still evicts).
	HeartbeatTimeout time.Duration
	// FlushInterval bounds how long a partial waits for straggling children
	// before forwarding incomplete; 0 selects DefaultRelayFlushInterval.
	FlushInterval time.Duration
	// Metrics is the registry the relay's instrumentation lives on; nil
	// creates a private one.
	Metrics *obs.Registry
	// Clock supplies timestamps; nil means time.Now.
	Clock func() time.Time
}

// Relay is the aggregation-relay process. It speaks the ordinary worker
// protocol downstream — children register, push, pull, heartbeat and leave
// exactly as against a root server — and two upstream sessions: a trunk
// (negative-key session multiplexing the children's control traffic and the
// summed pushes) and a replica pull session feeding the delta-pull cache
// child pulls are served from.
//
// A partial flushes upstream when every live unfinished child has
// contributed ("full"), when a contributor pushes again before the flush
// ("duplicate", preserving per-child push ordering), when a contributor
// departs or finishes, or when the watchdog bounds a straggler's delay. The
// forwarded push's PushEntries carry each child's worker ID, base version
// and iteration, so the root's policy layer sees every logical push.
type Relay struct {
	cfg           RelayConfig
	clock         func() time.Time
	flushInterval time.Duration

	trunk       transport.Conn
	trunkKey    int
	compression compress.Config
	// comp is the trunk hop's error-feedback compressor (nil for the
	// identity codec): what quantization discards from one forwarded partial
	// is carried into the next, per hop, exactly as a worker's own
	// compressor does per worker.
	comp *compress.Compressor

	// up is the replica pull client; pullMu serializes child pulls through
	// it (the client is single-goroutine by contract) and guards packCache.
	up     *Client
	pullMu sync.Mutex
	// packCache memoizes the packed form of each upstream shard by its
	// publication version, so compressed fan-out to many children quantizes
	// once per shard update instead of once per child pull.
	packCache []packedShard

	reg *obs.Registry
	rm  *relayMetrics

	// mu guards children, pendingJoins and partial, and orders trunk flushes
	// (the send happens under it, so forwarded partials leave in completion
	// order).
	mu           sync.Mutex
	children     map[int]*relayChild
	pendingJoins map[int]chan transport.Message
	partial      *relayPartial
	doneCount    int

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	errMu sync.Mutex
	err   error

	ingressBytes   atomic.Int64
	forwardedBytes atomic.Int64
}

// packedShard is one packCache entry.
type packedShard struct {
	version int64
	packed  []compress.Packed
}

// relayChild is one live downstream worker session.
type relayChild struct {
	worker    int
	conn      transport.Conn
	deltaPull bool
	finished  bool

	mu       sync.Mutex
	lastSeen time.Time

	// decodeScratch reuses the child's decompression buffers across pushes —
	// safe because the child protocol is lock-step and the decoded gradients
	// are folded into the partial's own sum before the handler returns.
	decodeScratch []*tensor.Tensor
}

func (ch *relayChild) touch(now time.Time) {
	ch.mu.Lock()
	ch.lastSeen = now
	ch.mu.Unlock()
}

func (ch *relayChild) seen() time.Time {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.lastSeen
}

// relayPartial is the in-progress sum: the window accumulating children's
// gradients until the flush condition fires.
type relayPartial struct {
	sum     []*tensor.Tensor
	entries []transport.PushEntry
	members map[int]bool
	minBase int64
	started time.Time
}

// relayMetrics is the relay's instrumentation bundle (docs/METRICS.md).
type relayMetrics struct {
	childPushes  *obs.Counter
	forwarded    *obs.Counter
	partialDepth *obs.Histogram
	flushFull    *obs.Counter
	flushDup     *obs.Counter
	flushDepart  *obs.Counter
	flushDone    *obs.Counter
	flushWatch   *obs.Counter
}

func newRelayMetrics(reg *obs.Registry, r *Relay) *relayMetrics {
	reg.GaugeFunc("dssp_relay_children",
		"Worker sessions currently registered on this relay.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.children))
		})
	flushes := reg.CounterVec("dssp_relay_flushes_total",
		"Partials forwarded upstream, by flush reason.", "reason")
	return &relayMetrics{
		childPushes: reg.Counter("dssp_relay_child_pushes_total",
			"Gradient pushes received from children."),
		forwarded: reg.Counter("dssp_relay_forwarded_pushes_total",
			"Aggregated partials forwarded upstream."),
		partialDepth: reg.Histogram("dssp_relay_partial_depth",
			"Child pushes carried by each forwarded partial.",
			obs.SizeBuckets),
		flushFull:   flushes.With("full"),
		flushDup:    flushes.With("duplicate"),
		flushDepart: flushes.With("departure"),
		flushDone:   flushes.With("done"),
		flushWatch:  flushes.With("watchdog"),
	}
}

// NewRelay dials the parent, registers the trunk (negotiating the codec) and
// the replica pull session, and starts the relay's background loops. Serve
// or HandleConn accept children afterwards.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.Parent == nil {
		return nil, fmt.Errorf("ps: relay needs a parent dialer")
	}
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("ps: relay needs a positive fanout, got %d", cfg.Fanout)
	}
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("ps: relay needs an advertise address for the tree layout")
	}
	comp := cfg.Compression.Normalized()
	if err := comp.Validate(true); err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	flush := cfg.FlushInterval
	if flush <= 0 {
		flush = DefaultRelayFlushInterval
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	trunk, err := cfg.Parent()
	if err != nil {
		return nil, fmt.Errorf("ps: relay trunk dial: %w", err)
	}
	err = trunk.Send(transport.Message{
		Type:      transport.MsgRegister,
		Relay:     true,
		Codec:     comp.Codec,
		CodecTopK: comp.TopK,
		CodecPull: comp.Pull,
		Servers:   []transport.ServerEntry{{Addr: cfg.Advertise, ShardHi: cfg.Fanout}},
	})
	if err != nil {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay trunk register: %w", err)
	}
	reply, err := trunk.Recv()
	if err != nil {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay trunk register: %w", err)
	}
	if reply.Type == transport.MsgError {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay rejected: %s", reply.Error)
	}
	if reply.Type != transport.MsgRegistered {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay expected Registered, got %v", reply.Type)
	}
	negotiated := compress.Config{Codec: reply.Codec, TopK: reply.CodecTopK, Pull: reply.CodecPull}.Normalized()
	if comp.Codec != compress.Auto && !comp.Equal(negotiated) {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay negotiated codec %s but server speaks %s", comp, negotiated)
	}

	upConn, err := cfg.Parent()
	if err != nil {
		_ = trunk.Close()
		return nil, fmt.Errorf("ps: relay pull dial: %w", err)
	}
	up, err := NewClientCompressed(upConn, 0, negotiated)
	if err != nil {
		_ = trunk.Close()
		_ = upConn.Close()
		return nil, err
	}
	up.SetReplica(true)
	up.SetDeltaPull(true)
	if err := up.Register(); err != nil {
		_ = trunk.Close()
		_ = upConn.Close()
		return nil, fmt.Errorf("ps: relay pull session: %w", err)
	}

	r := &Relay{
		cfg:           cfg,
		clock:         clock,
		flushInterval: flush,
		trunk:         trunk,
		trunkKey:      reply.Worker,
		compression:   negotiated,
		up:            up,
		reg:           reg,
		children:      make(map[int]*relayChild),
		pendingJoins:  make(map[int]chan transport.Message),
		stopped:       make(chan struct{}),
	}
	if negotiated.Enabled() {
		if r.comp, err = compress.NewCompressor(negotiated); err != nil {
			_ = trunk.Close()
			_ = up.Close()
			return nil, err
		}
	}
	r.rm = newRelayMetrics(reg, r)

	r.wg.Add(2)
	go func() { defer r.wg.Done(); r.trunkLoop() }()
	go func() { defer r.wg.Done(); r.watchdogLoop() }()
	if cfg.HeartbeatInterval > 0 {
		stopUp := up.StartHeartbeats(cfg.HeartbeatInterval)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer stopUp()
			ticker := time.NewTicker(cfg.HeartbeatInterval)
			defer ticker.Stop()
			for {
				select {
				case <-r.stopped:
					return
				case <-ticker.C:
					if r.trunk.Send(transport.Message{Type: transport.MsgHeartbeat, Worker: r.trunkKey}) != nil {
						return
					}
				}
			}
		}()
	}
	return r, nil
}

// Serve accepts child connections from the listener until Stop is called or
// the listener fails. It blocks; run it in its own goroutine.
func (r *Relay) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.stopped:
				return nil
			default:
				return fmt.Errorf("ps: relay accept: %w", err)
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleConn(conn)
		}()
	}
}

// HandleConn serves a single pre-established child connection (in-process
// transports). It returns when the child disconnects or the relay stops.
func (r *Relay) HandleConn(conn transport.Conn) {
	r.handleConn(conn)
}

// Stop shuts the relay down: upstream sessions and every child connection
// close, so children immediately re-parent instead of hanging. Safe to call
// multiple times.
func (r *Relay) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopped)
		_ = r.trunk.Close()
		_ = r.up.Close()
		r.mu.Lock()
		kids := make([]*relayChild, 0, len(r.children))
		for _, ch := range r.children {
			kids = append(kids, ch)
		}
		r.mu.Unlock()
		for _, ch := range kids {
			_ = ch.conn.Close()
		}
	})
}

// Done returns a channel closed when the relay has stopped (Stop called or
// the trunk failed).
func (r *Relay) Done() <-chan struct{} { return r.stopped }

// Err returns the failure that stopped the relay, if any.
func (r *Relay) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// Registry returns the metrics registry the relay's instrumentation lives on.
func (r *Relay) Registry() *obs.Registry { return r.reg }

// RelayStats snapshots a relay's traffic accounting: what came in from
// children versus what went upstream, in the same payload-byte units
// Client.Traffic reports — which is what lets worker- and server-side byte
// counters reconcile across the hop.
type RelayStats struct {
	Children        int
	ChildPushes     uint64
	IngressBytes    int64
	ForwardedPushes uint64
	ForwardedBytes  int64
}

// Stats snapshots the relay's live accounting.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	children := len(r.children)
	r.mu.Unlock()
	return RelayStats{
		Children:        children,
		ChildPushes:     r.rm.childPushes.Value(),
		IngressBytes:    r.ingressBytes.Load(),
		ForwardedPushes: r.rm.forwarded.Value(),
		ForwardedBytes:  r.forwardedBytes.Load(),
	}
}

// runComplete reports whether this relay's run ended cleanly: at least one
// child finished and no unfinished child is still attached. A trunk close in
// that state is the root shutting down after a completed run, not a fault —
// a trunk lost while unfinished children still depend on it stays fatal.
func (r *Relay) runComplete() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.doneCount == 0 {
		return false
	}
	for _, ch := range r.children {
		if !ch.finished {
			return false
		}
	}
	return true
}

// fail records the first fatal error and stops the relay. Always called off
// the locked paths (see flushLocked).
func (r *Relay) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.Stop()
}

// trunkLoop demultiplexes the trunk's downstream traffic: MsgRegistered and
// per-worker MsgError replies to forwarded joins, and per-worker MsgOK /
// MsgError releases to pushing children. A trunk receive error is fatal —
// children's connections close, and they re-parent via a fresh layout fetch.
func (r *Relay) trunkLoop() {
	for {
		msg, err := r.trunk.Recv()
		if err != nil {
			select {
			case <-r.stopped:
			default:
				if r.runComplete() {
					// The root closing the trunk after every child this relay
					// ever served reported Done is the normal end of a run,
					// not a failure.
					r.Stop()
				} else {
					r.fail(fmt.Errorf("ps: relay trunk: %w", err))
				}
			}
			return
		}
		switch msg.Type {
		case transport.MsgRegistered:
			r.deliverJoin(msg)
		case transport.MsgOK, transport.MsgError:
			w := msg.Worker
			r.mu.Lock()
			join := r.pendingJoins[w]
			ch := r.children[w]
			r.mu.Unlock()
			if msg.Type == transport.MsgError && join != nil {
				r.deliverJoin(msg)
				continue
			}
			if ch != nil {
				_ = ch.conn.Send(msg)
			}
		default:
			// Forward-compatible: unknown trunk traffic is ignored.
		}
	}
}

// deliverJoin hands a join reply to the child handler waiting on it.
func (r *Relay) deliverJoin(msg transport.Message) {
	r.mu.Lock()
	join := r.pendingJoins[msg.Worker]
	delete(r.pendingJoins, msg.Worker)
	r.mu.Unlock()
	if join != nil {
		select {
		case join <- msg:
		default:
		}
	}
}

// watchdogLoop bounds partial age and sweeps expired child leases.
func (r *Relay) watchdogLoop() {
	tick := r.flushInterval / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopped:
			return
		case <-ticker.C:
			now := r.clock()
			r.mu.Lock()
			if r.partial != nil && now.Sub(r.partial.started) >= r.flushInterval {
				r.flushLocked("watchdog")
			}
			r.mu.Unlock()
			if r.cfg.HeartbeatTimeout > 0 {
				r.mu.Lock()
				var stale []*relayChild
				for _, ch := range r.children {
					if now.Sub(ch.seen()) > r.cfg.HeartbeatTimeout {
						stale = append(stale, ch)
					}
				}
				r.mu.Unlock()
				for _, ch := range stale {
					r.dropChild(ch)
					_ = ch.conn.Close()
				}
			}
		}
	}
}

// handleConn reads messages from one child connection and services them on
// this goroutine, mirroring the root's connection loop.
func (r *Relay) handleConn(conn transport.Conn) {
	defer conn.Close()
	var ch *relayChild
	for {
		msg, err := conn.Recv()
		if err != nil {
			if ch != nil {
				r.dropChild(ch)
			}
			return
		}
		if ch != nil {
			ch.touch(r.clock())
		}
		switch msg.Type {
		case transport.MsgRegister, transport.MsgRejoin:
			if msg.Relay || msg.Replica {
				_ = conn.Send(transport.Message{
					Type:  transport.MsgError,
					Error: "relays accept ordinary workers only; register relays and replicas at the root",
				})
				return
			}
			ch = r.joinChild(conn, msg)
			if ch == nil {
				return
			}

		case transport.MsgHeartbeat:
			// Liveness only.

		case transport.MsgPush:
			if ch == nil {
				return
			}
			r.handleChildPush(ch, msg)

		case transport.MsgPull:
			if ch == nil {
				return
			}
			r.handleChildPull(ch, msg)

		case transport.MsgDone:
			if ch == nil {
				return
			}
			r.handleChildDone(ch)

		case transport.MsgLeave:
			if ch != nil {
				r.dropChild(ch)
			}
			return

		case transport.MsgClusterMap:
			_ = conn.Send(transport.Message{
				Type:  transport.MsgError,
				Error: "not the aggregation root; fetch the tree layout from the root server",
			})

		case transport.MsgShutdown:
			return

		default:
		}
	}
}

// joinChild forwards a child registration upstream and installs the session
// once the root admits it. The child's reply is the root's own MsgRegistered
// — codec, shard count and delta-pull grant are the root's decisions,
// forwarded verbatim.
func (r *Relay) joinChild(conn transport.Conn, msg transport.Message) *relayChild {
	w := msg.Worker
	replyCh := make(chan transport.Message, 1)
	r.mu.Lock()
	r.pendingJoins[w] = replyCh
	r.mu.Unlock()
	fwd := msg
	fwd.Tensors = nil
	fwd.Packed = nil
	if err := r.trunk.Send(fwd); err != nil {
		go r.fail(fmt.Errorf("ps: relay trunk: %w", err))
		return nil
	}
	var reply transport.Message
	select {
	case reply = <-replyCh:
	case <-r.stopped:
		return nil
	case <-time.After(30 * time.Second):
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: "relay join timed out waiting on the root"})
		return nil
	}
	if reply.Type == transport.MsgError {
		_ = conn.Send(reply)
		return nil
	}
	ch := &relayChild{
		worker:    w,
		conn:      conn,
		deltaPull: reply.DeltaPull,
		lastSeen:  r.clock(),
	}
	r.mu.Lock()
	old := r.children[w]
	r.children[w] = ch
	r.mu.Unlock()
	if old != nil {
		_ = old.conn.Close()
	}
	if err := conn.Send(reply); err != nil {
		r.dropChild(ch)
		return nil
	}
	return ch
}

// dropChild removes a departed child. If the child had contributed to the
// pending partial, the partial flushes first — its entry is already counted,
// and the flush-then-leave ordering means the root processes the push before
// the departure. Removing a non-contributor can complete the partial for the
// survivors. The departure is forwarded upstream so the root's policy counts
// the worker out (the root verifies the route, so a stale forward after the
// child re-parented is harmless).
func (r *Relay) dropChild(ch *relayChild) {
	r.mu.Lock()
	if r.children[ch.worker] != ch {
		r.mu.Unlock()
		return
	}
	delete(r.children, ch.worker)
	if r.partial != nil {
		if r.partial.members[ch.worker] {
			r.flushLocked("departure")
		} else if r.completeLocked() {
			r.flushLocked("full")
		}
	}
	r.mu.Unlock()
	_ = r.trunk.Send(transport.Message{Type: transport.MsgLeave, Worker: ch.worker})
	_ = ch.conn.Close()
}

// handleChildDone marks the child finished — shrinking the membership the
// flush condition waits on — and forwards the completion upstream.
func (r *Relay) handleChildDone(ch *relayChild) {
	r.mu.Lock()
	ch.finished = true
	r.doneCount++
	if r.partial != nil && r.completeLocked() {
		r.flushLocked("done")
	}
	r.mu.Unlock()
	_ = r.trunk.Send(transport.Message{Type: transport.MsgDone, Worker: ch.worker})
}

// handleChildPush folds one child's gradients into the pending partial and
// flushes when the window is complete.
func (r *Relay) handleChildPush(ch *relayChild, msg transport.Message) {
	grads, bytes, err := r.decodeChildPush(ch, msg)
	if err != nil {
		_ = ch.conn.Send(transport.Message{Type: transport.MsgError, Worker: ch.worker, Error: err.Error()})
		return
	}
	r.ingressBytes.Add(bytes)
	r.mu.Lock()
	if r.partial != nil && r.partial.members[ch.worker] {
		// The child is pushing again before the window closed — its previous
		// contribution must reach the root first, or its per-worker push
		// ordering (and any policy counting on it) breaks.
		r.flushLocked("duplicate")
	}
	if r.partial == nil {
		r.partial = &relayPartial{
			members: make(map[int]bool),
			minBase: msg.Version,
			started: r.clock(),
		}
	}
	p := r.partial
	if p.sum == nil {
		p.sum = make([]*tensor.Tensor, len(grads))
		for i, g := range grads {
			t := tensor.New(g.Shape()...)
			copy(t.Data(), g.Data())
			p.sum[i] = t
		}
	} else {
		if len(grads) != len(p.sum) {
			r.mu.Unlock()
			_ = ch.conn.Send(transport.Message{
				Type:   transport.MsgError,
				Worker: ch.worker,
				Error:  fmt.Sprintf("push carries %d tensors, partial holds %d", len(grads), len(p.sum)),
			})
			return
		}
		for i, g := range grads {
			p.sum[i].Add(g)
		}
	}
	if msg.Version < p.minBase {
		p.minBase = msg.Version
	}
	p.entries = append(p.entries, transport.PushEntry{
		Worker:    ch.worker,
		Version:   msg.Version,
		Iteration: msg.Iteration,
	})
	p.members[ch.worker] = true
	r.rm.childPushes.Inc()
	if r.completeLocked() {
		r.flushLocked("full")
	}
	r.mu.Unlock()
}

// decodeChildPush converts a child push into gradient tensors, reusing the
// child's decompression scratch (safe: lock-step per child, and the decoded
// values are folded into the partial's own buffers before the handler
// returns). It also reports the payload bytes, in Client.Traffic units.
func (r *Relay) decodeChildPush(ch *relayChild, msg transport.Message) ([]*tensor.Tensor, int64, error) {
	compressed := msg.Codec != "" || len(msg.Packed) > 0
	switch {
	case compressed && (!r.compression.Enabled() || msg.Codec != r.compression.Codec):
		return nil, 0, fmt.Errorf("push compressed with codec %q but relay speaks %s", msg.Codec, r.compression)
	case compressed:
		var bytes int64
		for _, p := range msg.Packed {
			bytes += int64(p.WireSize())
		}
		grads, err := compress.DecompressAllReuse(msg.Packed, ch.decodeScratch)
		if err != nil {
			return nil, 0, err
		}
		ch.decodeScratch = grads
		return grads, bytes, nil
	case r.compression.Enabled():
		return nil, 0, fmt.Errorf("uncompressed push but relay speaks %s", r.compression)
	case msg.PayloadOwned():
		grads, err := transport.FromWireOwned(msg.Tensors)
		return grads, wireTensorBytes(msg.Tensors), err
	default:
		grads, err := transport.FromWire(msg.Tensors)
		return grads, wireTensorBytes(msg.Tensors), err
	}
}

// completeLocked reports whether the pending partial holds a contribution
// from every live unfinished child. Callers hold r.mu.
func (r *Relay) completeLocked() bool {
	if r.partial == nil || len(r.partial.members) == 0 {
		return false
	}
	for w, ch := range r.children {
		if ch.finished {
			continue
		}
		if !r.partial.members[w] {
			return false
		}
	}
	return true
}

// flushLocked forwards the pending partial upstream as one ×k-weighted push:
// the summed gradients plus the per-child PushEntries the root's policy
// layer replays. Callers hold r.mu — the send happens under it, so partials
// leave in completion order. The sum buffers are freshly allocated per
// partial and never touched after the send, so the payload may be in flight
// (reference-passing transports) while the next partial accumulates.
func (r *Relay) flushLocked(reason string) {
	p := r.partial
	r.partial = nil
	if p == nil || len(p.entries) == 0 {
		return
	}
	msg := transport.Message{
		Type:        transport.MsgPush,
		Worker:      r.trunkKey,
		Version:     p.minBase,
		Iteration:   p.entries[0].Iteration,
		PushEntries: p.entries,
	}
	var bytes int64
	if r.comp != nil {
		msg.Codec = r.compression.Codec
		msg.Packed = r.comp.Compress(p.sum)
		for _, pk := range msg.Packed {
			bytes += int64(pk.WireSize())
		}
	} else {
		msg.Tensors = transport.ToWireOwned(p.sum)
		bytes = wireTensorBytes(msg.Tensors)
	}
	switch reason {
	case "full":
		r.rm.flushFull.Inc()
	case "duplicate":
		r.rm.flushDup.Inc()
	case "departure":
		r.rm.flushDepart.Inc()
	case "done":
		r.rm.flushDone.Inc()
	case "watchdog":
		r.rm.flushWatch.Inc()
	}
	r.rm.forwarded.Inc()
	r.rm.partialDepth.Observe(float64(len(p.entries)))
	r.forwardedBytes.Add(bytes)
	if err := r.trunk.Send(msg); err != nil {
		go r.fail(fmt.Errorf("ps: relay trunk: %w", err))
	}
}

// handleChildPull refreshes the relay's upstream delta-pull cache and serves
// the child from it, one chunk per upstream store shard — the same shape the
// root would answer with, so the child's own delta cache gates identically.
// The upstream refresh is itself delta-gated, so when nothing moved the hop
// transfers almost nothing; when it did, the relay downloads each changed
// shard once and fans it out to every pulling child.
func (r *Relay) handleChildPull(ch *relayChild, msg transport.Message) {
	r.pullMu.Lock()
	defer r.pullMu.Unlock()
	params, version, err := r.up.Pull()
	if err != nil {
		_ = ch.conn.Send(transport.Message{Type: transport.MsgError, Worker: ch.worker, Error: err.Error()})
		return
	}
	if !r.up.DeltaPull() || !r.up.cacheComplete() {
		// No upstream cache to chunk from (the root refused delta pulls):
		// serve the reassembled weights as one unchunked reply. Children were
		// granted delta pulls only if the root granted them, so this path
		// never needs per-shard versions.
		out := transport.Message{
			Type:    transport.MsgWeights,
			Worker:  ch.worker,
			Shards:  1,
			Total:   len(params),
			Version: version,
		}
		if r.compression.Pull && r.compression.Enabled() {
			out.Codec = r.compression.Codec
			out.Packed = compress.Pack(params, r.compression)
		} else {
			out.Tensors = transport.ToWireOwned(params)
		}
		_ = ch.conn.Send(out)
		return
	}

	shards := len(r.up.shardCache)
	have := msg.PullVersions
	if !ch.deltaPull || len(have) != shards {
		have = nil
	}
	compressPull := r.compression.Pull && r.compression.Enabled()
	if compressPull && len(r.packCache) != shards {
		r.packCache = make([]packedShard, shards)
	}
	base := 0
	for i := 0; i < shards; i++ {
		ts := r.up.shardCache[i]
		shardV := r.up.shardVersions[i]
		out := transport.Message{
			Type:    transport.MsgWeights,
			Worker:  ch.worker,
			Shard:   i,
			Shards:  shards,
			Total:   len(params),
			Base:    base,
			Version: version,
		}
		base += len(ts)
		if ch.deltaPull {
			out.ShardVersion = shardV
		}
		if have != nil && have[i] == shardV {
			out.Unchanged = true
		} else if compressPull {
			if r.packCache[i].packed == nil || r.packCache[i].version != shardV {
				r.packCache[i] = packedShard{version: shardV, packed: compress.Pack(ts, r.compression)}
			}
			out.Codec = r.compression.Codec
			out.Packed = r.packCache[i].packed
		} else {
			out.Tensors = transport.ToWireOwned(ts)
		}
		if ch.conn.Send(out) != nil {
			return
		}
	}
}
