package ps

import (
	"fmt"
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// startBenchGroup stands up a coordinator plus `servers` data servers over
// the in-process channel transport — the same topology the trainer's cluster
// mode builds — and returns a cluster-client connector and a teardown.
func startBenchGroup(b *testing.B, workers, servers int) (connect func(w int) *ClusterClient, stop func()) {
	b.Helper()
	initial := benchModel()
	sizes := make([]int, len(initial))
	for i, p := range initial {
		sizes[i] = p.Size()
	}
	layout, globalShards, err := GroupLayout(sizes, 0, servers)
	if err != nil {
		b.Fatal(err)
	}
	coordStore, err := NewStoreSharded([]*tensor.Tensor{tensor.New(1)}, optimizer.NewSGD(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	coord, err := NewServer(ServerConfig{
		Workers: workers,
		Policy:  core.MustNewASP(workers),
		Store:   coordStore,
		Cluster: ClusterConfig{Coordinator: true, GlobalShards: globalShards, TotalTensors: len(initial)},
	})
	if err != nil {
		b.Fatal(err)
	}
	listeners := make(map[string]*transport.ChanListener)
	coordL := transport.NewChanListener()
	listeners[coordL.Addr()] = coordL
	dial := func(addr string) (transport.Conn, error) {
		l := listeners[addr]
		if l == nil {
			return nil, fmt.Errorf("no bench server at %s", addr)
		}
		return l.Dial()
	}
	go func() { _ = coord.Serve(coordL) }()

	var srvs []*Server
	var extra []*transport.ChanListener
	for i := 0; i < servers; i++ {
		a := layout[i]
		st, err := NewStoreRange(initial, optimizer.NewSGDMomentum(0.01, 0.9, 1e-4), globalShards, a.ShardLo, a.ShardHi)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Workers: workers, Policy: core.MustNewASP(workers), Store: st})
		if err != nil {
			b.Fatal(err)
		}
		l := transport.NewChanListener()
		listeners[l.Addr()] = l
		extra = append(extra, l)
		go func() { _ = srv.Serve(l) }()
		srvs = append(srvs, srv)

		conn, err := dial(coordL.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if err := conn.Send(transport.Message{
			Type:    transport.MsgServerAnnounce,
			Servers: []transport.ServerEntry{a.Entry(l.Addr())},
		}); err != nil {
			b.Fatal(err)
		}
		if msg, err := conn.Recv(); err != nil || msg.Type != transport.MsgOK {
			b.Fatalf("announce: %v %v", msg.Type, err)
		}
	}
	connect = func(w int) *ClusterClient {
		c, err := NewClusterClient(dial, coordL.Addr(), w, ClusterClientConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	stop = func() {
		coord.Stop()
		for _, s := range srvs {
			s.Stop()
		}
		coordL.Close()
		for _, l := range extra {
			l.Close()
		}
	}
	return connect, stop
}

// BenchmarkClusterPushPull measures full push round trips (gradient
// fragments to every shard owner, the synchronization push to the
// coordinator, release waits) with four concurrent workers against a
// 1-server and a 2-server group, one pull per four pushes mixed in. The
// servers=2/servers=1 ratio is the tentpole's aggregate-throughput claim:
// with real parallelism the fan-out splits the apply work across stores.
// On a single-CPU host (this repo's CI container reports nproc=1) the two
// variants time-share one core, so the recorded baseline mostly reflects
// the added routing overhead — treat the trajectory, not the ratio, as the
// signal there.
func BenchmarkClusterPushPull(b *testing.B) {
	const workers = 4
	for _, servers := range []int{1, 2} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			connect, stop := startBenchGroup(b, workers, servers)
			defer stop()
			clients := make([]*ClusterClient, workers)
			grads := make([][]*tensor.Tensor, workers)
			for w := range clients {
				clients[w] = connect(w)
				grads[w] = benchGrads()
			}
			defer func() {
				for _, c := range clients {
					_ = c.Close()
				}
			}()
			runConcurrent(b, workers, func(w, i int) {
				if i%4 == 0 {
					if _, _, err := clients[w].Pull(); err != nil {
						b.Error(err)
						return
					}
				}
				if err := clients[w].PushAndWait(grads[w], 0, i); err != nil {
					b.Error(err)
				}
			})
		})
	}
}
