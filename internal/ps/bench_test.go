package ps

import (
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// BenchmarkStoreApply measures applying one gradient-sized update to the
// global weights.
func BenchmarkStoreApply(b *testing.B) {
	initial := []*tensor.Tensor{tensor.New(256, 256), tensor.New(256)}
	st, err := NewStore(initial, optimizer.NewSGDMomentum(0.01, 0.9, 1e-4))
	if err != nil {
		b.Fatal(err)
	}
	grads := []*tensor.Tensor{tensor.Full(0.01, 256, 256), tensor.Full(0.01, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply(grads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushPullRoundTrip measures one full worker iteration against the
// in-process parameter server under ASP (no synchronization waits): push a
// gradient, wait for OK, pull the weights.
func BenchmarkPushPullRoundTrip(b *testing.B) {
	initial := []*tensor.Tensor{tensor.New(128, 128)}
	st, err := NewStore(initial, optimizer.NewSGD(0.01))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st})
	if err != nil {
		b.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	defer func() {
		srv.Stop()
		listener.Close()
	}()
	conn, err := listener.Dial()
	if err != nil {
		b.Fatal(err)
	}
	client := NewClient(conn, 0)
	if err := client.Register(); err != nil {
		b.Fatal(err)
	}
	grad := []*tensor.Tensor{tensor.Full(0.001, 128, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PushAndWait(grad, int64(i), i); err != nil {
			b.Fatal(err)
		}
		if _, _, err := client.Pull(); err != nil {
			b.Fatal(err)
		}
	}
}
