package ps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// benchModel builds a multi-tensor parameter set resembling a small CNN's
// layer structure, large enough that copying and updating it dominates
// locking-free overheads.
func benchModel() []*tensor.Tensor {
	return []*tensor.Tensor{
		tensor.New(256, 256), tensor.New(256),
		tensor.New(128, 256), tensor.New(128),
		tensor.New(64, 128), tensor.New(64),
		tensor.New(32, 64), tensor.New(32),
	}
}

func benchGrads() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, 8)
	for _, p := range benchModel() {
		out = append(out, tensor.Full(0.01, p.Shape()...))
	}
	return out
}

// benchImpl is one store implementation under benchmark: apply pushes one
// gradient set, servePull performs the work the server's pull handler does
// for one worker (everything up to handing chunks to the outbox).
type benchImpl struct {
	apply     func(grads []*tensor.Tensor) (int64, error)
	servePull func() int
}

// globalLockStore replicates the pre-sharding parameter store — one exclusive
// mutex over all tensors, every pull a full deep copy under that lock. It is
// the baseline the sharded store's benchmarks are measured against.
type globalLockStore struct {
	mu      sync.Mutex
	params  []*tensor.Tensor
	opt     optimizer.Optimizer
	version int64
}

func newGlobalLockStore(initial []*tensor.Tensor, opt optimizer.Optimizer) *globalLockStore {
	params := make([]*tensor.Tensor, len(initial))
	for i, p := range initial {
		params[i] = p.Clone()
	}
	return &globalLockStore{params: params, opt: opt}
}

func (g *globalLockStore) Apply(grads []*tensor.Tensor) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opt.Step(g.params, grads)
	g.version++
	return g.version, nil
}

func (g *globalLockStore) Snapshot() ([]*tensor.Tensor, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*tensor.Tensor, len(g.params))
	for i, p := range g.params {
		out[i] = p.Clone()
	}
	return out, g.version
}

// benchStores returns the baseline and sharded stores side by side. Each
// servePull reproduces what the server's pull handler did against that
// store: the global-lock baseline deep-copied the whole model under its
// mutex and copied it again into wire tensors; the sharded store grabs
// per-shard copy-on-write references and aliases them onto the wire. The
// constructors take the sub-benchmark's own *testing.B so that setup
// failures are reported on the goroutine they occur on.
func benchStores() map[string]func(b *testing.B) benchImpl {
	return map[string]func(b *testing.B) benchImpl{
		"global-lock": func(_ *testing.B) benchImpl {
			st := newGlobalLockStore(benchModel(), optimizer.NewSGDMomentum(0.01, 0.9, 1e-4))
			return benchImpl{
				apply: st.Apply,
				servePull: func() int {
					params, _ := st.Snapshot()
					return len(transport.ToWire(params))
				},
			}
		},
		"sharded": func(b *testing.B) benchImpl {
			st, err := NewStoreSharded(benchModel(), optimizer.NewSGDMomentum(0.01, 0.9, 1e-4), 0)
			if err != nil {
				b.Fatal(err)
			}
			return benchImpl{
				apply: st.Apply,
				servePull: func() int {
					n := 0
					for i := 0; i < st.Shards(); i++ {
						params, _, _ := st.ViewShard(i)
						n += len(transport.ToWireOwned(params))
					}
					return n
				},
			}
		},
	}
}

// runConcurrent spreads b.N calls of fn over the given number of goroutines.
func runConcurrent(b *testing.B, workers int, fn func(worker, i int)) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		iters := per
		if w < extra {
			iters++
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(w, i)
			}
		}(w, iters)
	}
	wg.Wait()
}

// BenchmarkStoreConcurrentPull measures pull-serving throughput with 1, 4
// and 16 workers pulling simultaneously, for the global-lock baseline and
// the sharded store. The baseline serializes a full deep copy per pull under
// one mutex; the sharded store serves copy-on-write shard references with
// near-zero lock hold time and no copying.
func BenchmarkStoreConcurrentPull(b *testing.B) {
	for name, mk := range benchStores() {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				impl := mk(b)
				runConcurrent(b, workers, func(_, _ int) {
					if impl.servePull() == 0 {
						b.Fail()
					}
				})
			})
		}
	}
}

// BenchmarkStoreConcurrentPushPull measures a mixed workload — every fourth
// operation is a gradient application, the rest are pulls — the steady state
// of an asynchronous parameter server where pulls from many workers overlap
// in-flight pushes.
func BenchmarkStoreConcurrentPushPull(b *testing.B) {
	for name, mk := range benchStores() {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				impl := mk(b)
				grads := make([][]*tensor.Tensor, workers)
				for w := range grads {
					grads[w] = benchGrads()
				}
				runConcurrent(b, workers, func(w, i int) {
					if i%4 == 0 {
						if _, err := impl.apply(grads[w]); err != nil {
							b.Error(err)
						}
					} else {
						impl.servePull()
					}
				})
			})
		}
	}
}

// BenchmarkStoreApply measures applying one gradient-sized update to the
// global weights (shard-parallel in the sharded store).
func BenchmarkStoreApply(b *testing.B) {
	for name, mk := range benchStores() {
		b.Run(name, func(b *testing.B) {
			impl := mk(b)
			grads := benchGrads()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := impl.apply(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerConcurrentPull measures pull round trips through the full
// server — registration, per-worker outboxes, chunked weight streaming —
// with 1, 4 and 16 workers pulling concurrently.
func BenchmarkServerConcurrentPull(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			st, err := NewStoreSharded(benchModel(), optimizer.NewSGD(0.01), 0)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(ServerConfig{Workers: workers, Policy: core.MustNewASP(workers), Store: st})
			if err != nil {
				b.Fatal(err)
			}
			listener := transport.NewChanListener()
			go func() { _ = srv.Serve(listener) }()
			defer func() {
				srv.Stop()
				listener.Close()
			}()
			clients := make([]*Client, workers)
			for w := range clients {
				conn, err := listener.Dial()
				if err != nil {
					b.Fatal(err)
				}
				clients[w] = NewClient(conn, w)
				if err := clients[w].Register(); err != nil {
					b.Fatal(err)
				}
			}
			runConcurrent(b, workers, func(w, _ int) {
				if _, _, err := clients[w].Pull(); err != nil {
					b.Error(err)
				}
			})
		})
	}
}

// BenchmarkServerConcurrentPushPull measures full worker iterations —
// push, wait for the release, pull — through the whole server with 1, 4
// and 16 concurrent workers under ASP. Unlike the store-level benchmark,
// this exercises the push pipeline end to end: the policy decision under
// policyMu, ticket assignment, coalesced application on the per-shard
// appliers, and gated release delivery through the sequencer.
func BenchmarkServerConcurrentPushPull(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			st, err := NewStoreSharded(benchModel(), optimizer.NewSGDMomentum(0.01, 0.9, 1e-4), 0)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(ServerConfig{Workers: workers, Policy: core.MustNewASP(workers), Store: st})
			if err != nil {
				b.Fatal(err)
			}
			listener := transport.NewChanListener()
			go func() { _ = srv.Serve(listener) }()
			defer func() {
				srv.Stop()
				listener.Close()
			}()
			clients := make([]*Client, workers)
			grads := make([][]*tensor.Tensor, workers)
			for w := range clients {
				conn, err := listener.Dial()
				if err != nil {
					b.Fatal(err)
				}
				clients[w] = NewClient(conn, w)
				if err := clients[w].Register(); err != nil {
					b.Fatal(err)
				}
				grads[w] = benchGrads()
			}
			var errs atomic.Int64
			runConcurrent(b, workers, func(w, i int) {
				if err := clients[w].PushAndWait(grads[w], int64(i), i); err != nil {
					errs.Add(1)
					return
				}
				if _, _, err := clients[w].Pull(); err != nil {
					errs.Add(1)
				}
			})
			if errs.Load() > 0 {
				b.Fatalf("%d worker iterations failed", errs.Load())
			}
		})
	}
}

// BenchmarkDeltaPull measures repeated pulls of an unchanged store — the
// workload version-gated delta pulls exist for (an evaluator, a worker
// outrunning its peers, a BSP round fanning out weights nobody updated in
// between) — with delta pulls off and on. pulled-B/op reports the payload
// bytes per pull; delta pulls collapse it to near zero after the first.
func BenchmarkDeltaPull(b *testing.B) {
	for _, delta := range []bool{false, true} {
		name := "full"
		if delta {
			name = "delta"
		}
		b.Run(name, func(b *testing.B) {
			st, err := NewStoreSharded(benchModel(), optimizer.NewSGD(0.01), 0)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st})
			if err != nil {
				b.Fatal(err)
			}
			listener := transport.NewChanListener()
			go func() { _ = srv.Serve(listener) }()
			defer func() {
				srv.Stop()
				listener.Close()
			}()
			conn, err := listener.Dial()
			if err != nil {
				b.Fatal(err)
			}
			client := NewClient(conn, 0)
			client.SetDeltaPull(delta)
			if err := client.Register(); err != nil {
				b.Fatal(err)
			}
			if _, _, err := client.Pull(); err != nil { // prime the cache
				b.Fatal(err)
			}
			_, primed := client.Traffic()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := client.Pull(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, pulled := client.Traffic()
			b.ReportMetric(float64(pulled-primed)/float64(b.N), "pulled-B/op")
		})
	}
}

// BenchmarkPushPullRoundTrip measures one full worker iteration against the
// in-process parameter server under ASP (no synchronization waits): push a
// gradient, wait for OK, pull the weights.
func BenchmarkPushPullRoundTrip(b *testing.B) {
	initial := []*tensor.Tensor{tensor.New(128, 128)}
	st, err := NewStore(initial, optimizer.NewSGD(0.01))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st})
	if err != nil {
		b.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	defer func() {
		srv.Stop()
		listener.Close()
	}()
	conn, err := listener.Dial()
	if err != nil {
		b.Fatal(err)
	}
	client := NewClient(conn, 0)
	if err := client.Register(); err != nil {
		b.Fatal(err)
	}
	grad := []*tensor.Tensor{tensor.Full(0.001, 128, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PushAndWait(grad, int64(i), i); err != nil {
			b.Fatal(err)
		}
		if _, _, err := client.Pull(); err != nil {
			b.Fatal(err)
		}
	}
}
