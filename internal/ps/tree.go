package ps

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// This file holds the root's half of the aggregation-relay tier (DESIGN.md
// §11): the tree layout workers fetch to find their relay, and the trunk
// message handlers — child joins, summed pushes, child departures, and the
// cascade a dying trunk triggers.
//
// The tier exists to cut root ingress from O(workers) to O(fanout): a relay
// coordinate-wise sums the pushes of up to fanout children into one windowed
// partial and forwards a single ×k-weighted push whose PushEntries carry the
// children's clock metadata, so the policy layer still sees every logical
// push — OnPush runs once per child, the version advances by k, and serial
// schedules stay bit-identical to the flat topology.

// treeRelay is one registered relay: its trunk session, the child-facing
// address it advertises, its configured fanout, and the worker-index ranges
// [lo, hi) the layout assigns it.
type treeRelay struct {
	sess   *session
	addr   string
	fanout int
	ranges [][2]int
}

// treeState is the advertised aggregation-tree layout. It is advisory — the
// routes map follows the joins workers actually perform — but it is the
// single document workers consult to pick a parent, so assignment here is
// what makes re-parenting after a relay death deterministic: a dead relay's
// ranges transfer to the first surviving relay (its children re-parent at a
// sibling), or, with no survivors, vanish (they re-parent at the root).
type treeState struct {
	mu      sync.Mutex
	relays  []*treeRelay
	version int64
}

// add assigns the new relay the lowest worker indices not covered by any
// existing relay, up to its fanout, as contiguous runs.
func (t *treeState) add(sess *session, addr string, fanout, workers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	covered := make([]bool, workers)
	for _, r := range t.relays {
		for _, rg := range r.ranges {
			for w := rg[0]; w < rg[1] && w < workers; w++ {
				covered[w] = true
			}
		}
	}
	rel := &treeRelay{sess: sess, addr: addr, fanout: fanout}
	assigned, start, end := 0, -1, 0
	for w := 0; w < workers && assigned < fanout; w++ {
		if covered[w] {
			if start >= 0 {
				rel.ranges = append(rel.ranges, [2]int{start, w})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = w
		}
		assigned++
		end = w + 1
	}
	if start >= 0 {
		rel.ranges = append(rel.ranges, [2]int{start, end})
	}
	t.relays = append(t.relays, rel)
	t.version++
}

// remove drops a dead relay from the layout, transferring its ranges to the
// first survivor so its children have a deterministic new parent.
func (t *treeState) remove(sess *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.relays {
		if r.sess != sess {
			continue
		}
		t.relays = append(t.relays[:i], t.relays[i+1:]...)
		if len(t.relays) > 0 {
			t.relays[0].ranges = append(t.relays[0].ranges, r.ranges...)
		}
		t.version++
		return
	}
}

// snapshot flattens the layout into wire entries — Addr is the relay's
// child-facing address, ShardLo/ShardHi the worker-index range [lo, hi) it
// covers (the fields are reused; a tree-layout reply never describes store
// shards) — sorted by range start.
func (t *treeState) snapshot() ([]transport.ServerEntry, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var entries []transport.ServerEntry
	for _, r := range t.relays {
		for _, rg := range r.ranges {
			entries = append(entries, transport.ServerEntry{Addr: r.addr, ShardLo: rg[0], ShardHi: rg[1]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ShardLo < entries[j].ShardLo })
	return entries, t.version
}

// relayAdmissible screens a trunk registration against configurations whose
// per-push machinery cannot attribute a pre-summed partial to individual
// workers.
func (s *Server) relayAdmissible(msg transport.Message) error {
	if s.cfg.Cluster.Coordinator {
		return fmt.Errorf("relay tier runs against data-carrying servers, not a cluster coordinator")
	}
	if s.guard != nil {
		return fmt.Errorf("anomaly guard screens individual gradients and cannot attribute a summed partial; disable the guard or the relay tier")
	}
	if s.cfg.Aggregator.Kind != AggSum {
		return fmt.Errorf("aggregator %q needs individual gradients; the relay tier pre-sums, so only %q composes with it",
			s.cfg.Aggregator.Kind, AggSum)
	}
	if len(msg.Servers) != 1 || msg.Servers[0].Addr == "" {
		return fmt.Errorf("relay registration must advertise exactly one child-facing address")
	}
	if msg.Servers[0].ShardHi < 1 {
		return fmt.Errorf("relay registration must advertise a positive fanout, got %d", msg.Servers[0].ShardHi)
	}
	return nil
}

// handleChildJoin admits a worker registering through a relay trunk. The
// worker gets no session of its own — the trunk carries it — but enters
// joined/policy/window accounting exactly as a direct registration would,
// and any direct session the slot held is superseded (the worker re-parented
// under the relay).
func (s *Server) handleChildJoin(trunk *session, msg transport.Message) {
	w := msg.Worker
	if w < 0 || w >= s.cfg.Workers {
		s.enqueueSession(trunk, transport.Message{
			Type:   transport.MsgError,
			Worker: w,
			Error:  fmt.Sprintf("worker id %d out of range [0,%d)", w, s.cfg.Workers),
		})
		return
	}
	requested := compress.Config{Codec: msg.Codec, TopK: msg.CodecTopK, Pull: msg.CodecPull}.Normalized()
	if requested.Codec != compress.Auto && !requested.Equal(s.compression) {
		s.enqueueSession(trunk, transport.Message{
			Type:   transport.MsgError,
			Worker: w,
			Error: fmt.Sprintf("compression mismatch: worker %d registered with codec %s, server speaks %s",
				w, requested, s.compression),
		})
		return
	}
	rejoined := msg.Type == transport.MsgRejoin
	old := s.sessions.get(w)
	s.mu.Lock()
	s.joined[w] = true
	s.routes[w] = trunk
	s.mu.Unlock()
	if old != nil {
		// The slot held a direct session (a zombie connection, or a worker
		// that re-parented before its old link died). Drop it first so the old
		// connection goroutine's leave() no-ops instead of counting the worker
		// out of the cohort it just rejoined.
		s.sessions.drop(old)
		old.end()
		_ = old.conn.Close()
	}
	s.sm.treeChildJoins.Inc()
	s.shrinkWindow()

	now := s.clock()
	s.policyMu.Lock()
	if rejoined {
		s.sm.rejoins.Inc()
	}
	decision := s.cfg.Policy.OnJoin(core.WorkerID(w), now)
	s.recordReleases(decision.Release, now)
	s.queueReleases(releaseBatch{release: decision.Release, gate: s.cfg.Store.Reserved()})
	s.policyMu.Unlock()

	s.enqueueSession(trunk, transport.Message{
		Type:        transport.MsgRegistered,
		Worker:      w,
		Version:     s.cfg.Store.Version(),
		Codec:       s.compression.Codec,
		CodecTopK:   s.compression.TopK,
		CodecPull:   s.compression.Pull,
		StoreShards: s.cfg.Store.Shards(),
		DeltaPull:   msg.DeltaPull && !s.cfg.DisableDeltaPull,
	})
}

// handleChildLeave processes a routed worker's departure, forwarded by its
// relay. The route check makes stale forwards harmless: a child that already
// re-parented (directly or under another relay) is no longer this trunk's to
// remove.
func (s *Server) handleChildLeave(trunk *session, w int) {
	if w < 0 || w >= s.cfg.Workers {
		return
	}
	now := s.clock()
	s.mu.Lock()
	if s.routes[w] != trunk {
		s.mu.Unlock()
		return
	}
	delete(s.routes, w)
	finished := s.finished[w]
	if !finished {
		s.departedAt[w] = now
	}
	s.mu.Unlock()
	s.sm.treeChildLeaves.Inc()

	s.policyMu.Lock()
	if !finished {
		s.sm.departures.Inc()
	}
	decision := s.cfg.Policy.OnLeave(core.WorkerID(w), now)
	delete(s.pushedAt, w)
	s.recordReleases(decision.Release, now)
	s.queueReleases(releaseBatch{release: decision.Release, gate: s.cfg.Store.Reserved()})
	s.policyMu.Unlock()
	s.shrinkWindow()
	s.checkAllDone()
}

// trunkGone sweeps a dead trunk's routed children out of the cohort: each is
// departed exactly as if its own connection had died, so barrier paradigms
// release the survivors instead of deadlocking, and the rejoin grace window
// gives the children time to re-parent. The layout drops the relay first, so
// a child that refetches it immediately lands somewhere live.
func (s *Server) trunkGone(trunk *session) {
	s.tree.remove(trunk)
	now := s.clock()
	s.mu.Lock()
	var kids []int
	for w, t := range s.routes {
		if t == trunk {
			kids = append(kids, w)
		}
	}
	sort.Ints(kids)
	finished := make(map[int]bool, len(kids))
	for _, w := range kids {
		delete(s.routes, w)
		finished[w] = s.finished[w]
		if !s.finished[w] {
			s.departedAt[w] = now
		}
	}
	s.mu.Unlock()
	for _, w := range kids {
		s.sm.treeChildLeaves.Inc()
		s.policyMu.Lock()
		if !finished[w] {
			s.sm.departures.Inc()
		}
		decision := s.cfg.Policy.OnLeave(core.WorkerID(w), now)
		delete(s.pushedAt, w)
		s.recordReleases(decision.Release, now)
		s.queueReleases(releaseBatch{release: decision.Release, gate: s.cfg.Store.Reserved()})
		s.policyMu.Unlock()
	}
	s.shrinkWindow()
	s.checkAllDone()
}

// handleRelayPush accepts a relay's forwarded partial: one gradient payload
// standing in for the pushes of every worker listed in PushEntries. The
// policy sees each logical push individually (OnPush per entry, in entry
// order, under one policyMu hold — indistinguishable from the children
// pushing back-to-back), and the store reserves one ticket per accepted
// entry via the weighted enqueue, so the version advances by k and staleness
// is measured against each child's own base version.
//
// Unlike the lock-step worker path, trunk pushes pipeline — the relay may
// flush partial n+1 before partial n's children are released — so the decode
// never reuses session scratch: the previous payload may still be queued on
// a shard applier.
func (s *Server) handleRelayPush(sess *session, msg transport.Message) {
	entries := msg.PushEntries
	if len(entries) == 0 {
		s.enqueueSession(sess, transport.Message{
			Type:  transport.MsgError,
			Error: "relay push carries no entries",
		})
		return
	}
	for _, e := range entries {
		if e.Worker < 0 || e.Worker >= s.cfg.Workers {
			s.enqueueSession(sess, transport.Message{
				Type:  transport.MsgError,
				Error: fmt.Sprintf("relay push entry names worker %d outside [0,%d)", e.Worker, s.cfg.Workers),
			})
			return
		}
	}
	decodeStart := time.Now()
	grads, decodeErr := s.decodeRelayPush(msg)
	s.sm.phaseDecode.Observe(time.Since(decodeStart).Seconds())

	now := s.clock()
	policyStart := time.Now()
	s.policyMu.Lock()
	if !s.sessions.current(sess) {
		s.policyMu.Unlock()
		return
	}
	var release []core.WorkerID
	drops := make([]bool, len(entries))
	accepted := 0
	for i, e := range entries {
		decision := s.cfg.Policy.OnPush(core.WorkerID(e.Worker), now)
		s.pushedAt[e.Worker] = now
		release = append(release, decision.Release...)
		if decision.Drop {
			drops[i] = true
			s.sm.droppedPolicy.Inc()
		} else {
			accepted++
		}
	}

	var pushErr error
	var ticket int64
	if accepted > 0 {
		if decodeErr != nil {
			pushErr = decodeErr
		} else {
			ticket, pushErr = s.cfg.Store.EnqueueApplyWeighted(grads, int64(accepted))
		}
		if pushErr != nil {
			ticket = 0
		} else {
			s.sm.treePartials.Inc()
			s.sm.treePartialSize.Observe(float64(accepted))
			// The partial's tickets are (ticket-accepted, ticket]; walk them in
			// entry order so each child's staleness observes the version its
			// own logical push landed at.
			t := ticket - int64(accepted) + 1
			for i, e := range entries {
				if drops[i] {
					continue
				}
				s.sm.pushes.Inc()
				stale := int(t - 1 - e.Version)
				s.staleness.Observe(stale)
				s.sm.staleness.Observe(float64(stale))
				t++
			}
		}
	}

	s.recordReleases(release, now)
	var errTrunk *session
	var errWorkers []int
	if pushErr != nil {
		errTrunk = sess
		for i, e := range entries {
			if !drops[i] {
				errWorkers = append(errWorkers, e.Worker)
			}
		}
	}
	s.queueReleases(releaseBatch{
		release:    release,
		gate:       s.cfg.Store.Reserved(),
		errTrunk:   errTrunk,
		err:        pushErr,
		errWorkers: errWorkers,
		ticket:     ticket,
		queuedAt:   time.Now(),
	})
	s.policyMu.Unlock()
	s.sm.phasePolicy.Observe(time.Since(policyStart).Seconds())
}

// decodeRelayPush mirrors decodePush without the session-scratch reuse:
// trunk pushes pipeline, so every payload gets fresh tensors that stay valid
// on the shard queues however many partials are in flight.
func (s *Server) decodeRelayPush(msg transport.Message) ([]*tensor.Tensor, error) {
	compressed := msg.Codec != "" || len(msg.Packed) > 0
	switch {
	case compressed && (!s.compression.Enabled() || msg.Codec != s.compression.Codec):
		return nil, fmt.Errorf("push compressed with codec %q but server speaks %s", msg.Codec, s.compression)
	case compressed:
		return compress.DecompressAll(msg.Packed)
	case s.compression.Enabled():
		return nil, fmt.Errorf("uncompressed push but server speaks %s", s.compression)
	case msg.PayloadOwned():
		return transport.FromWireOwned(msg.Tensors)
	default:
		return transport.FromWire(msg.Tensors)
	}
}
