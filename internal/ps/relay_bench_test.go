package ps

import (
	"fmt"
	"sync"
	"testing"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/transport"
)

// BenchmarkAggTreeIngress drives 16 workers' push traffic at one root, flat
// (fanout=1: every worker dials the root) versus through four fanout-4
// relays, over the in-process channel transport. Besides ns/op it reports
// the root's metered push ingress per logical push — the rootframes/push
// ratio between the two sub-benchmarks is the tier's batching factor and is
// pinned by the bench gate alongside the timing.
func BenchmarkAggTreeIngress(b *testing.B) {
	const workers = 16
	for _, fanout := range []int{1, 4} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			benchAggTree(b, workers, fanout)
		})
	}
}

func benchAggTree(b *testing.B, workers, fanout int) {
	st, err := NewStoreSharded(benchModel(), optimizer.NewSGD(0.01), 4)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Workers: workers,
		Policy:  core.MustNewASP(workers),
		Store:   st,
	})
	if err != nil {
		b.Fatal(err)
	}
	root := transport.NewChanListener()
	root.SetMeter(transport.NewMetrics(srv.Registry()))
	go func() { _ = srv.Serve(root) }()
	var relays []*Relay
	var listeners []*transport.ChanListener
	defer func() {
		for _, r := range relays {
			r.Stop()
		}
		srv.Stop()
		for _, l := range listeners {
			l.Close()
		}
		root.Close()
	}()
	if fanout >= 2 {
		for i := 0; i < (workers+fanout-1)/fanout; i++ {
			l := transport.NewChanListener()
			listeners = append(listeners, l)
			relay, err := NewRelay(RelayConfig{Parent: root.Dial, Fanout: fanout, Advertise: l.Addr()})
			if err != nil {
				b.Fatal(err)
			}
			relays = append(relays, relay)
			go func(r *Relay, l *transport.ChanListener) { _ = r.Serve(l) }(relay, l)
		}
	}

	clients := make([]*Client, workers)
	for w := range clients {
		dial := root.Dial
		if fanout >= 2 {
			dial = listeners[w/fanout].Dial
		}
		conn, err := dial()
		if err != nil {
			b.Fatal(err)
		}
		clients[w] = NewClient(conn, w)
		if err := clients[w].Register(); err != nil {
			b.Fatal(err)
		}
	}

	per := b.N / workers
	extra := b.N % workers
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		iters := per
		if w < extra {
			iters++
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			g := benchGrads()
			for i := 0; i < iters; i++ {
				if err := clients[w].PushAndWait(g, 0, i); err != nil {
					b.Error(err)
					return
				}
			}
			// Done retires the worker so tail partials never wait on it.
			if err := clients[w].Done(); err != nil {
				b.Error(err)
			}
		}(w, iters)
	}
	wg.Wait()
	b.StopTimer()

	snap := srv.Registry().Snapshot()
	pushes := float64(b.N)
	if pushes > 0 {
		b.ReportMetric(snap[`dssp_transport_frames_total{dir="recv",type="Push"}`]/pushes, "rootframes/push")
		b.ReportMetric(snap[`dssp_transport_bytes_total{dir="recv",type="Push"}`]/pushes, "rootB/push")
	}
	for _, c := range clients {
		_ = c.Close()
	}
}
