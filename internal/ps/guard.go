package ps

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dssp/internal/core"
	"dssp/internal/obs"
	"dssp/internal/tensor"
)

// Guard defaults.
const (
	// DefaultNormFactor flags a push whose total gradient L2 norm exceeds
	// this multiple of the trailing median push norm. Honest gradients drift
	// in magnitude across training; an 8× jump against the recent median is
	// an attack or a numerical blow-up, both worth rejecting.
	DefaultNormFactor = 8.0
	// DefaultMaxStrikes is how many flagged pushes evict a worker.
	DefaultMaxStrikes = 3
	// normHistory is the length of the trailing window the median push norm
	// is computed over.
	normHistory = 64
)

// GuardConfig enables the server-side anomaly guard: every push is screened
// for gradient-norm outliers, impossible version claims (lying clocks) and
// push floods. A flagged push is dropped — the policy still releases workers
// exactly as if it were applied, so barrier paradigms never deadlock on a
// rejected payload — and a worker accumulating MaxStrikes flags is evicted
// through the session lease layer, exactly like a worker whose lease
// expired.
type GuardConfig struct {
	// Enabled turns the guard on. The zero value screens nothing.
	Enabled bool
	// NormFactor is the norm-outlier threshold relative to the trailing
	// median push norm; 0 selects DefaultNormFactor. Negative disables the
	// norm check (clock checks still run).
	NormFactor float64
	// MaxStrikes is how many flagged pushes evict the worker; 0 selects
	// DefaultMaxStrikes.
	MaxStrikes int
	// FloodSlack is how many pushes per pull a worker may make before being
	// flagged for flooding; 0 selects core.DefaultFloodSlack.
	FloodSlack int
}

// Normalized maps zero values onto their explicit form.
func (c GuardConfig) Normalized() GuardConfig {
	if !c.Enabled {
		return GuardConfig{}
	}
	if c.NormFactor == 0 {
		c.NormFactor = DefaultNormFactor
	}
	if c.MaxStrikes <= 0 {
		c.MaxStrikes = DefaultMaxStrikes
	}
	if c.FloodSlack <= 0 {
		c.FloodSlack = core.DefaultFloodSlack
	}
	return c
}

// GuardStats is the guard's per-run accounting, the raw material for the
// experiment harness's detection rates: who was flagged how often, who was
// evicted, and how many pushes the guard rejected.
type GuardStats struct {
	// Flags is the number of anomaly flags per worker slot.
	Flags []int
	// Evicted lists the workers the guard evicted, in eviction order.
	Evicted []int
	// DroppedPushes is the number of pushes rejected by the guard.
	DroppedPushes int
}

// guardVerdict is the outcome of screening one push.
type guardVerdict struct {
	drop  bool
	evict bool
}

// guard is the server's per-run anomaly detector. All methods are
// goroutine-safe: pushes from different workers screen concurrently on
// their connection goroutines.
type guard struct {
	cfg GuardConfig

	// flagsC and evictC mirror flag and eviction counts onto the server's
	// metrics registry; nil (guards built outside a server) skips them.
	flagsC *obs.Counter
	evictC *obs.Counter

	mu      sync.Mutex
	clock   *core.ClockMonitor
	strikes []int
	evicted []int
	dropped int
	// norms is the trailing ring of accepted push norms; median over it is
	// the baseline the outlier check compares against. Flagged pushes are
	// excluded so an attacker cannot drag the baseline toward its own
	// magnitude.
	norms []float64
	next  int
	sort  []float64
}

// newGuard builds the guard for a normalized configuration; nil when the
// guard is disabled.
func newGuard(cfg GuardConfig, workers int) *guard {
	cfg = cfg.Normalized()
	if !cfg.Enabled {
		return nil
	}
	return &guard{
		cfg:     cfg,
		clock:   core.NewClockMonitor(workers, cfg.FloodSlack),
		strikes: make([]int, workers),
	}
}

// observePull feeds a pull into the flood detector.
func (g *guard) observePull(worker int) {
	g.mu.Lock()
	g.clock.ObservePull(core.WorkerID(worker))
	g.mu.Unlock()
}

// checkPush screens one decoded push: claimedBase against the highest
// version the server ever produced, and the gradient's total L2 norm
// against the trailing median. grads may be nil (decode failure — already
// an error path, nothing to screen beyond the clocks).
func (g *guard) checkPush(worker int, claimedBase, serverVersion int64, grads []*tensor.Tensor) guardVerdict {
	norm, normOK := pushNorm(grads)

	g.mu.Lock()
	defer g.mu.Unlock()
	flags := len(g.clock.ObservePush(core.WorkerID(worker), claimedBase, serverVersion))
	if grads != nil {
		switch {
		case !normOK:
			// NaN/Inf gradient: always anomalous, no baseline needed.
			flags++
		case g.cfg.NormFactor > 0:
			if med, ok := g.medianNorm(); ok && norm > g.cfg.NormFactor*med && norm > 0 {
				flags++
			}
		}
	}
	if flags == 0 {
		if normOK && grads != nil {
			g.recordNorm(norm)
		}
		return guardVerdict{}
	}
	g.strikes[worker] += flags
	g.dropped++
	if g.flagsC != nil {
		g.flagsC.Add(uint64(flags))
	}
	v := guardVerdict{drop: true}
	if g.strikes[worker] >= g.cfg.MaxStrikes {
		v.evict = true
		g.evicted = append(g.evicted, worker)
		if g.evictC != nil {
			g.evictC.Inc()
		}
	}
	return v
}

// stats snapshots the guard's accounting.
func (g *guard) stats() GuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Clock flags and norm flags both land in strikes; report strikes, the
	// union the eviction rule acts on.
	st := GuardStats{
		Flags:         make([]int, len(g.strikes)),
		Evicted:       append([]int(nil), g.evicted...),
		DroppedPushes: g.dropped,
	}
	copy(st.Flags, g.strikes)
	return st
}

// recordNorm appends one accepted push norm to the trailing ring.
func (g *guard) recordNorm(n float64) {
	if len(g.norms) < normHistory {
		g.norms = append(g.norms, n)
		return
	}
	g.norms[g.next] = n
	g.next = (g.next + 1) % normHistory
}

// medianNorm returns the median of the trailing accepted push norms. It
// needs a few samples before it claims a baseline, so the first pushes of a
// run are never flagged by magnitude alone.
func (g *guard) medianNorm() (float64, bool) {
	if len(g.norms) < 4 {
		return 0, false
	}
	g.sort = append(g.sort[:0], g.norms...)
	sort.Float64s(g.sort)
	return g.sort[len(g.sort)/2], true
}

// pushNorm computes the total L2 norm over all of a push's tensors,
// reporting false when any coordinate is NaN or Inf.
func pushNorm(grads []*tensor.Tensor) (float64, bool) {
	sum := 0.0
	for _, g := range grads {
		for _, v := range g.Data() {
			sum += float64(v) * float64(v)
		}
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		return 0, false
	}
	return math.Sqrt(sum), true
}

// String renders the configuration for logs.
func (c GuardConfig) String() string {
	if !c.Enabled {
		return "off"
	}
	c = c.Normalized()
	return fmt.Sprintf("norm>%gx,strikes=%d,flood>%d", c.NormFactor, c.MaxStrikes, c.FloodSlack)
}
