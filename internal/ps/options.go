package ps

import (
	"fmt"
	"time"

	"dssp/internal/compress"
)

// Options groups the serving knobs shared by every layer that stands up a
// parameter server — ServerConfig here, trainer.Config in-process, and the
// public dssp configs above them. They embed this struct, so a new knob
// (like Aggregator) is declared once and reaches every surface; Normalized
// is the one defaulting+validation helper all of them funnel through.
type Options struct {
	// Compression selects the gradient codec spoken on the wire. Workers
	// must register with a matching configuration (or compress.Auto) or are
	// rejected. With Compression.Pull set, weight chunks on the pull path
	// are compressed too.
	Compression compress.Config
	// Aggregator selects how the per-shard appliers reduce queued pushes
	// into optimizer steps: plain sum (the default), norm-clipped sum, or
	// the windowed robust estimators (trimmed mean, coordinate median) that
	// tolerate Byzantine gradients.
	Aggregator AggregatorConfig
	// Guard enables push screening and staleness-anomaly eviction: norm
	// outliers, impossible version claims and push floods are dropped, and
	// repeat offenders are evicted through the session lease layer.
	Guard GuardConfig
	// Elastic enables lease monitoring (sessions that miss heartbeats for
	// HeartbeatTimeout are evicted) and completes the run when every live
	// worker has finished even if some slots departed for good. Regardless
	// of Elastic, a dead connection always notifies the policy.
	Elastic bool
	// HeartbeatTimeout is how long a session may stay silent before the
	// lease monitor evicts it. Zero selects DefaultHeartbeatTimeout when
	// Elastic is set.
	HeartbeatTimeout time.Duration
	// Checkpoint periodically snapshots the store to disk so a restarted
	// server resumes where this one stopped.
	Checkpoint CheckpointConfig
}

// Normalized validates the options and maps zero values onto their explicit
// form — the single defaulting helper every config surface shares.
func (o Options) Normalized() (Options, error) {
	o.Compression = o.Compression.Normalized()
	if err := o.Compression.Validate(false); err != nil {
		return o, fmt.Errorf("ps: server compression: %w", err)
	}
	o.Aggregator = o.Aggregator.Normalized()
	if err := o.Aggregator.Validate(); err != nil {
		return o, err
	}
	o.Guard = o.Guard.Normalized()
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	return o, nil
}
