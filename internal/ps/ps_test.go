package ps

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

func testStore(t *testing.T, dims ...int) *Store {
	t.Helper()
	if len(dims) == 0 {
		dims = []int{4}
	}
	initial := []*tensor.Tensor{tensor.New(dims...)}
	st, err := NewStore(initial, optimizer.NewSGD(1.0))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(nil, optimizer.NewSGD(0.1)); err == nil {
		t.Error("expected error for empty parameter list")
	}
	if _, err := NewStore([]*tensor.Tensor{tensor.New(2)}, nil); err == nil {
		t.Error("expected error for nil optimizer")
	}
}

func TestStoreApplyUpdatesVersionAndParameters(t *testing.T) {
	st := testStore(t, 3)
	if st.Version() != 0 {
		t.Fatalf("fresh store version = %d", st.Version())
	}
	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 2, 3}, 3)}
	v, err := st.Apply(grad)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || st.Version() != 1 {
		t.Fatalf("version after apply = %d/%d, want 1", v, st.Version())
	}
	params, version := st.Snapshot()
	if version != 1 {
		t.Fatalf("snapshot version = %d", version)
	}
	want := []float32{-1, -2, -3} // lr=1 plain SGD
	for i, v := range params[0].Data() {
		if v != want[i] {
			t.Errorf("param[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Mutating the snapshot must not affect the store.
	params[0].Fill(99)
	again, _ := st.Snapshot()
	if again[0].At(0) == 99 {
		t.Fatal("snapshot aliases store parameters")
	}
}

func TestStoreApplyRejectsMismatchedGradients(t *testing.T) {
	st := testStore(t, 3)
	if _, err := st.Apply(nil); err == nil {
		t.Error("expected error for missing gradients")
	}
	if _, err := st.Apply([]*tensor.Tensor{tensor.New(5)}); err == nil {
		t.Error("expected error for wrong gradient shape")
	}
}

func TestStoreParamCountAndLearningRate(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(2, 3), tensor.New(5)}
	opt := optimizer.NewSGD(0.1)
	st, err := NewStore(initial, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.ParamCount() != 11 {
		t.Fatalf("ParamCount = %d, want 11", st.ParamCount())
	}
	st.SetLearningRate(0.001)
	if opt.LearningRate() != 0.001 {
		t.Fatalf("learning rate not propagated: %v", opt.LearningRate())
	}
}

func TestNewServerValidation(t *testing.T) {
	st := testStore(t)
	policy := core.MustNewASP(2)
	cases := []ServerConfig{
		{Workers: 0, Policy: policy, Store: st},
		{Workers: 2, Policy: nil, Store: st},
		{Workers: 2, Policy: policy, Store: nil},
		{Workers: 3, Policy: policy, Store: st}, // mismatched worker count
	}
	for i, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// startTestServer wires a server with the given policy to an in-process
// listener and returns connected clients for each worker.
func startTestServer(t *testing.T, policy core.Policy, st *Store) (*Server, []*Client) {
	t.Helper()
	workers := policy.NumWorkers()
	srv, err := NewServer(ServerConfig{Workers: workers, Policy: policy, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	t.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})

	clients := make([]*Client, workers)
	for w := 0; w < workers; w++ {
		conn, err := listener.Dial()
		if err != nil {
			t.Fatal(err)
		}
		clients[w] = NewClient(conn, w)
		if err := clients[w].Register(); err != nil {
			t.Fatal(err)
		}
	}
	return srv, clients
}

func TestServerASPWorkersRunIndependently(t *testing.T) {
	st := testStore(t, 4)
	srv, clients := startTestServer(t, core.MustNewASP(2), st)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1, 1, 1}, 4)}
	// Worker 0 performs many iterations while worker 1 does nothing: under
	// ASP nothing blocks.
	params, version, err := clients[0].Pull()
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 || len(params) != 1 {
		t.Fatalf("initial pull: version %d, %d tensors", version, len(params))
	}
	for i := 0; i < 10; i++ {
		if err := clients[0].PushAndWait(grad, version, i); err != nil {
			t.Fatal(err)
		}
		_, version, err = clients[0].Pull()
		if err != nil {
			t.Fatal(err)
		}
	}
	if version != 10 {
		t.Fatalf("store version = %d, want 10", version)
	}
	if srv.Pushes() != 10 {
		t.Fatalf("server counted %d pushes, want 10", srv.Pushes())
	}
	// All pushes used fresh weights, so staleness must be 0 throughout.
	if srv.Staleness().Max() != 0 {
		t.Fatalf("max staleness = %d, want 0", srv.Staleness().Max())
	}
}

func TestServerBSPBlocksUntilAllWorkersPush(t *testing.T) {
	st := testStore(t, 2)
	_, clients := startTestServer(t, core.MustNewBSP(2), st)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1}, 2)}
	released := make(chan int, 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w == 1 {
				time.Sleep(50 * time.Millisecond)
			}
			if err := clients[w].PushAndWait(grad, 0, 0); err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			released <- w
		}(w)
	}
	select {
	case w := <-released:
		// Nobody may be released before both have pushed; since worker 1
		// delays 50ms, any release before that means BSP is broken. Verify by
		// checking that the second release follows almost immediately.
		select {
		case <-released:
		case <-time.After(2 * time.Second):
			t.Fatalf("worker %d released alone; barrier broken", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no worker released: deadlock")
	}
	wg.Wait()
}

func TestServerSSPTracksStalenessWithinBound(t *testing.T) {
	st := testStore(t, 2)
	srv, clients := startTestServer(t, core.MustNewSSP(2, 2), st)

	grad := []*tensor.Tensor{tensor.FromSlice([]float32{1, 1}, 2)}
	// Worker 1 pushes twice so that worker 0's bound is never the problem.
	for i := 0; i < 2; i++ {
		if err := clients[1].PushAndWait(grad, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	// Worker 0 pulls once and then pushes twice against the same base
	// version, creating staleness 2 and 3.
	_, base, err := clients[0].Pull()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := clients[0].PushAndWait(grad, base, i); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Staleness().Max() < 1 {
		t.Fatalf("expected staleness to be recorded, histogram max = %d", srv.Staleness().Max())
	}
	if srv.Pushes() != 4 {
		t.Fatalf("pushes = %d, want 4", srv.Pushes())
	}
}

func TestServerRejectsBadGradientShapes(t *testing.T) {
	st := testStore(t, 4)
	_, clients := startTestServer(t, core.MustNewASP(1), st)
	bad := []*tensor.Tensor{tensor.New(7)}
	err := clients[0].PushAndWait(bad, 0, 0)
	if err == nil {
		t.Fatal("expected error for mismatched gradient shape")
	}
}

func TestServerRejectsOutOfRangeWorkerID(t *testing.T) {
	st := testStore(t)
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	defer func() {
		srv.Stop()
		listener.Close()
	}()
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, 9)
	if err := client.Register(); err == nil {
		t.Fatal("expected registration error for out-of-range worker id")
	}
}

func TestServerAllWorkersDone(t *testing.T) {
	st := testStore(t)
	srv, clients := startTestServer(t, core.MustNewASP(2), st)
	for _, c := range clients {
		if err := c.Done(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-srv.AllWorkersDone():
	case <-time.After(5 * time.Second):
		t.Fatal("AllWorkersDone never closed")
	}
}

func TestServerWithDSSPFullTrainingLoopConverges(t *testing.T) {
	// End-to-end: 3 workers minimize ||w - target||² through the parameter
	// server under DSSP. The store must converge close to the target.
	rng := rand.New(rand.NewSource(5))
	target := tensor.New(8).RandNormal(rng, 0, 1)
	initial := []*tensor.Tensor{tensor.New(8)}
	st, err := NewStore(initial, optimizer.NewSGD(0.05))
	if err != nil {
		t.Fatal(err)
	}
	srv, clients := startTestServer(t, core.MustNewDSSP(3, 1, 4), st)

	var wg sync.WaitGroup
	for w, c := range clients {
		wg.Add(1)
		go func(w int, c *Client) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				params, version, err := c.Pull()
				if err != nil {
					t.Errorf("worker %d pull: %v", w, err)
					return
				}
				// Gradient of ||w - target||² at the pulled weights.
				grad := params[0].Clone().Sub(target).Scale(2)
				if err := c.PushAndWait([]*tensor.Tensor{grad}, version, i); err != nil {
					t.Errorf("worker %d push: %v", w, err)
					return
				}
			}
			if err := c.Done(); err != nil {
				t.Errorf("worker %d done: %v", w, err)
			}
		}(w, c)
	}
	wg.Wait()
	select {
	case <-srv.AllWorkersDone():
	case <-time.After(5 * time.Second):
		t.Fatal("workers never reported done")
	}
	final, version := st.Snapshot()
	if version != 180 {
		t.Fatalf("store version = %d, want 180", version)
	}
	dist := final[0].Clone().Sub(target).L2Norm()
	if dist > 0.05 {
		t.Fatalf("distributed SGD did not converge: distance %v", dist)
	}
}
