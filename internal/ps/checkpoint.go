package ps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dssp/internal/tensor"
)

// Checkpoints come in two on-disk formats:
//
//   - The legacy single-file format (store.ckpt): one gob blob holding every
//     tensor, written by Store.SaveCheckpoint. Cost is proportional to model
//     size on every save.
//
//   - The incremental manifest format (manifest.ckpt + seg-*.ckpt), written
//     by Checkpointer: each shard's tensors and optimizer state live in a
//     segment file stamped with the shard's publication version, and a save
//     rewrites only the segments of shards whose version moved since the
//     last save — the manifest re-references unchanged segments. Periodic
//     checkpoint cost therefore tracks how much of the model actually
//     changed, not how big it is.
//
// Crash safety is the same for both: every file is written to a temporary
// name, fsynced, renamed into place, and the directory entry is fsynced —
// the previous checkpoint stays intact and durable until the new one fully
// is. For the manifest format the manifest rename is the commit point: new
// segments are made durable before the manifest that references them, and
// superseded segments are deleted only afterwards.

// CheckpointConfig configures periodic store checkpoints on a server.
type CheckpointConfig struct {
	// Dir is the directory checkpoints are written to; empty disables
	// checkpointing.
	Dir string
	// Every writes a checkpoint whenever Every gradient updates have been
	// applied since the last one. 0 (with Dir set) checkpoints only on Stop.
	Every int
}

// Enabled reports whether the configuration asks for checkpoints at all.
func (c CheckpointConfig) Enabled() bool { return c.Dir != "" }

// CheckpointFile returns the legacy single-file checkpoint path used inside
// dir.
func CheckpointFile(dir string) string { return filepath.Join(dir, "store.ckpt") }

// ManifestFile returns the incremental checkpoint manifest path used inside
// dir. The manifest and the legacy file have distinct names, so a directory
// can be identified without sniffing gob payloads.
func ManifestFile(dir string) string { return filepath.Join(dir, "manifest.ckpt") }

// CheckpointExists reports whether dir holds a restorable checkpoint in
// either format.
func CheckpointExists(dir string) bool {
	if _, err := os.Stat(ManifestFile(dir)); err == nil {
		return true
	}
	_, err := os.Stat(CheckpointFile(dir))
	return err == nil
}

// checkpointData is the serialized form of a store: the published weights,
// the per-tensor optimizer state, the aggregate version, and the learning
// rate in force. Tensors are stored flat by global index, so a checkpoint
// restores into a store with any shard count.
type checkpointData struct {
	Version      int64
	LearningRate float64
	Shapes       [][]int
	Params       [][]float32
	// State holds the optimizer's per-parameter state by global tensor index;
	// nil entries mean no accumulated state for that tensor.
	State [][]float32
}

// checkpointManifest is the root of the incremental format: the store-wide
// restore point plus one segment reference per shard of the saving store.
type checkpointManifest struct {
	Version      int64
	LearningRate float64
	NumTensors   int
	Segments     []manifestSegment
}

// manifestSegment names one durable segment file and the shard snapshot it
// holds.
type manifestSegment struct {
	// File is the segment filename, relative to the checkpoint directory.
	File string
	// Base is the global index of the segment's first tensor; Count is how
	// many consecutive tensors it holds.
	Base, Count int
	// Version is the shard publication version the segment encodes — the
	// dirtiness key deciding whether the next save rewrites it.
	Version int64
}

// segmentData is one shard's serialized snapshot.
type segmentData struct {
	Base    int
	Version int64
	Shapes  [][]int
	Params  [][]float32
	// State is the shard optimizer's per-tensor state aligned with Params;
	// nil when the shard holds none.
	State [][]float32
}

// writeFileDurable atomically and durably replaces path with data: temp file
// in the same directory, fsync, rename, fsync of the directory entry. The
// previous file content survives any crash before the rename commits.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ps: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: write checkpoint: %w", err)
	}
	// fsync before rename: otherwise the rename can become durable before
	// the data, and a power cut leaves the published name pointing at a
	// truncated file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: publish checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ps: open checkpoint dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ps: sync checkpoint dir: %w", err)
	}
	return nil
}

// SaveCheckpoint atomically and durably writes the store's current weights,
// optimizer state and version to path in the legacy single-file format.
// Concurrent Apply calls are safe; the snapshot is consistent per shard (the
// same relaxation pulls live with).
func (s *Store) SaveCheckpoint(path string) error {
	ck := checkpointData{
		Version: s.version.Load(),
		Shapes:  s.shapes,
		Params:  make([][]float32, len(s.shapes)),
		State:   make([][]float32, len(s.shapes)),
	}
	s.protoMu.Lock()
	ck.LearningRate = s.proto.LearningRate()
	s.protoMu.Unlock()
	gens := make([]*paramGen, len(s.shards))
	for i, sh := range s.shards {
		base := s.ranges[i].Start
		g, _, state := sh.checkpointView()
		gens[i] = g
		for j, p := range g.params {
			// Published tensors are immutable while the generation reference
			// is held; the encode below reads them without copying.
			ck.Params[base+j] = p.Data()
		}
		for j, v := range state {
			ck.State[base+j] = v
		}
	}
	defer func() {
		for _, g := range gens {
			g.release()
		}
	}()

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ps: checkpoint dir: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ck); err != nil {
		return fmt.Errorf("ps: encode checkpoint: %w", err)
	}
	return writeFileDurable(path, buf.Bytes())
}

// checkpointView returns the shard's current generation (with a bounded
// reference held — the caller must release it), its publication version, and
// a deep copy of the optimizer state consistent with that generation: the
// applier advances all three under the same write lock.
func (sh *shard) checkpointView() (g *paramGen, version int64, state [][]float32) {
	sh.mu.RLock()
	g, version = sh.gen, sh.version
	g.refs.Add(1)
	state = sh.opt.State()
	sh.mu.RUnlock()
	return g, version, state
}

// Checkpointer writes incremental checkpoints of one store into one
// directory. It remembers the shard versions of the last completed save, so
// the next save serializes only shards that have published since — the
// manifest keeps referencing the existing segment files for the rest. It is
// not safe for concurrent use; the server serializes saves (ckptMu).
type Checkpointer struct {
	store *Store
	dir   string
	// last is the manifest of the previous successful save; nil before the
	// first one. Segment entries are reused verbatim for clean shards.
	last []manifestSegment
}

// NewCheckpointer returns a Checkpointer writing st's checkpoints into dir
// in the incremental manifest format.
func NewCheckpointer(st *Store, dir string) *Checkpointer {
	return &Checkpointer{store: st, dir: dir}
}

// Save writes one checkpoint. Shards whose publication version is unchanged
// since the previous save keep their existing segment files; full forces
// every shard to be rewritten (used for the final save on server stop, so a
// stopping server always leaves freshly written state behind). It returns
// how many shard segments were serialized and the total bytes written
// (segments plus manifest).
func (c *Checkpointer) Save(full bool) (shardsWritten int, bytesWritten int64, err error) {
	st := c.store
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return 0, 0, fmt.Errorf("ps: checkpoint dir: %w", err)
	}
	m := checkpointManifest{
		Version:    st.version.Load(),
		NumTensors: len(st.shapes),
		Segments:   make([]manifestSegment, len(st.shards)),
	}
	st.protoMu.Lock()
	m.LearningRate = st.proto.LearningRate()
	st.protoMu.Unlock()
	for i, sh := range st.shards {
		r := st.ranges[i]
		if !full && c.last != nil {
			sh.mu.RLock()
			v := sh.version
			sh.mu.RUnlock()
			if v == c.last[i].Version {
				m.Segments[i] = c.last[i]
				continue
			}
		}
		g, version, state := sh.checkpointView()
		seg := segmentData{
			Base:    r.Start,
			Version: version,
			Shapes:  st.shapes[r.Start:r.End],
			Params:  make([][]float32, len(g.params)),
			State:   state,
		}
		for j, p := range g.params {
			seg.Params[j] = p.Data()
		}
		var buf bytes.Buffer
		encErr := gob.NewEncoder(&buf).Encode(&seg)
		g.release()
		if encErr != nil {
			return shardsWritten, bytesWritten, fmt.Errorf("ps: encode checkpoint segment %d: %w", i, encErr)
		}
		name := fmt.Sprintf("seg-%d-v%d.ckpt", i, version)
		if err := writeFileDurable(filepath.Join(c.dir, name), buf.Bytes()); err != nil {
			return shardsWritten, bytesWritten, err
		}
		m.Segments[i] = manifestSegment{
			File:    name,
			Base:    r.Start,
			Count:   r.End - r.Start,
			Version: version,
		}
		shardsWritten++
		bytesWritten += int64(buf.Len())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return shardsWritten, bytesWritten, fmt.Errorf("ps: encode checkpoint manifest: %w", err)
	}
	// The manifest rename is the commit point: every segment it references
	// is already durable, and until it lands the previous manifest (and its
	// segments, still on disk) remain the restorable checkpoint.
	if err := writeFileDurable(ManifestFile(c.dir), buf.Bytes()); err != nil {
		return shardsWritten, bytesWritten, err
	}
	bytesWritten += int64(buf.Len())
	c.last = m.Segments
	c.gcSegments(m.Segments)
	return shardsWritten, bytesWritten, nil
}

// gcSegments deletes segment files the just-committed manifest no longer
// references — superseded versions, leftovers of crashed saves, or segments
// of an older shard layout. Failures are ignored: stray segments cost disk,
// not correctness.
func (c *Checkpointer) gcSegments(live []manifestSegment) {
	keep := make(map[string]bool, len(live))
	for _, seg := range live {
		keep[seg.File] = true
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, "seg-*.ckpt"))
	if err != nil {
		return
	}
	sort.Strings(matches)
	for _, path := range matches {
		if !keep[filepath.Base(path)] {
			os.Remove(path)
		}
	}
}

// RestoreCheckpointDir restores the store from dir, preferring the
// incremental manifest format and falling back to the legacy single file.
func (s *Store) RestoreCheckpointDir(dir string) error {
	if _, err := os.Stat(ManifestFile(dir)); err == nil {
		return s.restoreManifest(dir)
	}
	return s.RestoreCheckpoint(CheckpointFile(dir))
}

// restoreManifest loads an incremental checkpoint: the manifest names one
// segment per saving-store shard; together the segments must cover every
// tensor exactly once. The assembled state then goes through the same
// validation and installation as a legacy checkpoint, so restore semantics —
// including bit-identical weights and momentum — are format-independent.
func (s *Store) restoreManifest(dir string) error {
	f, err := os.Open(ManifestFile(dir))
	if err != nil {
		return fmt.Errorf("ps: open checkpoint manifest: %w", err)
	}
	var m checkpointManifest
	err = gob.NewDecoder(f).Decode(&m)
	f.Close()
	if err != nil {
		return fmt.Errorf("ps: decode checkpoint manifest: %w", err)
	}
	if m.NumTensors != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint has %d tensors, store has %d", m.NumTensors, len(s.shapes))
	}
	ck := checkpointData{
		Version:      m.Version,
		LearningRate: m.LearningRate,
		Shapes:       make([][]int, len(s.shapes)),
		Params:       make([][]float32, len(s.shapes)),
		State:        make([][]float32, len(s.shapes)),
	}
	covered := 0
	for i, ref := range m.Segments {
		sf, err := os.Open(filepath.Join(dir, ref.File))
		if err != nil {
			return fmt.Errorf("ps: open checkpoint segment %d: %w", i, err)
		}
		var seg segmentData
		err = gob.NewDecoder(sf).Decode(&seg)
		sf.Close()
		if err != nil {
			return fmt.Errorf("ps: decode checkpoint segment %d: %w", i, err)
		}
		if seg.Base != ref.Base || seg.Version != ref.Version || len(seg.Params) != ref.Count {
			return fmt.Errorf("ps: checkpoint segment %s does not match its manifest entry", ref.File)
		}
		if seg.Base < 0 || seg.Base+len(seg.Params) > len(s.shapes) {
			return fmt.Errorf("ps: checkpoint segment %s covers tensors [%d,%d), store has %d",
				ref.File, seg.Base, seg.Base+len(seg.Params), len(s.shapes))
		}
		if len(seg.Shapes) != len(seg.Params) {
			return fmt.Errorf("ps: checkpoint segment %s has %d shapes for %d tensors",
				ref.File, len(seg.Shapes), len(seg.Params))
		}
		if seg.State != nil && len(seg.State) != len(seg.Params) {
			return fmt.Errorf("ps: checkpoint segment %s has state for %d of %d tensors",
				ref.File, len(seg.State), len(seg.Params))
		}
		for j := range seg.Params {
			g := seg.Base + j
			if ck.Params[g] != nil {
				return fmt.Errorf("ps: checkpoint tensor %d covered by two segments", g)
			}
			ck.Shapes[g] = seg.Shapes[j]
			ck.Params[g] = seg.Params[j]
			if seg.State != nil {
				ck.State[g] = seg.State[j]
			}
			covered++
		}
	}
	if covered != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint segments cover %d of %d tensors", covered, len(s.shapes))
	}
	return s.installCheckpoint(&ck)
}

// RestoreCheckpoint replaces the store's weights, optimizer state, version
// and learning rate with the contents of the legacy single-file checkpoint
// at path. The checkpoint's tensor shapes must match the store's — it
// restores a run of the same model, not an arbitrary one — but the shard
// count may differ from the saving server's. Restore before serving traffic;
// it is not synchronized against concurrent Apply.
func (s *Store) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ps: open checkpoint: %w", err)
	}
	defer f.Close()
	var ck checkpointData
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return fmt.Errorf("ps: decode checkpoint: %w", err)
	}
	return s.installCheckpoint(&ck)
}

// installCheckpoint validates assembled checkpoint state against the store's
// layout and installs it: fresh generations per shard, optimizer state
// loaded, versions re-based.
func (s *Store) installCheckpoint(ck *checkpointData) error {
	if ck.Version < 0 {
		return fmt.Errorf("ps: checkpoint version %d is negative", ck.Version)
	}
	if len(ck.Params) != len(s.shapes) || len(ck.Shapes) != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint has %d tensors, store has %d", len(ck.Params), len(s.shapes))
	}
	if ck.State == nil {
		// A checkpoint without optimizer state (older writer) restores with
		// none rather than crashing.
		ck.State = make([][]float32, len(s.shapes))
	}
	if len(ck.State) != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint has state for %d tensors, store has %d", len(ck.State), len(s.shapes))
	}
	for i, shape := range ck.Shapes {
		if !sameShape(shape, s.shapes[i]) {
			return fmt.Errorf("ps: checkpoint tensor %d has shape %v, store expects %v", i, shape, s.shapes[i])
		}
		want := 1
		for _, d := range shape {
			want *= d
		}
		if len(ck.Params[i]) != want {
			return fmt.Errorf("ps: checkpoint tensor %d has %d values for shape %v", i, len(ck.Params[i]), shape)
		}
		if st := ck.State[i]; st != nil && len(st) != want {
			return fmt.Errorf("ps: checkpoint state %d has %d values for shape %v", i, len(st), shape)
		}
	}

	// Quiesce the apply pipeline: any updates still queued behind the
	// restore belong to the run being replaced, and the per-shard applied
	// counters below must not race appliers.
	s.Close()
	for i, sh := range s.shards {
		r := s.ranges[i]
		params := make([]*tensor.Tensor, r.End-r.Start)
		var state [][]float32
		hasState := false
		for j := range params {
			g := r.Start + j
			params[j] = tensor.FromSlice(append([]float32(nil), ck.Params[g]...), s.shapes[g]...)
			if ck.State[g] != nil {
				hasState = true
			}
		}
		if hasState {
			state = make([][]float32, len(params))
			for j := range params {
				g := r.Start + j
				if ck.State[g] != nil {
					state[j] = ck.State[g]
				} else {
					// Mixed checkpoints (some tensors stateless) restore zero
					// state for the stateless ones to keep alignment.
					state[j] = make([]float32, len(ck.Params[g]))
				}
			}
		}
		sh.mu.Lock()
		sh.gen = &paramGen{params: params}
		// Old generations alias the replaced run's tensors; drop them rather
		// than letting a future applier publish into pre-restore buffers a
		// reader might still hold.
		sh.retired = nil
		sh.opt.LoadState(state)
		// Bump the shard version past anything the packed-pull cache may have
		// encoded so the next compressed pull repacks the restored weights —
		// and so delta-pulling workers holding pre-restore chunks re-download
		// the shard rather than trusting a matching version number.
		sh.version++
		sh.mu.Unlock()
		// Re-base the applied counter: the store-wide applied version is the
		// minimum over these, so all shards restart in agreement at the
		// checkpoint's version.
		sh.applied.Store(ck.Version)
	}
	s.reserved.Store(ck.Version)
	s.version.Store(ck.Version)
	if ck.LearningRate > 0 {
		s.SetLearningRate(ck.LearningRate)
	}
	return nil
}
