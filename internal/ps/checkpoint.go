package ps

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"dssp/internal/tensor"
)

// CheckpointConfig configures periodic store checkpoints on a server.
type CheckpointConfig struct {
	// Dir is the directory checkpoints are written to; empty disables
	// checkpointing.
	Dir string
	// Every writes a checkpoint whenever Every gradient updates have been
	// applied since the last one. 0 (with Dir set) checkpoints only on Stop.
	Every int
}

// Enabled reports whether the configuration asks for checkpoints at all.
func (c CheckpointConfig) Enabled() bool { return c.Dir != "" }

// CheckpointFile returns the checkpoint path used inside dir. Every writer
// and restorer goes through this one name; atomicity comes from writing a
// temporary file in dir and renaming it into place.
func CheckpointFile(dir string) string { return filepath.Join(dir, "store.ckpt") }

// checkpointData is the serialized form of a store: the published weights,
// the per-tensor optimizer state, the aggregate version, and the learning
// rate in force. Tensors are stored flat by global index, so a checkpoint
// restores into a store with any shard count.
type checkpointData struct {
	Version      int64
	LearningRate float64
	Shapes       [][]int
	Params       [][]float32
	// State holds the optimizer's per-parameter state by global tensor index;
	// nil entries mean no accumulated state for that tensor.
	State [][]float32
}

// SaveCheckpoint atomically writes the store's current weights, optimizer
// state and version to path: the data lands in a temporary file in the same
// directory and is renamed into place, so a crash mid-write never corrupts
// the previous checkpoint. Concurrent Apply calls are safe; the snapshot is
// consistent per shard (the same relaxation pulls live with).
func (s *Store) SaveCheckpoint(path string) error {
	ck := checkpointData{
		Version: s.version.Load(),
		Shapes:  s.shapes,
		Params:  make([][]float32, len(s.shapes)),
		State:   make([][]float32, len(s.shapes)),
	}
	s.protoMu.Lock()
	ck.LearningRate = s.proto.LearningRate()
	s.protoMu.Unlock()
	for i, sh := range s.shards {
		base := s.ranges[i].Start
		sh.mu.RLock()
		params := sh.params
		state := sh.opt.State()
		sh.mu.RUnlock()
		for j, p := range params {
			// Published tensors are immutable; referencing their data without
			// copying is safe for the duration of the encode.
			ck.Params[base+j] = p.Data()
		}
		for j, v := range state {
			ck.State[base+j] = v
		}
	}

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ps: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ps: checkpoint temp file: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(&ck); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: encode checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ps: publish checkpoint: %w", err)
	}
	return nil
}

// RestoreCheckpoint replaces the store's weights, optimizer state, version
// and learning rate with the contents of the checkpoint at path. The
// checkpoint's tensor shapes must match the store's — it restores a run of
// the same model, not an arbitrary one — but the shard count may differ from
// the saving server's. Restore before serving traffic; it is not synchronized
// against concurrent Apply.
func (s *Store) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ps: open checkpoint: %w", err)
	}
	defer f.Close()
	var ck checkpointData
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return fmt.Errorf("ps: decode checkpoint: %w", err)
	}
	if ck.Version < 0 {
		return fmt.Errorf("ps: checkpoint version %d is negative", ck.Version)
	}
	if len(ck.Params) != len(s.shapes) || len(ck.Shapes) != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint has %d tensors, store has %d", len(ck.Params), len(s.shapes))
	}
	if ck.State == nil {
		// A checkpoint without optimizer state (older writer) restores with
		// none rather than crashing.
		ck.State = make([][]float32, len(s.shapes))
	}
	if len(ck.State) != len(s.shapes) {
		return fmt.Errorf("ps: checkpoint has state for %d tensors, store has %d", len(ck.State), len(s.shapes))
	}
	for i, shape := range ck.Shapes {
		if !sameShape(shape, s.shapes[i]) {
			return fmt.Errorf("ps: checkpoint tensor %d has shape %v, store expects %v", i, shape, s.shapes[i])
		}
		want := 1
		for _, d := range shape {
			want *= d
		}
		if len(ck.Params[i]) != want {
			return fmt.Errorf("ps: checkpoint tensor %d has %d values for shape %v", i, len(ck.Params[i]), shape)
		}
		if st := ck.State[i]; st != nil && len(st) != want {
			return fmt.Errorf("ps: checkpoint state %d has %d values for shape %v", i, len(st), shape)
		}
	}

	// Quiesce the apply pipeline: any updates still queued behind the
	// restore belong to the run being replaced, and the per-shard applied
	// counters below must not race appliers.
	s.Close()
	for i, sh := range s.shards {
		r := s.ranges[i]
		params := make([]*tensor.Tensor, r.End-r.Start)
		var state [][]float32
		hasState := false
		for j := range params {
			g := r.Start + j
			params[j] = tensor.FromSlice(append([]float32(nil), ck.Params[g]...), s.shapes[g]...)
			if ck.State[g] != nil {
				hasState = true
			}
		}
		if hasState {
			state = make([][]float32, len(params))
			for j := range params {
				g := r.Start + j
				if ck.State[g] != nil {
					state[j] = ck.State[g]
				} else {
					// Mixed checkpoints (some tensors stateless) restore zero
					// state for the stateless ones to keep alignment.
					state[j] = make([]float32, len(ck.Params[g]))
				}
			}
		}
		sh.mu.Lock()
		sh.params = params
		sh.opt.LoadState(state)
		// Bump the shard version past anything the packed-pull cache may have
		// encoded so the next compressed pull repacks the restored weights —
		// and so delta-pulling workers holding pre-restore chunks re-download
		// the shard rather than trusting a matching version number.
		sh.version++
		sh.mu.Unlock()
		// Re-base the applied counter: the store-wide applied version is the
		// minimum over these, so all shards restart in agreement at the
		// checkpoint's version.
		sh.applied.Store(ck.Version)
	}
	s.reserved.Store(ck.Version)
	s.version.Store(ck.Version)
	if ck.LearningRate > 0 {
		s.SetLearningRate(ck.LearningRate)
	}
	return nil
}
