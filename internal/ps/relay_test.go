package ps

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// relayHarness stands up a root server fronted by relays over in-process
// channel transports: the smallest complete aggregation tree.
type relayHarness struct {
	server       *Server
	store        *Store
	rootListener *transport.ChanListener
	relays       []*Relay
	listeners    []*transport.ChanListener
}

func newRelayHarness(t *testing.T, policy core.Policy, st *Store, relays, fanout int, opts Options) *relayHarness {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Workers: policy.NumWorkers(),
		Policy:  policy,
		Store:   st,
		Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := transport.NewChanListener()
	root.SetMeter(transport.NewMetrics(srv.Registry()))
	go func() { _ = srv.Serve(root) }()
	h := &relayHarness{server: srv, store: st, rootListener: root}
	t.Cleanup(func() {
		for _, r := range h.relays {
			r.Stop()
		}
		srv.Stop()
		for _, l := range h.listeners {
			l.Close()
		}
		root.Close()
	})
	for i := 0; i < relays; i++ {
		l := transport.NewChanListener()
		h.listeners = append(h.listeners, l)
		relay, err := NewRelay(RelayConfig{
			Parent:    root.Dial,
			Fanout:    fanout,
			Advertise: l.Addr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		h.relays = append(h.relays, relay)
		go func(r *Relay, l *transport.ChanListener) { _ = r.Serve(l) }(relay, l)
	}
	return h
}

// childClient registers worker w through the relay the layout assigns it.
func (h *relayHarness) childClient(t *testing.T, w int) *Client {
	t.Helper()
	conn, err := h.rootListener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	layout, err := FetchTreeLayout(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	addr := layout.Covering(w)
	var dial func() (transport.Conn, error)
	dial = h.rootListener.Dial
	for i, l := range h.listeners {
		if l.Addr() == addr {
			dial = h.listeners[i].Dial
		}
	}
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(c, w)
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	return client
}

// testGrads returns a deterministic pseudo-random gradient for iteration it.
func testGrads(seed int64, it, size int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed + int64(it)*7919))
	g := tensor.New(size)
	for i := range g.Data() {
		g.Data()[i] = float32(rng.NormFloat64())
	}
	return []*tensor.Tensor{g}
}

// TestTreeStateAssignsContiguousRanges unit-tests the root's layout
// bookkeeping: relays claim the lowest uncovered worker runs, and a dead
// relay's coverage transfers to a survivor.
func TestTreeStateAssignsContiguousRanges(t *testing.T) {
	var ts treeState
	a := &session{}
	b := &session{}
	ts.add(a, "relay-a", 4, 8)
	ts.add(b, "relay-b", 4, 8)
	entries, v1 := ts.snapshot()
	if len(entries) != 2 {
		t.Fatalf("expected 2 entries, got %d", len(entries))
	}
	if entries[0].Addr != "relay-a" || entries[0].ShardLo != 0 || entries[0].ShardHi != 4 {
		t.Errorf("first entry %+v, want relay-a covering [0,4)", entries[0])
	}
	if entries[1].Addr != "relay-b" || entries[1].ShardLo != 4 || entries[1].ShardHi != 8 {
		t.Errorf("second entry %+v, want relay-b covering [4,8)", entries[1])
	}
	ts.remove(a)
	entries, v2 := ts.snapshot()
	if v2 <= v1 {
		t.Errorf("layout version did not advance on removal: %d -> %d", v1, v2)
	}
	total := 0
	for _, e := range entries {
		if e.Addr != "relay-b" {
			t.Errorf("dead relay's range went to %q, want relay-b", e.Addr)
		}
		total += e.ShardHi - e.ShardLo
	}
	if total != 8 {
		t.Errorf("surviving coverage spans %d workers, want 8", total)
	}
}

// TestRelaySerialScheduleBitIdentical pins the PR's equivalence claim: a
// serial push schedule through a relay produces bit-identical parameters to
// the same schedule against a bare server — the relay adds a hop, not
// arithmetic.
func TestRelaySerialScheduleBitIdentical(t *testing.T) {
	const iters = 12
	const size = 17
	run := func(tree bool) []float32 {
		init := []*tensor.Tensor{tensor.New(size)}
		st, err := NewStoreSharded(init, optimizer.NewSGDMomentum(0.1, 0.9, 1e-4), 1)
		if err != nil {
			t.Fatal(err)
		}
		policy := core.MustNewBSP(1)
		var client *Client
		if tree {
			h := newRelayHarness(t, policy, st, 1, 1, Options{})
			client = h.childClient(t, 0)
		} else {
			_, clients := startTestServer(t, policy, st)
			client = clients[0]
		}
		for it := 0; it < iters; it++ {
			_, version, err := client.Pull()
			if err != nil {
				t.Fatal(err)
			}
			if err := client.PushAndWait(testGrads(42, it, size), version, it); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Done(); err != nil {
			t.Fatal(err)
		}
		params, version := st.Snapshot()
		if version != iters {
			t.Fatalf("final version %d, want %d", version, iters)
		}
		out := make([]float32, size)
		copy(out, params[0].Data())
		return out
	}
	flat := run(false)
	relayed := run(true)
	for i := range flat {
		if flat[i] != relayed[i] {
			t.Fatalf("param[%d] diverged: flat %v, relayed %v", i, flat[i], relayed[i])
		}
	}
}

// TestRelayAggregatesUnderBSP drives 4 workers through one fanout-4 relay
// under BSP and checks the policy still sees every logical push while the
// root's ingress shrinks to one frame per round.
func TestRelayAggregatesUnderBSP(t *testing.T) {
	const workers = 4
	const iters = 6
	const size = 9
	init := []*tensor.Tensor{tensor.New(size)}
	st, err := NewStoreSharded(init, optimizer.NewSGD(0.1), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := newRelayHarness(t, core.MustNewBSP(workers), st, 1, workers, Options{})

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := h.childClient(t, w)
			defer client.Close()
			for it := 0; it < iters; it++ {
				_, version, err := client.Pull()
				if err != nil {
					errs <- err
					return
				}
				if err := client.PushAndWait(testGrads(int64(w), it, size), version, it); err != nil {
					errs <- err
					return
				}
			}
			errs <- client.Done()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if got := h.server.Pushes(); got != workers*iters {
		t.Errorf("policy saw %d pushes, want %d", got, workers*iters)
	}
	if v := st.Version(); v != int64(workers*iters) {
		t.Errorf("store version %d, want %d", v, workers*iters)
	}
	snap := h.server.Registry().Snapshot()
	frames := snap[`dssp_transport_frames_total{dir="recv",type="Push"}`]
	if frames == 0 || frames > float64(iters+2) {
		// One partial per BSP round, with a little slack for watchdog
		// flushes around the start-of-run join race.
		t.Errorf("root received %v push frames for %d rounds, want about %d", frames, iters, iters)
	}
	if snap[`dssp_tree_partials_total`] != frames {
		t.Errorf("store accepted %v partials but root metered %v push frames",
			snap[`dssp_tree_partials_total`], frames)
	}
	stats := h.relays[0].Stats()
	if stats.ChildPushes != workers*iters {
		t.Errorf("relay counted %d child pushes, want %d", stats.ChildPushes, workers*iters)
	}
	if stats.ForwardedBytes >= stats.IngressBytes {
		t.Errorf("forwarded %d bytes >= ingress %d: no reduction", stats.ForwardedBytes, stats.IngressBytes)
	}
}

// TestRelayRejectsOutOfRangeChild checks the root refuses a worker
// registering through a relay that does not cover it.
func TestRelayRejectsOutOfRangeChild(t *testing.T) {
	st := testStore(t, 4)
	h := newRelayHarness(t, core.MustNewASP(2), st, 1, 2, Options{})
	conn, err := h.listeners[0].Dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, 7)
	if err := client.Register(); err == nil {
		t.Fatal("expected registration of uncovered worker 7 to fail")
	}
	client.Close()
}

// TestRelayAdmissionRequiresSumAggregation checks the root rejects relay
// trunks when the configured aggregator cannot decompose a summed partial.
func TestRelayAdmissionRequiresSumAggregation(t *testing.T) {
	st := testStore(t, 4)
	srv, err := NewServer(ServerConfig{
		Workers: 2,
		Policy:  core.MustNewASP(2),
		Store:   st,
		Options: Options{Aggregator: AggregatorConfig{Kind: AggTrimmedMean, Window: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	root := transport.NewChanListener()
	go func() { _ = srv.Serve(root) }()
	defer func() {
		srv.Stop()
		root.Close()
	}()
	_, err = NewRelay(RelayConfig{Parent: root.Dial, Fanout: 2, Advertise: "x"})
	if err == nil {
		t.Fatal("expected relay admission to fail under a robust aggregator")
	}
}

// TestRelayDeathSweepsSubtree kills a relay mid-run and checks the root
// notices: the trunk's children are swept as departures so a BSP-style
// barrier cannot deadlock on them, and the surviving direct worker finishes.
func TestRelayDeathSweepsSubtree(t *testing.T) {
	const size = 5
	init := []*tensor.Tensor{tensor.New(size)}
	st, err := NewStoreSharded(init, optimizer.NewSGD(0.1), 1)
	if err != nil {
		t.Fatal(err)
	}
	// SSP with slack: worker 2 connects straight to the root; workers 0 and
	// 1 ride the relay that dies.
	h := newRelayHarness(t, core.MustNewSSP(3, 2), st, 1, 2, Options{Elastic: true})

	c0 := h.childClient(t, 0)
	defer c0.Close()
	c1 := h.childClient(t, 1)
	defer c1.Close()
	for w, c := range []*Client{c0, c1} {
		_, v, err := c.Pull()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PushAndWait(testGrads(int64(w), 0, size), v, 0); err != nil {
			t.Fatal(err)
		}
	}

	rootConn, err := h.rootListener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(rootConn, 2)
	if err := c2.Register(); err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	h.relays[0].Stop()

	// The root must sweep workers 0 and 1 off the roster: the lone direct
	// worker can then run to completion without tripping the slack bound.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if h.server.Departures() >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d := h.server.Departures(); d < 2 {
		t.Fatalf("root recorded %d departures after relay death, want >= 2", d)
	}
	for it := 0; it < 8; it++ {
		_, version, err := c2.Pull()
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.PushAndWait(testGrads(2, it, size), version, it); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Done(); err != nil {
		t.Fatal(err)
	}
}
