package ps

import (
	"fmt"
	"sort"
	"sync"

	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// This file holds the server-group (cluster) substrate: the partition
// arithmetic that assigns contiguous runs of global store shards to data
// servers, the range-restricted store a data server runs, and the live
// weight install the primary→backup replication stream lands on.
//
// The cluster split keeps the paradigm semantics of conf_icdcs_ZhaoALC19
// centralized: data servers apply gradient fragments under a local ASP
// policy (release = "fragment applied"), while one coordinator runs the real
// BSP/SSP/DSSP policy over metadata-only pushes, so staleness decisions stay
// a single serialization point no matter how many servers carry the bytes.

// ShardAssignment is one data server's slice of the global layout: the
// contiguous global store shards it owns and the global tensor indices those
// shards cover. Both ranges are half-open [Lo, Hi).
type ShardAssignment struct {
	ShardLo, ShardHi   int
	TensorLo, TensorHi int
}

// GroupLayout partitions globalShards contiguous, size-balanced store shards
// over servers data servers and returns each server's assignment together
// with the normalized shard count. sizes are the per-tensor element counts
// of the model, in global order.
//
// globalShards <= 0 selects a deterministic default of two shards per server
// (machine-independent, unlike the single-server GOMAXPROCS default, because
// every cluster participant must derive the identical layout); any value is
// clamped to [servers, len(sizes)]. The shard boundaries are exactly those
// NewStoreSharded(initial, opt, globalShards) would compute, which is what
// makes an N-server group's optimizer arithmetic bit-identical to the
// single-server store's on identical apply schedules.
func GroupLayout(sizes []int, globalShards, servers int) ([]ShardAssignment, int, error) {
	if len(sizes) == 0 {
		return nil, 0, fmt.Errorf("ps: group layout needs at least one tensor")
	}
	if servers < 1 {
		return nil, 0, fmt.Errorf("ps: group layout needs at least one server, got %d", servers)
	}
	if servers > len(sizes) {
		return nil, 0, fmt.Errorf("ps: %d servers cannot each own a tensor of a %d-tensor model", servers, len(sizes))
	}
	if globalShards <= 0 {
		globalShards = 2 * servers
	}
	if globalShards > len(sizes) {
		globalShards = len(sizes)
	}
	if globalShards < servers {
		globalShards = servers
	}
	ranges := partitionBySize(sizes, globalShards)
	shardSizes := make([]int, len(ranges))
	for i, r := range ranges {
		for _, sz := range sizes[r.Start:r.End] {
			shardSizes[i] += sz
		}
	}
	srv := partitionBySize(shardSizes, servers)
	out := make([]ShardAssignment, servers)
	for i, a := range srv {
		out[i] = ShardAssignment{
			ShardLo:  a.Start,
			ShardHi:  a.End,
			TensorLo: ranges[a.Start].Start,
			TensorHi: ranges[a.End-1].End,
		}
	}
	return out, globalShards, nil
}

// Entry converts an assignment into its wire form at the given address.
func (a ShardAssignment) Entry(addr string) transport.ServerEntry {
	return transport.ServerEntry{
		Addr:     addr,
		ShardLo:  a.ShardLo,
		ShardHi:  a.ShardHi,
		TensorLo: a.TensorLo,
		TensorHi: a.TensorHi,
	}
}

// NewStoreRange builds the store a data server runs: the sub-range
// [shardLo, shardHi) of the global globalShards-way partition of initial.
// initial is the FULL global parameter list — the store clones only the
// tensors its shards cover, but the shard boundaries are computed over the
// whole model, so every data server in a group (and a single-server store
// with the same shard count) agrees on them exactly. globalShards must be
// the normalized count GroupLayout returned.
//
// The resulting store is local in every externally visible way: Shards()
// reports shardHi-shardLo, tensor indices (EnqueueApply, ShardRange, pull
// chunk bases) are relative to the range's first tensor. Callers map local
// to global through the ShardAssignment that produced the range.
func NewStoreRange(initial []*tensor.Tensor, opt optimizer.Optimizer, globalShards, shardLo, shardHi int) (*Store, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("ps: store needs at least one parameter tensor")
	}
	if opt == nil {
		return nil, fmt.Errorf("ps: store needs an optimizer")
	}
	if globalShards < 1 || globalShards > len(initial) {
		return nil, fmt.Errorf("ps: global shard count %d outside [1, %d]", globalShards, len(initial))
	}
	if shardLo < 0 || shardHi <= shardLo || shardHi > globalShards {
		return nil, fmt.Errorf("ps: shard range [%d, %d) outside [0, %d)", shardLo, shardHi, globalShards)
	}
	sizes := make([]int, len(initial))
	for i, p := range initial {
		sizes[i] = p.Size()
	}
	global := partitionBySize(sizes, globalShards)
	tLo, tHi := global[shardLo].Start, global[shardHi-1].End

	local := initial[tLo:tHi]
	shapes := make([][]int, len(local))
	scalars := 0
	for i, p := range local {
		shapes[i] = p.Shape()
		scalars += p.Size()
	}
	st := &Store{
		shards:  make([]*shard, shardHi-shardLo),
		ranges:  make([]shardRange, shardHi-shardLo),
		shapes:  shapes,
		scalars: scalars,
		proto:   opt,
	}
	for i := range st.shards {
		g := global[shardLo+i]
		st.ranges[i] = shardRange{Start: g.Start - tLo, End: g.End - tLo}
		params := make([]*tensor.Tensor, g.End-g.Start)
		for j := range params {
			params[j] = initial[g.Start+j].Clone()
		}
		st.shards[i] = &shard{gen: &paramGen{params: params}, opt: opt.Clone(), wake: make(chan struct{}, 1)}
	}
	st.window.Store(1)
	st.aggCfg = AggregatorConfig{}.Normalized()
	return st, nil
}

// Install replaces the store's published weights with params at the given
// applied version — the landing half of the primary→backup replication
// stream. It mirrors the checkpoint-install path (quiesce, fresh generations,
// shard-version bump so packed/delta caches refresh) but deliberately leaves
// the optimizer state untouched: the replication stream carries weights
// only, so a promoted backup resumes with cold momentum (DESIGN.md §10
// spells out the trade). params are cloned; the caller keeps ownership.
//
// version must not regress: the replicator only ever streams forward, and a
// backwards install would violate the version monotonicity every staleness
// bound is defined against.
func (s *Store) Install(params []*tensor.Tensor, version int64) error {
	if version < 0 {
		return fmt.Errorf("ps: install version %d is negative", version)
	}
	if cur := s.version.Load(); version < cur {
		return fmt.Errorf("ps: install would move version backwards from %d to %d", cur, version)
	}
	if len(params) != len(s.shapes) {
		return fmt.Errorf("ps: install carries %d tensors, store has %d", len(params), len(s.shapes))
	}
	for i, p := range params {
		if !sameShape(p.Shape(), s.shapes[i]) {
			return fmt.Errorf("ps: install tensor %d has shape %v, store expects %v", i, p.Shape(), s.shapes[i])
		}
	}
	// Quiesce the apply pipeline so the per-shard counters below never race
	// an applier. A backup store receives no pushes while standing by, so
	// this is a no-op there; it is still correct on a live store.
	s.Close()
	for i, sh := range s.shards {
		r := s.ranges[i]
		fresh := make([]*tensor.Tensor, r.End-r.Start)
		for j := range fresh {
			fresh[j] = params[r.Start+j].Clone()
		}
		sh.mu.Lock()
		sh.gen = &paramGen{params: fresh}
		// Drop retired generations: they alias superseded weights and must
		// not be recycled into a future publication a reader already holds.
		sh.retired = nil
		// Bump the shard version so packed-pull caches and delta-pulling
		// readers refresh rather than trusting a stale version number.
		sh.version++
		sh.mu.Unlock()
		sh.applied.Store(version)
	}
	s.reserved.Store(version)
	s.version.Store(version)
	return nil
}

// ClusterConfig is a server's group role (ServerConfig.Cluster). The zero
// value is a classic standalone server.
type ClusterConfig struct {
	// Coordinator marks this server as the group's policy owner: it serves
	// the cluster map to workers, accepts metadata-only pushes, and runs the
	// real BSP/SSP/DSSP policy. A coordinator's store is a placeholder — it
	// never carries model weights.
	Coordinator bool
	// GlobalShards and TotalTensors describe the group-wide layout the
	// coordinator advertises in every map reply (the normalized shard count
	// GroupLayout returned and the model's tensor count). Required when
	// Coordinator is set.
	GlobalShards int
	TotalTensors int
}

// clusterState is the coordinator's live view of the group: the data-server
// entries the map serves, the version workers use to detect change, and the
// parked announce connections (peers) Stop must close — they are not worker
// sessions, so the session sweep never reaches them, yet each holds a data
// server's liveness watch on this coordinator.
type clusterState struct {
	mu         sync.Mutex
	entries    []transport.ServerEntry
	mapVersion int64
	peers      map[transport.Conn]struct{}
}

// trackPeer registers a parked cluster-peer connection for closure on Stop.
func (s *Server) trackPeer(conn transport.Conn) {
	s.cluster.mu.Lock()
	if s.cluster.peers == nil {
		s.cluster.peers = make(map[transport.Conn]struct{})
	}
	s.cluster.peers[conn] = struct{}{}
	s.cluster.mu.Unlock()
}

// untrackPeer drops a peer connection that ended on its own.
func (s *Server) untrackPeer(conn transport.Conn) {
	s.cluster.mu.Lock()
	delete(s.cluster.peers, conn)
	s.cluster.mu.Unlock()
}

// closePeers closes every parked peer connection — the coordinator side of
// the data servers' fail-fast: their liveness watch sees the close
// immediately instead of waiting out a transport timeout.
func (s *Server) closePeers() {
	s.cluster.mu.Lock()
	for conn := range s.cluster.peers {
		_ = conn.Close()
	}
	s.cluster.peers = nil
	s.cluster.mu.Unlock()
}

// handleClusterMap answers a worker's map request on its own connection —
// map fetches ride dedicated connections, never a registered session's, so
// the reply goes out directly instead of through a session outbox. A request
// with Relay set asks for the aggregation-tree layout instead of the
// server-group map: the relay entries and the worker-index ranges each
// covers, which any server with a relay tier (coordinator or not) serves. A
// non-coordinator rejects a plain map request by name: pointing a cluster
// worker at a data server is a wiring bug worth a clear message.
func (s *Server) handleClusterMap(conn transport.Conn, msg transport.Message) {
	if msg.Relay {
		s.sm.treeLayoutFetches.Inc()
		entries, version := s.tree.snapshot()
		_ = conn.Send(transport.Message{
			Type:        transport.MsgClusterMap,
			Relay:       true,
			Servers:     entries,
			MapVersion:  version,
			StoreShards: s.cfg.Store.Shards(),
			Total:       s.cfg.Workers,
			Version:     s.cfg.Store.Version(),
		})
		return
	}
	if !s.cfg.Cluster.Coordinator {
		_ = conn.Send(transport.Message{
			Type:  transport.MsgError,
			Error: "not a cluster coordinator",
		})
		return
	}
	s.sm.clusterMapRequests.Inc()
	s.cluster.mu.Lock()
	entries := append([]transport.ServerEntry(nil), s.cluster.entries...)
	mapVersion := s.cluster.mapVersion
	s.cluster.mu.Unlock()
	_ = conn.Send(transport.Message{
		Type:        transport.MsgClusterMap,
		Servers:     entries,
		MapVersion:  mapVersion,
		StoreShards: s.cfg.Cluster.GlobalShards,
		Total:       s.cfg.Cluster.TotalTensors,
		Version:     s.cfg.Store.Version(),
	})
}

// handleServerAnnounce records a data server's entry in the map (backups
// announce with Replica set and are acknowledged without entering the map —
// they become routable only through promotion). Re-announcing an owned shard
// range replaces the entry, which is how a restarted primary re-claims its
// slice.
func (s *Server) handleServerAnnounce(conn transport.Conn, msg transport.Message) {
	if !s.cfg.Cluster.Coordinator {
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: "not a cluster coordinator"})
		return
	}
	entry, err := s.checkEntry(msg)
	if err != nil {
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: err.Error()})
		return
	}
	s.sm.clusterAnnounces.Inc()
	if !msg.Replica {
		s.cluster.mu.Lock()
		replaced := false
		for i := range s.cluster.entries {
			if s.cluster.entries[i].ShardLo == entry.ShardLo && s.cluster.entries[i].ShardHi == entry.ShardHi {
				s.cluster.entries[i] = entry
				replaced = true
				break
			}
		}
		if !replaced {
			s.cluster.entries = append(s.cluster.entries, entry)
			sort.Slice(s.cluster.entries, func(i, j int) bool {
				return s.cluster.entries[i].ShardLo < s.cluster.entries[j].ShardLo
			})
		}
		s.cluster.mapVersion++
		s.cluster.mu.Unlock()
	}
	_ = conn.Send(transport.Message{Type: transport.MsgOK})
}

// handlePromote swaps the owner address of one shard range — the promotion a
// backup requests after declaring its primary dead. Workers learn the new
// owner from their next map fetch.
func (s *Server) handlePromote(conn transport.Conn, msg transport.Message) {
	if !s.cfg.Cluster.Coordinator {
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: "not a cluster coordinator"})
		return
	}
	entry, err := s.checkEntry(msg)
	if err != nil {
		_ = conn.Send(transport.Message{Type: transport.MsgError, Error: err.Error()})
		return
	}
	s.cluster.mu.Lock()
	promoted := false
	for i := range s.cluster.entries {
		if s.cluster.entries[i].ShardLo == entry.ShardLo && s.cluster.entries[i].ShardHi == entry.ShardHi {
			s.cluster.entries[i] = entry
			promoted = true
			break
		}
	}
	if promoted {
		s.cluster.mapVersion++
	}
	s.cluster.mu.Unlock()
	if !promoted {
		_ = conn.Send(transport.Message{
			Type:  transport.MsgError,
			Error: fmt.Sprintf("no cluster-map entry owns shards [%d, %d)", entry.ShardLo, entry.ShardHi),
		})
		return
	}
	s.sm.clusterPromotions.Inc()
	_ = conn.Send(transport.Message{Type: transport.MsgOK})
}

// checkEntry extracts and validates the single server entry an announce or
// promote request must carry.
func (s *Server) checkEntry(msg transport.Message) (transport.ServerEntry, error) {
	if len(msg.Servers) != 1 {
		return transport.ServerEntry{}, fmt.Errorf("%v must carry exactly one server entry, got %d", msg.Type, len(msg.Servers))
	}
	e := msg.Servers[0]
	if e.Addr == "" {
		return transport.ServerEntry{}, fmt.Errorf("%v entry has no address", msg.Type)
	}
	if e.ShardLo < 0 || e.ShardHi <= e.ShardLo || e.ShardHi > s.cfg.Cluster.GlobalShards {
		return transport.ServerEntry{}, fmt.Errorf("%v shard range [%d, %d) outside [0, %d)",
			msg.Type, e.ShardLo, e.ShardHi, s.cfg.Cluster.GlobalShards)
	}
	if e.TensorLo < 0 || e.TensorHi <= e.TensorLo || e.TensorHi > s.cfg.Cluster.TotalTensors {
		return transport.ServerEntry{}, fmt.Errorf("%v tensor range [%d, %d) outside [0, %d)",
			msg.Type, e.TensorLo, e.TensorHi, s.cfg.Cluster.TotalTensors)
	}
	return e, nil
}

// ClusterMap snapshots the coordinator's current map (nil on non-coordinator
// servers): the entries in shard order and the map version.
func (s *Server) ClusterMap() ([]transport.ServerEntry, int64) {
	if !s.cfg.Cluster.Coordinator {
		return nil, 0
	}
	s.cluster.mu.Lock()
	defer s.cluster.mu.Unlock()
	return append([]transport.ServerEntry(nil), s.cluster.entries...), s.cluster.mapVersion
}
