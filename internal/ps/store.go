// Package ps implements the parameter-server framework the paper builds on:
// a versioned global parameter store, a server that applies pushed gradients
// and decides when to release workers according to a synchronization policy
// (internal/core), and a worker-side client implementing the push/pull
// protocol of Algorithm 1.
package ps

import (
	"fmt"
	"sync"

	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// Store holds the globally shared model parameters ("the weights of the
// model") together with a monotonically increasing version: the number of
// gradient updates applied so far. The version is what staleness is measured
// against.
type Store struct {
	mu      sync.Mutex
	params  []*tensor.Tensor
	opt     optimizer.Optimizer
	version int64
}

// NewStore returns a store initialized with deep copies of the given
// parameters, updated by the given optimizer on every Apply.
func NewStore(initial []*tensor.Tensor, opt optimizer.Optimizer) (*Store, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("ps: store needs at least one parameter tensor")
	}
	if opt == nil {
		return nil, fmt.Errorf("ps: store needs an optimizer")
	}
	params := make([]*tensor.Tensor, len(initial))
	for i, p := range initial {
		params[i] = p.Clone()
	}
	return &Store{params: params, opt: opt}, nil
}

// Apply updates the parameters with one set of gradients and returns the new
// version.
func (s *Store) Apply(grads []*tensor.Tensor) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(grads) != len(s.params) {
		return 0, fmt.Errorf("ps: push carries %d tensors, store has %d", len(grads), len(s.params))
	}
	for i, g := range grads {
		if !g.SameShape(s.params[i]) {
			return 0, fmt.Errorf("ps: gradient %d shape %v does not match parameter shape %v",
				i, g.Shape(), s.params[i].Shape())
		}
	}
	s.opt.Step(s.params, grads)
	s.version++
	return s.version, nil
}

// Snapshot returns deep copies of the current parameters and their version.
func (s *Store) Snapshot() ([]*tensor.Tensor, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*tensor.Tensor, len(s.params))
	for i, p := range s.params {
		out[i] = p.Clone()
	}
	return out, s.version
}

// Version returns the number of updates applied so far.
func (s *Store) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// SetLearningRate adjusts the optimizer's learning rate (used by learning-
// rate schedules during training).
func (s *Store) SetLearningRate(lr float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opt.SetLearningRate(lr)
}

// ParamCount returns the total number of scalar parameters, which determines
// the per-iteration communication volume.
func (s *Store) ParamCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, p := range s.params {
		total += p.Size()
	}
	return total
}
