// Package ps implements the parameter-server framework the paper builds on:
// a versioned global parameter store, a server that applies pushed gradients
// and decides when to release workers according to a synchronization policy
// (internal/core), and a worker-side client implementing the push/pull
// protocol of Algorithm 1.
package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dssp/internal/compress"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// Store holds the globally shared model parameters ("the weights of the
// model") together with a monotonically increasing version: the number of
// gradient updates applied so far. The version is what staleness is measured
// against.
//
// The parameters are partitioned into contiguous, size-balanced shards, each
// guarded by its own RWMutex and updated by its own optimizer clone. Shards
// publish copy-on-write snapshots: Apply steps the optimizer on a fresh copy
// of the shard's tensors and publishes the copy, so the published tensors are
// immutable from the moment they become visible. A reader therefore only
// needs the shard lock for the instant it takes a reference (ViewShard), and
// any number of concurrent pulls proceed without copying or blocking behind
// gradient application; Apply updates the shards in parallel, so a single
// push uses multiple cores on large models. The shard layout is fixed at
// construction and immutable afterwards.
//
// Concurrency semantics: each shard is always internally consistent, but a
// read taken while an Apply is in flight may see the update on some shards
// and not yet on others. This is the same relaxation the asynchronous
// paradigms (ASP/SSP/DSSP) already embrace. It is, however, weaker than the
// old fully serialized store even under BSP: a slow worker still pulling
// after the barrier release may observe a fast worker's next-round push on
// some shards only, where the serialized store would have delivered some
// whole version. Workers that pull before computing (Algorithm 1) see
// quiescent weights whenever no push is concurrently in flight.
type Store struct {
	shards  []*shard
	ranges  []shardRange
	shapes  [][]int // global tensor index -> shape, immutable
	version atomic.Int64
	scalars int // total scalar parameter count, immutable

	// proto is the optimizer the store was built from. The shards step their
	// own clones; proto is only kept so that SetLearningRate stays visible on
	// the instance the caller handed in.
	protoMu sync.Mutex
	proto   optimizer.Optimizer
}

// NewStore returns a store initialized with deep copies of the given
// parameters, updated by the given optimizer on every Apply, using the
// default shard count (one shard per CPU, capped at the tensor count).
func NewStore(initial []*tensor.Tensor, opt optimizer.Optimizer) (*Store, error) {
	return NewStoreSharded(initial, opt, 0)
}

// NewStoreSharded is NewStore with an explicit shard count. shards <= 0
// selects the default; a count larger than the number of tensors is clamped
// (every shard must own at least one tensor). shards == 1 reproduces the
// classic single-partition store.
func NewStoreSharded(initial []*tensor.Tensor, opt optimizer.Optimizer, shards int) (*Store, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("ps: store needs at least one parameter tensor")
	}
	if opt == nil {
		return nil, fmt.Errorf("ps: store needs an optimizer")
	}
	if shards <= 0 {
		shards = defaultShards(len(initial))
	}
	if shards > len(initial) {
		shards = len(initial)
	}

	sizes := make([]int, len(initial))
	shapes := make([][]int, len(initial))
	scalars := 0
	for i, p := range initial {
		sizes[i] = p.Size()
		shapes[i] = p.Shape()
		scalars += p.Size()
	}
	ranges := partitionBySize(sizes, shards)

	st := &Store{
		shards:  make([]*shard, shards),
		ranges:  ranges,
		shapes:  shapes,
		scalars: scalars,
		proto:   opt,
	}
	for i, r := range ranges {
		params := make([]*tensor.Tensor, r.End-r.Start)
		for j := range params {
			params[j] = initial[r.Start+j].Clone()
		}
		st.shards[i] = &shard{params: params, opt: opt.Clone()}
	}
	return st, nil
}

// Shards returns the number of shards the parameters are partitioned into.
func (s *Store) Shards() int { return len(s.shards) }

// NumTensors returns the number of parameter tensors across all shards.
func (s *Store) NumTensors() int { return len(s.shapes) }

// ShardRange returns the half-open global tensor index range [start, end)
// owned by shard i.
func (s *Store) ShardRange(i int) (start, end int) {
	r := s.ranges[i]
	return r.Start, r.End
}

// Apply updates the parameters with one set of gradients and returns the new
// version. Shards are updated in parallel; the aggregate version is bumped
// once after every shard has absorbed its slice of the gradients.
func (s *Store) Apply(grads []*tensor.Tensor) (int64, error) {
	if len(grads) != len(s.shapes) {
		return 0, fmt.Errorf("ps: push carries %d tensors, store has %d", len(grads), len(s.shapes))
	}
	for i, g := range grads {
		if !sameShape(g.Shape(), s.shapes[i]) {
			return 0, fmt.Errorf("ps: gradient %d shape %v does not match parameter shape %v",
				i, g.Shape(), s.shapes[i])
		}
	}
	if len(s.shards) == 1 {
		s.shards[0].apply(grads)
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(sh *shard, grads []*tensor.Tensor) {
				defer wg.Done()
				sh.apply(grads)
			}(sh, grads[s.ranges[i].Start:s.ranges[i].End])
		}
		wg.Wait()
	}
	return s.version.Add(1), nil
}

// apply absorbs one gradient slice under the shard's write lock,
// copy-on-write: the optimizer steps a fresh copy of the shard's tensors and
// the copy is published. Tensors already handed out by ViewShard are never
// mutated.
func (sh *shard) apply(grads []*tensor.Tensor) {
	sh.mu.Lock()
	next := make([]*tensor.Tensor, len(sh.params))
	for i, p := range sh.params {
		next[i] = p.Clone()
	}
	sh.opt.Step(next, grads)
	sh.params = next
	sh.version++
	sh.mu.Unlock()
}

// view returns the shard's currently published tensors. The returned slice
// and tensors are immutable; the lock is held only for the reference grab.
func (sh *shard) view() []*tensor.Tensor {
	sh.mu.RLock()
	params := sh.params
	sh.mu.RUnlock()
	return params
}

// Snapshot returns deep copies of the current parameters and their version.
// Each shard's lock is held only while grabbing the published tensor
// references; the copying happens outside all locks, so snapshots from many
// workers proceed concurrently and never block gradient application.
func (s *Store) Snapshot() ([]*tensor.Tensor, int64) {
	version := s.version.Load()
	out := make([]*tensor.Tensor, len(s.shapes))
	for i, sh := range s.shards {
		base := s.ranges[i].Start
		for j, p := range sh.view() {
			out[base+j] = p.Clone()
		}
	}
	return out, version
}

// SnapshotShard returns deep copies of shard i's parameters, the global
// tensor index of the first one, and the store's aggregate version at read
// time.
func (s *Store) SnapshotShard(i int) (params []*tensor.Tensor, base int, version int64) {
	version = s.version.Load()
	published := s.shards[i].view()
	params = make([]*tensor.Tensor, len(published))
	for j, p := range published {
		params[j] = p.Clone()
	}
	return params, s.ranges[i].Start, version
}

// ViewShard returns shard i's currently published parameter tensors without
// copying, with the global index of the first one and the store's aggregate
// version at read time. The returned tensors are the store's copy-on-write
// snapshot: they are never mutated after publication, and the CALLER MUST
// NOT mutate them either. This is the zero-copy fast path the server's pull
// handler streams to the wire; workers receive isolated copies because the
// wire decode (transport.FromWire) copies the data.
func (s *Store) ViewShard(i int) (params []*tensor.Tensor, base int, version int64) {
	version = s.version.Load()
	return s.shards[i].view(), s.ranges[i].Start, version
}

// PackShard returns shard i's published parameters in the compressed form
// produced by pack, with the global index of the first tensor and the
// store's aggregate version at read time. The packed form is cached per
// shard and recomputed only after a newer snapshot is published, so
// concurrent pulls from any number of workers share one compression pass
// per update. Like ViewShard's tensors, the returned slice is immutable and
// must not be modified.
//
// All callers of a store must pass an equivalent pack function: the cache is
// keyed on the shard version only, which is exactly the pull path's shape —
// one server, one negotiated codec.
func (s *Store) PackShard(i int, pack func([]*tensor.Tensor) []compress.Packed) (packed []compress.Packed, base int, version int64) {
	version = s.version.Load()
	sh := s.shards[i]
	params, local := sh.viewVersioned()
	sh.packedMu.Lock()
	if sh.packed == nil || sh.packedVersion < local {
		sh.packed = pack(params)
		sh.packedVersion = local
	}
	// When another goroutine cached an even newer snapshot between our view
	// and the lock, serve that one: pulls always get the freshest published
	// state available.
	packed = sh.packed
	sh.packedMu.Unlock()
	return packed, s.ranges[i].Start, version
}

// Version returns the number of updates applied so far.
func (s *Store) Version() int64 { return s.version.Load() }

// SetLearningRate adjusts the optimizer's learning rate on every shard (used
// by learning-rate schedules during training).
func (s *Store) SetLearningRate(lr float64) {
	s.protoMu.Lock()
	s.proto.SetLearningRate(lr)
	s.protoMu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.opt.SetLearningRate(lr)
		sh.mu.Unlock()
	}
}

// ParamCount returns the total number of scalar parameters, which determines
// the per-iteration communication volume.
func (s *Store) ParamCount() int { return s.scalars }

// sameShape reports whether two dimension lists are identical.
func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
