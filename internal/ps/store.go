// Package ps implements the parameter-server framework the paper builds on:
// a versioned global parameter store, a server that applies pushed gradients
// and decides when to release workers according to a synchronization policy
// (internal/core), and a worker-side client implementing the push/pull
// protocol of Algorithm 1.
package ps

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
)

// Store holds the globally shared model parameters ("the weights of the
// model") together with a monotonically increasing version: the number of
// gradient updates applied so far. The version is what staleness is measured
// against.
//
// The parameters are partitioned into contiguous, size-balanced shards, each
// guarded by its own RWMutex and updated by its own optimizer clone. Shards
// publish copy-on-write snapshots: Apply steps the optimizer on a fresh copy
// of the shard's tensors and publishes the copy, so the published tensors are
// immutable from the moment they become visible. A reader therefore only
// needs the shard lock for the instant it takes a reference (ViewShard), and
// any number of concurrent pulls proceed without copying or blocking behind
// gradient application; Apply updates the shards in parallel, so a single
// push uses multiple cores on large models. The shard layout is fixed at
// construction and immutable afterwards.
//
// Gradient application is pipelined: EnqueueApply assigns the push a ticket
// (its serial position, taken from reserved) and appends its gradient slices
// to the per-shard apply queues; persistent per-shard applier goroutines
// drain the queues, coalescing whatever is waiting into one optimizer step
// per batch (see shard.applyBatch). version — the applied version readers
// and staleness accounting see — trails reserved by the in-flight pushes
// and advances to the minimum over shards' applied counts, so version v
// still means "all of pushes 1..v are in every shard". WaitApplied blocks
// until a ticket's update is globally visible; Apply is the synchronous
// enqueue+wait composition with exactly the old semantics. Appliers start
// lazily on the first enqueue and park when idle; Close drains and stops
// them (a later enqueue restarts them).
//
// Concurrency semantics: each shard is always internally consistent, but a
// read taken while an apply is in flight may see the update on some shards
// and not yet on others. This is the same relaxation the asynchronous
// paradigms (ASP/SSP/DSSP) already embrace. It is, however, weaker than the
// old fully serialized store even under BSP: a slow worker still pulling
// after the barrier release may observe a fast worker's next-round push on
// some shards only, where the serialized store would have delivered some
// whole version. Workers that pull before computing (Algorithm 1) see
// quiescent weights whenever no push is concurrently in flight.
type Store struct {
	shards  []*shard
	ranges  []shardRange
	shapes  [][]int // global tensor index -> shape, immutable
	version atomic.Int64
	scalars int // total scalar parameter count, immutable

	// reserved is the ticket counter: the number of pushes accepted into the
	// pipeline. version <= reserved always; they are equal when the pipeline
	// is drained.
	reserved atomic.Int64

	// aggCfg and the soft aggregation barrier (SetAggregator): window is how
	// many pushes an applier tries to collect before taking one aggregated
	// step, and demand is the highest ticket someone is known to be waiting
	// on (Flush raises it to reserved) — a shard publishes a partial window
	// as soon as a demanded ticket is sitting in it, so windowed aggregation
	// can delay releases but never deadlock them. Both stay at their
	// defaults (window 1, demand 0) for the classic sum pipeline, making
	// takeBatch's window check free in the fast path.
	aggCfg AggregatorConfig
	window atomic.Int64
	demand atomic.Int64

	// applyMu fences the apply pipeline's lifecycle: EnqueueApply holds the
	// read side across ticket assignment and queue insertion, Close and the
	// lazy start take the write side, so stopping appliers cannot race an
	// enqueue and strand a ticket.
	applyMu   sync.RWMutex
	running   bool
	stop      chan struct{}
	applierWG sync.WaitGroup

	// enqMu serializes ticket assignment with queue insertion (both under
	// applyMu's read side), so per-shard queue order always matches ticket
	// order. That is what makes "applied version >= ticket" mean "this push
	// is applied": without it two concurrent EnqueueApply calls could
	// interleave, letting the later ticket be enqueued and applied first and
	// waking the earlier ticket's waiter while its gradients still sit in a
	// queue — breaking Apply's visibility guarantee and the gradient-buffer
	// reuse contract.
	enqMu sync.Mutex

	// waitMu guards the applied-version waiters and serializes advances, so
	// waiter wakeups see version move through every batch in order.
	waitMu  sync.Mutex
	waiters []applyWaiter

	// proto is the optimizer the store was built from. The shards step their
	// own clones; proto is only kept so that SetLearningRate stays visible on
	// the instance the caller handed in.
	protoMu sync.Mutex
	proto   optimizer.Optimizer

	// metrics and tracer are nil unless a Server installed them (instrument):
	// bare stores — including the pinned hot-path benchmarks — pay one
	// pointer test per batch and nothing else. Both must be set before the
	// first enqueue; appliers read them without synchronization.
	metrics *storeMetrics
	tracer  *obs.PushTracer
}

// applyWaiter is one WaitApplied registration: ch is closed when the applied
// version reaches target.
type applyWaiter struct {
	target int64
	ch     chan struct{}
}

// NewStore returns a store initialized with deep copies of the given
// parameters, updated by the given optimizer on every Apply, using the
// default shard count (one shard per CPU, capped at the tensor count).
func NewStore(initial []*tensor.Tensor, opt optimizer.Optimizer) (*Store, error) {
	return NewStoreSharded(initial, opt, 0)
}

// NewStoreSharded is NewStore with an explicit shard count. shards <= 0
// selects the default; a count larger than the number of tensors is clamped
// (every shard must own at least one tensor). shards == 1 reproduces the
// classic single-partition store.
func NewStoreSharded(initial []*tensor.Tensor, opt optimizer.Optimizer, shards int) (*Store, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("ps: store needs at least one parameter tensor")
	}
	if opt == nil {
		return nil, fmt.Errorf("ps: store needs an optimizer")
	}
	if shards <= 0 {
		shards = defaultShards(len(initial))
	}
	if shards > len(initial) {
		shards = len(initial)
	}

	sizes := make([]int, len(initial))
	shapes := make([][]int, len(initial))
	scalars := 0
	for i, p := range initial {
		sizes[i] = p.Size()
		shapes[i] = p.Shape()
		scalars += p.Size()
	}
	ranges := partitionBySize(sizes, shards)

	st := &Store{
		shards:  make([]*shard, shards),
		ranges:  ranges,
		shapes:  shapes,
		scalars: scalars,
		proto:   opt,
	}
	for i, r := range ranges {
		params := make([]*tensor.Tensor, r.End-r.Start)
		for j := range params {
			params[j] = initial[r.Start+j].Clone()
		}
		st.shards[i] = &shard{gen: &paramGen{params: params}, opt: opt.Clone(), wake: make(chan struct{}, 1)}
	}
	st.window.Store(1)
	st.aggCfg = AggregatorConfig{}.Normalized()
	return st, nil
}

// SetAggregator installs the batch-reduction strategy the per-shard appliers
// use (plain sum, norm-clipped sum, trimmed mean, coordinate median) and its
// aggregation window. It must be called before the first push is enqueued —
// swapping the estimator under a live pipeline would mix semantics within
// one window — and is typically driven by ServerConfig.Aggregator.
func (s *Store) SetAggregator(cfg AggregatorConfig) error {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.running {
		return fmt.Errorf("ps: SetAggregator requires an idle apply pipeline (configure before pushes)")
	}
	s.aggCfg = cfg
	for _, sh := range s.shards {
		sh.agg = newAggregator(cfg)
	}
	window := int64(cfg.Window)
	if window < 1 {
		window = 1
	}
	s.window.Store(window)
	return nil
}

// AggregatorConfigured returns the normalized aggregator configuration in
// effect (the zero AggregatorConfig — plain sum — unless SetAggregator ran).
func (s *Store) AggregatorConfigured() AggregatorConfig { return s.aggCfg }

// instrument installs apply-pipeline metrics and the push-lifecycle tracer.
// Only NewServer calls it, before any push can be enqueued; either argument
// may be nil.
func (s *Store) instrument(m *storeMetrics, tr *obs.PushTracer) {
	s.metrics = m
	s.tracer = tr
}

// QueueDepth returns the number of push tickets accepted but not yet globally
// visible — the apply pipeline's backlog.
func (s *Store) QueueDepth() int64 {
	d := s.reserved.Load() - s.version.Load()
	if d < 0 {
		return 0
	}
	return d
}

// ShardVersions returns each shard's local publication version (which the
// checkpoint restore path also bumps), for status snapshots.
func (s *Store) ShardVersions() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		_, out[i] = sh.viewVersioned()
	}
	return out
}

// Window returns the aggregation window currently in effect.
func (s *Store) Window() int64 { return s.window.Load() }

// SetWindow adjusts the aggregation window at run time, clamped to at least
// 1. The server shrinks it as workers finish or depart so a thinning cohort
// does not leave every remaining push waiting out the watchdog; it never
// grows the window beyond the configured one.
func (s *Store) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	s.window.Store(int64(n))
	s.wakeAppliers()
}

// Flush asks the appliers to publish everything accepted so far without
// waiting for aggregation windows to fill: it raises the demanded ticket to
// reserved and wakes every shard. Callers that need the result visible
// should WaitApplied on the ticket of interest afterwards; Flush itself does
// not block.
func (s *Store) Flush() {
	r := s.reserved.Load()
	if r <= s.version.Load() {
		return
	}
	for {
		d := s.demand.Load()
		if d >= r || s.demand.CompareAndSwap(d, r) {
			break
		}
	}
	s.wakeAppliers()
}

// wakeAppliers nudges every shard's applier to re-evaluate its queue.
func (s *Store) wakeAppliers() {
	for _, sh := range s.shards {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// Shards returns the number of shards the parameters are partitioned into.
func (s *Store) Shards() int { return len(s.shards) }

// NumTensors returns the number of parameter tensors across all shards.
func (s *Store) NumTensors() int { return len(s.shapes) }

// ShardRange returns the half-open global tensor index range [start, end)
// owned by shard i.
func (s *Store) ShardRange(i int) (start, end int) {
	r := s.ranges[i]
	return r.Start, r.End
}

// Apply updates the parameters with one set of gradients, blocking until the
// update is visible on every shard, and returns the push's version — its
// serial position in the update sequence. It is EnqueueApply followed by
// WaitApplied: concurrent Apply calls therefore ride the same per-shard
// applier pipeline and may be coalesced into shared optimizer steps.
func (s *Store) Apply(grads []*tensor.Tensor) (int64, error) {
	ticket, err := s.EnqueueApply(grads)
	if err != nil {
		return 0, err
	}
	s.WaitApplied(ticket, nil)
	return ticket, nil
}

// EnqueueApply validates one set of gradients, assigns it the next ticket
// and hands its per-shard slices to the applier pipeline, without waiting
// for the update to be applied. The returned ticket is the push's serial
// position — exactly the version Apply would have returned — and becomes
// readable once Version reaches it (WaitApplied).
//
// The caller must keep the gradient tensors unmodified until the ticket is
// applied. The parameter server guarantees that through release gating: a
// worker only learns its push completed (and so only reuses its gradient
// buffers) after every ticket the release decision covered is applied.
func (s *Store) EnqueueApply(grads []*tensor.Tensor) (int64, error) {
	return s.EnqueueApplyWeighted(grads, 1)
}

// EnqueueApplyWeighted is EnqueueApply for a pre-aggregated gradient standing
// in for weight logical pushes — a relay's forwarded partial, whose payload
// is the coordinate-wise sum of weight children's gradients. The entry
// reserves weight consecutive tickets and the returned ticket is the LAST of
// them (the gate a release must wait on); the first is ticket-weight+1.
// Version advances by weight when the entry is applied, exactly as if the
// children had pushed individually, which is what keeps the ×k clock
// advancement indistinguishable from flat pushes for staleness accounting.
func (s *Store) EnqueueApplyWeighted(grads []*tensor.Tensor, weight int64) (int64, error) {
	if weight < 1 {
		return 0, fmt.Errorf("ps: push weight must be at least 1, got %d", weight)
	}
	if len(grads) != len(s.shapes) {
		return 0, fmt.Errorf("ps: push carries %d tensors, store has %d", len(grads), len(s.shapes))
	}
	for i, g := range grads {
		if !sameShape(g.Shape(), s.shapes[i]) {
			return 0, fmt.Errorf("ps: gradient %d shape %v does not match parameter shape %v",
				i, g.Shape(), s.shapes[i])
		}
	}
	s.applyMu.RLock()
	for !s.running {
		s.applyMu.RUnlock()
		s.startAppliers()
		s.applyMu.RLock()
	}
	// enqMu makes the ticket and the queue insertions one atomic step, so
	// every shard's queue holds pushes in ticket order (see the field doc).
	s.enqMu.Lock()
	ticket := s.reserved.Add(weight)
	for i, sh := range s.shards {
		r := s.ranges[i]
		sh.enqueue(grads[r.Start:r.End], weight)
	}
	s.enqMu.Unlock()
	s.applyMu.RUnlock()
	return ticket, nil
}

// startAppliers spawns the per-shard applier goroutines if they are not
// already running.
func (s *Store) startAppliers() {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.running {
		return
	}
	s.stop = make(chan struct{})
	s.running = true
	s.applierWG.Add(len(s.shards))
	for i := range s.shards {
		go s.applier(s.shards[i], s.stop)
	}
	if s.aggCfg.Window > 1 || s.aggCfg.Windowed() {
		// Windowed aggregation needs a liveness net: a partial window whose
		// remaining contributors crashed, finished, or are simply slow would
		// otherwise hold its tickets (and any release gated on them)
		// forever. The watchdog force-flushes whenever a tick passes with
		// tickets outstanding and no published progress.
		s.applierWG.Add(1)
		go s.watchdog(s.stop)
	}
}

// watchdog force-publishes stalled partial aggregation windows: when a full
// FlushInterval elapses with pushes reserved but the applied version not
// moving, it flushes. Worst-case added release latency is therefore two
// ticks; steady-state full windows never wait for it.
func (s *Store) watchdog(stop <-chan struct{}) {
	defer s.applierWG.Done()
	ticker := time.NewTicker(s.aggCfg.FlushInterval)
	defer ticker.Stop()
	last := int64(-1)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			v := s.version.Load()
			if v == last && s.reserved.Load() > v {
				s.Flush()
			}
			last = v
		}
	}
}

// applier is one shard's persistent apply loop: it drains the shard's queue
// in batches — coalescing everything waiting into one optimizer step — and
// advances the store's applied version after each batch. It parks on the
// shard's wake channel when idle and exits, after a final drain, when stop
// closes.
func (s *Store) applier(sh *shard, stop <-chan struct{}) {
	defer s.applierWG.Done()
	for {
		if batch, weights := sh.takeBatch(s.window.Load(), s.demand.Load()); len(batch) > 0 {
			sh.applyBatch(batch, weights, s.metrics, s.tracer)
			s.advanceApplied()
			continue
		}
		select {
		case <-sh.wake:
		case <-stop:
			// Everything enqueued before Close's fence is in the queue by
			// now; drain it so no accepted ticket is lost.
			for {
				batch, weights := sh.takePending()
				if len(batch) == 0 {
					return
				}
				sh.applyBatch(batch, weights, s.metrics, s.tracer)
				s.advanceApplied()
			}
		}
	}
}

// advanceApplied publishes the new applied version — the minimum over
// shards' applied push counts — waking every waiter it satisfies. Appliers
// call nothing beyond this: they must never block on locks outside the
// store, or Close's drain (and anything waiting on it) could deadlock
// against a store client holding such a lock.
func (s *Store) advanceApplied() {
	min := int64(math.MaxInt64)
	for _, sh := range s.shards {
		if v := sh.applied.Load(); v < min {
			min = v
		}
	}
	s.waitMu.Lock()
	prev := s.version.Load()
	if min <= prev {
		// Another applier already published at least this far, or this
		// shard is ahead of a sibling still catching up.
		s.waitMu.Unlock()
		return
	}
	s.version.Store(min)
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.target <= min {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
	s.waitMu.Unlock()
}

// WaitApplied blocks until the applied version reaches ticket (returning
// true) or cancel closes (returning false). A nil cancel waits forever —
// safe whenever the ticket came from EnqueueApply on this store, because
// accepted tickets are always eventually applied, even across Close.
func (s *Store) WaitApplied(ticket int64, cancel <-chan struct{}) bool {
	if s.version.Load() >= ticket {
		return true
	}
	s.waitMu.Lock()
	if s.version.Load() >= ticket {
		s.waitMu.Unlock()
		return true
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, applyWaiter{target: ticket, ch: ch})
	s.waitMu.Unlock()
	if cancel == nil {
		<-ch
		return true
	}
	select {
	case <-ch:
		return true
	case <-cancel:
		// Deregister so abandoned waiters don't accumulate across retries
		// (the slice would otherwise only shrink when the version catches
		// up, which for a stopped server is never).
		s.waitMu.Lock()
		for i, w := range s.waiters {
			if w.ch == ch {
				last := len(s.waiters) - 1
				s.waiters[i] = s.waiters[last]
				s.waiters[last] = applyWaiter{}
				s.waiters = s.waiters[:last]
				s.waitMu.Unlock()
				return false
			}
		}
		// Not found: advanceApplied already closed ch, so the target was in
		// fact reached before the cancel won the select.
		s.waitMu.Unlock()
		return true
	}
}

// Reserved returns the number of pushes accepted into the apply pipeline so
// far; Reserved() - Version() of them are still in flight.
func (s *Store) Reserved() int64 { return s.reserved.Load() }

// Close drains the apply pipeline — every accepted ticket is applied — and
// stops the per-shard applier goroutines. It is idempotent, and not final: a
// later EnqueueApply restarts the appliers. Callers that only ever read the
// store never start appliers and never need Close; a store whose pipeline
// was started holds one parked goroutine per shard until Close runs
// (Server.Stop closes the store it serves).
//
// The applier drain happens while holding the lifecycle lock: an
// EnqueueApply racing Close either lands its tickets before the drain (and
// they are applied by it) or blocks until Close returns and restarts fresh
// appliers — two applier generations can never run concurrently on one
// shard.
func (s *Store) Close() {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if !s.running {
		return
	}
	s.running = false
	close(s.stop)
	s.applierWG.Wait()
}

// Snapshot returns deep copies of the current parameters and their version.
// Each shard's lock is held only while grabbing a referenced generation; the
// copying happens outside all locks, so snapshots from many workers proceed
// concurrently and never block gradient application. The reference is
// released as soon as the copy completes, so snapshots never exclude a
// generation's buffers from the applier's reuse pool.
func (s *Store) Snapshot() ([]*tensor.Tensor, int64) {
	version := s.version.Load()
	out := make([]*tensor.Tensor, len(s.shapes))
	for i, sh := range s.shards {
		base := s.ranges[i].Start
		g, _ := sh.acquire()
		for j, p := range g.params {
			out[base+j] = p.Clone()
		}
		g.release()
	}
	return out, version
}

// SnapshotShard returns deep copies of shard i's parameters, the global
// tensor index of the first one, and the store's aggregate version at read
// time.
func (s *Store) SnapshotShard(i int) (params []*tensor.Tensor, base int, version int64) {
	version = s.version.Load()
	g, _ := s.shards[i].acquire()
	params = make([]*tensor.Tensor, len(g.params))
	for j, p := range g.params {
		params[j] = p.Clone()
	}
	g.release()
	return params, s.ranges[i].Start, version
}

// ViewShard returns shard i's currently published parameter tensors without
// copying, with the global index of the first one and the store's aggregate
// version at read time. The returned tensors are the store's copy-on-write
// snapshot: they are never mutated after publication, and the CALLER MUST
// NOT mutate them either. This is the zero-copy fast path the server's pull
// handler streams to the wire; workers receive isolated copies because the
// wire decode (transport.FromWire) copies the data.
func (s *Store) ViewShard(i int) (params []*tensor.Tensor, base int, version int64) {
	params, base, version, _, _ = s.ViewShardDelta(i, -1)
	return params, base, version
}

// ViewShardDelta is ViewShard extended for version-gated delta pulls: it
// additionally returns the shard-local publication version of the returned
// snapshot, and — when have matches it — reports the shard unchanged with a
// nil params slice, letting the caller skip the payload entirely. have is
// the shard version from the reader's previous pull; pass a negative value
// to always receive the snapshot.
func (s *Store) ViewShardDelta(i int, have int64) (params []*tensor.Tensor, base int, version, shardVersion int64, unchanged bool) {
	version = s.version.Load()
	base = s.ranges[i].Start
	params, shardVersion = s.shards[i].viewVersioned()
	if have >= 0 && have == shardVersion {
		return nil, base, version, shardVersion, true
	}
	return params, base, version, shardVersion, false
}

// PackShard returns shard i's published parameters in the compressed form
// produced by pack, with the global index of the first tensor and the
// store's aggregate version at read time. The packed form is cached per
// shard and recomputed only after a newer snapshot is published, so
// concurrent pulls from any number of workers share one compression pass
// per update. Like ViewShard's tensors, the returned slice is immutable and
// must not be modified.
//
// All callers of a store must pass an equivalent pack function: the cache is
// keyed on the shard version only, which is exactly the pull path's shape —
// one server, one negotiated codec.
func (s *Store) PackShard(i int, pack func([]*tensor.Tensor) []compress.Packed) (packed []compress.Packed, base int, version int64) {
	packed, base, version, _, _ = s.PackShardDelta(i, -1, pack)
	return packed, base, version
}

// PackShardDelta is PackShard extended for version-gated delta pulls: it
// additionally returns the shard version the served packed form encodes,
// and — when have matches it — reports the shard unchanged with a nil
// packed slice. Pass a negative have to always receive the packed form.
func (s *Store) PackShardDelta(i int, have int64, pack func([]*tensor.Tensor) []compress.Packed) (packed []compress.Packed, base int, version, shardVersion int64, unchanged bool) {
	version = s.version.Load()
	base = s.ranges[i].Start
	sh := s.shards[i]
	// The pack read is bounded — the compressed form never aliases the
	// parameter buffers — so it holds a reference instead of escaping the
	// generation, keeping the buffers eligible for applier reuse.
	g, local := sh.acquire()
	sh.packedMu.Lock()
	if sh.packed == nil || sh.packedVersion < local {
		sh.packed = pack(g.params)
		sh.packedVersion = local
	}
	// When another goroutine cached an even newer snapshot between our view
	// and the lock, serve that one: pulls always get the freshest published
	// state available. The reported shard version names the snapshot
	// actually served, so delta gating and the payload can never disagree.
	packed, shardVersion = sh.packed, sh.packedVersion
	sh.packedMu.Unlock()
	g.release()
	if have >= 0 && have == shardVersion {
		return nil, base, version, shardVersion, true
	}
	return packed, base, version, shardVersion, false
}

// Version returns the number of updates applied so far.
func (s *Store) Version() int64 { return s.version.Load() }

// SetLearningRate adjusts the optimizer's learning rate on every shard (used
// by learning-rate schedules during training).
func (s *Store) SetLearningRate(lr float64) {
	s.protoMu.Lock()
	s.proto.SetLearningRate(lr)
	s.protoMu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.opt.SetLearningRate(lr)
		sh.mu.Unlock()
	}
}

// ParamCount returns the total number of scalar parameters, which determines
// the per-iteration communication volume.
func (s *Store) ParamCount() int { return s.scalars }

// sameShape reports whether two dimension lists are identical.
func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
