package ps

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// clusterShapes is the model every cluster test partitions: six tensors of
// uneven sizes, so shard and server boundaries land mid-model.
var clusterShapes = [][]int{{6, 4}, {4}, {4, 3}, {3}, {3, 2}, {2}}

// seededModel builds the test model with deterministic pseudo-random
// weights: every participant (group servers, single-server reference) that
// uses the same seed starts bit-identical.
func seededModel(seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, len(clusterShapes))
	for i, shape := range clusterShapes {
		t := tensor.New(shape...)
		data := t.Data()
		for j := range data {
			data[j] = rng.Float32() - 0.5
		}
		out[i] = t
	}
	return out
}

// scheduledGrads returns worker w's gradient for iteration it —
// deterministic in (w, it) so a serial replay reproduces it exactly.
func scheduledGrads(w, it int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(int64(w)*1_000_003 + int64(it)))
	out := make([]*tensor.Tensor, len(clusterShapes))
	for i, shape := range clusterShapes {
		t := tensor.New(shape...)
		data := t.Data()
		for j := range data {
			data[j] = rng.Float32() - 0.5
		}
		out[i] = t
	}
	return out
}

// zeroGrads returns an all-zero gradient in the test model's shapes.
func zeroGrads() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(clusterShapes))
	for i, shape := range clusterShapes {
		out[i] = tensor.New(shape...)
	}
	return out
}

// clusterOpt is the optimizer most cluster tests use — momentum, so the
// bit-identity assertions cover per-shard optimizer state, not just weights.
func clusterOpt() optimizer.Optimizer { return optimizer.NewSGDMomentum(0.1, 0.9, 1e-4) }

// testGroup is an in-process server group: one coordinator and N data
// servers, each on its own ChanListener, glued together by an address-keyed
// dialer — the same wiring shape the public layer uses over TCP.
type testGroup struct {
	coordAddr    string
	coord        *Server
	data         []*Server
	dataAddrs    []string
	stores       []*Store
	assignments  []ShardAssignment
	globalShards int

	mu        sync.Mutex
	listeners map[string]*transport.ChanListener
}

// dial resolves an advertised address to its in-process listener.
func (g *testGroup) dial(addr string) (transport.Conn, error) {
	g.mu.Lock()
	l := g.listeners[addr]
	g.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("no server at %s", addr)
	}
	return l.Dial()
}

// addListener registers a listener under its address and returns the address.
func (g *testGroup) addListener(l *transport.ChanListener) string {
	g.mu.Lock()
	g.listeners[l.Addr()] = l
	g.mu.Unlock()
	return l.Addr()
}

// serve starts srv on a fresh listener and returns its address.
func (g *testGroup) serve(t *testing.T, srv *Server) string {
	t.Helper()
	l := transport.NewChanListener()
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Stop()
		l.Close()
	})
	return g.addListener(l)
}

// announce sends one announce (or promote) frame to the coordinator over a
// raw connection and requires the MsgOK ack.
func (g *testGroup) announce(t *testing.T, typ transport.MessageType, entry transport.ServerEntry, replica bool) {
	t.Helper()
	conn, err := g.dial(g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(transport.Message{Type: typ, Servers: []transport.ServerEntry{entry}, Replica: replica}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != transport.MsgOK {
		t.Fatalf("%v not acknowledged: %v %s", typ, msg.Type, msg.Error)
	}
}

// startTestGroup stands up a group: the coordinator runs policy, every data
// server runs its shard range of the seed model under a local ASP policy,
// and each announces itself exactly as the public layer does.
func startTestGroup(t *testing.T, workers, servers int, policy core.Policy, initial []*tensor.Tensor) *testGroup {
	t.Helper()
	return startTestGroupWith(t, workers, servers, policy, initial, clusterOpt)
}

// startTestGroupWith is startTestGroup with the data-server optimizer under
// test control.
func startTestGroupWith(t *testing.T, workers, servers int, policy core.Policy, initial []*tensor.Tensor, mkOpt func() optimizer.Optimizer) *testGroup {
	t.Helper()
	sizes := make([]int, len(initial))
	for i, p := range initial {
		sizes[i] = p.Size()
	}
	assignments, globalShards, err := GroupLayout(sizes, 0, servers)
	if err != nil {
		t.Fatal(err)
	}
	g := &testGroup{
		assignments:  assignments,
		globalShards: globalShards,
		listeners:    make(map[string]*transport.ChanListener),
	}

	coordStore, err := NewStoreSharded([]*tensor.Tensor{tensor.New(1)}, optimizer.NewSGD(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	g.coord, err = NewServer(ServerConfig{
		Workers: workers,
		Policy:  policy,
		Store:   coordStore,
		Cluster: ClusterConfig{Coordinator: true, GlobalShards: globalShards, TotalTensors: len(initial)},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.coordAddr = g.serve(t, g.coord)

	for i := 0; i < servers; i++ {
		st, err := NewStoreRange(initial, mkOpt(), globalShards, assignments[i].ShardLo, assignments[i].ShardHi)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Workers: workers, Policy: core.MustNewASP(workers), Store: st})
		if err != nil {
			t.Fatal(err)
		}
		addr := g.serve(t, srv)
		g.data = append(g.data, srv)
		g.dataAddrs = append(g.dataAddrs, addr)
		g.stores = append(g.stores, st)
		g.announce(t, transport.MsgServerAnnounce, assignments[i].Entry(addr), false)
	}
	return g
}

// referenceRun replays an apply schedule serially on a single-server store
// with the group's shard boundaries and returns its final weights.
func referenceRun(t *testing.T, initial []*tensor.Tensor, globalShards int, schedule [][2]int) ([]*tensor.Tensor, int64) {
	t.Helper()
	ref, err := NewStoreSharded(initial, clusterOpt(), globalShards)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, s := range schedule {
		if _, err := ref.Apply(scheduledGrads(s[0], s[1])); err != nil {
			t.Fatal(err)
		}
	}
	return ref.Snapshot()
}

// requireSameWeights asserts two parameter lists are bitwise identical.
func requireSameWeights(t *testing.T, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tensors, want %d", len(got), len(want))
	}
	for i := range got {
		gd, wd := got[i].Data(), want[i].Data()
		if len(gd) != len(wd) {
			t.Fatalf("tensor %d: %d values, want %d", i, len(gd), len(wd))
		}
		for j := range gd {
			if gd[j] != wd[j] {
				t.Fatalf("tensor %d value %d: got %v, want %v (not bit-identical)", i, j, gd[j], wd[j])
			}
		}
	}
}

func TestGroupLayoutCoversModelContiguously(t *testing.T) {
	sizes := []int{24, 4, 12, 3, 6, 2}
	for servers := 1; servers <= 4; servers++ {
		assignments, shards, err := GroupLayout(sizes, 0, servers)
		if err != nil {
			t.Fatal(err)
		}
		if len(assignments) != servers {
			t.Fatalf("%d servers: %d assignments", servers, len(assignments))
		}
		wantShard, wantTensor := 0, 0
		for i, a := range assignments {
			if a.ShardLo != wantShard || a.TensorLo != wantTensor {
				t.Fatalf("%d servers, assignment %d starts at %d/%d, want %d/%d",
					servers, i, a.ShardLo, a.TensorLo, wantShard, wantTensor)
			}
			if a.ShardHi <= a.ShardLo {
				t.Fatalf("%d servers, assignment %d owns no shards", servers, i)
			}
			wantShard, wantTensor = a.ShardHi, a.TensorHi
		}
		if wantShard != shards || wantTensor != len(sizes) {
			t.Fatalf("%d servers cover %d/%d shards, %d/%d tensors", servers, wantShard, shards, wantTensor, len(sizes))
		}
	}
	if _, _, err := GroupLayout(nil, 0, 1); err == nil {
		t.Error("empty model accepted")
	}
	if _, _, err := GroupLayout(sizes, 0, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, _, err := GroupLayout(sizes, 0, len(sizes)+1); err == nil {
		t.Error("more servers than tensors accepted")
	}
	// The shard count clamps into [servers, len(sizes)].
	if _, shards, _ := GroupLayout(sizes, 100, 2); shards != len(sizes) {
		t.Errorf("oversized shard count normalized to %d, want %d", shards, len(sizes))
	}
	if _, shards, _ := GroupLayout(sizes, 1, 3); shards != 3 {
		t.Errorf("undersized shard count normalized to %d, want 3", shards)
	}
}

func TestNewStoreRangeMatchesGlobalBoundaries(t *testing.T) {
	initial := seededModel(11)
	sizes := make([]int, len(initial))
	for i, p := range initial {
		sizes[i] = p.Size()
	}
	assignments, shards, err := GroupLayout(sizes, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewStoreSharded(initial, clusterOpt(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for _, a := range assignments {
		st, err := NewStoreRange(initial, clusterOpt(), shards, a.ShardLo, a.ShardHi)
		if err != nil {
			t.Fatal(err)
		}
		if st.Shards() != a.ShardHi-a.ShardLo {
			t.Fatalf("range store has %d shards, want %d", st.Shards(), a.ShardHi-a.ShardLo)
		}
		if st.NumTensors() != a.TensorHi-a.TensorLo {
			t.Fatalf("range store has %d tensors, want %d", st.NumTensors(), a.TensorHi-a.TensorLo)
		}
		// Every local shard boundary must be the global one, shifted.
		for i := 0; i < st.Shards(); i++ {
			lo, hi := st.ShardRange(i)
			glo, ghi := full.ShardRange(a.ShardLo + i)
			if lo+a.TensorLo != glo || hi+a.TensorLo != ghi {
				t.Fatalf("local shard %d spans [%d, %d), global shard %d spans [%d, %d)",
					i, lo, hi, a.ShardLo+i, glo, ghi)
			}
		}
		st.Close()
	}
	if _, err := NewStoreRange(initial, clusterOpt(), shards, 2, 2); err == nil {
		t.Error("empty shard range accepted")
	}
	if _, err := NewStoreRange(initial, clusterOpt(), shards, 0, shards+1); err == nil {
		t.Error("out-of-bounds shard range accepted")
	}
}

func TestStoreRangeAppliesBitIdenticallyToShardedStore(t *testing.T) {
	initial := seededModel(7)
	sizes := make([]int, len(initial))
	for i, p := range initial {
		sizes[i] = p.Size()
	}
	assignments, shards, err := GroupLayout(sizes, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewStoreSharded(initial, clusterOpt(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	var ranges []*Store
	for _, a := range assignments {
		st, err := NewStoreRange(initial, clusterOpt(), shards, a.ShardLo, a.ShardHi)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ranges = append(ranges, st)
	}
	for it := 0; it < 8; it++ {
		grads := scheduledGrads(0, it)
		if _, err := full.Apply(grads); err != nil {
			t.Fatal(err)
		}
		for i, st := range ranges {
			a := assignments[i]
			if _, err := st.Apply(grads[a.TensorLo:a.TensorHi]); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, _ := full.Snapshot()
	var got []*tensor.Tensor
	for _, st := range ranges {
		part, _ := st.Snapshot()
		got = append(got, part...)
	}
	requireSameWeights(t, got, want)
}

func TestStoreInstallReplacesWeights(t *testing.T) {
	initial := seededModel(5)
	st, err := NewStoreSharded(initial, clusterOpt(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	replacement := seededModel(6)
	if err := st.Install(replacement, 42); err != nil {
		t.Fatal(err)
	}
	if st.Version() != 42 || st.Reserved() != 42 {
		t.Fatalf("installed version %d/%d, want 42/42", st.Version(), st.Reserved())
	}
	got, version := st.Snapshot()
	if version != 42 {
		t.Fatalf("snapshot version %d, want 42", version)
	}
	requireSameWeights(t, got, replacement)
	// Installs only ever move forward.
	if err := st.Install(replacement, 41); err == nil {
		t.Error("backwards install accepted")
	}
	// Shape mismatches are rejected before anything is touched.
	if err := st.Install(replacement[1:], 50); err == nil {
		t.Error("short install accepted")
	}
	// The store still applies after an install (appliers restart lazily).
	if _, err := st.Apply(scheduledGrads(0, 0)); err != nil {
		t.Fatal(err)
	}
	if st.Version() != 43 {
		t.Fatalf("version after post-install apply = %d, want 43", st.Version())
	}
}

func TestCoordinatorClusterMapLifecycle(t *testing.T) {
	initial := seededModel(21)
	g := startTestGroup(t, 1, 2, core.MustNewASP(1), initial)

	m, err := FetchClusterMap(g.dial, g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateMap(m); err != nil {
		t.Fatal(err)
	}
	if len(m.Servers) != 2 || m.StoreShards != g.globalShards || m.Total != len(initial) {
		t.Fatalf("map %d servers, %d shards, %d tensors; want 2, %d, %d",
			len(m.Servers), m.StoreShards, m.Total, g.globalShards, len(initial))
	}
	baseVersion := m.MapVersion
	if baseVersion < 2 {
		t.Fatalf("map version %d after two announces", baseVersion)
	}

	// A backup's replica announce is acknowledged but never enters the map.
	g.announce(t, transport.MsgServerAnnounce, g.assignments[0].Entry("backup-addr"), true)
	m2, err := FetchClusterMap(g.dial, g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Servers) != 2 || m2.MapVersion != baseVersion {
		t.Fatalf("replica announce changed the map: %d servers, version %d", len(m2.Servers), m2.MapVersion)
	}
	for _, e := range m2.Servers {
		if e.Addr == "backup-addr" {
			t.Fatal("replica address routed into the map")
		}
	}

	// Promotion swaps the owner of the shard range and bumps the version.
	g.announce(t, transport.MsgPromote, g.assignments[0].Entry("backup-addr"), false)
	m3, err := FetchClusterMap(g.dial, g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	if m3.MapVersion != baseVersion+1 {
		t.Fatalf("promotion left map version %d, want %d", m3.MapVersion, baseVersion+1)
	}
	if m3.Servers[0].Addr != "backup-addr" {
		t.Fatalf("promotion did not reroute: %+v", m3.Servers[0])
	}

	// Promoting a range nobody owns is an explicit error.
	conn, err := g.dial(g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bogus := transport.ServerEntry{Addr: "x", ShardLo: 0, ShardHi: g.globalShards, TensorLo: 0, TensorHi: len(initial)}
	if err := conn.Send(transport.Message{Type: transport.MsgPromote, Servers: []transport.ServerEntry{bogus}}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != transport.MsgError {
		t.Fatalf("bogus promotion answered with %v", msg.Type)
	}
}

func TestDataServerRejectsClusterMapRequests(t *testing.T) {
	initial := seededModel(22)
	g := startTestGroup(t, 1, 2, core.MustNewASP(1), initial)
	_, err := FetchClusterMap(g.dial, g.dataAddrs[0])
	if err == nil {
		t.Fatal("data server served a cluster map")
	}
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("rejection %v is not a RemoteError", err)
	}
	if !strings.Contains(err.Error(), "not a cluster coordinator") {
		t.Fatalf("rejection %q does not name the role", err)
	}
}

func TestCoordinatorRejectsClassicWorkers(t *testing.T) {
	initial := seededModel(23)
	g := startTestGroup(t, 1, 2, core.MustNewASP(1), initial)
	conn, err := g.dial(g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	classic := NewClient(conn, 0)
	if err := classic.Register(); err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("classic registration on coordinator: err = %v, want cluster-mode rejection", err)
	}
	_ = conn.Close()

	conn2, err := g.dial(g.coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	clustered := NewClient(conn2, 0)
	clustered.SetCluster(true)
	if err := clustered.Register(); err != nil {
		t.Fatalf("cluster-mode registration rejected: %v", err)
	}
}

func TestCoordinatorRejectsGuard(t *testing.T) {
	coordStore, err := NewStoreSharded([]*tensor.Tensor{tensor.New(1)}, optimizer.NewSGD(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewServer(ServerConfig{
		Workers: 1,
		Policy:  core.MustNewASP(1),
		Store:   coordStore,
		Options: Options{Guard: GuardConfig{Enabled: true}},
		Cluster: ClusterConfig{Coordinator: true, GlobalShards: 2, TotalTensors: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Fatalf("coordinator with guard: err = %v, want guard rejection", err)
	}
}

func TestReplicaSessionIsReadOnly(t *testing.T) {
	initial := seededModel(31)
	st, err := NewStoreSharded(initial, clusterOpt(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	l := transport.NewChanListener()
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Stop()
		l.Close()
	})

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	replica := NewClient(conn, 0)
	replica.SetReplica(true)
	replica.SetDeltaPull(true)
	if err := replica.Register(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replica.Pull(); err != nil {
		t.Fatalf("replica pull: %v", err)
	}
	if err := replica.PushAndWait(scheduledGrads(0, 0), 0, 0); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica push: err = %v, want read-only rejection", err)
	}

	// The replica never entered policy or completion accounting: worker 0
	// still registers and trains normally alongside it.
	wconn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	worker := NewClient(wconn, 0)
	if err := worker.Register(); err != nil {
		t.Fatal(err)
	}
	if err := worker.PushAndWait(scheduledGrads(0, 1), 0, 0); err != nil {
		t.Fatalf("worker push alongside replica: %v", err)
	}
	if srv.Pushes() != 1 {
		t.Fatalf("server counted %d pushes, want 1", srv.Pushes())
	}
}

func TestReplicatorStreamsWeightsIntoStandby(t *testing.T) {
	initial := seededModel(41)
	primary, err := NewStoreSharded(initial, clusterOpt(), 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: primary})
	if err != nil {
		t.Fatal(err)
	}
	l := transport.NewChanListener()
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Stop()
		l.Close()
	})

	standby, err := NewStoreSharded(initial, clusterOpt(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	repErr := make(chan error, 1)
	go func() {
		repErr <- RunReplicator(ReplicatorConfig{
			Dial:     func() (transport.Conn, error) { return l.Dial() },
			Store:    standby,
			Interval: 2 * time.Millisecond,
			Grace:    time.Second,
		}, stop)
	}()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	worker := NewClient(conn, 0)
	if err := worker.Register(); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		if err := worker.PushAndWait(scheduledGrads(0, it), int64(it), it); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for standby.Version() < primary.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at version %d, primary at %d", standby.Version(), primary.Version())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err := <-repErr; err != nil {
		t.Fatalf("replicator: %v", err)
	}
	got, _ := standby.Snapshot()
	want, _ := primary.Snapshot()
	requireSameWeights(t, got, want)
}

func TestReplicatorDeclaresPrimaryDead(t *testing.T) {
	initial := seededModel(42)
	primary, err := NewStoreSharded(initial, clusterOpt(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: primary})
	if err != nil {
		t.Fatal(err)
	}
	l := transport.NewChanListener()
	go func() { _ = srv.Serve(l) }()

	standby, err := NewStoreSharded(initial, clusterOpt(), 2)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	repErr := make(chan error, 1)
	go func() {
		repErr <- RunReplicator(ReplicatorConfig{
			Dial:     func() (transport.Conn, error) { return l.Dial() },
			Store:    standby,
			Interval: 2 * time.Millisecond,
			Grace:    150 * time.Millisecond,
		}, stop)
	}()
	// Let the stream establish, then kill the primary.
	time.Sleep(20 * time.Millisecond)
	srv.Stop()
	l.Close()
	select {
	case err := <-repErr:
		if !errors.Is(err, ErrPrimaryDead) {
			t.Fatalf("replicator returned %v, want ErrPrimaryDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replicator never declared the primary dead")
	}
}

// TestClusterTrainingBitIdenticalToSingleServer drives a serial schedule —
// every (worker, iteration) gradient deterministic, each push fully applied
// before the next — through 2- and 3-server groups under ASP, SSP and DSSP
// coordinators, and requires the final weights to be bit-identical to a
// single-server store replaying the same schedule. The staleness bounds are
// wide enough that the serial schedule never blocks, so one goroutine can
// drive all workers in a fixed order.
func TestClusterTrainingBitIdenticalToSingleServer(t *testing.T) {
	const workers, iters = 2, 6
	policies := map[string]func() core.Policy{
		"ASP":  func() core.Policy { return core.MustNewASP(workers) },
		"SSP":  func() core.Policy { return core.MustNewSSP(workers, iters+1) },
		"DSSP": func() core.Policy { return core.MustNewDSSP(workers, iters+1, 3) },
	}
	for name, mk := range policies {
		for _, servers := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/servers=%d", name, servers), func(t *testing.T) {
				initial := seededModel(51)
				g := startTestGroup(t, workers, servers, mk(), initial)

				clients := make([]*ClusterClient, workers)
				for w := range clients {
					c, err := NewClusterClient(g.dial, g.coordAddr, w, ClusterClientConfig{})
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					clients[w] = c
				}
				var schedule [][2]int
				for it := 0; it < iters; it++ {
					for w := 0; w < workers; w++ {
						_, version, err := clients[w].Pull()
						if err != nil {
							t.Fatal(err)
						}
						if err := clients[w].PushAndWait(scheduledGrads(w, it), version, it); err != nil {
							t.Fatal(err)
						}
						schedule = append(schedule, [2]int{w, it})
					}
				}
				got, version, err := clients[0].Pull()
				if err != nil {
					t.Fatal(err)
				}
				if version != int64(workers*iters) {
					t.Fatalf("final min data version %d, want %d", version, workers*iters)
				}
				want, _ := referenceRun(t, seededModel(51), g.globalShards, schedule)
				requireSameWeights(t, got, want)
				for _, c := range clients {
					if err := c.Done(); err != nil {
						t.Fatal(err)
					}
				}
				// The coordinator's clock ran one tick per push — the single
				// serialization point saw the whole schedule.
				if v := g.coord.Pushes(); v != workers*iters {
					t.Fatalf("coordinator saw %d pushes, want %d", v, workers*iters)
				}
			})
		}
	}
}

// TestClusterBSPBitIdenticalWithConcurrentWorkers runs a real BSP barrier —
// workers on their own goroutines, blocked by the coordinator until the
// round completes. Concurrent fragments may be coalesced into shared
// optimizer steps in nondeterministic batches, so bit-identity needs a
// schedule whose arithmetic is batching-invariant: exactly one worker per
// round carries a real gradient, the rest push zeros, and the optimizer is
// plain SGD — summing zeros into a batch and applying zero updates are both
// bitwise no-ops, whatever the within-round apply order.
func TestClusterBSPBitIdenticalWithConcurrentWorkers(t *testing.T) {
	const workers, iters, servers = 3, 5, 2
	mkSGD := func() optimizer.Optimizer { return optimizer.NewSGD(0.1) }
	initial := seededModel(52)
	g := startTestGroupWith(t, workers, servers, core.MustNewBSP(workers), initial, mkSGD)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := NewClusterClient(g.dial, g.coordAddr, w, ClusterClientConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for it := 0; it < iters; it++ {
				_, version, err := c.Pull()
				if err != nil {
					errs <- err
					return
				}
				grads := zeroGrads()
				if it%workers == w {
					grads = scheduledGrads(0, it)
				}
				if err := c.PushAndWait(grads, version, it); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Done()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the real gradients alone, in round order (zero pushes are
	// bitwise no-ops and rounds are barriered by the coordinator).
	ref, err := NewStoreSharded(seededModel(52), mkSGD(), g.globalShards)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for it := 0; it < iters; it++ {
		if _, err := ref.Apply(scheduledGrads(0, it)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := ref.Snapshot()
	var got []*tensor.Tensor
	for _, st := range g.stores {
		part, _ := st.Snapshot()
		got = append(got, part...)
	}
	requireSameWeights(t, got, want)
	if v := g.stores[0].Version(); v != workers*iters {
		t.Fatalf("data store version %d, want %d", v, workers*iters)
	}
}

// TestClusterClientRecoversThroughPromotion is the ps-level failover drill:
// a worker trains against a 2-server group while a replicator mirrors server
// 0 into a standby store; the primary is killed, the standby declares it
// dead, a new server is promoted over the standby store, and the worker's
// next operations recover through the refreshed map — without any
// checkpoint-restore and without the run failing.
func TestClusterClientRecoversThroughPromotion(t *testing.T) {
	initial := seededModel(61)
	g := startTestGroup(t, 1, 2, core.MustNewASP(1), initial)
	a := g.assignments[0]

	standby, err := NewStoreRange(initial, clusterOpt(), g.globalShards, a.ShardLo, a.ShardHi)
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := g.dataAddrs[0]
	stop := make(chan struct{})
	defer close(stop)
	repErr := make(chan error, 1)
	go func() {
		repErr <- RunReplicator(ReplicatorConfig{
			Dial:     func() (transport.Conn, error) { return g.dial(primaryAddr) },
			Store:    standby,
			Interval: time.Millisecond,
			Grace:    100 * time.Millisecond,
		}, stop)
	}()

	client, err := NewClusterClient(g.dial, g.coordAddr, 0, ClusterClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const firstLeg = 5
	for it := 0; it < firstLeg; it++ {
		_, version, err := client.Pull()
		if err != nil {
			t.Fatal(err)
		}
		if err := client.PushAndWait(scheduledGrads(0, it), version, it); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the stream to carry everything the primary applied, so the
	// promoted weights are exact (the schedule is quiescent at the kill).
	deadline := time.Now().Add(5 * time.Second)
	for standby.Version() < g.stores[0].Version() {
		if time.Now().After(deadline) {
			t.Fatalf("standby at version %d, primary at %d", standby.Version(), g.stores[0].Version())
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the primary; the replicator must declare it dead.
	g.data[0].Stop()
	select {
	case err := <-repErr:
		if !errors.Is(err, ErrPrimaryDead) {
			t.Fatalf("replicator returned %v, want ErrPrimaryDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replicator never declared the primary dead")
	}

	// Promote: serve the standby store and reroute the shard range to it.
	promoted, err := NewServer(ServerConfig{Workers: 1, Policy: core.MustNewASP(1), Store: standby})
	if err != nil {
		t.Fatal(err)
	}
	addr := g.serve(t, promoted)
	g.announce(t, transport.MsgPromote, a.Entry(addr), false)

	oldMap := client.MapVersion()
	for it := firstLeg; it < firstLeg+5; it++ {
		_, version, err := client.Pull()
		if err != nil {
			t.Fatal(err)
		}
		if err := client.PushAndWait(scheduledGrads(0, it), version, it); err != nil {
			t.Fatal(err)
		}
	}
	if client.MapVersion() <= oldMap {
		t.Fatalf("client never adopted the promoted map (version %d)", client.MapVersion())
	}
	if promoted.Pushes() == 0 {
		t.Fatal("promoted backup received no pushes")
	}
	if promoted.Dropped() != 0 {
		t.Fatalf("promoted backup dropped %d pushes", promoted.Dropped())
	}
	// The promotion path never used checkpoint-restore: the standby carried
	// straight on from the replication stream. The reference mirrors that
	// exactly — replicated shards restart with installed weights but cold
	// momentum (Install does not carry optimizer state; DESIGN.md §10),
	// while the surviving server's shards keep their unbroken history.
	got, version, err := client.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if version != 10 {
		t.Fatalf("final version %d, want 10", version)
	}
	want := make([]*tensor.Tensor, 0, len(initial))
	for i, asg := range g.assignments {
		ref, err := NewStoreRange(seededModel(61), clusterOpt(), g.globalShards, asg.ShardLo, asg.ShardHi)
		if err != nil {
			t.Fatal(err)
		}
		apply := func(it int) {
			grads := scheduledGrads(0, it)
			if _, err := ref.Apply(grads[asg.TensorLo:asg.TensorHi]); err != nil {
				t.Fatal(err)
			}
		}
		if i == 0 {
			// Replay to the kill point, re-install the published weights
			// into a fresh store (= promotion), then finish the schedule.
			for it := 0; it < firstLeg; it++ {
				apply(it)
			}
			snap, v := ref.Snapshot()
			ref.Close()
			if ref, err = NewStoreRange(seededModel(61), clusterOpt(), g.globalShards, asg.ShardLo, asg.ShardHi); err != nil {
				t.Fatal(err)
			}
			if err := ref.Install(snap, v); err != nil {
				t.Fatal(err)
			}
			for it := firstLeg; it < 10; it++ {
				apply(it)
			}
		} else {
			for it := 0; it < 10; it++ {
				apply(it)
			}
		}
		part, _ := ref.Snapshot()
		want = append(want, part...)
		ref.Close()
	}
	requireSameWeights(t, got, want)
}
