package ps

import (
	"errors"
	"fmt"
	"time"

	"dssp/internal/compress"
	"dssp/internal/obs"
	"dssp/internal/transport"
)

// ErrPrimaryDead reports that the replication primary stayed unreachable for
// longer than the configured grace: the backup should now request promotion
// instead of retrying forever against a corpse.
var ErrPrimaryDead = errors.New("ps: replication primary is unreachable")

// ReplicatorConfig configures one primary→backup replication stream.
type ReplicatorConfig struct {
	// Dial opens a fresh connection to the primary. Called on start and after
	// every connection failure.
	Dial func() (transport.Conn, error)
	// Store is the backup's standby store the stream lands on (a
	// NewStoreRange twin of the primary's).
	Store *Store
	// Interval is the poll cadence (default 25ms). Delta pulls make an idle
	// poll nearly free: unchanged shards come back as payload-free chunks.
	Interval time.Duration
	// Grace is how long the primary may stay unreachable before the
	// replicator declares it dead (default 2s).
	Grace time.Duration
	// Metrics, when set, carries the dssp_cluster_replica_* series.
	Metrics *obs.Registry
}

// RunReplicator streams the primary's published weights into cfg.Store until
// stop closes (returns nil) or the primary stays unreachable past the grace
// (returns ErrPrimaryDead — the caller's cue to request promotion).
//
// The stream is a replica session on the primary: a read-only registration
// under a negative session key, pulling on a fixed cadence with delta pulls
// so unchanged shards cost no bytes. Each pull that advances the primary's
// version is installed wholesale (Store.Install); what the stream does NOT
// carry — optimizer state, and exact bit-patterns under a lossy pull codec —
// is documented in DESIGN.md §10.
func RunReplicator(cfg ReplicatorConfig, stop <-chan struct{}) error {
	if cfg.Dial == nil || cfg.Store == nil {
		return fmt.Errorf("ps: replicator needs a dialer and a store")
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	grace := cfg.Grace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	var installs, unchanged *obs.Counter
	var version, lagGauge *obs.Gauge
	if cfg.Metrics != nil {
		installs = cfg.Metrics.Counter("dssp_cluster_replica_installs_total",
			"Weight snapshots installed from the primary's replication stream.")
		unchanged = cfg.Metrics.Counter("dssp_cluster_replica_unchanged_total",
			"Replication polls that found the primary's version unchanged.")
		version = cfg.Metrics.Gauge("dssp_cluster_replica_version",
			"Store version of the last installed replication snapshot.")
		lagGauge = cfg.Metrics.Gauge("dssp_cluster_replica_behind",
			"Versions the last poll saw the primary ahead of the backup (pre-install).")
	}

	lastContact := time.Now()
	installed := cfg.Store.Version()
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		conn, err := cfg.Dial()
		if err != nil {
			if time.Since(lastContact) > grace {
				return ErrPrimaryDead
			}
			if !sleepOrStop(interval, stop) {
				return nil
			}
			continue
		}
		// Codec auto: a replica must be able to read any primary, including
		// one speaking a compressed codec (the stream then carries whatever
		// precision the primary's workers see on their own pulls).
		client, err := NewClientCompressed(conn, 0, compress.Config{Codec: compress.Auto})
		if err != nil {
			_ = conn.Close()
			return err
		}
		client.SetReplica(true)
		client.SetDeltaPull(true)
		if err := client.Register(); err != nil {
			_ = conn.Close()
			if time.Since(lastContact) > grace {
				return ErrPrimaryDead
			}
			if !sleepOrStop(interval, stop) {
				return nil
			}
			continue
		}
		lastContact = time.Now()
		for {
			params, v, err := client.Pull()
			if err != nil {
				_ = conn.Close()
				break // reconnect (or give up) via the outer loop
			}
			lastContact = time.Now()
			if lagGauge != nil {
				lagGauge.Set(float64(v - installed))
			}
			if v == installed {
				if unchanged != nil {
					unchanged.Inc()
				}
			} else if err := cfg.Store.Install(params, v); err != nil {
				// A failed install (shape drift, version regression) is a
				// wiring bug, not a liveness problem; surface it.
				_ = conn.Close()
				return fmt.Errorf("ps: replica install at version %d: %w", v, err)
			} else {
				installed = v
				if installs != nil {
					installs.Inc()
				}
				if version != nil {
					version.Set(float64(v))
				}
			}
			if !sleepOrStop(interval, stop) {
				_ = conn.Close()
				return nil
			}
		}
		if time.Since(lastContact) > grace {
			return ErrPrimaryDead
		}
	}
}

// sleepOrStop waits d, returning false if stop closed first.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
