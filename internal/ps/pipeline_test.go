package ps

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/optimizer"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// gateOpt wraps an optimizer so a test can hold the applier inside its first
// Step call while more pushes pile up behind it — the deterministic way to
// force coalescing. Clones share the gate and the counters, so it only suits
// single-shard stores.
type gateOpt struct {
	optimizer.Optimizer
	entered chan struct{} // closed when the first Step begins
	resume  chan struct{} // first Step blocks until this closes
	once    *sync.Once
	steps   *atomic.Int64
}

func newGateOpt(inner optimizer.Optimizer) *gateOpt {
	return &gateOpt{
		Optimizer: inner,
		entered:   make(chan struct{}),
		resume:    make(chan struct{}),
		once:      &sync.Once{},
		steps:     &atomic.Int64{},
	}
}

func (g *gateOpt) Step(params, grads []*tensor.Tensor) {
	g.steps.Add(1)
	g.once.Do(func() {
		close(g.entered)
		<-g.resume
	})
	g.Optimizer.Step(params, grads)
}

func (g *gateOpt) Clone() optimizer.Optimizer {
	return &gateOpt{
		Optimizer: g.Optimizer.Clone(),
		entered:   g.entered,
		resume:    g.resume,
		once:      g.once,
		steps:     g.steps,
	}
}

// pipelineModel builds a small multi-tensor parameter set with seeded values.
func pipelineModel(seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return []*tensor.Tensor{
		tensor.New(8, 6).RandNormal(rng, 0, 1),
		tensor.New(11).RandNormal(rng, 0, 1),
		tensor.New(4, 3).RandNormal(rng, 0, 1),
	}
}

func pipelineGrads(rng *rand.Rand, model []*tensor.Tensor) []*tensor.Tensor {
	grads := make([]*tensor.Tensor, len(model))
	for i, p := range model {
		grads[i] = tensor.New(p.Shape()...).RandNormal(rng, 0, 0.1)
	}
	return grads
}

// TestPipelinedApplyBitIdenticalToSerialReference pins the bit-identity
// contract: on a deterministic schedule — each Apply waits before the next
// starts, so no batch ever holds more than one push — the pipelined
// per-shard appliers must produce exactly the bytes the serial path did.
// The reference steps a single optimizer over cloned parameters by hand.
func TestPipelinedApplyBitIdenticalToSerialReference(t *testing.T) {
	initial := pipelineModel(7)
	st, err := NewStoreSharded(initial, optimizer.NewSGDMomentum(0.05, 0.9, 1e-4), len(initial))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ref := make([]*tensor.Tensor, len(initial))
	for i, p := range initial {
		ref[i] = p.Clone()
	}
	refOpt := optimizer.NewSGDMomentum(0.05, 0.9, 1e-4)

	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 40; step++ {
		grads := pipelineGrads(rng, initial)
		v, err := st.Apply(grads)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(step+1) {
			t.Fatalf("step %d: version %d, want %d", step, v, step+1)
		}
		refOpt.Step(ref, grads)
	}

	got, version := st.Snapshot()
	if version != 40 {
		t.Fatalf("final version %d, want 40", version)
	}
	if !bytes.Equal(tensor.EncodeTensors(got), tensor.EncodeTensors(ref)) {
		t.Fatal("pipelined apply diverged bit-wise from the serial reference on a deterministic schedule")
	}
}

// TestCoalescedApplyBatchesQueuedPushes holds the single applier inside its
// first optimizer step while more pushes are enqueued, then proves the
// backlog was absorbed in fewer steps than pushes (coalescing), that the
// version advanced by the exact push count, and that the weights match the
// summed-gradient semantics within float tolerance.
func TestCoalescedApplyBatchesQueuedPushes(t *testing.T) {
	initial := pipelineModel(3)
	gate := newGateOpt(optimizer.NewSGD(0.5))
	st, err := NewStoreSharded(initial, gate, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(5))
	first := pipelineGrads(rng, initial)
	t1, err := st.EnqueueApply(first)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // the applier is now stuck inside push 1's Step

	const queued = 6
	grads := make([][]*tensor.Tensor, queued)
	for i := range grads {
		grads[i] = pipelineGrads(rng, initial)
		if _, err := st.EnqueueApply(grads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Reserved(); got != 1+queued {
		t.Fatalf("reserved %d, want %d", got, 1+queued)
	}
	if got := st.Version(); got != 0 {
		t.Fatalf("version %d before any apply finished, want 0", got)
	}
	close(gate.resume)
	if !st.WaitApplied(1+queued, nil) {
		t.Fatal("WaitApplied returned false without cancel")
	}
	if got := st.Version(); got != 1+queued {
		t.Fatalf("version %d after drain, want %d", got, 1+queued)
	}
	_ = t1
	steps := gate.steps.Load()
	if steps >= 1+queued {
		t.Fatalf("took %d optimizer steps for %d pushes; expected coalescing to batch the backlog", steps, 1+queued)
	}
	if steps < 2 {
		t.Fatalf("took %d optimizer steps, want at least the gated one plus one batch", steps)
	}

	// Plain SGD: k serial steps and one summed step agree up to float
	// associativity.
	ref := make([]*tensor.Tensor, len(initial))
	refOpt := optimizer.NewSGD(0.5)
	for i, p := range initial {
		ref[i] = p.Clone()
	}
	refOpt.Step(ref, first)
	for _, g := range grads {
		refOpt.Step(ref, g)
	}
	got, _ := st.Snapshot()
	for i := range got {
		if !got[i].ApproxEqual(ref[i], 1e-4) {
			t.Fatalf("tensor %d diverged beyond tolerance from the serial reference under coalescing", i)
		}
	}
}

// TestStoreCloseDrainsAndRestarts pins Close's contract: every accepted
// ticket is applied before Close returns, and a later apply restarts the
// pipeline transparently.
func TestStoreCloseDrainsAndRestarts(t *testing.T) {
	initial := pipelineModel(9)
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.1), len(initial))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if _, err := st.EnqueueApply(pipelineGrads(rng, initial)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if v, r := st.Version(), st.Reserved(); v != r || v != 10 {
		t.Fatalf("after Close: version %d, reserved %d, want both 10", v, r)
	}
	st.Close() // idempotent
	if v, err := st.Apply(pipelineGrads(rng, initial)); err != nil || v != 11 {
		t.Fatalf("apply after Close: version %d, err %v, want 11, nil", v, err)
	}
	st.Close()
}

// TestWaitAppliedCancel pins the cancel path: a waiter whose target never
// arrives unblocks when its cancel channel closes, reporting false.
func TestWaitAppliedCancel(t *testing.T) {
	st := testStore(t, 4)
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- st.WaitApplied(5, cancel) }()
	select {
	case <-done:
		t.Fatal("WaitApplied returned before cancel with nothing applied")
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled WaitApplied reported success")
		}
	case <-time.After(time.Second):
		t.Fatal("WaitApplied ignored cancel")
	}
}

// TestApplyReturnPermitsBufferReuseUnderConcurrency pins EnqueueApply's
// ordering contract under concurrent direct Store.Apply callers (the server
// path is additionally serialized by policyMu; checkpoint restore and
// library users are not): ticket assignment and per-shard queue insertion
// are one atomic step, so queues hold pushes in ticket order and a returned
// Apply means that push is absorbed on every shard. Each worker therefore
// poisons its gradient buffers the moment Apply returns; if an interleaved
// enqueue ever let a later ticket's apply wake an earlier, still-queued
// ticket, a poisoned buffer would reach an optimizer step (and under -race
// the poisoning write would race the applier's read).
func TestApplyReturnPermitsBufferReuseUnderConcurrency(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(16, 4), tensor.New(33), tensor.New(7, 3)}
	st, err := NewStoreSharded(initial, optimizer.NewSGD(1.0), len(initial))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const workers = 8
	const rounds = 60
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			grads := make([]*tensor.Tensor, len(initial))
			for i, p := range initial {
				grads[i] = tensor.New(p.Shape()...)
			}
			for r := 0; r < rounds; r++ {
				for _, g := range grads {
					g.Fill(1)
				}
				if _, err := st.Apply(grads); err != nil {
					t.Error(err)
					return
				}
				for _, g := range grads {
					g.Fill(1e6)
				}
			}
		}()
	}
	wg.Wait()
	st.Close()

	params, version := st.Snapshot()
	if version != workers*rounds {
		t.Fatalf("final version %d, want %d", version, workers*rounds)
	}
	// lr=1 plain SGD over all-ones gradients: every element moved by exactly
	// -1 per push (sums of small integers are exact in float32).
	want := float32(-(workers * rounds))
	for i, p := range params {
		for j, v := range p.Data() {
			if v != want {
				t.Fatalf("param %d[%d] = %v, want %v — a reused gradient buffer reached an optimizer step", i, j, v, want)
			}
		}
	}
}

// TestWaitAppliedCancelDeregistersWaiter pins that a cancelled wait leaves
// no entry behind: retries with cancels against a target that never arrives
// (a stopped server, say) must not accumulate registrations for the store's
// lifetime.
func TestWaitAppliedCancelDeregistersWaiter(t *testing.T) {
	st := testStore(t, 4)
	cancel := make(chan struct{})
	close(cancel)
	for i := 0; i < 64; i++ {
		if st.WaitApplied(int64(100+i), cancel) {
			t.Fatalf("retry %d: WaitApplied reported success with nothing applied", i)
		}
	}
	st.waitMu.Lock()
	n := len(st.waiters)
	st.waitMu.Unlock()
	if n != 0 {
		t.Fatalf("%d waiter entries left registered after cancelled waits, want 0", n)
	}
}

// TestStalenessObserveOffByOne pins the staleness formula — Observe(applied
// - 1 - baseVersion), where applied is the push's assigned version — under
// the serial path (each push applied before the next arrives). Worker 0
// pushes against base 0 twice: the first lands at version 1 (staleness 0),
// the second still claims base 0 but lands at version 2 (staleness 1).
func TestStalenessObserveOffByOne(t *testing.T) {
	st := testStore(t, 4)
	srv, clients := startTestServer(t, core.MustNewASP(1), st)
	grad := []*tensor.Tensor{tensor.Full(0.1, 4)}
	if err := clients[0].PushAndWait(grad, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].PushAndWait(grad, 0, 1); err != nil {
		t.Fatal(err)
	}
	values, counts := srv.Staleness().Buckets()
	if len(values) != 2 || values[0] != 0 || values[1] != 1 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("staleness buckets %v/%v, want exactly one 0 and one 1", values, counts)
	}
}

// TestStalenessObserveOffByOneCoalesced repeats the off-by-one pin with the
// applier gated so both pushes sit in one coalesced batch: tickets are
// assigned under the policy lock before any apply completes, so the
// histogram must be identical to the serial path's.
func TestStalenessObserveOffByOneCoalesced(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(4)}
	gate := newGateOpt(optimizer.NewSGD(1.0))
	st, err := NewStoreSharded(initial, gate, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, clients := startTestServer(t, core.MustNewASP(2), st)

	grad := []*tensor.Tensor{tensor.Full(0.1, 4)}
	// Worker 0's push enters the gated Step; worker 1's push queues behind
	// it. Base versions are both 0, so the assigned tickets 1 and 2 must
	// observe staleness 0 and 1 exactly as if applied serially.
	push := func(c *Client, it int) chan error {
		ch := make(chan error, 1)
		go func() { ch <- c.PushAndWait(grad, 0, it) }()
		return ch
	}
	done0 := push(clients[0], 0)
	<-gate.entered
	done1 := push(clients[1], 0)
	// The second ticket is assigned under policyMu before the release goes
	// out; wait until the server has counted both pushes.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Pushes() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never counted the queued push")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.resume)
	if err := <-done0; err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if steps := gate.steps.Load(); steps != 2 {
		t.Fatalf("optimizer ran %d steps, want 2 (one gated, one coalesced batch)", steps)
	}
	values, counts := srv.Staleness().Buckets()
	if len(values) != 2 || values[0] != 0 || values[1] != 1 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("coalesced staleness buckets %v/%v, want exactly one 0 and one 1", values, counts)
	}
}

// TestPushErrorStillReleasesPeers pins the error-release interaction through
// the unified delivery helper: under BSP, a worker whose push fails to apply
// must receive the error (not an OK), while the peers its round released
// still get their OKs — a single bad payload must not deadlock the barrier.
func TestPushErrorStillReleasesPeers(t *testing.T) {
	st := testStore(t, 4)
	bsp, err := core.NewBSP(2)
	if err != nil {
		t.Fatal(err)
	}
	_, clients := startTestServer(t, bsp, st)

	// Worker 0 pushes a structurally valid message whose tensor count does
	// not match the store: decode succeeds, EnqueueApply rejects, and the
	// policy has already counted the push toward the barrier.
	errCh := make(chan error, 1)
	go func() {
		errCh <- clients[0].PushAndWait([]*tensor.Tensor{tensor.New(4), tensor.New(2)}, 0, 0)
	}()
	okCh := make(chan error, 1)
	go func() {
		okCh <- clients[1].PushAndWait([]*tensor.Tensor{tensor.Full(0.1, 4)}, 0, 0)
	}()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("worker 0's bad push reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker 0 never heard back about its bad push")
	}
	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("worker 1's good push failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker 1 deadlocked behind worker 0's bad push")
	}
	if st.Version() != 1 {
		t.Fatalf("store version %d, want 1 (only the good push applied)", st.Version())
	}
}

// TestStaleGatedReleaseNeverReachesSuccessorSession pins release delivery to
// the sessions the decision accounted for: an OK that waits on its apply
// gate while its worker leaves and rejoins must die with the old session,
// never land on the successor — a rejoined worker has not pushed on its new
// session, so a stale OK would surface as an out-of-turn message on its
// next Pull. The applier is held inside the optimizer step so the
// leave/rejoin deterministically happens while the release is gated.
func TestStaleGatedReleaseNeverReachesSuccessorSession(t *testing.T) {
	initial := []*tensor.Tensor{tensor.New(4)}
	gate := newGateOpt(optimizer.NewSGD(1.0))
	st, err := NewStoreSharded(initial, gate, 1)
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := core.NewBSP(2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Workers: 2, Policy: bsp, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	t.Cleanup(func() {
		srv.Stop()
		listener.Close()
	})
	clients := make([]*Client, 2)
	for w := range clients {
		conn, err := listener.Dial()
		if err != nil {
			t.Fatal(err)
		}
		clients[w] = NewClient(conn, w)
		if err := clients[w].Register(); err != nil {
			t.Fatal(err)
		}
	}

	grad := []*tensor.Tensor{tensor.Full(0.1, 4)}
	push := func(c *Client) chan error {
		ch := make(chan error, 1)
		go func() { ch <- c.PushAndWait(grad, 0, 0) }()
		return ch
	}
	// Worker 0's push enters the gated optimizer step; worker 1's completes
	// the barrier, queueing a release for both workers gated on both applies.
	done0 := push(clients[0])
	<-gate.entered
	done1 := push(clients[1])
	deadline := time.Now().Add(2 * time.Second)
	for srv.Pushes() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never counted the second push")
		}
		time.Sleep(time.Millisecond)
	}

	// With the release still gated, worker 1 leaves and rejoins on a fresh
	// connection — the real reconnect flow.
	if err := clients[1].Leave(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for srv.Departures() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never processed the leave")
		}
		time.Sleep(time.Millisecond)
	}
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	rejoined := NewClient(conn, 1)
	if err := rejoined.Rejoin(st.Version()); err != nil {
		t.Fatal(err)
	}

	close(gate.resume)
	select {
	case err := <-done0:
		if err != nil {
			t.Fatalf("worker 0's barrier release never arrived: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker 0 still blocked after the gate opened")
	}
	// The rejoined session's first reply must be the pull's weights — with
	// delivery keyed on worker IDs it would be worker 1's stale pre-departure
	// OK instead.
	params, version, err := rejoined.Pull()
	if err != nil {
		t.Fatalf("rejoined worker's first pull failed: %v", err)
	}
	if version != 2 || len(params) != 1 {
		t.Fatalf("rejoined pull returned version %d with %d tensors, want version 2 with 1", version, len(params))
	}
	select {
	case <-done1: // leave tore down the old connection; any outcome is fine
	case <-time.After(5 * time.Second):
		t.Fatal("worker 1's abandoned push never unblocked")
	}
}

// TestBatchObserverSeesCoalescedAdvances wires a policy implementing
// core.BatchObserver and verifies it observes every version advance with
// batch sizes that sum to the push count.
func TestBatchObserverSeesCoalescedAdvances(t *testing.T) {
	st := testStore(t, 4)
	policy := &observingPolicy{Policy: core.MustNewASP(1)}
	srv, err := NewServer(ServerConfig{Workers: 1, Policy: policy, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	listener := transport.NewChanListener()
	go func() { _ = srv.Serve(listener) }()
	defer func() {
		srv.Stop()
		listener.Close()
	}()
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, 0)
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	grad := []*tensor.Tensor{tensor.Full(0.1, 4)}
	const pushes = 5
	for i := 0; i < pushes; i++ {
		if err := client.PushAndWait(grad, int64(i), i); err != nil {
			t.Fatal(err)
		}
	}
	st.WaitApplied(pushes, nil)
	// The observer pump runs on its own goroutine; give it a moment to
	// deliver the final advance.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total, last := policy.observed()
		if total == pushes && last == pushes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observer saw batches summing to %d at version %d, want %d/%d", total, last, pushes, pushes)
		}
		time.Sleep(time.Millisecond)
	}
	total, last := policy.observed()
	if total != pushes || last != pushes {
		t.Fatalf("observer saw %d/%d, want %d/%d", total, last, pushes, pushes)
	}
}

// observingPolicy decorates a Policy with core.BatchObserver, recording the
// batched advances it is shown.
type observingPolicy struct {
	core.Policy
	mu          sync.Mutex
	batchTotal  int
	lastVersion int64
}

func (p *observingPolicy) OnBatchApplied(version int64, batch int) {
	p.mu.Lock()
	p.batchTotal += batch
	p.lastVersion = version
	p.mu.Unlock()
}

func (p *observingPolicy) observed() (int, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batchTotal, p.lastVersion
}

// TestPackShardCacheNeverStaleUnderCoalescedApplies hammers the packed-pull
// cache from many readers while the applier pipeline lands coalesced
// batches, then quiesces and verifies the cache serves exactly the final
// published snapshot at the final shard version. Run under -race this also
// proves the cache fill, the COW publication and the batched version bumps
// never touch shared state unsynchronized.
func TestPackShardCacheNeverStaleUnderCoalescedApplies(t *testing.T) {
	initial := pipelineModel(21)
	st, err := NewStoreSharded(initial, optimizer.NewSGD(0.05), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := compress.Config{Codec: compress.FP16}.Normalized()
	pack := func(params []*tensor.Tensor) []compress.Packed { return compress.Pack(params, cfg) }

	const pushes = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var lastV int64 = -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				packed, _, _, shardV, unchanged := st.PackShardDelta(shard%st.Shards(), lastV, pack)
				if unchanged {
					continue
				}
				if shardV < lastV {
					t.Errorf("shard version went backwards: %d after %d", shardV, lastV)
					return
				}
				lastV = shardV
				if _, err := compress.DecompressAll(packed); err != nil {
					t.Errorf("cache served undecodable payload: %v", err)
					return
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(77))
	gradSets := make([][]*tensor.Tensor, pushes)
	for i := range gradSets {
		gradSets[i] = pipelineGrads(rng, initial)
	}
	for _, g := range gradSets {
		if _, err := st.EnqueueApply(g); err != nil {
			t.Fatal(err)
		}
	}
	st.WaitApplied(pushes, nil)
	close(stop)
	wg.Wait()

	// Quiesced: the cache must now serve the final snapshot, never anything
	// the batched version bumps left behind.
	for i := 0; i < st.Shards(); i++ {
		packed, _, version, _, unchanged := st.PackShardDelta(i, -1, pack)
		if unchanged {
			t.Fatalf("shard %d reported unchanged against have=-1", i)
		}
		if version != pushes {
			t.Fatalf("shard %d packed at aggregate version %d, want %d", i, version, pushes)
		}
		got, err := compress.DecompressAll(packed)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := st.SnapshotShard(i)
		wantPacked := compress.Pack(want, cfg)
		wantRT, err := compress.DecompressAll(wantPacked)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tensor.EncodeTensors(got), tensor.EncodeTensors(wantRT)) {
			t.Fatalf("shard %d packed cache does not match the final published snapshot", i)
		}
	}
}
