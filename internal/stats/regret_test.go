package stats

import (
	"math"
	"testing"
)

func validParams() RegretParams {
	return RegretParams{F: 1, L: 1, Workers: 4, T: 10000}
}

func TestSSPRegretBoundFormula(t *testing.T) {
	p := validParams()
	got, err := SSPRegretBound(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Sqrt(2*4*4*10000)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestDSSPRegretBoundEqualsSSPAtUpperThreshold(t *testing.T) {
	// Theorem 2's proof: DSSP with range [sL, sL+r] has the bound of SSP with
	// threshold sL+r.
	p := validParams()
	dssp, err := DSSPRegretBound(p, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	ssp, err := SSPRegretBound(p, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dssp-ssp) > 1e-9 {
		t.Fatalf("DSSP bound %v differs from SSP(15) bound %v", dssp, ssp)
	}
}

func TestRegretBoundMonotoneInStaleness(t *testing.T) {
	p := validParams()
	prev := 0.0
	for s := 0; s < 20; s++ {
		b, err := SSPRegretBound(p, s)
		if err != nil {
			t.Fatal(err)
		}
		if b <= prev {
			t.Fatalf("bound not increasing at s=%d: %v <= %v", s, b, prev)
		}
		prev = b
	}
}

func TestRegretRateVanishesWithT(t *testing.T) {
	// R[X]/T = O(1/sqrt(T)) -> 0: the rate at T=10^6 must be far below the
	// rate at T=10^2.
	p := validParams()
	p.T = 100
	b1, _ := SSPRegretBound(p, 3)
	r1 := RegretRate(b1, p.T)
	p.T = 1000000
	b2, _ := SSPRegretBound(p, 3)
	r2 := RegretRate(b2, p.T)
	if !(r2 < r1/10) {
		t.Fatalf("regret rate does not vanish: %v at T=100 vs %v at T=1e6", r1, r2)
	}
	if !math.IsInf(RegretRate(b2, 0), 1) {
		t.Fatal("RegretRate with T=0 should be +Inf")
	}
}

func TestSSPStepSizeFormula(t *testing.T) {
	p := validParams()
	got, err := SSPStepSize(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / math.Sqrt(2*4*4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", got, want)
	}
	if _, err := SSPStepSize(p, -1); err == nil {
		t.Fatal("expected error for negative staleness")
	}
}

func TestRegretValidation(t *testing.T) {
	bad := []RegretParams{
		{F: 0, L: 1, Workers: 1, T: 1},
		{F: 1, L: 0, Workers: 1, T: 1},
		{F: 1, L: 1, Workers: 0, T: 1},
		{F: 1, L: 1, Workers: 1, T: 0},
	}
	for _, p := range bad {
		if _, err := SSPRegretBound(p, 1); err == nil {
			t.Errorf("params %+v: expected error", p)
		}
	}
	if _, err := SSPRegretBound(validParams(), -1); err == nil {
		t.Error("expected error for negative staleness")
	}
	if _, err := DSSPRegretBound(validParams(), -1, 2); err == nil {
		t.Error("expected error for negative lower bound")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
}

func TestLinearSlope(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // slope 2
	if got := LinearSlope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope = %v, want 2", got)
	}
	if LinearSlope(xs, ys[:3]) != 0 {
		t.Fatal("mismatched lengths should return 0")
	}
	if LinearSlope([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("degenerate x should return 0")
	}
}

func TestSqrtTGrowthOfBound(t *testing.T) {
	// The bound itself grows like sqrt(T): quadrupling T doubles the bound.
	p := validParams()
	p.T = 1000
	b1, _ := SSPRegretBound(p, 5)
	p.T = 4000
	b2, _ := SSPRegretBound(p, 5)
	if math.Abs(b2/b1-2) > 1e-9 {
		t.Fatalf("bound ratio = %v, want 2", b2/b1)
	}
}
