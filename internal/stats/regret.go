// Package stats implements the quantitative analysis tools of the paper's
// Section IV: the regret bounds of SGD under SSP (Theorem 1) and under DSSP
// (Theorem 2), and helpers for checking the O(√T) behaviour empirically.
package stats

import (
	"fmt"
	"math"
)

// RegretParams collects the constants appearing in Theorems 1 and 2.
type RegretParams struct {
	// F bounds the diameter of the feasible region: D(w||w') <= F².
	F float64
	// L is the Lipschitz constant of the per-iteration loss components.
	L float64
	// Workers is P, the number of workers.
	Workers int
	// T is the number of iterations.
	T int
}

// validate reports an error for non-positive constants.
func (p RegretParams) validate() error {
	if p.F <= 0 || p.L <= 0 {
		return fmt.Errorf("stats: F and L must be positive, got F=%g L=%g", p.F, p.L)
	}
	if p.Workers <= 0 {
		return fmt.Errorf("stats: worker count must be positive, got %d", p.Workers)
	}
	if p.T <= 0 {
		return fmt.Errorf("stats: iteration count must be positive, got %d", p.T)
	}
	return nil
}

// SSPRegretBound returns the right-hand side of Theorem 1:
// R[X] <= 4FL sqrt(2(s+1)PT) for SSP with staleness threshold s.
func SSPRegretBound(p RegretParams, staleness int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if staleness < 0 {
		return 0, fmt.Errorf("stats: staleness must be >= 0, got %d", staleness)
	}
	return 4 * p.F * p.L * math.Sqrt(2*float64(staleness+1)*float64(p.Workers)*float64(p.T)), nil
}

// DSSPRegretBound returns the right-hand side of Theorem 2:
// R[X] <= 4FL sqrt(2(sL+r+1)PT) where r is the largest value in the range
// R = [0, sU-sL].
func DSSPRegretBound(p RegretParams, lower, rangeLen int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if lower < 0 || rangeLen < 0 {
		return 0, fmt.Errorf("stats: lower bound and range must be >= 0, got %d/%d", lower, rangeLen)
	}
	return SSPRegretBound(p, lower+rangeLen)
}

// SSPStepSize returns the theorem's learning-rate constant sigma =
// F / (L sqrt(2(s+1)P)), the step-size scale under which the bound holds.
func SSPStepSize(p RegretParams, staleness int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if staleness < 0 {
		return 0, fmt.Errorf("stats: staleness must be >= 0, got %d", staleness)
	}
	return p.F / (p.L * math.Sqrt(2*float64(staleness+1)*float64(p.Workers))), nil
}

// RegretRate returns bound/T, the average regret per iteration; Theorems 1
// and 2 state that it vanishes as T grows.
func RegretRate(bound float64, t int) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return bound / float64(t)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// LinearSlope fits y = a + b*x by least squares and returns the slope b. It
// is used by tests to verify that cumulative regret grows sub-linearly: the
// slope of regret/T against T must be non-positive (within noise).
func LinearSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
