// Package experiment is the declarative scenario-matrix harness for
// robustness and hostile-network studies: it crosses attacks (Byzantine
// workers poisoning gradients, lying about clocks, flooding pushes) with
// defenses (robust aggregators, the server's anomaly guard) over N trials
// per cell, runs real training through internal/trainer for each cell, and
// aggregates the outcomes into a detection/robustness table — accuracy,
// dropped updates, evictions, and attacker-detection TPR/FPR — renderable
// as text or JSON.
//
// A second, simulator-backed matrix (TimingMatrix) crosses synchronization
// paradigms with hostile network scenarios (Markov-modulated flapping,
// slow, and partitioned links plus mid-run crash/rejoin events) to measure
// the timing side: finish time, throughput, staleness, and simulated guard
// evictions at scales the in-process trainer cannot reach.
package experiment

import (
	"fmt"

	"dssp/internal/ps"
	"dssp/internal/trainer"
)

// Attack is one adversary column of the matrix: which worker slots are
// Byzantine and how they corrupt their pushes. The zero Attack (no workers)
// is the clean baseline.
type Attack struct {
	// Name labels the attack in reports.
	Name string
	// Workers lists the attacker slots.
	Workers []int
	// Adversary is the behaviour each listed worker exhibits.
	Adversary trainer.Adversary
}

// adversaries builds the trainer's per-worker adversary map.
func (a Attack) adversaries() map[int]trainer.Adversary {
	if len(a.Workers) == 0 {
		return nil
	}
	m := make(map[int]trainer.Adversary, len(a.Workers))
	for _, w := range a.Workers {
		m[w] = a.Adversary
	}
	return m
}

// Defense is one defense row of the matrix: the aggregator installed in the
// server's apply pipeline and the anomaly guard's configuration. The zero
// Defense (plain sum, no guard) is the undefended baseline.
type Defense struct {
	// Name labels the defense in reports.
	Name string
	// Aggregator selects the gradient combiner (sum, clipped, trimmed-mean,
	// median).
	Aggregator ps.AggregatorConfig
	// Guard configures push screening and eviction.
	Guard ps.GuardConfig
}

// Standard matrix axes.

// CleanBaseline is the no-attack column.
func CleanBaseline() Attack { return Attack{Name: "clean"} }

// GradScaleAttack makes the listed workers push gradients scaled by factor
// (negative factors push ascent).
func GradScaleAttack(factor float64, workers ...int) Attack {
	return Attack{
		Name:      fmt.Sprintf("grad-scale(%g)", factor),
		Workers:   workers,
		Adversary: trainer.Adversary{GradScale: factor},
	}
}

// SignFlipAttack makes the listed workers negate their gradients.
func SignFlipAttack(workers ...int) Attack {
	return Attack{Name: "sign-flip", Workers: workers, Adversary: trainer.Adversary{SignFlip: true}}
}

// LyingClockAttack makes the listed workers claim impossible base versions.
func LyingClockAttack(workers ...int) Attack {
	return Attack{Name: "lying-clock", Workers: workers, Adversary: trainer.Adversary{LieVersion: true}}
}

// SumDefense is the undefended baseline: plain summation, no guard.
func SumDefense() Defense { return Defense{Name: "sum"} }

// TrimmedMeanDefense aggregates over windows with the coordinate-wise
// trimmed mean.
func TrimmedMeanDefense() Defense {
	return Defense{Name: "trimmed-mean", Aggregator: ps.AggregatorConfig{Kind: ps.AggTrimmedMean}}
}

// MedianDefense aggregates over windows with the coordinate-wise median.
func MedianDefense() Defense {
	return Defense{Name: "median", Aggregator: ps.AggregatorConfig{Kind: ps.AggMedian}}
}

// ClippedDefense caps per-tensor gradient norms at clip.
func ClippedDefense(clip float64) Defense {
	return Defense{
		Name:       fmt.Sprintf("clipped(%g)", clip),
		Aggregator: ps.AggregatorConfig{Kind: ps.AggClipped, ClipNorm: clip},
	}
}

// GuardedDefense adds the anomaly guard to another defense.
func GuardedDefense(base Defense) Defense {
	base.Name += "+guard"
	base.Guard = ps.GuardConfig{Enabled: true}
	return base
}

// ScenarioConfig is the declarative description of one training matrix: a
// base training run crossed with every (attack, defense) pair, repeated
// Trials times per cell under distinct seeds.
type ScenarioConfig struct {
	// Name titles the report.
	Name string
	// Base is the training run every cell derives from. Its Adversaries,
	// Aggregator and Guard fields are overwritten per cell; everything
	// else (model, dataset, paradigm, workers, epochs, ...) is shared.
	Base trainer.Config
	// Attacks are the matrix columns; empty defaults to a clean baseline
	// plus a 1-attacker gradient-scale attack.
	Attacks []Attack
	// Defenses are the matrix rows; empty defaults to plain sum and
	// trimmed-mean.
	Defenses []Defense
	// Trials is how many runs aggregate into each cell; 0 means 1.
	Trials int
}

// withDefaults fills the grid axes and trial count.
func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Trials <= 0 {
		c.Trials = 1
	}
	if len(c.Attacks) == 0 {
		attacker := c.Base.Workers - 1
		if attacker < 0 {
			attacker = 0
		}
		c.Attacks = []Attack{CleanBaseline(), GradScaleAttack(-10, attacker)}
	}
	if len(c.Defenses) == 0 {
		c.Defenses = []Defense{SumDefense(), TrimmedMeanDefense()}
	}
	return c
}

// validate rejects grids that cannot run.
func (c ScenarioConfig) validate() error {
	for _, a := range c.Attacks {
		for _, w := range a.Workers {
			if w < 0 || w >= c.Base.Workers {
				return fmt.Errorf("experiment: attack %q names worker %d outside [0,%d)", a.Name, w, c.Base.Workers)
			}
		}
	}
	for _, d := range c.Defenses {
		if err := d.Aggregator.Normalized().Validate(); err != nil {
			return fmt.Errorf("experiment: defense %q: %w", d.Name, err)
		}
	}
	return nil
}

// Run executes the full matrix and aggregates each cell.
func Run(cfg ScenarioConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	report := &Report{Name: cfg.Name, Trials: cfg.Trials}
	for _, atk := range cfg.Attacks {
		for _, def := range cfg.Defenses {
			cell, err := runCell(cfg, atk, def)
			if err != nil {
				return nil, fmt.Errorf("experiment: cell (%s, %s): %w", atk.Name, def.Name, err)
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	return report, nil
}

// runCell runs one (attack, defense) cell's trials and aggregates them.
func runCell(cfg ScenarioConfig, atk Attack, def Defense) (Cell, error) {
	attackers := make(map[int]bool, len(atk.Workers))
	for _, w := range atk.Workers {
		attackers[w] = true
	}
	cell := Cell{
		Attack:      atk.Name,
		Defense:     def.Name,
		Attackers:   len(atk.Workers),
		MinAccuracy: 1,
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		run := cfg.Base
		run.Adversaries = atk.adversaries()
		run.Aggregator = def.Aggregator
		run.Guard = def.Guard
		// Distinct seeds decorrelate trials; the base seed keeps trial 0
		// reproducible against a single direct trainer.Run.
		run.Seed = cfg.Base.Seed + int64(trial)*7919
		res, err := trainer.Run(run)
		if err != nil {
			return Cell{}, fmt.Errorf("trial %d: %w", trial, err)
		}
		cell.observe(res, attackers, cfg.Base.Workers)
	}
	cell.finalize(cfg.Trials)
	return cell, nil
}

// observe folds one trial's result into the cell's accumulators.
func (c *Cell) observe(res *trainer.Result, attackers map[int]bool, workers int) {
	c.MeanAccuracy += res.FinalAccuracy
	if res.FinalAccuracy < c.MinAccuracy {
		c.MinAccuracy = res.FinalAccuracy
	}
	c.MeanDropped += float64(res.Dropped + res.Guard.DroppedPushes)
	c.MeanEvictions += float64(len(res.Guard.Evicted))
	if c.Pipeline == nil {
		c.Pipeline = make(map[string]float64, len(res.Metrics))
	}
	for k, v := range res.Metrics {
		c.Pipeline[k] += v
	}

	// Detection rates count a worker as detected when the guard flagged it
	// at least once. TPR averages over attacker slots, FPR over honest
	// ones; without a guard both stay 0 (nothing is ever flagged).
	for w, flags := range res.Guard.Flags {
		if flags == 0 {
			continue
		}
		if attackers[w] {
			c.tpHits++
		} else {
			c.fpHits++
		}
	}
	c.tpSlots += len(attackers)
	c.fpSlots += workers - len(attackers)
}

// finalize turns accumulators into per-trial means and rates.
func (c *Cell) finalize(trials int) {
	n := float64(trials)
	c.MeanAccuracy /= n
	c.MeanDropped /= n
	c.MeanEvictions /= n
	if c.tpSlots > 0 {
		c.TPR = float64(c.tpHits) / float64(c.tpSlots)
	}
	if c.fpSlots > 0 {
		c.FPR = float64(c.fpHits) / float64(c.fpSlots)
	}
	for k := range c.Pipeline {
		c.Pipeline[k] /= n
	}
}
