package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/nn"
	"dssp/internal/ps"
	"dssp/internal/simulate"
	"dssp/internal/trainer"
)

// baseTraining is the shared 4-worker training run the matrix cells derive
// from: small enough that a 2x2 grid with trials stays under a second.
func baseTraining() trainer.Config {
	full := data.MustSynthetic(data.SyntheticConfig{
		Examples: 176, Classes: 3, Channels: 1, Size: 12, Noise: 0.4, Flat: true, Seed: 11,
	})
	trainIdx := make([]int, 128)
	testIdx := make([]int, 48)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = 128 + i
	}
	return trainer.Config{
		Model:        nn.SpecSmallMLP(12, 16, 3),
		Train:        full.Subset(trainIdx),
		Test:         full.Subset(testIdx),
		Workers:      4,
		BatchSize:    8,
		Epochs:       6,
		Policy:       core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3},
		LearningRate: 0.1,
		Seed:         5,
	}
}

// TestMatrixSeparatesDefenses is the harness's reason to exist: on the
// default 2x2 grid the undefended attacked cell collapses while the
// trimmed-mean attacked cell stays near the clean baseline.
func TestMatrixSeparatesDefenses(t *testing.T) {
	report, err := Run(ScenarioConfig{Name: "smoke", Base: baseTraining()})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) != 4 {
		t.Fatalf("got %d cells, want 4 from the default 2x2 grid", len(report.Cells))
	}
	clean, ok := report.Cell("clean", "sum")
	if !ok {
		t.Fatal("missing (clean, sum) cell")
	}
	attackedSum, _ := report.Cell("grad-scale(-10)", "sum")
	attackedRobust, _ := report.Cell("grad-scale(-10)", "trimmed-mean")
	if clean.MeanAccuracy < 0.6 {
		t.Fatalf("clean baseline accuracy %v, want >= 0.6", clean.MeanAccuracy)
	}
	if attackedSum.MeanAccuracy > clean.MeanAccuracy-0.2 {
		t.Fatalf("attacked sum cell at %v, want well below clean %v", attackedSum.MeanAccuracy, clean.MeanAccuracy)
	}
	if attackedRobust.MeanAccuracy < clean.MeanAccuracy-0.15 {
		t.Fatalf("attacked trimmed-mean cell at %v, want within 0.15 of clean %v", attackedRobust.MeanAccuracy, clean.MeanAccuracy)
	}
}

// TestGuardDetectionRates: a guarded defense against a lying-clock attack
// must show full TPR and zero FPR, and the floor helper must see the
// guarded cells.
func TestGuardDetectionRates(t *testing.T) {
	cfg := ScenarioConfig{
		Base:     baseTraining(),
		Attacks:  []Attack{CleanBaseline(), LyingClockAttack(3)},
		Defenses: []Defense{GuardedDefense(SumDefense())},
		Trials:   2,
	}
	cfg.Base.Policy = core.PolicyConfig{Paradigm: core.ParadigmASP}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attacked, ok := report.Cell("lying-clock", "sum+guard")
	if !ok {
		t.Fatal("missing attacked guarded cell")
	}
	if attacked.TPR != 1 {
		t.Fatalf("TPR = %v, want 1 (attacker flagged every trial)", attacked.TPR)
	}
	if attacked.FPR != 0 {
		t.Fatalf("FPR = %v, want 0 (no honest worker flagged)", attacked.FPR)
	}
	if attacked.MeanEvictions < 1 {
		t.Fatalf("mean evictions %v, want >= 1", attacked.MeanEvictions)
	}
	clean, _ := report.Cell("clean", "sum+guard")
	if clean.TPR != 0 || clean.FPR != 0 || clean.MeanEvictions != 0 {
		t.Fatalf("clean cell shows detections: %+v", clean)
	}
	if floor := report.MinAccuracyOver("", ""); floor < 0.6 {
		t.Fatalf("accuracy floor %v across guarded cells, want >= 0.6", floor)
	}
}

func TestMatrixValidation(t *testing.T) {
	cfg := ScenarioConfig{
		Base:    baseTraining(),
		Attacks: []Attack{GradScaleAttack(-10, 99)},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("attack naming worker 99 validated")
	}
	cfg = ScenarioConfig{
		Base:     baseTraining(),
		Defenses: []Defense{{Name: "bad", Aggregator: ps.AggregatorConfig{Kind: "bogus"}}},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown aggregator kind validated")
	}
}

// TestReportRendering: the table and JSON forms carry the grid.
func TestReportRendering(t *testing.T) {
	report, err := Run(ScenarioConfig{
		Name:     "render",
		Base:     baseTraining(),
		Attacks:  []Attack{CleanBaseline()},
		Defenses: []Defense{SumDefense()},
	})
	if err != nil {
		t.Fatal(err)
	}
	report.Timing, err = TimingMatrix(TimingMatrixConfig{
		Policies:  []core.PolicyConfig{{Paradigm: core.ParadigmSSP, Staleness: 2}},
		Scenarios: []NetworkScenario{CalmNetwork()},
		Trials:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := report.Table()
	for _, want := range []string{"attack", "clean", "sum", "timing (simulated)", "calm"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	raw, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cells) != 1 || decoded.Cells[0].Attack != "clean" {
		t.Fatalf("JSON round-trip lost cells: %+v", decoded.Cells)
	}
	if len(decoded.Timing) != 1 {
		t.Fatalf("JSON round-trip lost timing cells: %+v", decoded.Timing)
	}
}

// TestTimingMatrixHostileNetworksCost: flapping and partitioned scenarios
// must finish later than calm under every default paradigm.
func TestTimingMatrixHostileNetworksCost(t *testing.T) {
	cells, err := TimingMatrix(TimingMatrixConfig{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Index mean finishes by scenario then paradigm.
	finish := map[string]map[string]float64{}
	for _, c := range cells {
		if finish[c.Scenario] == nil {
			finish[c.Scenario] = map[string]float64{}
		}
		finish[c.Scenario][c.Paradigm] = float64(c.MeanFinish)
	}
	for paradigm := range finish["calm"] {
		calm := finish["calm"][paradigm]
		for _, hostile := range []string{"flapping", "partitioned"} {
			if finish[hostile][paradigm] <= calm {
				t.Errorf("%s under %s finished at %v, not later than calm %v",
					paradigm, hostile, finish[hostile][paradigm], calm)
			}
		}
	}
}

// TestTimingMatrixGuardEviction: a simulated lying-clock scenario with the
// guard enabled must report evictions.
func TestTimingMatrixGuardEviction(t *testing.T) {
	cells, err := TimingMatrix(TimingMatrixConfig{
		Policies: []core.PolicyConfig{{Paradigm: core.ParadigmASP}},
		Scenarios: []NetworkScenario{{
			Name:        "lying-clock",
			Adversaries: map[int]simulate.AdversaryKind{1: simulate.AdversaryLyingClock},
			Guard:       simulate.GuardSpec{Enabled: true},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].MeanEvictions < 1 {
		t.Fatalf("cells %+v, want one cell with >= 1 eviction", cells)
	}
}

// TestTimingMatrixFanoutCutsRootIngress sweeps the aggregation-tier fanout
// (flat vs 4 vs 8) and checks the root's simulated push ingress falls
// monotonically with fanout in every paradigm, while throughput survives.
func TestTimingMatrixFanoutCutsRootIngress(t *testing.T) {
	cells, err := TimingMatrix(TimingMatrixConfig{
		Cluster:   simulate.HomogeneousCluster(16),
		Scenarios: []NetworkScenario{CalmNetwork()},
		Fanouts:   []int{0, 4, 8},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := map[string]map[int]float64{}
	for _, c := range cells {
		if frames[c.Paradigm] == nil {
			frames[c.Paradigm] = map[int]float64{}
		}
		frames[c.Paradigm][c.Fanout] = c.MeanRootFrames
	}
	if len(frames) != 3 {
		t.Fatalf("expected 3 paradigms, got %d: %+v", len(frames), frames)
	}
	for paradigm, byFanout := range frames {
		flat, f4, f8 := byFanout[0], byFanout[4], byFanout[8]
		if flat == 0 || f4 == 0 || f8 == 0 {
			t.Fatalf("%s: missing fanout cells: %+v", paradigm, byFanout)
		}
		if f4*3 > flat {
			t.Errorf("%s: fanout-4 root frames %.0f vs flat %.0f, want >= 3x fewer", paradigm, f4, flat)
		}
		if f8 >= f4 {
			t.Errorf("%s: fanout-8 root frames %.0f not below fanout-4's %.0f", paradigm, f8, f4)
		}
	}
}
