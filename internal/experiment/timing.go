package experiment

import (
	"fmt"
	"time"

	"dssp/internal/core"
	"dssp/internal/simulate"
)

// timePrecision rounds simulated durations in the text table.
const timePrecision = time.Millisecond

// NetworkScenario is one hostile-network column of the timing matrix:
// Markov-modulated link models, scheduled events, and clock-level
// adversaries applied to a simulated run.
type NetworkScenario struct {
	// Name labels the scenario in reports.
	Name string
	// Links assigns delay models to worker links (see simulate.LinkModel).
	Links map[int]simulate.LinkModel
	// Events schedules crashes, rejoins, delay shifts and adversary
	// toggles.
	Events []simulate.Event
	// Adversaries assigns initial clock-level behaviours.
	Adversaries map[int]simulate.AdversaryKind
	// Guard enables the simulated anomaly guard.
	Guard simulate.GuardSpec
}

// Standard network columns.

// CalmNetwork is the well-behaved baseline.
func CalmNetwork() NetworkScenario { return NetworkScenario{Name: "calm"} }

// FlappingNetwork degrades the listed workers' links in short 10x bursts.
func FlappingNetwork(workers ...int) NetworkScenario {
	return NetworkScenario{Name: "flapping", Links: linksFor(simulate.LinkFlapping(), workers)}
}

// SlowNetwork pins the listed workers behind permanently 4x-slower links.
func SlowNetwork(workers ...int) NetworkScenario {
	return NetworkScenario{Name: "slow", Links: linksFor(simulate.LinkSlow(), workers)}
}

// PartitionedNetwork subjects the listed workers to extended near-outages.
func PartitionedNetwork(workers ...int) NetworkScenario {
	return NetworkScenario{Name: "partitioned", Links: linksFor(simulate.LinkPartitioned(), workers)}
}

func linksFor(model simulate.LinkModel, workers []int) map[int]simulate.LinkModel {
	m := make(map[int]simulate.LinkModel, len(workers))
	for _, w := range workers {
		m[w] = model
	}
	return m
}

// TimingCell is one aggregated (scenario, paradigm, fanout) cell of the
// timing matrix.
type TimingCell struct {
	// Scenario and Paradigm name the cell's coordinates.
	Scenario string `json:"scenario"`
	Paradigm string `json:"paradigm"`
	// Fanout is the aggregation-tier fanout the cell ran under; 0 is the
	// flat topology (workers push straight to the root).
	Fanout int `json:"fanout,omitempty"`
	// MeanFinish is the mean simulated completion time.
	MeanFinish time.Duration `json:"mean_finish_ns"`
	// Throughput is the mean applied updates per simulated second.
	Throughput float64 `json:"throughput"`
	// MeanStaleness is the mean update staleness.
	MeanStaleness float64 `json:"mean_staleness"`
	// MeanDropped is the mean number of rejected updates per trial (policy
	// drops plus guard rejections).
	MeanDropped float64 `json:"mean_dropped"`
	// MeanEvictions is the mean number of simulated guard evictions.
	MeanEvictions float64 `json:"mean_evictions"`
	// MeanRootFrames and MeanRootBytes are the mean push ingress the root
	// absorbed per trial: the load the relay tier exists to cut.
	MeanRootFrames float64 `json:"mean_root_frames"`
	MeanRootBytes  float64 `json:"mean_root_bytes"`
}

// TimingMatrixConfig describes a simulator-backed sweep: every paradigm
// crossed with every network scenario.
type TimingMatrixConfig struct {
	// Model and Cluster describe the simulated workload; zero values pick
	// a small default (ResNet-8-class profile on 8 heterogeneous workers).
	Model   simulate.ModelProfile
	Cluster simulate.ClusterSpec
	// Policies are the paradigms to sweep; empty defaults to BSP, SSP and
	// DSSP.
	Policies []core.PolicyConfig
	// Scenarios are the network columns; empty defaults to calm, flapping
	// and partitioned with worker 0 affected.
	Scenarios []NetworkScenario
	// Fanouts are the aggregation-tier fanouts to sweep (0 = flat); empty
	// defaults to flat only. A scenario whose guard is enabled skips
	// fanout >= 2 cells — the real root refuses relay trunks under a
	// guard, so those cells cannot exist.
	Fanouts []int
	// Iterations is each worker's iteration budget; 0 picks 60.
	Iterations int
	// Trials is runs per cell; 0 means 1.
	Trials int
	// Seed decorrelates trials.
	Seed int64
}

// withDefaults fills the sweep axes.
func (c TimingMatrixConfig) withDefaults() TimingMatrixConfig {
	if c.Model.Params == 0 {
		c.Model = simulate.ModelProfile{Name: "tiny", Params: 1e5, ComputeTime: 10 * time.Millisecond, Layers: 4}
	}
	if c.Cluster.NumWorkers() == 0 {
		c.Cluster = simulate.HeterogeneousCluster()
	}
	if len(c.Policies) == 0 {
		c.Policies = []core.PolicyConfig{
			{Paradigm: core.ParadigmBSP},
			{Paradigm: core.ParadigmSSP, Staleness: 3},
			{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []NetworkScenario{CalmNetwork(), FlappingNetwork(0), PartitionedNetwork(0)}
	}
	if len(c.Fanouts) == 0 {
		c.Fanouts = []int{0}
	}
	if c.Iterations <= 0 {
		c.Iterations = 60
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	return c
}

// TimingMatrix runs the simulator sweep and returns its cells, which the
// caller typically attaches to a Report.
func TimingMatrix(cfg TimingMatrixConfig) ([]TimingCell, error) {
	cfg = cfg.withDefaults()
	var cells []TimingCell
	for _, sc := range cfg.Scenarios {
		for _, pol := range cfg.Policies {
			for _, fanout := range cfg.Fanouts {
				if fanout >= 2 && sc.Guard.Enabled {
					continue
				}
				cell := TimingCell{Scenario: sc.Name, Paradigm: pol.Describe(), Fanout: fanout}
				for trial := 0; trial < cfg.Trials; trial++ {
					res, err := simulate.Run(simulate.RunConfig{
						Model:               cfg.Model,
						Cluster:             cfg.Cluster,
						Policy:              pol,
						IterationsPerWorker: cfg.Iterations,
						Events:              sc.Events,
						Links:               sc.Links,
						Adversaries:         sc.Adversaries,
						Guard:               sc.Guard,
						Fanout:              fanout,
						Seed:                cfg.Seed + int64(trial)*104729,
					})
					if err != nil {
						return nil, fmt.Errorf("experiment: timing cell (%s, %s, fanout %d) trial %d: %w", sc.Name, cell.Paradigm, fanout, trial, err)
					}
					cell.MeanFinish += res.Finish
					cell.Throughput += res.Throughput()
					cell.MeanStaleness += res.MeanStaleness()
					cell.MeanDropped += float64(res.DroppedUpdates + res.GuardDropped)
					cell.MeanEvictions += float64(len(res.Evicted))
					cell.MeanRootFrames += float64(res.RootIngressFrames)
					cell.MeanRootBytes += float64(res.RootIngressBytes)
				}
				n := float64(cfg.Trials)
				cell.MeanFinish = time.Duration(float64(cell.MeanFinish) / n)
				cell.Throughput /= n
				cell.MeanStaleness /= n
				cell.MeanDropped /= n
				cell.MeanEvictions /= n
				cell.MeanRootFrames /= n
				cell.MeanRootBytes /= n
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}
