package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Cell is one aggregated (attack, defense) grid cell.
type Cell struct {
	// Attack and Defense name the cell's matrix coordinates.
	Attack  string `json:"attack"`
	Defense string `json:"defense"`
	// Attackers is how many worker slots the attack controls.
	Attackers int `json:"attackers"`
	// MeanAccuracy and MinAccuracy summarize final model accuracy over the
	// cell's trials.
	MeanAccuracy float64 `json:"mean_accuracy"`
	MinAccuracy  float64 `json:"min_accuracy"`
	// MeanDropped is the mean number of discarded updates per trial
	// (policy drops plus guard rejections).
	MeanDropped float64 `json:"mean_dropped"`
	// MeanEvictions is the mean number of guard evictions per trial.
	MeanEvictions float64 `json:"mean_evictions"`
	// TPR is the attacker detection rate: the fraction of attacker slots
	// the guard flagged, averaged over trials. FPR is the same fraction
	// over honest slots — the false-alarm rate.
	TPR float64 `json:"tpr"`
	FPR float64 `json:"fpr"`
	// Pipeline is the server-side observability snapshot averaged over the
	// cell's trials: every registry series (counters and gauges by name,
	// histograms as _sum/_count; see docs/METRICS.md) as reported by
	// trainer.Result.Metrics. JSON only — too wide for the text table.
	Pipeline map[string]float64 `json:"pipeline,omitempty"`

	// Accumulators (reset by finalize into the rates above).
	tpHits, tpSlots int
	fpHits, fpSlots int
}

// Report is a completed scenario matrix.
type Report struct {
	// Name titles the matrix.
	Name string `json:"name"`
	// Trials is the number of runs behind each cell.
	Trials int `json:"trials"`
	// Cells holds every grid cell in attack-major order.
	Cells []Cell `json:"cells"`
	// Timing holds the simulator-backed cells, when a timing matrix ran.
	Timing []TimingCell `json:"timing,omitempty"`
}

// Cell returns the cell at the named coordinates.
func (r *Report) Cell(attack, defense string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Attack == attack && c.Defense == defense {
			return c, true
		}
	}
	return Cell{}, false
}

// MinAccuracyOver reports the lowest mean accuracy across cells matching
// the filter (empty strings match everything) — the floor a smoke gate
// checks against.
func (r *Report) MinAccuracyOver(attack, defense string) float64 {
	low := 1.0
	for _, c := range r.Cells {
		if attack != "" && c.Attack != attack {
			continue
		}
		if defense != "" && c.Defense != defense {
			continue
		}
		if c.MeanAccuracy < low {
			low = c.MeanAccuracy
		}
	}
	return low
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the detection/robustness table as aligned text.
func (r *Report) Table() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "%s (%d trial(s)/cell)\n", r.Name, r.Trials)
	}
	fmt.Fprintf(&b, "%-18s %-18s %9s %9s %9s %8s %6s %6s\n",
		"attack", "defense", "acc", "min-acc", "dropped", "evicted", "tpr", "fpr")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %-18s %9.4f %9.4f %9.1f %8.1f %6.2f %6.2f\n",
			c.Attack, c.Defense, c.MeanAccuracy, c.MinAccuracy, c.MeanDropped, c.MeanEvictions, c.TPR, c.FPR)
	}
	if len(r.Timing) > 0 {
		b.WriteString("\ntiming (simulated)\n")
		fmt.Fprintf(&b, "%-18s %-16s %6s %12s %10s %10s %11s %11s\n",
			"scenario", "paradigm", "fanout", "finish", "upd/s", "staleness", "root-frames", "root-MiB")
		for _, c := range r.Timing {
			topo := "flat"
			if c.Fanout >= 2 {
				topo = fmt.Sprintf("%d", c.Fanout)
			}
			fmt.Fprintf(&b, "%-18s %-16s %6s %12s %10.1f %10.2f %11.0f %11.1f\n",
				c.Scenario, c.Paradigm, topo, c.MeanFinish.Round(timePrecision), c.Throughput,
				c.MeanStaleness, c.MeanRootFrames, c.MeanRootBytes/(1<<20))
		}
	}
	return b.String()
}
