// Package clustertest stands up DSSP server groups over real TCP for
// end-to-end tests: a coordinator, N data servers, optional backups, and
// worker runners — with free-port allocation, lifecycle logging through the
// test's logger, and deterministic teardown via t.Cleanup (workers first,
// then backups, data servers and the coordinator, in that order).
//
// With Config.Servers == 0 the same harness starts a classic standalone
// server, so a test can run the identical workload against both topologies
// and compare the results.
package clustertest

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dssp"
)

// Config describes the cluster (or standalone server) under test. Zero
// values pick small-but-meaningful defaults suitable for sub-second tests.
type Config struct {
	// Servers is the number of data servers; 0 starts a classic standalone
	// server instead of a group.
	Servers int
	// Backups starts one backup for each data server in [0, Backups),
	// replicating that primary and ready to take over its shard range.
	Backups int
	// Workers is the number of training workers the servers expect.
	Workers int
	// Sync selects the paradigm; the zero value means DSSP(1, 4).
	Sync dssp.Sync
	// Model, Dataset, Seed, BatchSize and Epochs describe the workload; the
	// zero values train the small MLP on an easy synthetic dataset.
	Model     dssp.Model
	Dataset   dssp.DatasetConfig
	Seed      int64
	BatchSize int
	Epochs    int
	// LearningRate and Momentum configure the data servers' SGD.
	LearningRate float64
	Momentum     float64
	// Options is the shared serving surface (compression, aggregation,
	// sharding, delta pulls) applied to every server in the group.
	Options dssp.Options
	// GlobalShards overrides the group-wide shard count (0 = the layout
	// default of two per data server).
	GlobalShards int
	// ReplicateEvery and ReplicateGrace tune the backups; zero keeps the
	// package defaults (25ms / 2s).
	ReplicateEvery time.Duration
	ReplicateGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Sync == (dssp.Sync{}) {
		c.Sync = dssp.Sync{Paradigm: dssp.DSSP, Staleness: 1, Range: 4}
	}
	if c.Model == "" {
		c.Model = dssp.ModelSmallMLP
	}
	if c.Dataset == (dssp.DatasetConfig{}) {
		c.Dataset = dssp.DatasetConfig{Examples: 240, Classes: 3, ImageSize: 12, Noise: 0.3, Seed: 7}
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.BatchSize == 0 {
		c.BatchSize = 12
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	return c
}

// Cluster is a running server group (or standalone server) plus the
// bookkeeping to kill members and connect workers to it.
type Cluster struct {
	t   *testing.T
	cfg Config

	// Coordinator is the group's coordinator, or the standalone server when
	// Config.Servers was 0.
	Coordinator *dssp.Server
	// Data are the data servers, index-aligned with the group layout.
	Data []*dssp.Server
	// Backups are the backup servers; Backups[i] replicates Data[i].
	Backups []*dssp.Server

	coordAddr string
	dataAddrs []string

	mu     sync.Mutex
	killed map[*dssp.Server]bool
}

// FreePort reserves a TCP port on the loopback interface for a server the
// test will start (and possibly restart at the same address).
func FreePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// Start brings the whole topology up — coordinator first, then data servers
// (which announce themselves to it), then backups — and registers teardown
// with t.Cleanup. It fails the test on any startup error.
func Start(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg = cfg.withDefaults()
	c := &Cluster{t: t, cfg: cfg, killed: make(map[*dssp.Server]bool)}
	t.Cleanup(c.stopAll)

	if cfg.Servers == 0 {
		srv, err := dssp.Serve(c.serverConfig(dssp.ClusterOptions{}))
		if err != nil {
			t.Fatalf("clustertest: standalone server: %v", err)
		}
		c.Coordinator = srv
		c.coordAddr = srv.Addr()
		t.Logf("clustertest: standalone server on %s", srv.Addr())
		return c
	}

	coord, err := dssp.Serve(c.serverConfig(dssp.ClusterOptions{
		Role:         dssp.RoleCoordinator,
		Servers:      cfg.Servers,
		GlobalShards: cfg.GlobalShards,
	}))
	if err != nil {
		t.Fatalf("clustertest: coordinator: %v", err)
	}
	c.Coordinator = coord
	c.coordAddr = coord.Addr()
	t.Logf("clustertest: coordinator on %s (%d data servers)", coord.Addr(), cfg.Servers)

	for i := 0; i < cfg.Servers; i++ {
		srv, err := dssp.Serve(c.serverConfig(dssp.ClusterOptions{
			Role:         dssp.RoleData,
			Coordinator:  c.coordAddr,
			Servers:      cfg.Servers,
			Index:        i,
			GlobalShards: cfg.GlobalShards,
		}))
		if err != nil {
			t.Fatalf("clustertest: data server %d: %v", i, err)
		}
		c.Data = append(c.Data, srv)
		c.dataAddrs = append(c.dataAddrs, srv.Addr())
		t.Logf("clustertest: data server %d on %s", i, srv.Addr())
	}
	for i := 0; i < cfg.Backups && i < cfg.Servers; i++ {
		srv, err := dssp.Serve(c.serverConfig(dssp.ClusterOptions{
			Role:           dssp.RoleBackup,
			Coordinator:    c.coordAddr,
			Servers:        cfg.Servers,
			Index:          i,
			GlobalShards:   cfg.GlobalShards,
			Primary:        c.dataAddrs[i],
			ReplicateEvery: cfg.ReplicateEvery,
			ReplicateGrace: cfg.ReplicateGrace,
		}))
		if err != nil {
			t.Fatalf("clustertest: backup %d: %v", i, err)
		}
		c.Backups = append(c.Backups, srv)
		t.Logf("clustertest: backup %d on %s (primary %s)", i, srv.Addr(), c.dataAddrs[i])
	}
	return c
}

func (c *Cluster) serverConfig(cluster dssp.ClusterOptions) dssp.ServerConfig {
	return dssp.ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      c.cfg.Workers,
		Sync:         c.cfg.Sync,
		Model:        c.cfg.Model,
		Dataset:      c.cfg.Dataset,
		LearningRate: c.cfg.LearningRate,
		Momentum:     c.cfg.Momentum,
		Options:      c.cfg.Options,
		Seed:         c.cfg.Seed,
		Cluster:      cluster,
	}
}

// CoordinatorAddr is what workers dial — the coordinator, or the standalone
// server when the harness was started with Servers == 0.
func (c *Cluster) CoordinatorAddr() string { return c.coordAddr }

// IsGroup reports whether this harness runs a server group (vs standalone).
func (c *Cluster) IsGroup() bool { return c.cfg.Servers > 0 }

// WorkerConfig builds the worker configuration matching the cluster's
// workload, in cluster mode when the harness runs a group.
func (c *Cluster) WorkerConfig(id int) dssp.WorkerConfig {
	return dssp.WorkerConfig{
		ServerAddr: c.coordAddr,
		Cluster:    c.IsGroup(),
		WorkerID:   id,
		Workers:    c.cfg.Workers,
		Model:      c.cfg.Model,
		Dataset:    c.cfg.Dataset,
		BatchSize:  c.cfg.BatchSize,
		Epochs:     c.cfg.Epochs,
		Seed:       c.cfg.Seed,
		Options: dssp.Options{
			Compression: c.cfg.Options.Compression,
			DeltaPull:   c.cfg.Options.DeltaPull,
		},
	}
}

// RunWorkers runs every worker to completion concurrently, applying mutate
// (when non-nil) to each worker's configuration first. It returns the
// reports and errors index-aligned with worker IDs.
func (c *Cluster) RunWorkers(mutate func(id int, cfg *dssp.WorkerConfig)) ([]*dssp.WorkerReport, []error) {
	reports := make([]*dssp.WorkerReport, c.cfg.Workers)
	errs := make([]error, c.cfg.Workers)
	var wg sync.WaitGroup
	for id := 0; id < c.cfg.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wcfg := c.WorkerConfig(id)
			if mutate != nil {
				mutate(id, &wcfg)
			}
			reports[id], errs[id] = dssp.RunWorker(wcfg)
		}(id)
	}
	wg.Wait()
	return reports, errs
}

// KillData stops data server i abruptly, as a crash: its listener closes and
// its sessions drop. The coordinator keeps the stale map entry until a
// backup promotes into it.
func (c *Cluster) KillData(i int) {
	c.t.Helper()
	c.t.Logf("clustertest: killing data server %d (%s)", i, c.dataAddrs[i])
	c.kill(c.Data[i])
}

// KillCoordinator stops the coordinator. By design the group cannot outlive
// it: data servers fail fast (watch their Failed channels) and in-flight
// worker runs error out.
func (c *Cluster) KillCoordinator() {
	c.t.Helper()
	c.t.Logf("clustertest: killing coordinator (%s)", c.coordAddr)
	c.kill(c.Coordinator)
}

func (c *Cluster) kill(s *dssp.Server) {
	c.mu.Lock()
	already := c.killed[s]
	c.killed[s] = true
	c.mu.Unlock()
	if !already {
		s.Stop()
	}
}

// WaitPromoted blocks until backup i reports completed promotion, or fails
// the test at the timeout.
func (c *Cluster) WaitPromoted(i int, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for !c.Backups[i].Promoted() {
		if time.Now().After(deadline) {
			c.t.Fatalf("clustertest: backup %d not promoted within %v", i, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Logf("clustertest: backup %d promoted", i)
}

// WaitDone blocks until the coordinator reports the run complete, or fails
// the test at the timeout.
func (c *Cluster) WaitDone(timeout time.Duration) {
	c.t.Helper()
	select {
	case <-c.Coordinator.Done():
	case <-time.After(timeout):
		c.t.Fatalf("clustertest: run not complete within %v", timeout)
	}
}

// Evaluate measures the global model's accuracy through the coordinator
// (which assembles the weights from the data servers) or the standalone
// server directly.
func (c *Cluster) Evaluate() float64 {
	c.t.Helper()
	acc, err := c.Coordinator.Evaluate()
	if err != nil {
		c.t.Fatalf("clustertest: evaluate: %v", err)
	}
	return acc
}

// stopAll tears the topology down in reverse dependency order, skipping
// members the test already killed.
func (c *Cluster) stopAll() {
	for i := len(c.Backups) - 1; i >= 0; i-- {
		c.kill(c.Backups[i])
	}
	for i := len(c.Data) - 1; i >= 0; i-- {
		c.kill(c.Data[i])
	}
	if c.Coordinator != nil {
		c.kill(c.Coordinator)
	}
}

// Describe returns a short topology label for subtest names and logs.
func (c *Cluster) Describe() string {
	if !c.IsGroup() {
		return "standalone"
	}
	return fmt.Sprintf("%d-server", c.cfg.Servers)
}
