package core

import (
	"testing"
	"time"
)

var t0 = time.Unix(0, 0)

// releasedSet collects a decision's release list into a set.
func releasedSet(d Decision) map[WorkerID]bool {
	out := make(map[WorkerID]bool, len(d.Release))
	for _, id := range d.Release {
		out[id] = true
	}
	return out
}

func TestBSPLeaveCompletesBarrier(t *testing.T) {
	p := MustNewBSP(3)
	if d := p.OnPush(0, t0); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	if d := p.OnPush(1, t0); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	// Worker 2 crashes before pushing: the two waiters form a complete
	// barrier of the shrunken population and must be released.
	d := p.OnLeave(2, t0)
	got := releasedSet(d)
	if !got[0] || !got[1] || len(got) != 2 {
		t.Fatalf("leave released %v, want workers 0 and 1", d.Release)
	}
	if p.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", p.Rounds())
	}
	// Subsequent rounds run with two workers.
	if d := p.OnPush(0, t0); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	if d := p.OnPush(1, t0); len(releasedSet(d)) != 2 {
		t.Fatalf("two-worker barrier released %v", d.Release)
	}
}

func TestBSPLeaveOfComputingWorkerCompletesBarrier(t *testing.T) {
	p := MustNewBSP(2)
	p.OnPush(0, t0)
	// Worker 1 crashes mid-compute (it never pushed). Worker 0 must not wait
	// forever.
	d := p.OnLeave(1, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("leave released %v, want worker 0", d.Release)
	}
}

func TestBSPJoinGrowsBarrier(t *testing.T) {
	p := MustNewBSP(3)
	p.OnLeave(2, t0)
	p.OnPush(0, t0)
	p.OnJoin(2, t0)
	// Barrier now needs all three again.
	if d := p.OnPush(1, t0); len(d.Release) != 0 {
		t.Fatalf("barrier completed without rejoined worker: %v", d.Release)
	}
	if d := p.OnPush(2, t0); len(releasedSet(d)) != 3 {
		t.Fatalf("full barrier released %v", d.Release)
	}
}

func TestSSPLeaveAdvancesMinimum(t *testing.T) {
	p := MustNewSSP(2, 1)
	// Worker 0 runs ahead until it blocks at the bound.
	p.OnPush(0, t0)
	p.OnPush(0, t0)
	d := p.OnPush(0, t0)
	if len(d.Release) != 0 {
		t.Fatalf("worker 0 beyond the bound was released: %v", d.Release)
	}
	if got := p.Blocked(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("blocked = %v, want [0]", got)
	}
	// The slowest worker crashes; the survivor is alone, within any bound of
	// itself, and must resume.
	d = p.OnLeave(1, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("leave released %v, want worker 0", d.Release)
	}
	if len(p.Blocked()) != 0 {
		t.Fatalf("blocked = %v after release", p.Blocked())
	}
}

func TestSSPJoinResetsClockToMinimum(t *testing.T) {
	p := MustNewSSP(3, 1)
	p.OnLeave(2, t0)
	for i := 0; i < 5; i++ {
		p.OnPush(0, t0)
		p.OnPush(1, t0)
	}
	p.OnJoin(2, t0)
	if got, want := p.Clock(2), 5; got != want {
		t.Fatalf("rejoined clock = %d, want the active minimum %d", got, want)
	}
	// The rejoined worker must not be treated as 5 iterations behind: the
	// others keep running.
	d := p.OnPush(0, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("worker 0 blocked by a rejoined worker: %v", d.Release)
	}
}

func TestDSSPLeaveUnblocksWaiters(t *testing.T) {
	p := MustNewDSSP(2, 1, 0) // rmax=0: behaves like SSP with s=1
	p.OnPush(0, t0)
	p.OnPush(0, t0)
	d := p.OnPush(0, t0)
	if len(d.Release) != 0 {
		t.Fatalf("worker 0 beyond the bound was released: %v", d.Release)
	}
	d = p.OnLeave(1, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("leave released %v, want worker 0", d.Release)
	}
}

func TestDSSPLeaveForfeitsAllowance(t *testing.T) {
	p := MustNewDSSP(2, 0, 3)
	// Build up timing history so the controller can grant.
	now := t0
	for i := 0; i < 6; i++ {
		now = now.Add(10 * time.Millisecond)
		p.OnPush(0, now)
		now = now.Add(10 * time.Millisecond)
		p.OnPush(1, now)
	}
	p.OnLeave(0, now)
	if got := p.Allowance(0); got != 0 {
		t.Fatalf("allowance after leave = %d, want 0", got)
	}
}

func TestBoundedDelayLeaveSkipsOrphanedIterations(t *testing.T) {
	p := MustNewBoundedDelay(2, 1)
	// Worker 0 completes iteration 1; its next is 3, which depends on
	// iteration 2 — assigned to worker 1 — so with k=1 it must wait.
	d := p.OnPush(0, t0)
	if len(d.Release) != 0 {
		t.Fatalf("worker 0 should wait on iteration 2: %v", d.Release)
	}
	// Worker 1 crashes without ever pushing. Its iterations (2, 4, 6, ...)
	// must be skipped so worker 0's schedule keeps moving.
	d = p.OnLeave(1, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("leave released %v, want worker 0", d.Release)
	}
	// Worker 0 now runs alone indefinitely.
	for i := 0; i < 5; i++ {
		if d := p.OnPush(0, t0); !releasedSet(d)[0] {
			t.Fatalf("solo worker blocked at push %d: %v", i, d.Release)
		}
	}
}

func TestBoundedDelayRejoinResumesSchedule(t *testing.T) {
	p := MustNewBoundedDelay(2, 2)
	p.OnPush(0, t0)
	p.OnLeave(1, t0)
	p.OnPush(0, t0)
	p.OnJoin(1, t0)
	// The rejoined worker's next iteration must be after the completion
	// frontier and assigned to it.
	next := p.next[1]
	if next <= p.maxDone {
		t.Fatalf("rejoined schedule %d is behind the frontier %d", next, p.maxDone)
	}
	if (next-1)%2 != 1 {
		t.Fatalf("iteration %d is not assigned to worker 1", next)
	}
	// Both workers make progress afterwards.
	for i := 0; i < 4; i++ {
		d0 := p.OnPush(0, t0)
		d1 := p.OnPush(1, t0)
		if len(d0.Release) == 0 && len(d1.Release) == 0 {
			t.Fatalf("no progress at round %d", i)
		}
	}
}

func TestBackupBSPLeaveShrinksQuorum(t *testing.T) {
	// 3 workers, 1 backup: rounds need 2 arrivals.
	p := MustNewBackupBSP(3, 1)
	if d := p.OnPush(0, t0); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	// Workers 1 and 2 crash: only worker 0 remains, the quorum becomes 1 and
	// the round completes on its already-arrived push.
	p.OnLeave(1, t0)
	d := p.OnLeave(2, t0)
	if got := releasedSet(d); !got[0] {
		t.Fatalf("leave released %v, want worker 0", d.Release)
	}
	// The lone worker keeps completing rounds by itself.
	if d := p.OnPush(0, t0); !releasedSet(d)[0] {
		t.Fatalf("solo round did not complete: %v", d.Release)
	}
	if p.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", p.Rounds())
	}
}

func TestBackupBSPRejoinCountsInCurrentRound(t *testing.T) {
	p := MustNewBackupBSP(2, 0)
	p.OnPush(0, t0)
	p.OnPush(1, t0) // round 0 completes
	p.OnLeave(1, t0)
	p.OnPush(0, t0) // round 1 completes with quorum 1
	p.OnJoin(1, t0)
	// The rejoined worker's next push belongs to the current round, not to a
	// previous one — it must be aggregated, not dropped.
	d := p.OnPush(1, t0)
	if d.Drop {
		t.Fatal("rejoined worker's push was dropped as a straggler")
	}
	if p.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", p.Dropped())
	}
}

func TestASPLeaveJoinAreHarmless(t *testing.T) {
	p := MustNewASP(2)
	p.OnPush(0, t0)
	if d := p.OnLeave(1, t0); len(d.Release) != 0 {
		t.Fatalf("ASP leave released %v", d.Release)
	}
	if d := p.OnJoin(1, t0); len(d.Release) != 0 {
		t.Fatalf("ASP join released %v", d.Release)
	}
	if d := p.OnPush(1, t0); !releasedSet(d)[1] {
		t.Fatalf("ASP push not released: %v", d.Release)
	}
}

func TestImplicitRejoinOnPush(t *testing.T) {
	// A push from a worker reported departed implicitly rejoins it on every
	// paradigm: the policies stay self-consistent even if a join notification
	// is lost.
	policies := []Policy{
		MustNewBSP(2),
		MustNewASP(2),
		MustNewSSP(2, 1),
		MustNewDSSP(2, 1, 2),
		MustNewBoundedDelay(2, 2),
		MustNewBackupBSP(2, 0),
	}
	for _, p := range policies {
		p.OnLeave(1, t0)
		p.OnPush(1, t0) // must not panic or corrupt state
		p.OnPush(0, t0)
		d := p.OnPush(1, t0)
		_ = d
		if got := p.NumWorkers(); got != 2 {
			t.Fatalf("%s: NumWorkers = %d", p.Name(), got)
		}
	}
}

func TestLeaveIsIdempotent(t *testing.T) {
	p := MustNewBSP(2)
	p.OnPush(0, t0)
	d1 := p.OnLeave(1, t0)
	d2 := p.OnLeave(1, t0)
	if len(d1.Release) == 0 {
		t.Fatalf("first leave released nothing")
	}
	if len(d2.Release) != 0 {
		t.Fatalf("second leave released %v", d2.Release)
	}
}

func TestStaticMembershipIsNoOp(t *testing.T) {
	var m StaticMembership
	if d := m.OnJoin(0, t0); len(d.Release) != 0 || d.Drop {
		t.Fatalf("OnJoin = %+v", d)
	}
	if d := m.OnLeave(0, t0); len(d.Release) != 0 || d.Drop {
		t.Fatalf("OnLeave = %+v", d)
	}
}
