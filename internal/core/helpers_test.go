package core

import (
	"math/rand"
	"time"
)

// newTestRand returns a deterministic pseudo-random source for tests.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// replayDriver drives a Policy with workers whose per-iteration durations are
// fixed, mimicking an event-driven cluster: the worker with the earliest
// pending push time pushes next, and a worker only schedules its next push
// after it has been released. It is a miniature version of the simulator in
// internal/simulate used to exercise policies in isolation.
type replayDriver struct {
	policy    Policy
	durations []time.Duration
	nextPush  []time.Time
	ready     []bool
	now       time.Time
	pushes    int
	// maxSpread records the largest clock spread observed after any push.
	maxSpread int
	// waitTime accumulates, per worker, the time spent blocked.
	waitSince map[WorkerID]time.Time
	waitTotal []time.Duration
}

// newReplayDriver builds a driver for the given policy and per-worker
// iteration durations (durations[w] is worker w's constant iteration time).
func newReplayDriver(p Policy, durations []time.Duration) *replayDriver {
	start := time.Unix(0, 0)
	d := &replayDriver{
		policy:    p,
		durations: durations,
		nextPush:  make([]time.Time, len(durations)),
		ready:     make([]bool, len(durations)),
		now:       start,
		waitSince: make(map[WorkerID]time.Time),
		waitTotal: make([]time.Duration, len(durations)),
	}
	for w := range durations {
		d.nextPush[w] = start.Add(durations[w])
		d.ready[w] = true
	}
	return d
}

// step advances the driver by one push event. It returns false when no worker
// is ready to push (which would indicate a deadlock for non-terminating
// policies).
func (d *replayDriver) step() bool {
	chosen := -1
	for w, ok := range d.ready {
		if !ok {
			continue
		}
		if chosen == -1 || d.nextPush[w].Before(d.nextPush[chosen]) {
			chosen = w
		}
	}
	if chosen == -1 {
		return false
	}
	w := WorkerID(chosen)
	d.now = d.nextPush[chosen]
	d.ready[chosen] = false
	d.waitSince[w] = d.now
	dec := d.policy.OnPush(w, d.now)
	d.pushes++
	for _, id := range dec.Release {
		if since, ok := d.waitSince[id]; ok {
			d.waitTotal[id] += d.now.Sub(since)
			delete(d.waitSince, id)
		}
		d.ready[id] = true
		d.nextPush[id] = d.now.Add(d.durations[id])
	}
	if s := clockSpread(d.policy); s > d.maxSpread {
		d.maxSpread = s
	}
	return true
}

// run performs n push events, reporting whether all completed without
// deadlock.
func (d *replayDriver) run(n int) bool {
	for i := 0; i < n; i++ {
		if !d.step() {
			return false
		}
	}
	return true
}
