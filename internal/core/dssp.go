package core

import (
	"fmt"
	"time"
)

// DSSP implements the paper's Dynamic Stale Synchronous Parallel paradigm
// (Algorithm 1 for the server rules and Algorithm 2 for the synchronization
// controller). The user supplies a lower staleness bound sL and a range
// length rmax = sU - sL. A worker within sL of the slowest worker is always
// released. When the currently fastest worker exceeds sL, the controller
// predicts, from recent push timestamps, how many extra iterations r* in
// [0, rmax] would minimize that worker's eventual wait, and grants them via a
// per-worker allowance r[p] that is consumed one unit per subsequent push.
//
// Three listing ambiguities in Algorithm 1 are resolved as follows.
//
// First, when the controller grants r* > 0 the OK sent at that moment is not
// counted against the allowance; the decrement happens on the worker's
// subsequent pushes (lines 3-5), matching the listing literally.
//
// Second, the listing never prevents the controller from being consulted
// again once a previous grant is used up, so a persistently fast worker can
// accumulate grants across consultations.
//
// Third, line 17 ("Wait until the slowest worker sends the next push
// request(s) so that tp−tslowest ≤ sL") is read, in the default mode, as
// "wait for the slowest worker's next push request": a blocked worker is
// released as soon as the slowest worker makes progress, even if its lead is
// still larger than sL. Together with repeated grants this is what lets a
// fast worker on a heterogeneous cluster run nearly unthrottled, which is
// the behaviour the paper measures (Table I, where DSSP tracks ASP rather
// than SSP). Calling EnforceUpperBound(true) switches both decisions to the
// strict, Theorem-2-compliant reading: grants are capped and a blocked
// worker waits until it is genuinely within sL of the slowest worker, so the
// iteration gap never exceeds sU = sL + rmax.
type DSSP struct {
	n     int
	sl    int
	ctl   *Controller
	clock *vectorClock
	// grants[p] is r_p of Algorithm 1: the number of extra iterations worker
	// p may still run beyond the lower bound sL.
	grants  []int
	waiting *waitSet
	// blockedAtMin[p] is the slowest worker's clock at the moment worker p
	// was blocked; in the default mode p is released once that clock
	// advances (the slowest worker "sends the next push request").
	blockedAtMin []int
	// enforceUpper caps grants so the clock gap stays within sU (Theorem 2).
	enforceUpper bool

	grantHistory []GrantEvent
	keepHistory  bool
}

// GrantEvent records one decision of the synchronization controller, used by
// experiments that analyze how the dynamic threshold evolves over time.
type GrantEvent struct {
	Worker WorkerID
	Time   time.Time
	// Extra is the r* granted by the controller (possibly zero).
	Extra int
	// Clock is the worker's push count at the moment of the grant.
	Clock int
}

// NewDSSP returns a DSSP policy for n workers with lower staleness bound
// sL >= 0 and range length rmax >= 0 (so the effective threshold stays within
// [sL, sL+rmax]).
func NewDSSP(n, sL, rmax int) (*DSSP, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	if sL < 0 {
		return nil, fmt.Errorf("core: DSSP lower staleness bound must be >= 0, got %d", sL)
	}
	if rmax < 0 {
		return nil, fmt.Errorf("core: DSSP staleness range length must be >= 0, got %d", rmax)
	}
	ctl, err := NewController(n, rmax)
	if err != nil {
		return nil, err
	}
	return &DSSP{
		n:            n,
		sl:           sL,
		ctl:          ctl,
		clock:        newVectorClock(n),
		grants:       make([]int, n),
		waiting:      newWaitSet(n),
		blockedAtMin: make([]int, n),
	}, nil
}

// MustNewDSSP is like NewDSSP but panics on invalid arguments.
func MustNewDSSP(n, sL, rmax int) *DSSP {
	p, err := NewDSSP(n, sL, rmax)
	if err != nil {
		panic(err)
	}
	return p
}

// RecordGrants enables keeping the history of controller decisions,
// retrievable through Grants. It is off by default to avoid unbounded memory
// growth in long training runs.
func (p *DSSP) RecordGrants(on bool) { p.keepHistory = on }

// EnforceUpperBound selects between the listing-faithful behaviour (false,
// the default: repeated grants may let a fast worker exceed sU) and the
// Theorem-2-compliant behaviour (true: grants are capped so the iteration
// gap between any worker and the slowest never exceeds sU).
func (p *DSSP) EnforceUpperBound(on bool) { p.enforceUpper = on }

// Grants returns a copy of the recorded controller decisions.
func (p *DSSP) Grants() []GrantEvent {
	out := make([]GrantEvent, len(p.grantHistory))
	copy(out, p.grantHistory)
	return out
}

// OnPush implements Policy following the server side of Algorithm 1.
func (p *DSSP) OnPush(w WorkerID, now time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	p.clock.Tick(w)
	p.ctl.Observe(w, now)

	var release []WorkerID

	switch {
	case p.grants[w] > 0:
		// Lines 3-5: consume one unit of the allowance and release at once.
		p.grants[w]--
		release = append(release, w)

	case p.withinLowerBound(w):
		// Lines 8-9: within sL of the slowest worker.
		release = append(release, w)

	default:
		// Lines 10-17: only the currently fastest worker consults the
		// synchronization controller; everyone else waits for the slowest
		// worker to catch up.
		if fastest, _ := p.clock.Max(); fastest == w {
			extra := p.ctl.ExtraIterations(w, p.clock.Snapshot())
			if p.enforceUpper {
				_, slowest := p.clock.Min()
				headroom := p.UpperBound() - (p.clock.Count(w) - slowest)
				if headroom < 0 {
					headroom = 0
				}
				if extra > headroom {
					extra = headroom
				}
			}
			if p.keepHistory {
				p.grantHistory = append(p.grantHistory, GrantEvent{
					Worker: w, Time: now, Extra: extra, Clock: p.clock.Count(w),
				})
			}
			if extra > 0 {
				p.grants[w] = extra
				release = append(release, w)
			} else {
				p.block(w)
			}
		} else {
			p.block(w)
		}
	}

	// A push may have advanced the minimum clock: re-examine blocked workers
	// (line 17: they are released once they are back within sL).
	release = append(release, p.drainUnblocked(w)...)
	return Decision{Release: release}
}

// OnJoin implements Policy: the worker re-enters staleness accounting at the
// slowest active worker's clock, with no extra-iteration allowance.
func (p *DSSP) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	if p.clock.Join(w) {
		p.grants[w] = 0
	}
	return Decision{}
}

// OnLeave implements Policy: the departed worker drops out of the minimum
// clock — a crashed slowest worker no longer holds everyone at the staleness
// bound — and any remaining allowance is forfeited.
func (p *DSSP) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	if !p.clock.Leave(w) {
		return Decision{}
	}
	p.grants[w] = 0
	p.waiting.Remove(w)
	if p.clock.NumActive() == 0 {
		return Decision{}
	}
	return Decision{Release: p.drainUnblocked(noWorker)}
}

// block parks worker w until the release condition of line 17 holds.
func (p *DSSP) block(w WorkerID) {
	p.waiting.Add(w)
	_, slowest := p.clock.Min()
	p.blockedAtMin[w] = slowest
}

// withinLowerBound reports whether worker w is at most sL iterations ahead of
// the slowest worker.
func (p *DSSP) withinLowerBound(w WorkerID) bool {
	_, slowest := p.clock.Min()
	return p.clock.Count(w)-slowest <= p.sl
}

// mayRelease reports whether a blocked worker may resume: in the strict
// (Theorem-2) mode only once it is within sL of the slowest worker; in the
// default mode also as soon as the slowest worker has pushed again since the
// worker was blocked.
func (p *DSSP) mayRelease(w WorkerID) bool {
	if p.withinLowerBound(w) {
		return true
	}
	if p.enforceUpper {
		return false
	}
	_, slowest := p.clock.Min()
	return slowest > p.blockedAtMin[w]
}

// drainUnblocked releases every waiting worker whose release condition now
// holds. pushed is excluded because its membership was just decided.
func (p *DSSP) drainUnblocked(pushed WorkerID) []WorkerID {
	var release []WorkerID
	for _, id := range p.waiting.List() {
		if id == pushed {
			continue
		}
		if p.mayRelease(id) {
			p.waiting.Remove(id)
			release = append(release, id)
		}
	}
	return release
}

// Blocked implements Policy.
func (p *DSSP) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *DSSP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *DSSP) NumWorkers() int { return p.n }

// StalenessBound implements StalenessBounder. The returned bound sU =
// sL + rmax is a hard guarantee only when EnforceUpperBound(true) is set; in
// the default listing-faithful mode it is the nominal upper end of the
// threshold range, which repeated grants may transiently exceed.
func (p *DSSP) StalenessBound() int { return p.sl + p.ctl.RMax() }

// LowerBound returns sL.
func (p *DSSP) LowerBound() int { return p.sl }

// UpperBound returns sU = sL + rmax.
func (p *DSSP) UpperBound() int { return p.sl + p.ctl.RMax() }

// Controller exposes the synchronization controller for inspection by
// experiments (e.g. reproducing Figure 2's waiting-time curve).
func (p *DSSP) Controller() *Controller { return p.ctl }

// Allowance returns the remaining extra-iteration allowance r_w of worker w.
func (p *DSSP) Allowance(w WorkerID) int { return p.grants[w] }

// Name implements Policy.
func (p *DSSP) Name() string {
	return fmt.Sprintf("DSSP(sL=%d,r=%d)", p.sl, p.ctl.RMax())
}
