package core

import (
	"fmt"
	"time"
)

// BackupBSP implements the backup-worker variant of synchronous SGD proposed
// by Chen et al. ("Revisiting distributed synchronous SGD", 2016) and
// discussed in the paper's related work: the cluster runs N+c workers but the
// server aggregates only the first N updates of every round; the c straggler
// updates that arrive afterwards are dropped, and all workers start the next
// round together as soon as the N-th update of the round arrives.
type BackupBSP struct {
	total   int // N + c
	needed  int // N
	clock   *vectorClock
	waiting *waitSet
	round   int
	// arrivedInRound counts pushes whose gradient belongs to the current
	// round; pushes belonging to an earlier round are dropped.
	arrivedInRound int
	// workerRound[w] is the round the worker's next push belongs to.
	workerRound []int
	dropped     int
}

// NewBackupBSP returns a backup-worker BSP policy with total workers and
// backups spare workers (so the server waits for total-backups updates per
// round).
func NewBackupBSP(total, backups int) (*BackupBSP, error) {
	if err := validateWorkers(total); err != nil {
		return nil, err
	}
	if backups < 0 || backups >= total {
		return nil, fmt.Errorf("core: backups must be in [0,%d), got %d", total, backups)
	}
	return &BackupBSP{
		total:       total,
		needed:      total - backups,
		clock:       newVectorClock(total),
		waiting:     newWaitSet(total),
		workerRound: make([]int, total),
	}, nil
}

// MustNewBackupBSP is like NewBackupBSP but panics on invalid arguments.
func MustNewBackupBSP(total, backups int) *BackupBSP {
	p, err := NewBackupBSP(total, backups)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy.
func (p *BackupBSP) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.total); err != nil {
		panic(err)
	}
	p.join(w)
	p.clock.Tick(w)

	if p.workerRound[w] < p.round {
		// A straggler from a previous round: its gradient is dropped and the
		// worker immediately moves on to the current round.
		p.workerRound[w] = p.round
		p.dropped++
		return Decision{Release: []WorkerID{w}, Drop: true}
	}

	p.arrivedInRound++
	p.workerRound[w] = p.round + 1
	if p.arrivedInRound >= p.effectiveNeeded() {
		// Round complete: release every worker that was waiting plus the
		// pusher; stragglers will be dropped when they eventually push.
		release := append(p.waiting.List(), w)
		for _, id := range release {
			p.waiting.Remove(id)
		}
		p.round++
		p.arrivedInRound = 0
		return Decision{Release: release}
	}
	p.waiting.Add(w)
	return Decision{}
}

// OnJoin implements Policy: the worker participates from the current round
// on, so its next push counts toward the round instead of being dropped as a
// straggler.
func (p *BackupBSP) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.total); err != nil {
		panic(err)
	}
	p.join(w)
	return Decision{}
}

// join reactivates a departed worker in the current round.
func (p *BackupBSP) join(w WorkerID) {
	if !p.clock.Join(w) {
		return
	}
	if p.workerRound[w] < p.round {
		p.workerRound[w] = p.round
	}
}

// OnLeave implements Policy. A departure shrinks the pool the round draws
// from: the quorum becomes min(N, active), and if the remaining waiters
// already meet it the round completes — otherwise a crash of a non-backup
// worker would stall the round forever.
func (p *BackupBSP) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.total); err != nil {
		panic(err)
	}
	if !p.clock.Leave(w) {
		return Decision{}
	}
	p.waiting.Remove(w)
	needed := p.effectiveNeeded()
	if needed > 0 && p.arrivedInRound >= needed {
		release := p.waiting.List()
		for _, id := range release {
			p.waiting.Remove(id)
		}
		p.round++
		p.arrivedInRound = 0
		return Decision{Release: release}
	}
	return Decision{}
}

// effectiveNeeded returns the per-round quorum: the configured N capped at
// the number of active workers.
func (p *BackupBSP) effectiveNeeded() int {
	if a := p.clock.NumActive(); a < p.needed {
		return a
	}
	return p.needed
}

// StalenessBound implements StalenessBounder: like BSP, every aggregated
// update is based on the weights of the previous round.
func (p *BackupBSP) StalenessBound() int { return 0 }

// Blocked implements Policy.
func (p *BackupBSP) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *BackupBSP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *BackupBSP) NumWorkers() int { return p.total }

// Dropped returns the number of straggler updates dropped so far.
func (p *BackupBSP) Dropped() int { return p.dropped }

// Rounds returns the number of completed aggregation rounds.
func (p *BackupBSP) Rounds() int { return p.round }

// Name implements Policy.
func (p *BackupBSP) Name() string {
	return fmt.Sprintf("BackupBSP(workers=%d,backups=%d)", p.total, p.total-p.needed)
}
