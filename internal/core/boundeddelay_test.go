package core

import (
	"testing"
	"time"
)

func TestNewBoundedDelayValidation(t *testing.T) {
	if _, err := NewBoundedDelay(0, 3); err == nil {
		t.Error("NewBoundedDelay(0,3): expected error")
	}
	if _, err := NewBoundedDelay(2, 0); err == nil {
		t.Error("NewBoundedDelay(2,0): expected error")
	}
}

func TestBoundedDelayPaperExample(t *testing.T) {
	// The example from the paper's related work: two workers, k=3,
	// P1 runs {I1,I3,I5,...}, P2 runs {I2,I4,I6,...}. P2 finishing I2 may
	// start I4 only after I1 completes; P1 finishing I3 may start I5 only
	// after I2 completes.
	p := MustNewBoundedDelay(2, 3)
	now := time.Unix(0, 0)

	// P2 completes I2 first; I4 depends on I1 which has not completed.
	d := p.OnPush(1, now)
	if len(d.Release) != 0 {
		t.Fatalf("P2 must wait for I1 before starting I4, got release %v", d.Release)
	}
	// P1 completes I1; I3 depends on I0 (none), so P1 continues, and P2's I4
	// dependency (I1) is now satisfied.
	d = p.OnPush(0, now)
	if len(d.Release) != 2 {
		t.Fatalf("expected both workers released after I1 completes, got %v", d.Release)
	}
	// P1 completes I3; I5 depends on I2 which has completed: release.
	d = p.OnPush(0, now)
	if len(d.Release) != 1 || d.Release[0] != 0 {
		t.Fatalf("P1 should continue to I5, got %v", d.Release)
	}
	// P1 completes I5; I7 depends on I4 which has NOT completed: block.
	d = p.OnPush(0, now)
	if len(d.Release) != 0 {
		t.Fatalf("P1 must wait for I4 before I7, got %v", d.Release)
	}
	// P2 completes I4; I6 depends on I3 (done): release, and P1 unblocks.
	d = p.OnPush(1, now)
	if len(d.Release) != 2 {
		t.Fatalf("expected P1 and P2 released, got %v", d.Release)
	}
}

func TestBoundedDelayNeverDeadlocks(t *testing.T) {
	durations := []time.Duration{time.Second, 3 * time.Second, 7 * time.Second}
	drv := newReplayDriver(MustNewBoundedDelay(3, 4), durations)
	if !drv.run(500) {
		t.Fatal("bounded delay deadlocked")
	}
}

func TestBoundedDelayBoundsGlobalIterationGap(t *testing.T) {
	// With bound k, two concurrently running global iterations can differ by
	// at most k-1, which translates to a per-worker clock spread of roughly
	// k/P plus one.
	const k = 6
	durations := []time.Duration{time.Second, 10 * time.Second}
	drv := newReplayDriver(MustNewBoundedDelay(2, k), durations)
	if !drv.run(300) {
		t.Fatal("bounded delay deadlocked")
	}
	if drv.maxSpread > k {
		t.Fatalf("clock spread %d exceeds bound %d", drv.maxSpread, k)
	}
}

func TestBoundedDelayName(t *testing.T) {
	if got := MustNewBoundedDelay(2, 5).Name(); got != "BoundedDelay(k=5)" {
		t.Fatalf("unexpected name %q", got)
	}
}
