// Package core implements the synchronization paradigms studied in
// "Dynamic Stale Synchronous Parallel Distributed Training for Deep Learning"
// (Zhao et al., ICDCS 2019): Bulk Synchronous Parallel (BSP), Asynchronous
// Parallel (ASP), Stale Synchronous Parallel (SSP) and the paper's
// contribution, Dynamic Stale Synchronous Parallel (DSSP), together with the
// bounded-delay and backup-worker baselines discussed in its related work.
//
// Every paradigm is expressed as a Policy: a pure, single-goroutine state
// machine that is told about push requests (with an explicit timestamp) and
// answers which workers the parameter server may release. Policies never read
// the wall clock themselves, so exactly the same implementations drive the
// real parameter server (internal/ps) and the event-driven cluster simulator
// (internal/simulate).
package core

import (
	"fmt"
	"time"
)

// WorkerID identifies a worker participating in distributed training.
// Workers are numbered 0..NumWorkers-1.
type WorkerID int

// Decision is the outcome of notifying a Policy about a push request.
type Decision struct {
	// Release lists the workers that may now be sent the OK signal and
	// proceed to pull fresh weights and start their next iteration. The
	// pushing worker may or may not be included; when it is absent it stays
	// blocked until a later push releases it.
	Release []WorkerID

	// Drop reports that the pushed gradient should be discarded rather than
	// applied to the global weights. Only the backup-worker BSP baseline
	// (Chen et al.) ever sets it.
	Drop bool
}

// Policy is a synchronization paradigm for the parameter-server framework.
//
// Implementations are not safe for concurrent use; the parameter server and
// the simulator serialize calls.
type Policy interface {
	// OnPush records that worker w delivered the gradient of its next
	// iteration at time now and returns the release decision. Each call
	// advances w's logical clock by one. A push from a worker previously
	// reported departed implicitly rejoins it (see OnJoin).
	OnPush(w WorkerID, now time.Time) Decision

	// OnJoin records that worker w (re)joined the computation at time now.
	// Joining an already-active worker is a no-op. A rejoining worker's
	// progress accounting restarts at the slowest active worker's clock; its
	// push count history is otherwise preserved.
	OnJoin(w WorkerID, now time.Time) Decision

	// OnLeave records that worker w left the computation at time now —
	// crashed, was evicted by a lease timeout, or deregistered gracefully.
	// The worker is removed from barrier and staleness accounting, and the
	// decision lists any peers whose release condition its departure
	// satisfied (a shrunken BSP barrier may complete, an SSP minimum may
	// advance). Leaving an already-departed worker is a no-op.
	OnLeave(w WorkerID, now time.Time) Decision

	// Blocked returns the workers currently waiting for an OK signal, in
	// ascending order. It is a read-only view used by tests and metrics.
	Blocked() []WorkerID

	// Clock returns the number of pushes received from worker w so far.
	Clock(w WorkerID) int

	// NumWorkers returns the number of workers the policy coordinates.
	NumWorkers() int

	// Name returns a short human-readable paradigm name such as "BSP",
	// "SSP(s=3)" or "DSSP(sL=3,r=12)".
	Name() string
}

// BatchObserver is an optional Policy extension: a policy that implements it
// is told whenever the parameter store's applied version advances, with the
// new version and the number of pushes that just became globally visible
// (batch >= 1; batch > 1 means several queued pushes became visible at once
// — coalesced into shared optimizer steps, or merged because the policy was
// busy when they landed; the batch counts always sum to the version). The
// parameter server delivers the calls from a dedicated goroutine under the
// same lock that serializes OnPush/OnJoin/OnLeave, so implementations need
// no extra synchronization — and a slow observer delays only its own
// notifications, never gradient application.
//
// OnPush remains the per-push logical clock: batching never changes how
// often it is called or what Decision it may return. BatchObserver exists
// for policies that adapt to apply-side throughput — e.g. a DSSP-style
// controller widening its staleness window when coalescing indicates the
// appliers are saturated — without forcing that cost on paradigms that
// do not care.
type BatchObserver interface {
	OnBatchApplied(version int64, batch int)
}

// StalenessBounder is implemented by policies that guarantee a bound on the
// difference in iteration counts between the fastest and the slowest worker.
type StalenessBounder interface {
	// StalenessBound returns the maximum permitted difference between any two
	// workers' iteration counts.
	StalenessBound() int
}

// validateWorkers reports an error when n is not a usable worker count.
func validateWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: number of workers must be positive, got %d", n)
	}
	return nil
}

// validateWorkerID reports an error when w is outside [0, n).
func validateWorkerID(w WorkerID, n int) error {
	if int(w) < 0 || int(w) >= n {
		return fmt.Errorf("core: worker id %d out of range [0,%d)", w, n)
	}
	return nil
}

// releaseAll returns the IDs 0..n-1. It is a convenience for BSP-style
// barrier releases.
func releaseAll(n int) []WorkerID {
	ids := make([]WorkerID, n)
	for i := range ids {
		ids[i] = WorkerID(i)
	}
	return ids
}
