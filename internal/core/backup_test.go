package core

import (
	"testing"
	"time"
)

func TestNewBackupBSPValidation(t *testing.T) {
	if _, err := NewBackupBSP(0, 0); err == nil {
		t.Error("NewBackupBSP(0,0): expected error")
	}
	if _, err := NewBackupBSP(4, 4); err == nil {
		t.Error("NewBackupBSP(4,4): expected error")
	}
	if _, err := NewBackupBSP(4, -1); err == nil {
		t.Error("NewBackupBSP(4,-1): expected error")
	}
}

func TestBackupBSPReleasesAfterFirstNArrivals(t *testing.T) {
	// 4 workers, 1 backup: the round completes after 3 arrivals.
	p := MustNewBackupBSP(4, 1)
	now := time.Unix(0, 0)
	if d := p.OnPush(0, now); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	if d := p.OnPush(1, now); len(d.Release) != 0 {
		t.Fatalf("premature release %v", d.Release)
	}
	d := p.OnPush(2, now)
	if len(d.Release) != 3 {
		t.Fatalf("expected release of the 3 arrived workers, got %v", d.Release)
	}
	if d.Drop {
		t.Fatal("in-round updates must not be dropped")
	}
	if p.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", p.Rounds())
	}
}

func TestBackupBSPDropsStragglerUpdate(t *testing.T) {
	p := MustNewBackupBSP(3, 1)
	now := time.Unix(0, 0)
	p.OnPush(0, now)
	d := p.OnPush(1, now)
	if len(d.Release) != 2 {
		t.Fatalf("round should complete after 2 of 3 arrivals, got %v", d.Release)
	}
	// Worker 2 is the straggler of round 0: its update is dropped and it is
	// released immediately so it can join the current round.
	d = p.OnPush(2, now)
	if !d.Drop {
		t.Fatal("straggler update must be dropped")
	}
	if len(d.Release) != 1 || d.Release[0] != 2 {
		t.Fatalf("straggler must be released immediately, got %v", d.Release)
	}
	if p.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", p.Dropped())
	}
}

func TestBackupBSPWithZeroBackupsIsBSP(t *testing.T) {
	backup := MustNewBackupBSP(3, 0)
	bsp := MustNewBSP(3)
	now := time.Unix(0, 0)
	order := []WorkerID{2, 0, 1, 0, 1, 2, 1, 2, 0}
	for i, w := range order {
		db := backup.OnPush(w, now)
		dr := bsp.OnPush(w, now)
		if len(db.Release) != len(dr.Release) {
			t.Fatalf("push %d: backup released %v, BSP released %v", i, db.Release, dr.Release)
		}
		if db.Drop {
			t.Fatalf("push %d: no updates may be dropped with zero backups", i)
		}
	}
}

func TestBackupBSPStragglersDoNotStallProgress(t *testing.T) {
	// Worker 2 is extremely slow; with one backup the other two workers keep
	// completing rounds at their own pace.
	durations := []time.Duration{time.Second, time.Second, time.Hour}
	drv := newReplayDriver(MustNewBackupBSP(3, 1), durations)
	if !drv.run(200) {
		t.Fatal("backup BSP deadlocked")
	}
	p := drv.policy.(*BackupBSP)
	if p.Rounds() < 90 {
		t.Fatalf("expected ~100 rounds despite the straggler, got %d", p.Rounds())
	}
}

func TestBackupBSPName(t *testing.T) {
	if got := MustNewBackupBSP(5, 2).Name(); got != "BackupBSP(workers=5,backups=2)" {
		t.Fatalf("unexpected name %q", got)
	}
}
