package core

import (
	"fmt"
	"time"
)

// Controller is the synchronization controller of Algorithm 2 in the paper.
//
// It keeps, for every worker, the timestamps of the two most recent push
// requests (table A). When the parameter server asks it about the currently
// fastest worker p, it estimates p's and the slowest worker's next iteration
// intervals from those timestamps, simulates the next rmax iterations of both
// on the time line, and returns the number of extra iterations r* in
// [0, rmax] that minimizes the predicted waiting time of worker p, i.e. the
// r whose simulated finish time lies closest to one of the slowest worker's
// simulated finish times.
type Controller struct {
	n    int
	rmax int

	// latest[i] and previous[i] are A[i][0] and A[i][1] in Algorithm 2.
	latest   []time.Time
	previous []time.Time
	seen     []int // number of timestamps recorded per worker (0, 1, or 2+)
}

// NewController returns a controller for n workers allowing at most rmax
// extra iterations beyond the lower staleness bound.
func NewController(n, rmax int) (*Controller, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	if rmax < 0 {
		return nil, fmt.Errorf("core: rmax must be >= 0, got %d", rmax)
	}
	return &Controller{
		n:        n,
		rmax:     rmax,
		latest:   make([]time.Time, n),
		previous: make([]time.Time, n),
		seen:     make([]int, n),
	}, nil
}

// MustNewController is like NewController but panics on invalid arguments.
func MustNewController(n, rmax int) *Controller {
	c, err := NewController(n, rmax)
	if err != nil {
		panic(err)
	}
	return c
}

// Observe records a push timestamp for worker w without asking for a
// decision (lines 1-2 of Algorithm 2 applied on every push so that the
// timestamp table stays current for all workers, not only the fastest one).
func (c *Controller) Observe(w WorkerID, pushTime time.Time) {
	if err := validateWorkerID(w, c.n); err != nil {
		panic(err)
	}
	c.previous[w] = c.latest[w]
	c.latest[w] = pushTime
	if c.seen[w] < 2 {
		c.seen[w]++
	}
}

// Interval returns the most recently observed iteration interval of worker w
// (the distance between its two latest push timestamps, Figure 1 in the
// paper) and whether enough observations exist to compute it.
func (c *Controller) Interval(w WorkerID) (time.Duration, bool) {
	if err := validateWorkerID(w, c.n); err != nil {
		panic(err)
	}
	if c.seen[w] < 2 {
		return 0, false
	}
	return c.latest[w].Sub(c.previous[w]), true
}

// RMax returns the maximum number of extra iterations the controller may
// grant, i.e. sU - sL.
func (c *Controller) RMax() int { return c.rmax }

// ExtraIterations implements Algorithm 2: given that worker p just pushed
// (and its timestamp has been Observed), it identifies the slowest worker by
// clock, simulates the next rmax iterations of both workers from their
// estimated intervals, and returns the r* in [0, rmax] whose stopping point
// yields the least predicted waiting time for worker p.
//
// The listing's line 8 expresses the objective through the proxy
// |Sim_slowest[k] − Sim_p[r]|; this implementation minimizes the predicted
// waiting time itself (the paper's stated objective in §I-B and the quantity
// drawn in Figure 2), breaking ties toward the larger r, which lets worker p
// do strictly more work for the same predicted wait.
//
// clocks supplies the server's per-worker push counts (array t of
// Algorithm 1) and is used to find the slowest worker. When the controller
// lacks two timestamps for either worker involved, it conservatively returns
// zero extra iterations.
func (c *Controller) ExtraIterations(p WorkerID, clocks []int) int {
	if err := validateWorkerID(p, c.n); err != nil {
		panic(err)
	}
	if len(clocks) != c.n {
		panic(fmt.Sprintf("core: controller got %d clocks for %d workers", len(clocks), c.n))
	}
	if c.rmax == 0 {
		return 0
	}

	slowest := c.slowestWorker(clocks)
	if slowest == p {
		return 0
	}
	if _, ok := c.Interval(p); !ok {
		return 0
	}
	if _, ok := c.Interval(slowest); !ok {
		return 0
	}

	best := 0
	bestWait := time.Duration(-1)
	for r := 0; r <= c.rmax; r++ {
		wait, ok := c.PredictedWait(p, clocks, r)
		if !ok {
			return 0
		}
		if bestWait < 0 || wait <= bestWait {
			bestWait = wait
			best = r
		}
	}
	return best
}

// PredictedWait returns the waiting time worker p would experience if it
// stopped after running r extra iterations, according to the controller's
// current interval estimates. The returned duration is zero when the slowest
// worker is predicted to finish before worker p. The boolean is false when
// the controller lacks the observations needed for a prediction.
//
// This is the quantity minimized in Figure 2 of the paper; it is exposed so
// that experiments can plot the full waiting-time curve over r.
func (c *Controller) PredictedWait(p WorkerID, clocks []int, r int) (time.Duration, bool) {
	if err := validateWorkerID(p, c.n); err != nil {
		panic(err)
	}
	if r < 0 || r > c.rmax {
		return 0, false
	}
	slowest := c.slowestWorker(clocks)
	if slowest == p {
		return 0, false
	}
	ip, okP := c.Interval(p)
	islow, okS := c.Interval(slowest)
	if !okP || !okS || ip <= 0 || islow <= 0 {
		return 0, false
	}
	stop := c.latest[p].Add(time.Duration(r) * ip)
	// The slowest worker releases worker p at the first of its simulated
	// finish times that is not earlier than p's stopping point.
	release := c.latest[slowest].Add(islow)
	for release.Before(stop) {
		release = release.Add(islow)
	}
	wait := release.Sub(stop)
	return wait, true
}

// slowestWorker returns the worker with the smallest clock value, breaking
// ties toward the lower worker ID.
func (c *Controller) slowestWorker(clocks []int) WorkerID {
	slowest := WorkerID(0)
	for i := 1; i < len(clocks); i++ {
		if clocks[i] < clocks[slowest] {
			slowest = WorkerID(i)
		}
	}
	return slowest
}
