package core

import (
	"testing"
	"time"
)

// benchPolicy drives a policy through b.N push decisions with a fixed
// heterogeneous schedule.
func benchPolicy(b *testing.B, p Policy) {
	b.Helper()
	durations := make([]time.Duration, p.NumWorkers())
	for i := range durations {
		durations[i] = time.Duration(i+1) * 100 * time.Millisecond
	}
	drv := newReplayDriver(p, durations)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !drv.step() {
			b.Fatal("policy deadlocked")
		}
	}
}

func BenchmarkBSPOnPush(b *testing.B)  { benchPolicy(b, MustNewBSP(8)) }
func BenchmarkASPOnPush(b *testing.B)  { benchPolicy(b, MustNewASP(8)) }
func BenchmarkSSPOnPush(b *testing.B)  { benchPolicy(b, MustNewSSP(8, 3)) }
func BenchmarkDSSPOnPush(b *testing.B) { benchPolicy(b, MustNewDSSP(8, 3, 12)) }

func BenchmarkDSSPOnPushEnforcedBound(b *testing.B) {
	p := MustNewDSSP(8, 3, 12)
	p.EnforceUpperBound(true)
	benchPolicy(b, p)
}

func BenchmarkBoundedDelayOnPush(b *testing.B) { benchPolicy(b, MustNewBoundedDelay(8, 4)) }
func BenchmarkBackupBSPOnPush(b *testing.B)    { benchPolicy(b, MustNewBackupBSP(8, 2)) }

// BenchmarkControllerDecision measures one Algorithm-2 decision, the
// operation the paper describes as "lightweight" enough to run on every
// fastest-worker push.
func BenchmarkControllerDecision(b *testing.B) {
	const workers = 16
	c := MustNewController(workers, 12)
	base := time.Unix(0, 0)
	for w := 0; w < workers; w++ {
		c.Observe(WorkerID(w), base.Add(time.Duration(w+1)*time.Second))
		c.Observe(WorkerID(w), base.Add(time.Duration(2*(w+1))*time.Second))
	}
	clocks := make([]int, workers)
	for w := range clocks {
		clocks[w] = workers - w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ExtraIterations(0, clocks)
	}
}
