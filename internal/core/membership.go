package core

import "time"

// Membership semantics. Every policy coordinates a fixed capacity of worker
// slots [0, NumWorkers), but the set of slots that currently participate in
// synchronization is dynamic: OnLeave removes a worker from barrier and
// staleness accounting (a crashed or drained worker must never block its
// peers), OnJoin adds it back. A worker that pushes while marked inactive is
// implicitly rejoined — a push is the strongest possible proof of
// participation — so policies stay self-consistent even if a join
// notification is lost.
//
// Rejoining resets the worker's progress accounting to the slowest active
// worker's clock: a rejoining worker pulls fresh weights before computing
// (Algorithm 1), so its first gradient is no staler than anyone else's and
// must not drag the minimum clock down to its pre-crash value.

// StaticMembership is an embeddable helper for Policy implementations with a
// truly fixed worker set: OnJoin and OnLeave are accepted and ignored. The
// six built-in paradigms implement real membership semantics instead; this
// helper exists for external or experimental policies that do not care about
// churn.
type StaticMembership struct{}

// OnJoin implements the membership half of Policy as a no-op.
func (StaticMembership) OnJoin(WorkerID, time.Time) Decision { return Decision{} }

// OnLeave implements the membership half of Policy as a no-op.
func (StaticMembership) OnLeave(WorkerID, time.Time) Decision { return Decision{} }
