package core

import (
	"testing"
	"time"
)

func TestNewBSPRejectsInvalidWorkerCount(t *testing.T) {
	for _, n := range []int{0, -1, -10} {
		if _, err := NewBSP(n); err == nil {
			t.Errorf("NewBSP(%d): expected error, got nil", n)
		}
	}
}

func TestBSPReleasesNobodyUntilBarrierComplete(t *testing.T) {
	p := MustNewBSP(4)
	now := time.Now()
	for w := 0; w < 3; w++ {
		d := p.OnPush(WorkerID(w), now)
		if len(d.Release) != 0 {
			t.Fatalf("worker %d released before barrier complete: %v", w, d.Release)
		}
	}
	if got := len(p.Blocked()); got != 3 {
		t.Fatalf("expected 3 blocked workers, got %d", got)
	}
	d := p.OnPush(3, now)
	if len(d.Release) != 4 {
		t.Fatalf("expected all 4 workers released at barrier, got %v", d.Release)
	}
	if got := len(p.Blocked()); got != 0 {
		t.Fatalf("expected no blocked workers after barrier, got %d", got)
	}
	if p.Rounds() != 1 {
		t.Fatalf("expected 1 completed round, got %d", p.Rounds())
	}
}

func TestBSPMultipleRounds(t *testing.T) {
	p := MustNewBSP(2)
	now := time.Now()
	for round := 0; round < 5; round++ {
		if d := p.OnPush(0, now); len(d.Release) != 0 {
			t.Fatalf("round %d: premature release %v", round, d.Release)
		}
		d := p.OnPush(1, now)
		if len(d.Release) != 2 {
			t.Fatalf("round %d: expected barrier release of 2, got %v", round, d.Release)
		}
	}
	if p.Rounds() != 5 {
		t.Fatalf("expected 5 rounds, got %d", p.Rounds())
	}
	if p.Clock(0) != 5 || p.Clock(1) != 5 {
		t.Fatalf("expected both clocks at 5, got %d and %d", p.Clock(0), p.Clock(1))
	}
}

func TestBSPKeepsClocksEqualAtEveryBarrier(t *testing.T) {
	p := MustNewBSP(3)
	now := time.Now()
	order := []WorkerID{2, 0, 1, 1, 2, 0, 0, 1, 2}
	for i, w := range order {
		d := p.OnPush(w, now)
		barrier := (i+1)%3 == 0
		if barrier && len(d.Release) != 3 {
			t.Fatalf("push %d: expected barrier release, got %v", i, d.Release)
		}
		if !barrier && len(d.Release) != 0 {
			t.Fatalf("push %d: unexpected release %v", i, d.Release)
		}
	}
	for w := 0; w < 3; w++ {
		if p.Clock(WorkerID(w)) != 3 {
			t.Fatalf("worker %d clock = %d, want 3", w, p.Clock(WorkerID(w)))
		}
	}
}

func TestBSPStalenessBoundIsZero(t *testing.T) {
	p := MustNewBSP(4)
	var b StalenessBounder = p
	if b.StalenessBound() != 0 {
		t.Fatalf("BSP staleness bound = %d, want 0", b.StalenessBound())
	}
}

func TestBSPName(t *testing.T) {
	if got := MustNewBSP(4).Name(); got != "BSP(workers=4)" {
		t.Fatalf("unexpected name %q", got)
	}
}

func TestBSPPanicsOnOutOfRangeWorker(t *testing.T) {
	p := MustNewBSP(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range worker id")
		}
	}()
	p.OnPush(5, time.Now())
}
