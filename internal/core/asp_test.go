package core

import (
	"testing"
	"time"
)

func TestNewASPRejectsInvalidWorkerCount(t *testing.T) {
	if _, err := NewASP(0); err == nil {
		t.Fatal("NewASP(0): expected error, got nil")
	}
}

func TestASPAlwaysReleasesPusher(t *testing.T) {
	p := MustNewASP(3)
	now := time.Now()
	for i := 0; i < 20; i++ {
		w := WorkerID(i % 3)
		d := p.OnPush(w, now)
		if len(d.Release) != 1 || d.Release[0] != w {
			t.Fatalf("push %d: expected release of worker %d, got %v", i, w, d.Release)
		}
		if d.Drop {
			t.Fatalf("push %d: ASP must never drop updates", i)
		}
	}
	if len(p.Blocked()) != 0 {
		t.Fatalf("ASP must never block, got %v", p.Blocked())
	}
}

func TestASPAllowsUnboundedSpread(t *testing.T) {
	p := MustNewASP(2)
	now := time.Now()
	for i := 0; i < 100; i++ {
		d := p.OnPush(0, now)
		if len(d.Release) != 1 {
			t.Fatalf("fast worker blocked at push %d", i)
		}
	}
	if p.Clock(0) != 100 || p.Clock(1) != 0 {
		t.Fatalf("unexpected clocks %d/%d", p.Clock(0), p.Clock(1))
	}
	if _, ok := interface{}(p).(StalenessBounder); ok {
		t.Fatal("ASP must not claim a staleness bound")
	}
}

func TestASPClockCountsPerWorker(t *testing.T) {
	p := MustNewASP(4)
	now := time.Now()
	pushes := map[WorkerID]int{0: 3, 1: 7, 2: 0, 3: 1}
	for w, n := range pushes {
		for i := 0; i < n; i++ {
			p.OnPush(w, now)
		}
	}
	for w, n := range pushes {
		if p.Clock(w) != n {
			t.Errorf("worker %d clock = %d, want %d", w, p.Clock(w), n)
		}
	}
	if p.NumWorkers() != 4 {
		t.Errorf("NumWorkers = %d, want 4", p.NumWorkers())
	}
}

func TestASPName(t *testing.T) {
	if got := MustNewASP(2).Name(); got != "ASP(workers=2)" {
		t.Fatalf("unexpected name %q", got)
	}
}
