package core

import (
	"testing"
	"time"
)

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(0, 3); err == nil {
		t.Error("NewController(0,3): expected error")
	}
	if _, err := NewController(4, -1); err == nil {
		t.Error("NewController(4,-1): expected error")
	}
}

func TestControllerIntervalNeedsTwoObservations(t *testing.T) {
	c := MustNewController(2, 4)
	base := time.Unix(0, 0)
	if _, ok := c.Interval(0); ok {
		t.Fatal("interval should be unavailable before any observation")
	}
	c.Observe(0, base)
	if _, ok := c.Interval(0); ok {
		t.Fatal("interval should be unavailable after a single observation")
	}
	c.Observe(0, base.Add(3*time.Second))
	iv, ok := c.Interval(0)
	if !ok || iv != 3*time.Second {
		t.Fatalf("interval = %v,%v; want 3s,true", iv, ok)
	}
}

func TestControllerConservativeWithoutObservations(t *testing.T) {
	c := MustNewController(3, 5)
	if got := c.ExtraIterations(0, []int{5, 1, 1}); got != 0 {
		t.Fatalf("controller should grant 0 without timestamps, got %d", got)
	}
}

func TestControllerZeroRangeGrantsNothing(t *testing.T) {
	c := MustNewController(2, 0)
	base := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		c.Observe(0, base.Add(time.Duration(i)*time.Second))
		c.Observe(1, base.Add(time.Duration(i)*10*time.Second))
	}
	if got := c.ExtraIterations(0, []int{3, 1}); got != 0 {
		t.Fatalf("rmax=0 must grant 0 extra iterations, got %d", got)
	}
}

func TestControllerFigure2Scenario(t *testing.T) {
	// Reproduces the situation of Figure 2: the fast worker's iteration takes
	// 1s, the slow worker's takes 3.5s. With rmax=4 the controller should let
	// the fast worker run ~3 extra iterations so that it finishes just before
	// the slow worker's next push, rather than stopping immediately.
	c := MustNewController(2, 4)
	base := time.Unix(0, 0)
	// Fast worker pushed at t=9s and t=10s (interval 1s).
	c.Observe(0, base.Add(9*time.Second))
	// Slow worker pushed at t=6500ms and t=10s (interval 3.5s).
	c.Observe(1, base.Add(6500*time.Millisecond))
	c.Observe(1, base.Add(10*time.Second))
	c.Observe(0, base.Add(10*time.Second))

	clocks := []int{10, 3} // worker 0 is far ahead
	got := c.ExtraIterations(0, clocks)
	// The slow worker finishes next at t=13.5s; the fast worker's simulated
	// pushes are at 10,11,12,13,14s, so r=3 (t=13s) minimizes the gap (0.5s)
	// against the slow worker's 13.5s. Allow r=4 would give |14-13.5|=0.5 too?
	// No: 13.5-13 = 0.5 and 14-13.5 = 0.5 tie; the argmin keeps the first
	// minimum found which is r=3 (smaller r scanned first).
	if got != 3 {
		t.Fatalf("ExtraIterations = %d, want 3", got)
	}
}

func TestControllerGrantReducesPredictedWait(t *testing.T) {
	c := MustNewController(2, 8)
	base := time.Unix(0, 0)
	// Fast worker: 1s intervals. Slow worker: 5s intervals.
	c.Observe(0, base.Add(1*time.Second))
	c.Observe(1, base.Add(5*time.Second))
	c.Observe(0, base.Add(2*time.Second))
	c.Observe(1, base.Add(10*time.Second))

	clocks := []int{8, 2}
	r := c.ExtraIterations(0, clocks)
	if r <= 0 {
		t.Fatalf("expected a positive grant for a much faster worker, got %d", r)
	}
	wait0, ok0 := c.PredictedWait(0, clocks, 0)
	waitR, okR := c.PredictedWait(0, clocks, r)
	if !ok0 || !okR {
		t.Fatal("predicted waits unavailable")
	}
	if waitR > wait0 {
		t.Fatalf("grant increased predicted wait: r=%d gives %v, r=0 gives %v", r, waitR, wait0)
	}
}

func TestControllerGrantIsOptimalAmongAllChoices(t *testing.T) {
	c := MustNewController(3, 6)
	base := time.Unix(0, 0)
	times := map[WorkerID][]time.Duration{
		0: {2 * time.Second, 4 * time.Second},         // 2s interval
		1: {7 * time.Second, 14 * time.Second},        // 7s interval
		2: {3 * time.Second, 6500 * time.Millisecond}, // 3.5s interval
	}
	for w, ts := range times {
		for _, ti := range ts {
			c.Observe(w, base.Add(ti))
		}
	}
	clocks := []int{9, 2, 5}
	r := c.ExtraIterations(0, clocks)
	bestWait, ok := c.PredictedWait(0, clocks, r)
	if !ok {
		t.Fatal("predicted wait unavailable for granted r")
	}
	for alt := 0; alt <= 6; alt++ {
		w, ok := c.PredictedWait(0, clocks, alt)
		if !ok {
			t.Fatalf("predicted wait unavailable for r=%d", alt)
		}
		if w < bestWait {
			t.Fatalf("controller chose r=%d (wait %v) but r=%d waits only %v", r, bestWait, alt, w)
		}
	}
}

func TestControllerSlowestIsSelfGrantsNothing(t *testing.T) {
	c := MustNewController(2, 4)
	base := time.Unix(0, 0)
	c.Observe(0, base.Add(1*time.Second))
	c.Observe(0, base.Add(2*time.Second))
	c.Observe(1, base.Add(1*time.Second))
	c.Observe(1, base.Add(2*time.Second))
	// Worker 0 is (tied) slowest: no extra iterations.
	if got := c.ExtraIterations(0, []int{1, 5}); got != 0 {
		t.Fatalf("slowest worker must not receive extra iterations, got %d", got)
	}
}

func TestControllerGrantNeverExceedsRMax(t *testing.T) {
	const rmax = 5
	c := MustNewController(2, rmax)
	base := time.Unix(0, 0)
	// Extremely fast worker 0 vs extremely slow worker 1.
	c.Observe(0, base.Add(time.Millisecond))
	c.Observe(0, base.Add(2*time.Millisecond))
	c.Observe(1, base.Add(time.Hour))
	c.Observe(1, base.Add(2*time.Hour))
	got := c.ExtraIterations(0, []int{100, 1})
	if got < 0 || got > rmax {
		t.Fatalf("grant %d outside [0,%d]", got, rmax)
	}
}

func TestControllerPredictedWaitBounds(t *testing.T) {
	c := MustNewController(2, 3)
	base := time.Unix(0, 0)
	c.Observe(0, base.Add(time.Second))
	c.Observe(0, base.Add(2*time.Second))
	c.Observe(1, base.Add(4*time.Second))
	c.Observe(1, base.Add(8*time.Second))
	if _, ok := c.PredictedWait(0, []int{5, 1}, -1); ok {
		t.Error("negative r must be rejected")
	}
	if _, ok := c.PredictedWait(0, []int{5, 1}, 4); ok {
		t.Error("r beyond rmax must be rejected")
	}
	w, ok := c.PredictedWait(0, []int{5, 1}, 2)
	if !ok || w < 0 {
		t.Errorf("PredictedWait(2) = %v,%v; want non-negative wait", w, ok)
	}
}
