package core

import (
	"fmt"
	"time"
)

// BSP implements Bulk Synchronous Parallel: every worker pushes its gradient
// and then waits at a barrier; once all workers of the current superstep have
// pushed, the server updates the global weights and releases everyone
// simultaneously. All workers therefore always start an iteration from the
// same version of the global weights.
type BSP struct {
	n       int
	clock   *vectorClock
	waiting *waitSet
	round   int // completed barrier rounds
}

// NewBSP returns a BSP policy coordinating n workers.
func NewBSP(n int) (*BSP, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	return &BSP{n: n, clock: newVectorClock(n), waiting: newWaitSet(n)}, nil
}

// MustNewBSP is like NewBSP but panics on an invalid worker count.
// It is intended for tests and examples with constant arguments.
func MustNewBSP(n int) *BSP {
	p, err := NewBSP(n)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy. The pushing worker joins the barrier; when it is
// the last worker of the round, all workers are released.
func (p *BSP) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Tick(w)
	p.waiting.Add(w)
	if p.waiting.Len() == p.n {
		// Barrier complete: release everyone and start the next superstep.
		for _, id := range releaseAll(p.n) {
			p.waiting.Remove(id)
		}
		p.round++
		return Decision{Release: releaseAll(p.n)}
	}
	return Decision{}
}

// Blocked implements Policy.
func (p *BSP) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *BSP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *BSP) NumWorkers() int { return p.n }

// Rounds returns the number of completed barrier rounds (supersteps).
func (p *BSP) Rounds() int { return p.round }

// StalenessBound implements StalenessBounder: BSP is SSP with s = 0.
func (p *BSP) StalenessBound() int { return 0 }

// Name implements Policy.
func (p *BSP) Name() string { return fmt.Sprintf("BSP(workers=%d)", p.n) }
