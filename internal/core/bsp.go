package core

import (
	"fmt"
	"time"
)

// BSP implements Bulk Synchronous Parallel: every worker pushes its gradient
// and then waits at a barrier; once all workers of the current superstep have
// pushed, the server updates the global weights and releases everyone
// simultaneously. All workers therefore always start an iteration from the
// same version of the global weights.
type BSP struct {
	n       int
	clock   *vectorClock
	waiting *waitSet
	round   int // completed barrier rounds
}

// NewBSP returns a BSP policy coordinating n workers.
func NewBSP(n int) (*BSP, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	return &BSP{n: n, clock: newVectorClock(n), waiting: newWaitSet(n)}, nil
}

// MustNewBSP is like NewBSP but panics on an invalid worker count.
// It is intended for tests and examples with constant arguments.
func MustNewBSP(n int) *BSP {
	p, err := NewBSP(n)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy. The pushing worker joins the barrier; when it is
// the last active worker of the round, all active workers are released.
func (p *BSP) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	p.clock.Tick(w)
	p.waiting.Add(w)
	return Decision{Release: p.completeBarrier()}
}

// OnJoin implements Policy: the worker joins the barrier population, so the
// current round now needs its push too.
func (p *BSP) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	return Decision{}
}

// OnLeave implements Policy: the worker drops out of the barrier population.
// If every remaining active worker has already pushed, its departure
// completes the round — without this, one crashed worker blocks the barrier
// forever.
func (p *BSP) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	if !p.clock.Leave(w) {
		return Decision{}
	}
	p.waiting.Remove(w)
	return Decision{Release: p.completeBarrier()}
}

// completeBarrier releases every active worker and advances the round when
// all active workers are waiting, and returns nil otherwise.
func (p *BSP) completeBarrier() []WorkerID {
	active := p.clock.NumActive()
	if active == 0 || p.waiting.Len() != active {
		return nil
	}
	release := p.clock.ActiveList()
	for _, id := range release {
		p.waiting.Remove(id)
	}
	p.round++
	return release
}

// Blocked implements Policy.
func (p *BSP) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *BSP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *BSP) NumWorkers() int { return p.n }

// Rounds returns the number of completed barrier rounds (supersteps).
func (p *BSP) Rounds() int { return p.round }

// StalenessBound implements StalenessBounder: BSP is SSP with s = 0.
func (p *BSP) StalenessBound() int { return 0 }

// Name implements Policy.
func (p *BSP) Name() string { return fmt.Sprintf("BSP(workers=%d)", p.n) }
