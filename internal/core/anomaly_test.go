package core

import "testing"

func TestClockMonitorFutureVersion(t *testing.T) {
	m := NewClockMonitor(2, 0)
	m.ObservePull(0)
	if a := m.ObservePush(0, 5, 10); len(a) != 0 {
		t.Fatalf("stale push flagged: %v", a)
	}
	m.ObservePull(0)
	a := m.ObservePush(0, 11, 10)
	if len(a) != 1 || a[0] != AnomalyFutureVersion {
		t.Fatalf("got %v, want [future-version]", a)
	}
	if m.Flags(0) != 1 || m.Flags(1) != 0 {
		t.Fatalf("flags %v", m.FlagCounts())
	}
}

func TestClockMonitorPushFlood(t *testing.T) {
	m := NewClockMonitor(1, 2)
	m.ObservePull(0)
	for i := 0; i < 2; i++ {
		if a := m.ObservePush(0, 0, 0); len(a) != 0 {
			t.Fatalf("push %d within slack flagged: %v", i, a)
		}
	}
	a := m.ObservePush(0, 0, 0)
	if len(a) != 1 || a[0] != AnomalyPushFlood {
		t.Fatalf("got %v, want [push-flood]", a)
	}
	// Pull resets the counter.
	m.ObservePull(0)
	if a := m.ObservePush(0, 0, 0); len(a) != 0 {
		t.Fatalf("post-pull push flagged: %v", a)
	}
}

func TestClockMonitorCombinedAnomalies(t *testing.T) {
	m := NewClockMonitor(1, 1)
	m.ObservePull(0)
	m.ObservePush(0, 0, 0)
	// Second push without a pull AND a future version: both anomalies fire.
	a := m.ObservePush(0, 100, 0)
	if len(a) != 2 {
		t.Fatalf("got %v, want two anomalies", a)
	}
	if m.Flags(0) != 2 {
		t.Fatalf("flags %d, want 2", m.Flags(0))
	}
}

func TestAnomalyString(t *testing.T) {
	if AnomalyFutureVersion.String() != "future-version" || AnomalyPushFlood.String() != "push-flood" {
		t.Fatal("anomaly names changed")
	}
	if Anomaly(99).String() != "unknown" {
		t.Fatal("unknown anomaly name")
	}
}
