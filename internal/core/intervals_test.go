package core

import (
	"testing"
	"time"
)

func TestIntervalTrackerValidation(t *testing.T) {
	if _, err := NewIntervalTracker(0, 10); err == nil {
		t.Fatal("NewIntervalTracker(0,10): expected error")
	}
}

func TestIntervalTrackerFirstPushClosesNoInterval(t *testing.T) {
	tr := MustNewIntervalTracker(2, 0)
	if _, closed := tr.RecordPush(0, time.Unix(0, 0)); closed {
		t.Fatal("first push must not close an interval")
	}
	if _, ok := tr.Latest(0); ok {
		t.Fatal("no interval should be available after a single push")
	}
}

func TestIntervalTrackerMeasuresConsecutivePushGaps(t *testing.T) {
	tr := MustNewIntervalTracker(1, 0)
	base := time.Unix(0, 0)
	pushes := []time.Duration{0, 2 * time.Second, 5 * time.Second, 9 * time.Second}
	for _, at := range pushes {
		tr.RecordPush(0, base.Add(at))
	}
	want := []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second}
	got := tr.Intervals(0)
	if len(got) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	latest, ok := tr.Latest(0)
	if !ok || latest != 4*time.Second {
		t.Errorf("Latest = %v,%v; want 4s,true", latest, ok)
	}
	mean, ok := tr.Mean(0)
	if !ok || mean != 3*time.Second {
		t.Errorf("Mean = %v,%v; want 3s,true", mean, ok)
	}
}

func TestIntervalTrackerHonorsCapacity(t *testing.T) {
	tr := MustNewIntervalTracker(1, 3)
	base := time.Unix(0, 0)
	for i := 0; i <= 10; i++ {
		tr.RecordPush(0, base.Add(time.Duration(i*i)*time.Second))
	}
	if got := len(tr.Intervals(0)); got != 3 {
		t.Fatalf("capacity 3 but %d intervals kept", got)
	}
}

func TestIntervalTrackerIndependentWorkers(t *testing.T) {
	tr := MustNewIntervalTracker(3, 0)
	base := time.Unix(0, 0)
	tr.RecordPush(0, base)
	tr.RecordPush(1, base.Add(time.Second))
	tr.RecordPush(0, base.Add(5*time.Second))
	tr.RecordPush(1, base.Add(3*time.Second))

	if iv, ok := tr.Latest(0); !ok || iv != 5*time.Second {
		t.Errorf("worker 0 latest = %v,%v; want 5s", iv, ok)
	}
	if iv, ok := tr.Latest(1); !ok || iv != 2*time.Second {
		t.Errorf("worker 1 latest = %v,%v; want 2s", iv, ok)
	}
	if _, ok := tr.Latest(2); ok {
		t.Error("worker 2 should have no interval")
	}
	if tr.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestIntervalTrackerMatchesControllerIntervalEstimates(t *testing.T) {
	// Figure 1 of the paper: the interval measured from push timestamps is
	// exactly what the DSSP controller uses for its predictions.
	tr := MustNewIntervalTracker(2, 0)
	ctl := MustNewController(2, 4)
	base := time.Unix(0, 0)
	schedule := []struct {
		w  WorkerID
		at time.Duration
	}{
		{0, 1 * time.Second}, {1, 3 * time.Second},
		{0, 4 * time.Second}, {1, 9 * time.Second},
		{0, 6 * time.Second}, {1, 17 * time.Second},
	}
	for _, s := range schedule {
		tr.RecordPush(s.w, base.Add(s.at))
		ctl.Observe(s.w, base.Add(s.at))
	}
	for w := WorkerID(0); w < 2; w++ {
		fromTracker, ok1 := tr.Latest(w)
		fromController, ok2 := ctl.Interval(w)
		if !ok1 || !ok2 || fromTracker != fromController {
			t.Errorf("worker %d: tracker %v(%v) controller %v(%v)", w, fromTracker, ok1, fromController, ok2)
		}
	}
}
