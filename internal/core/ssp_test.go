package core

import (
	"testing"
	"time"
)

func TestNewSSPValidation(t *testing.T) {
	if _, err := NewSSP(0, 3); err == nil {
		t.Error("NewSSP(0,3): expected error")
	}
	if _, err := NewSSP(4, -1); err == nil {
		t.Error("NewSSP(4,-1): expected error")
	}
	if _, err := NewSSP(4, 0); err != nil {
		t.Errorf("NewSSP(4,0): unexpected error %v", err)
	}
}

func TestSSPReleasesWithinThreshold(t *testing.T) {
	p := MustNewSSP(2, 3)
	now := time.Now()
	// Worker 0 may run up to threshold+1 pushes ahead before blocking: the
	// push that makes it 4 ahead of worker 1 (clock 4 vs 0) blocks.
	for i := 0; i < 3; i++ {
		d := p.OnPush(0, now)
		if len(d.Release) != 1 || d.Release[0] != 0 {
			t.Fatalf("push %d: expected release of worker 0, got %v", i, d.Release)
		}
	}
	d := p.OnPush(0, now)
	if len(d.Release) != 0 {
		t.Fatalf("expected worker 0 blocked at spread 4 > s=3, got release %v", d.Release)
	}
	if got := p.Blocked(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("expected worker 0 blocked, got %v", got)
	}
}

func TestSSPSlowWorkerPushUnblocksFastWorker(t *testing.T) {
	p := MustNewSSP(2, 1)
	now := time.Now()
	p.OnPush(0, now) // clock 1 vs 0: released
	d := p.OnPush(0, now)
	if len(d.Release) != 0 {
		t.Fatalf("worker 0 should block at clock 2 vs 0 with s=1, got %v", d.Release)
	}
	// Worker 1 pushes: its own release plus worker 0's.
	d = p.OnPush(1, now)
	if len(d.Release) != 2 {
		t.Fatalf("expected both workers released, got %v", d.Release)
	}
	found := map[WorkerID]bool{}
	for _, id := range d.Release {
		found[id] = true
	}
	if !found[0] || !found[1] {
		t.Fatalf("expected workers 0 and 1 in release set, got %v", d.Release)
	}
}

func TestSSPWithZeroThresholdStillAllowsOneIterationGap(t *testing.T) {
	// With s=0 a worker that pushes while others are at the same clock is
	// released (difference 1 appears only between its next iteration and the
	// others' current one); a second push without others advancing blocks.
	p := MustNewSSP(3, 0)
	now := time.Now()
	if d := p.OnPush(0, now); len(d.Release) != 0 {
		t.Fatalf("worker 0 at clock 1 vs min 0 should block under s=0, got %v", d.Release)
	}
	if d := p.OnPush(1, now); len(d.Release) != 0 {
		t.Fatalf("worker 1 should block, got %v", d.Release)
	}
	d := p.OnPush(2, now)
	if len(d.Release) != 3 {
		t.Fatalf("expected all released once clocks equal, got %v", d.Release)
	}
}

func TestSSPOnlyFastWorkersWait(t *testing.T) {
	p := MustNewSSP(3, 2)
	now := time.Now()
	// Workers 0 and 1 advance to clock 3; worker 2 stays at 0.
	for i := 0; i < 3; i++ {
		d0 := p.OnPush(0, now)
		d1 := p.OnPush(1, now)
		if i < 2 {
			if len(d0.Release) != 1 || len(d1.Release) != 1 {
				t.Fatalf("iteration %d: middle workers should not block", i)
			}
		} else {
			if len(d0.Release) != 0 || len(d1.Release) != 0 {
				t.Fatalf("iteration %d: workers 3 ahead must block under s=2", i)
			}
		}
	}
	blocked := p.Blocked()
	if len(blocked) != 2 {
		t.Fatalf("expected exactly the two fast workers blocked, got %v", blocked)
	}
	// Slow worker's push unblocks both.
	d := p.OnPush(2, now)
	if len(d.Release) != 3 {
		t.Fatalf("expected 3 releases after slow worker push, got %v", d.Release)
	}
}

func TestSSPSpreadNeverExceedsThresholdPlusOne(t *testing.T) {
	const (
		workers   = 5
		threshold = 4
		pushes    = 500
	)
	p := MustNewSSP(workers, threshold)
	released := make([]bool, workers)
	for i := range released {
		released[i] = true
	}
	now := time.Now()
	rng := newTestRand(7)
	for i := 0; i < pushes; i++ {
		// Pick a random worker that is currently allowed to run.
		candidates := make([]WorkerID, 0, workers)
		for w, ok := range released {
			if ok {
				candidates = append(candidates, WorkerID(w))
			}
		}
		if len(candidates) == 0 {
			t.Fatal("deadlock: no releasable workers")
		}
		w := candidates[rng.Intn(len(candidates))]
		released[w] = false
		d := p.OnPush(w, now)
		for _, id := range d.Release {
			released[id] = true
		}
		if spread := clockSpread(p); spread > threshold+1 {
			t.Fatalf("push %d: spread %d exceeds threshold+1 (%d)", i, spread, threshold+1)
		}
	}
}

func TestSSPThresholdAccessors(t *testing.T) {
	p := MustNewSSP(4, 7)
	if p.Threshold() != 7 || p.StalenessBound() != 7 {
		t.Fatalf("unexpected threshold accessors: %d, %d", p.Threshold(), p.StalenessBound())
	}
	if p.Name() != "SSP(s=7)" {
		t.Fatalf("unexpected name %q", p.Name())
	}
}

// clockSpread returns the difference between the maximum and minimum worker
// clocks of a policy.
func clockSpread(p Policy) int {
	minC, maxC := p.Clock(0), p.Clock(0)
	for w := 1; w < p.NumWorkers(); w++ {
		c := p.Clock(WorkerID(w))
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return maxC - minC
}
