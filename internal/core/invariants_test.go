package core

import (
	"testing"
	"testing/quick"
	"time"
)

// randomDurations builds a slice of n per-worker iteration durations in
// [min, max) from the given seed.
func randomDurations(seed int64, n int, min, max time.Duration) []time.Duration {
	rng := newTestRand(seed)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = min + time.Duration(rng.Int63n(int64(max-min)))
	}
	return out
}

// TestPropertyNoPolicyDeadlocks checks that under randomly heterogeneous
// worker speeds, every paradigm keeps making progress: the replay driver can
// always execute the requested number of push events.
func TestPropertyNoPolicyDeadlocks(t *testing.T) {
	property := func(seed int64, nWorkers uint8, staleness uint8) bool {
		n := int(nWorkers%6) + 2  // 2..7 workers
		s := int(staleness % 8)   // 0..7
		r := int(staleness%5) * 2 // 0..8
		durations := randomDurations(seed, n, 10*time.Millisecond, 5*time.Second)
		policies := []Policy{
			MustNewBSP(n),
			MustNewASP(n),
			MustNewSSP(n, s),
			MustNewDSSP(n, s, r),
			MustNewBoundedDelay(n, s+1),
			MustNewBackupBSP(n, n/2),
		}
		for _, p := range policies {
			drv := newReplayDriver(p, durations)
			if !drv.run(200) {
				t.Logf("policy %s deadlocked with durations %v", p.Name(), durations)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySSPSpreadBound checks the defining SSP invariant: the
// difference between the fastest and slowest worker's iteration counts never
// exceeds s+1 (the pushing worker may be one iteration past the bound while
// it is being blocked).
func TestPropertySSPSpreadBound(t *testing.T) {
	property := func(seed int64, nWorkers, staleness uint8) bool {
		n := int(nWorkers%6) + 2
		s := int(staleness % 10)
		durations := randomDurations(seed, n, 10*time.Millisecond, 3*time.Second)
		drv := newReplayDriver(MustNewSSP(n, s), durations)
		if !drv.run(400) {
			return false
		}
		return drv.maxSpread <= s+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDSSPSpreadBound checks the DSSP analogue of the SSP invariant
// in the Theorem-2-compliant mode: the spread never exceeds sU+1 = sL+rmax+1,
// which is what makes Theorem 2's regret bound applicable.
func TestPropertyDSSPSpreadBound(t *testing.T) {
	property := func(seed int64, nWorkers, lower, rng uint8) bool {
		n := int(nWorkers%6) + 2
		sl := int(lower % 6)
		r := int(rng % 14)
		durations := randomDurations(seed, n, 10*time.Millisecond, 3*time.Second)
		policy := MustNewDSSP(n, sl, r)
		policy.EnforceUpperBound(true)
		drv := newReplayDriver(policy, durations)
		if !drv.run(400) {
			return false
		}
		return drv.maxSpread <= sl+r+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDSSPLowerBoundAlwaysHolds checks that in BOTH modes a worker
// within sL of the slowest is never blocked: DSSP only ever relaxes
// synchronization relative to SSP(sL).
func TestPropertyDSSPLowerBoundAlwaysHolds(t *testing.T) {
	property := func(seed int64, nWorkers, lower, rng uint8, enforce bool) bool {
		n := int(nWorkers%5) + 2
		sl := int(lower % 5)
		r := int(rng%10) + 1
		durations := randomDurations(seed, n, 10*time.Millisecond, 2*time.Second)
		policy := MustNewDSSP(n, sl, r)
		policy.EnforceUpperBound(enforce)
		drv := newReplayDriver(&lowerBoundAuditor{DSSP: policy, t: t}, durations)
		return drv.run(300)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// lowerBoundAuditor fails the test when a pushing worker within sL of the
// slowest is not released immediately.
type lowerBoundAuditor struct {
	*DSSP
	t *testing.T
}

func (a *lowerBoundAuditor) OnPush(w WorkerID, now time.Time) Decision {
	d := a.DSSP.OnPush(w, now)
	slowest := a.Clock(w)
	for i := 0; i < a.NumWorkers(); i++ {
		if c := a.Clock(WorkerID(i)); c < slowest {
			slowest = c
		}
	}
	if a.Clock(w)-slowest <= a.LowerBound() {
		released := false
		for _, id := range d.Release {
			if id == w {
				released = true
			}
		}
		if !released {
			a.t.Errorf("worker %d within sL was not released", w)
		}
	}
	return d
}

// TestPropertyBSPKeepsClocksWithinOne checks that BSP never lets any worker
// run more than one iteration ahead of any other.
func TestPropertyBSPKeepsClocksWithinOne(t *testing.T) {
	property := func(seed int64, nWorkers uint8) bool {
		n := int(nWorkers%6) + 2
		durations := randomDurations(seed, n, 10*time.Millisecond, 2*time.Second)
		drv := newReplayDriver(MustNewBSP(n), durations)
		if !drv.run(300) {
			return false
		}
		return drv.maxSpread <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDSSPThroughputDominatesSSPLower checks that over identical
// wall-clock horizons DSSP never completes fewer total iterations than SSP
// pinned at its lower bound: DSSP only ever relaxes synchronization relative
// to SSP(sL).
func TestPropertyDSSPThroughputDominatesSSPLower(t *testing.T) {
	property := func(seed int64, nWorkers, lower, rng uint8) bool {
		n := int(nWorkers%5) + 2
		sl := int(lower % 5)
		r := int(rng%10) + 1
		durations := randomDurations(seed, n, 50*time.Millisecond, 4*time.Second)
		horizon := time.Unix(0, 0).Add(10 * time.Minute)

		total := func(p Policy) int {
			drv := newReplayDriver(p, durations)
			for drv.step() {
				if drv.now.After(horizon) {
					break
				}
			}
			sum := 0
			for w := 0; w < n; w++ {
				sum += p.Clock(WorkerID(w))
			}
			return sum
		}
		// Allow a tolerance of one iteration per worker for boundary effects
		// at the horizon cut-off.
		return total(MustNewDSSP(n, sl, r))+n >= total(MustNewSSP(n, sl))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEveryReleaseIsForAKnownWorker checks a basic sanity property of
// all policies: they only ever release worker IDs in range, never release the
// same worker twice in one decision, and never release a worker that has not
// pushed at least once.
func TestPropertyEveryReleaseIsForAKnownWorker(t *testing.T) {
	property := func(seed int64, nWorkers, staleness uint8) bool {
		n := int(nWorkers%6) + 2
		s := int(staleness % 6)
		durations := randomDurations(seed, n, 10*time.Millisecond, time.Second)
		policies := []Policy{
			MustNewBSP(n), MustNewASP(n), MustNewSSP(n, s), MustNewDSSP(n, s, s+2),
		}
		for _, p := range policies {
			pushed := make([]bool, n)
			drv := newReplayDriver(&releaseAuditor{Policy: p, pushed: pushed, t: t}, durations)
			if !drv.run(200) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// releaseAuditor wraps a Policy and verifies release-set sanity on each push.
type releaseAuditor struct {
	Policy
	pushed []bool
	t      *testing.T
}

func (a *releaseAuditor) OnPush(w WorkerID, now time.Time) Decision {
	a.pushed[w] = true
	d := a.Policy.OnPush(w, now)
	seen := make(map[WorkerID]bool, len(d.Release))
	for _, id := range d.Release {
		if int(id) < 0 || int(id) >= len(a.pushed) {
			a.t.Errorf("%s released out-of-range worker %d", a.Policy.Name(), id)
		}
		if seen[id] {
			a.t.Errorf("%s released worker %d twice in one decision", a.Policy.Name(), id)
		}
		seen[id] = true
		if !a.pushed[id] {
			a.t.Errorf("%s released worker %d which never pushed", a.Policy.Name(), id)
		}
	}
	return d
}
