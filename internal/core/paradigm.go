package core

import "fmt"

// Paradigm enumerates the synchronization paradigms available in this
// library.
type Paradigm int

// Supported paradigms. BSP, ASP and SSP follow the literature; DSSP is the
// paper's contribution; BoundedDelayParadigm and BackupBSPParadigm are the
// related-work baselines.
const (
	ParadigmBSP Paradigm = iota + 1
	ParadigmASP
	ParadigmSSP
	ParadigmDSSP
	ParadigmBoundedDelay
	ParadigmBackupBSP
)

// String returns the canonical short name of the paradigm.
func (p Paradigm) String() string {
	switch p {
	case ParadigmBSP:
		return "BSP"
	case ParadigmASP:
		return "ASP"
	case ParadigmSSP:
		return "SSP"
	case ParadigmDSSP:
		return "DSSP"
	case ParadigmBoundedDelay:
		return "BoundedDelay"
	case ParadigmBackupBSP:
		return "BackupBSP"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// ParseParadigm converts a case-sensitive paradigm name (as produced by
// String) to its Paradigm value.
func ParseParadigm(name string) (Paradigm, error) {
	switch name {
	case "BSP":
		return ParadigmBSP, nil
	case "ASP":
		return ParadigmASP, nil
	case "SSP":
		return ParadigmSSP, nil
	case "DSSP":
		return ParadigmDSSP, nil
	case "BoundedDelay":
		return ParadigmBoundedDelay, nil
	case "BackupBSP":
		return ParadigmBackupBSP, nil
	default:
		return 0, fmt.Errorf("core: unknown paradigm %q", name)
	}
}

// PolicyConfig collects the parameters needed to construct any Policy.
type PolicyConfig struct {
	// Paradigm selects which synchronization scheme to build.
	Paradigm Paradigm
	// Workers is the number of workers the policy coordinates.
	Workers int
	// Staleness is the fixed threshold s for SSP and the lower bound sL for
	// DSSP. It is the dependency bound k for BoundedDelay.
	Staleness int
	// Range is rmax = sU - sL for DSSP. Ignored by other paradigms.
	Range int
	// EnforceBound selects DSSP's Theorem-2-compliant mode in which the
	// iteration gap is hard-capped at sL+Range. The default (false) is the
	// listing-faithful behaviour of Algorithm 1. Ignored by other paradigms.
	EnforceBound bool
	// Backups is the number of spare workers for BackupBSP. Ignored by other
	// paradigms.
	Backups int
}

// NewPolicy constructs the Policy described by cfg.
func NewPolicy(cfg PolicyConfig) (Policy, error) {
	switch cfg.Paradigm {
	case ParadigmBSP:
		return NewBSP(cfg.Workers)
	case ParadigmASP:
		return NewASP(cfg.Workers)
	case ParadigmSSP:
		return NewSSP(cfg.Workers, cfg.Staleness)
	case ParadigmDSSP:
		p, err := NewDSSP(cfg.Workers, cfg.Staleness, cfg.Range)
		if err != nil {
			return nil, err
		}
		p.EnforceUpperBound(cfg.EnforceBound)
		return p, nil
	case ParadigmBoundedDelay:
		return NewBoundedDelay(cfg.Workers, cfg.Staleness)
	case ParadigmBackupBSP:
		return NewBackupBSP(cfg.Workers, cfg.Backups)
	default:
		return nil, fmt.Errorf("core: unknown paradigm %v", cfg.Paradigm)
	}
}

// Describe returns a human-readable description of the configuration,
// suitable for experiment labels (e.g. "SSP s=3", "DSSP sL=3 r=12").
func (cfg PolicyConfig) Describe() string {
	switch cfg.Paradigm {
	case ParadigmSSP:
		return fmt.Sprintf("SSP s=%d", cfg.Staleness)
	case ParadigmDSSP:
		return fmt.Sprintf("DSSP sL=%d r=%d", cfg.Staleness, cfg.Range)
	case ParadigmBoundedDelay:
		return fmt.Sprintf("BoundedDelay k=%d", cfg.Staleness)
	case ParadigmBackupBSP:
		return fmt.Sprintf("BackupBSP c=%d", cfg.Backups)
	default:
		return cfg.Paradigm.String()
	}
}
