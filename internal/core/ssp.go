package core

import (
	"fmt"
	"time"
)

// SSP implements Stale Synchronous Parallel with a fixed, user-specified
// staleness threshold s (Ho et al., NeurIPS 2013). A worker that has pushed
// is released as long as its iteration count is no more than s ahead of the
// slowest worker; otherwise it blocks until the slowest worker catches up.
// Only workers that violate the bound wait; everyone else keeps running.
type SSP struct {
	n         int
	threshold int
	clock     *vectorClock
	waiting   *waitSet
}

// NewSSP returns an SSP policy for n workers with staleness threshold s >= 0.
func NewSSP(n, s int) (*SSP, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	if s < 0 {
		return nil, fmt.Errorf("core: SSP staleness threshold must be >= 0, got %d", s)
	}
	return &SSP{n: n, threshold: s, clock: newVectorClock(n), waiting: newWaitSet(n)}, nil
}

// MustNewSSP is like NewSSP but panics on invalid arguments.
func MustNewSSP(n, s int) *SSP {
	p, err := NewSSP(n, s)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy.
func (p *SSP) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	p.clock.Tick(w)

	var release []WorkerID
	_, slowest := p.clock.Min()

	// The pushing worker may continue when it is within the staleness bound
	// of the slowest worker; otherwise it joins the wait set.
	if p.clock.Count(w)-slowest <= p.threshold {
		release = append(release, w)
	} else {
		p.waiting.Add(w)
	}

	// The push may have advanced the minimum clock, unblocking workers that
	// were waiting at the bound.
	release = append(release, p.drainUnblocked(w)...)
	return Decision{Release: release}
}

// OnJoin implements Policy: the worker re-enters staleness accounting at the
// slowest active worker's clock.
func (p *SSP) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	return Decision{}
}

// OnLeave implements Policy: the departed worker drops out of the minimum
// clock, which may unblock workers that were waiting at the staleness bound
// for it to catch up.
func (p *SSP) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	if !p.clock.Leave(w) {
		return Decision{}
	}
	p.waiting.Remove(w)
	if p.clock.NumActive() == 0 {
		return Decision{}
	}
	return Decision{Release: p.drainUnblocked(noWorker)}
}

// noWorker is a sentinel WorkerID that matches no real worker, used to drain
// the wait set without excluding anyone.
const noWorker = WorkerID(-1)

// drainUnblocked releases every waiting worker that is now within the bound.
// pushed is excluded because its membership was just decided above.
func (p *SSP) drainUnblocked(pushed WorkerID) []WorkerID {
	var release []WorkerID
	_, slowest := p.clock.Min()
	for _, id := range p.waiting.List() {
		if id == pushed {
			continue
		}
		if p.clock.Count(id)-slowest <= p.threshold {
			p.waiting.Remove(id)
			release = append(release, id)
		}
	}
	return release
}

// Blocked implements Policy.
func (p *SSP) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *SSP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *SSP) NumWorkers() int { return p.n }

// StalenessBound implements StalenessBounder.
func (p *SSP) StalenessBound() int { return p.threshold }

// Threshold returns the fixed staleness threshold s.
func (p *SSP) Threshold() int { return p.threshold }

// Name implements Policy.
func (p *SSP) Name() string { return fmt.Sprintf("SSP(s=%d)", p.threshold) }
