package core

import (
	"fmt"
	"time"
)

// IntervalTracker measures per-worker iteration intervals from the
// timestamps of their push requests, as illustrated in Figure 1 of the
// paper: an iteration interval is the time between two consecutive push
// requests received from the same worker and covers both the gradient
// computation and the communication of that iteration.
type IntervalTracker struct {
	n         int
	lastPush  []time.Time
	hasLast   []bool
	intervals [][]time.Duration
	capacity  int
}

// NewIntervalTracker returns a tracker for n workers keeping at most keep
// recent intervals per worker (keep <= 0 keeps everything).
func NewIntervalTracker(n, keep int) (*IntervalTracker, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	return &IntervalTracker{
		n:         n,
		lastPush:  make([]time.Time, n),
		hasLast:   make([]bool, n),
		intervals: make([][]time.Duration, n),
		capacity:  keep,
	}, nil
}

// MustNewIntervalTracker is like NewIntervalTracker but panics on invalid
// arguments.
func MustNewIntervalTracker(n, keep int) *IntervalTracker {
	t, err := NewIntervalTracker(n, keep)
	if err != nil {
		panic(err)
	}
	return t
}

// RecordPush registers a push request from worker w at the given time and
// returns the iteration interval it closes, if any.
func (t *IntervalTracker) RecordPush(w WorkerID, at time.Time) (time.Duration, bool) {
	if err := validateWorkerID(w, t.n); err != nil {
		panic(err)
	}
	var iv time.Duration
	closed := false
	if t.hasLast[w] {
		iv = at.Sub(t.lastPush[w])
		closed = true
		t.intervals[w] = append(t.intervals[w], iv)
		if t.capacity > 0 && len(t.intervals[w]) > t.capacity {
			t.intervals[w] = t.intervals[w][len(t.intervals[w])-t.capacity:]
		}
	}
	t.lastPush[w] = at
	t.hasLast[w] = true
	return iv, closed
}

// Intervals returns a copy of the recorded intervals of worker w, oldest
// first.
func (t *IntervalTracker) Intervals(w WorkerID) []time.Duration {
	if err := validateWorkerID(w, t.n); err != nil {
		panic(err)
	}
	out := make([]time.Duration, len(t.intervals[w]))
	copy(out, t.intervals[w])
	return out
}

// Latest returns worker w's most recent interval and whether one exists.
func (t *IntervalTracker) Latest(w WorkerID) (time.Duration, bool) {
	if err := validateWorkerID(w, t.n); err != nil {
		panic(err)
	}
	ivs := t.intervals[w]
	if len(ivs) == 0 {
		return 0, false
	}
	return ivs[len(ivs)-1], true
}

// Mean returns the mean interval of worker w and whether any were recorded.
func (t *IntervalTracker) Mean(w WorkerID) (time.Duration, bool) {
	if err := validateWorkerID(w, t.n); err != nil {
		panic(err)
	}
	ivs := t.intervals[w]
	if len(ivs) == 0 {
		return 0, false
	}
	var sum time.Duration
	for _, iv := range ivs {
		sum += iv
	}
	return sum / time.Duration(len(ivs)), true
}

// String summarizes the tracker's state for debugging.
func (t *IntervalTracker) String() string {
	return fmt.Sprintf("IntervalTracker(workers=%d)", t.n)
}
