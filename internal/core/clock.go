package core

// vectorClock tracks the number of push requests received from each worker
// together with the worker's membership status. It is the server-side view of
// worker progress used by SSP and DSSP (array t in Algorithm 1 of the paper),
// extended so that departed workers drop out of the min/max aggregates: a
// crashed worker's frozen clock must not pin the minimum forever, or every
// staleness-bounded paradigm deadlocks on the first failure.
type vectorClock struct {
	counts  []int
	gone    []bool
	nActive int
}

// newVectorClock returns a clock for n workers with all counts at zero and
// every worker active.
func newVectorClock(n int) *vectorClock {
	return &vectorClock{counts: make([]int, n), gone: make([]bool, n), nActive: n}
}

// Tick increments worker w's count and returns the new value.
func (c *vectorClock) Tick(w WorkerID) int {
	c.counts[w]++
	return c.counts[w]
}

// Count returns worker w's current count.
func (c *vectorClock) Count(w WorkerID) int { return c.counts[w] }

// IsActive reports whether worker w currently participates in
// synchronization.
func (c *vectorClock) IsActive(w WorkerID) bool { return !c.gone[w] }

// NumActive returns the number of active workers.
func (c *vectorClock) NumActive() int { return c.nActive }

// Leave marks worker w as departed, removing it from the Min/Max aggregates.
// It reports whether the worker was active.
func (c *vectorClock) Leave(w WorkerID) bool {
	if c.gone[w] {
		return false
	}
	c.gone[w] = true
	c.nActive--
	return true
}

// Join marks worker w as active again and reports whether it was departed.
// The worker's count is raised to the current active minimum: a rejoining
// worker pulls fresh weights before its first push, so its progress is
// measured from the cohort it joins, not from where it crashed.
func (c *vectorClock) Join(w WorkerID) bool {
	if !c.gone[w] {
		return false
	}
	if c.nActive > 0 {
		if _, minC := c.Min(); c.counts[w] < minC {
			c.counts[w] = minC
		}
	}
	c.gone[w] = false
	c.nActive++
	return true
}

// ActiveList returns the active workers in ascending order.
func (c *vectorClock) ActiveList() []WorkerID {
	out := make([]WorkerID, 0, c.nActive)
	for i, g := range c.gone {
		if !g {
			out = append(out, WorkerID(i))
		}
	}
	return out
}

// Min returns the smallest count across active workers and one worker holding
// it. With no active workers it falls back to the all-worker minimum.
func (c *vectorClock) Min() (WorkerID, int) {
	minW, minC, found := WorkerID(0), 0, false
	for i := range c.counts {
		if c.gone[i] && c.nActive > 0 {
			continue
		}
		if !found || c.counts[i] < minC {
			minW, minC, found = WorkerID(i), c.counts[i], true
		}
	}
	return minW, minC
}

// Max returns the largest count across active workers and one worker holding
// it. With no active workers it falls back to the all-worker maximum.
func (c *vectorClock) Max() (WorkerID, int) {
	maxW, maxC, found := WorkerID(0), 0, false
	for i := range c.counts {
		if c.gone[i] && c.nActive > 0 {
			continue
		}
		if !found || c.counts[i] > maxC {
			maxW, maxC, found = WorkerID(i), c.counts[i], true
		}
	}
	return maxW, maxC
}

// Spread returns the difference between the fastest and the slowest worker's
// counts. A policy with staleness bound s must keep Spread() <= s at the
// moments it releases workers.
func (c *vectorClock) Spread() int {
	_, maxC := c.Max()
	_, minC := c.Min()
	return maxC - minC
}

// Len returns the number of workers tracked.
func (c *vectorClock) Len() int { return len(c.counts) }

// Snapshot returns a copy of the per-worker counts.
func (c *vectorClock) Snapshot() []int {
	out := make([]int, len(c.counts))
	copy(out, c.counts)
	return out
}

// waitSet tracks which workers are currently blocked waiting for OK.
type waitSet struct {
	blocked []bool
}

// newWaitSet returns an empty wait set for n workers.
func newWaitSet(n int) *waitSet {
	return &waitSet{blocked: make([]bool, n)}
}

// Add marks worker w as blocked.
func (s *waitSet) Add(w WorkerID) { s.blocked[w] = true }

// Remove marks worker w as released.
func (s *waitSet) Remove(w WorkerID) { s.blocked[w] = false }

// Contains reports whether worker w is blocked.
func (s *waitSet) Contains(w WorkerID) bool { return s.blocked[w] }

// List returns the blocked workers in ascending order.
func (s *waitSet) List() []WorkerID {
	var out []WorkerID
	for i, b := range s.blocked {
		if b {
			out = append(out, WorkerID(i))
		}
	}
	return out
}

// Len returns the number of blocked workers.
func (s *waitSet) Len() int {
	n := 0
	for _, b := range s.blocked {
		if b {
			n++
		}
	}
	return n
}
