package core

// vectorClock tracks the number of push requests received from each worker.
// It is the server-side view of worker progress used by SSP and DSSP
// (array t in Algorithm 1 of the paper).
type vectorClock struct {
	counts []int
}

// newVectorClock returns a clock for n workers with all counts at zero.
func newVectorClock(n int) *vectorClock {
	return &vectorClock{counts: make([]int, n)}
}

// Tick increments worker w's count and returns the new value.
func (c *vectorClock) Tick(w WorkerID) int {
	c.counts[w]++
	return c.counts[w]
}

// Count returns worker w's current count.
func (c *vectorClock) Count(w WorkerID) int { return c.counts[w] }

// Min returns the smallest count across workers and one worker holding it.
func (c *vectorClock) Min() (WorkerID, int) {
	minW, minC := WorkerID(0), c.counts[0]
	for i := 1; i < len(c.counts); i++ {
		if c.counts[i] < minC {
			minW, minC = WorkerID(i), c.counts[i]
		}
	}
	return minW, minC
}

// Max returns the largest count across workers and one worker holding it.
func (c *vectorClock) Max() (WorkerID, int) {
	maxW, maxC := WorkerID(0), c.counts[0]
	for i := 1; i < len(c.counts); i++ {
		if c.counts[i] > maxC {
			maxW, maxC = WorkerID(i), c.counts[i]
		}
	}
	return maxW, maxC
}

// Spread returns the difference between the fastest and the slowest worker's
// counts. A policy with staleness bound s must keep Spread() <= s at the
// moments it releases workers.
func (c *vectorClock) Spread() int {
	_, maxC := c.Max()
	_, minC := c.Min()
	return maxC - minC
}

// Len returns the number of workers tracked.
func (c *vectorClock) Len() int { return len(c.counts) }

// Snapshot returns a copy of the per-worker counts.
func (c *vectorClock) Snapshot() []int {
	out := make([]int, len(c.counts))
	copy(out, c.counts)
	return out
}

// waitSet tracks which workers are currently blocked waiting for OK.
type waitSet struct {
	blocked []bool
}

// newWaitSet returns an empty wait set for n workers.
func newWaitSet(n int) *waitSet {
	return &waitSet{blocked: make([]bool, n)}
}

// Add marks worker w as blocked.
func (s *waitSet) Add(w WorkerID) { s.blocked[w] = true }

// Remove marks worker w as released.
func (s *waitSet) Remove(w WorkerID) { s.blocked[w] = false }

// Contains reports whether worker w is blocked.
func (s *waitSet) Contains(w WorkerID) bool { return s.blocked[w] }

// List returns the blocked workers in ascending order.
func (s *waitSet) List() []WorkerID {
	var out []WorkerID
	for i, b := range s.blocked {
		if b {
			out = append(out, WorkerID(i))
		}
	}
	return out
}

// Len returns the number of blocked workers.
func (s *waitSet) Len() int {
	n := 0
	for _, b := range s.blocked {
		if b {
			n++
		}
	}
	return n
}
