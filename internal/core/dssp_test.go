package core

import (
	"testing"
	"time"
)

func TestNewDSSPValidation(t *testing.T) {
	cases := []struct {
		n, sl, r int
		wantErr  bool
	}{
		{0, 3, 12, true},
		{4, -1, 12, true},
		{4, 3, -1, true},
		{4, 3, 12, false},
		{4, 0, 0, false},
	}
	for _, tc := range cases {
		_, err := NewDSSP(tc.n, tc.sl, tc.r)
		if (err != nil) != tc.wantErr {
			t.Errorf("NewDSSP(%d,%d,%d) error = %v, wantErr %v", tc.n, tc.sl, tc.r, err, tc.wantErr)
		}
	}
}

func TestDSSPBoundsAccessors(t *testing.T) {
	p := MustNewDSSP(4, 3, 12)
	if p.LowerBound() != 3 || p.UpperBound() != 15 || p.StalenessBound() != 15 {
		t.Fatalf("bounds = %d/%d/%d, want 3/15/15", p.LowerBound(), p.UpperBound(), p.StalenessBound())
	}
	if p.Name() != "DSSP(sL=3,r=12)" {
		t.Fatalf("unexpected name %q", p.Name())
	}
}

func TestDSSPBehavesLikeSSPWithinLowerBound(t *testing.T) {
	// While every worker stays within sL of the slowest, DSSP releases
	// exactly like SSP(sL).
	dssp := MustNewDSSP(3, 2, 10)
	ssp := MustNewSSP(3, 2)
	now := time.Unix(0, 0)
	schedule := []WorkerID{0, 1, 2, 0, 1, 2, 0, 0, 1, 2, 1, 2}
	for i, w := range schedule {
		now = now.Add(time.Second)
		gotD := dssp.OnPush(w, now)
		gotS := ssp.OnPush(w, now)
		if len(gotD.Release) != len(gotS.Release) {
			t.Fatalf("push %d (worker %d): DSSP released %v, SSP released %v",
				i, w, gotD.Release, gotS.Release)
		}
	}
}

func TestDSSPFastestWorkerReceivesGrantAndRunsAhead(t *testing.T) {
	// Worker 0 is much faster than worker 1. Once worker 0 exceeds sL, the
	// controller (which has seen both workers' intervals) should grant extra
	// iterations instead of blocking it.
	p := MustNewDSSP(2, 1, 8)
	p.RecordGrants(true)
	base := time.Unix(0, 0)

	// Build up timestamp history so both workers have a measurable interval:
	// worker 1 pushes at t=10s and t=20s (interval 10s); worker 0 pushes at
	// t=11s, 12s, 21s, 22s (interval 1s around the decision point).
	p.OnPush(1, base.Add(10*time.Second)) // clocks 0/1, within sL
	p.OnPush(0, base.Add(11*time.Second)) // clocks 1/1
	p.OnPush(0, base.Add(12*time.Second)) // clocks 2/1, gap 1 == sL
	p.OnPush(1, base.Add(20*time.Second)) // clocks 2/2, worker 1 interval 10s
	p.OnPush(0, base.Add(21*time.Second)) // clocks 3/2, gap 1 == sL
	// Next push exceeds sL and worker 0 is the fastest: controller consulted.
	d := p.OnPush(0, base.Add(22*time.Second))
	if len(d.Release) != 1 || d.Release[0] != 0 {
		t.Fatalf("expected grant-driven release of worker 0, got %v", d.Release)
	}
	if p.Allowance(0) <= 0 {
		t.Fatalf("expected a positive remaining allowance, got %d", p.Allowance(0))
	}
	grants := p.Grants()
	if len(grants) != 1 || grants[0].Worker != 0 || grants[0].Extra <= 0 {
		t.Fatalf("unexpected grant history %+v", grants)
	}
}

func TestDSSPAllowanceIsConsumedPerPush(t *testing.T) {
	p := MustNewDSSP(2, 1, 4)
	p.EnforceUpperBound(true)
	base := time.Unix(0, 0)
	// Build history: worker 1 interval 10s, worker 0 interval 1s.
	p.OnPush(1, base.Add(10*time.Second)) // clocks 0/1
	p.OnPush(0, base.Add(11*time.Second)) // clocks 1/1
	p.OnPush(1, base.Add(20*time.Second)) // clocks 1/2, interval 10s
	p.OnPush(0, base.Add(12*time.Second)) // clocks 2/2, interval 1s
	p.OnPush(0, base.Add(13*time.Second)) // clocks 3/2, gap 1 == sL
	d := p.OnPush(0, base.Add(14*time.Second))
	if len(d.Release) != 1 {
		t.Fatalf("fastest worker should receive a grant, got %v", d.Release)
	}
	granted := p.Allowance(0)
	if granted <= 0 {
		t.Fatalf("expected positive allowance, got %d", granted)
	}
	// Each subsequent push consumes one unit until the allowance runs out.
	// Worker 1 never pushes again, so afterwards worker 0 either receives a
	// smaller grant (still having headroom below sU) or blocks.
	for i := 0; i < granted; i++ {
		d = p.OnPush(0, base.Add(time.Duration(15+i)*time.Second))
		if len(d.Release) != 1 {
			t.Fatalf("push %d within allowance should release, got %v", i, d.Release)
		}
		if want := granted - i - 1; p.Allowance(0) != want {
			t.Fatalf("allowance after push %d = %d, want %d", i, p.Allowance(0), want)
		}
	}
	// Keep pushing: the worker must eventually block, and never exceed
	// sU + 1 iterations ahead of worker 1.
	blocked := false
	for i := 0; i < 20 && !blocked; i++ {
		d = p.OnPush(0, base.Add(time.Duration(40+i)*time.Second))
		blocked = len(d.Release) == 0
	}
	if !blocked {
		t.Fatal("worker 0 never blocked despite worker 1 being stalled")
	}
	if spread := clockSpread(p); spread > p.UpperBound()+1 {
		t.Fatalf("spread %d exceeds sU+1 = %d", spread, p.UpperBound()+1)
	}
	if got := p.Blocked(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("expected worker 0 blocked, got %v", got)
	}
}

func TestDSSPSlowWorkerPushUnblocksWaiters(t *testing.T) {
	p := MustNewDSSP(2, 0, 0) // rmax=0 degenerates to SSP(s=0)
	now := time.Unix(0, 0)
	if d := p.OnPush(0, now.Add(time.Second)); len(d.Release) != 0 {
		t.Fatalf("worker 0 should block under sL=0, got %v", d.Release)
	}
	d := p.OnPush(1, now.Add(2*time.Second))
	if len(d.Release) != 2 {
		t.Fatalf("slow worker push should release both, got %v", d.Release)
	}
}

func TestDSSPWithZeroRangeMatchesSSP(t *testing.T) {
	// With rmax = 0 DSSP must make exactly the same decisions as SSP(sL)
	// under an arbitrary schedule.
	const workers = 4
	durations := []time.Duration{
		1 * time.Second,
		2 * time.Second,
		3 * time.Second,
		5 * time.Second,
	}
	dssp := newReplayDriver(MustNewDSSP(workers, 2, 0), durations)
	ssp := newReplayDriver(MustNewSSP(workers, 2), durations)
	const steps = 400
	if !dssp.run(steps) || !ssp.run(steps) {
		t.Fatal("replay deadlocked")
	}
	for w := 0; w < workers; w++ {
		if dssp.policy.Clock(WorkerID(w)) != ssp.policy.Clock(WorkerID(w)) {
			t.Fatalf("worker %d clock: DSSP %d, SSP %d",
				w, dssp.policy.Clock(WorkerID(w)), ssp.policy.Clock(WorkerID(w)))
		}
	}
}

func TestDSSPEnforcedSpreadNeverExceedsUpperBoundPlusOne(t *testing.T) {
	const (
		workers = 4
		sl      = 3
		rmax    = 12
	)
	durations := []time.Duration{
		500 * time.Millisecond,
		1 * time.Second,
		4 * time.Second,
		9 * time.Second,
	}
	policy := MustNewDSSP(workers, sl, rmax)
	policy.EnforceUpperBound(true)
	drv := newReplayDriver(policy, durations)
	if !drv.run(2000) {
		t.Fatal("replay deadlocked")
	}
	if drv.maxSpread > sl+rmax+1 {
		t.Fatalf("observed spread %d exceeds sU+1 = %d", drv.maxSpread, sl+rmax+1)
	}
	if drv.maxSpread <= sl {
		t.Fatalf("heterogeneous run never exceeded sL: spread %d", drv.maxSpread)
	}
}

func TestDSSPDefaultModeCanExceedUpperBoundUnderExtremeSkew(t *testing.T) {
	// In the listing-faithful default mode, a fast worker facing a very slow
	// peer keeps receiving fresh grants, so its lead can exceed sU = sL+rmax.
	// This is the behaviour that makes DSSP track ASP on heterogeneous
	// clusters (paper §V-D); the Theorem-2 mode caps it.
	durations := []time.Duration{100 * time.Millisecond, 30 * time.Second}
	uncapped := newReplayDriver(MustNewDSSP(2, 1, 4), durations)
	if !uncapped.run(400) {
		t.Fatal("replay deadlocked")
	}
	capped := MustNewDSSP(2, 1, 4)
	capped.EnforceUpperBound(true)
	cappedDrv := newReplayDriver(capped, durations)
	if !cappedDrv.run(400) {
		t.Fatal("replay deadlocked")
	}
	if cappedDrv.maxSpread > 1+4+1 {
		t.Fatalf("enforced mode exceeded bound: spread %d", cappedDrv.maxSpread)
	}
	if uncapped.maxSpread <= cappedDrv.maxSpread {
		t.Fatalf("expected the default mode to run further ahead: uncapped %d vs capped %d",
			uncapped.maxSpread, cappedDrv.maxSpread)
	}
}

func TestDSSPReducesFastWorkerWaitVersusSSPLowerBound(t *testing.T) {
	// In a strongly heterogeneous cluster, DSSP with range [sL, sL+rmax]
	// should make the fastest worker wait less than SSP pinned at sL.
	durations := []time.Duration{
		1 * time.Second, // fast worker
		6 * time.Second, // slow worker
	}
	const steps = 600
	dssp := newReplayDriver(MustNewDSSP(2, 1, 10), durations)
	ssp := newReplayDriver(MustNewSSP(2, 1), durations)
	if !dssp.run(steps) || !ssp.run(steps) {
		t.Fatal("replay deadlocked")
	}
	if dssp.waitTotal[0] >= ssp.waitTotal[0] {
		t.Fatalf("DSSP fast-worker wait %v not smaller than SSP %v",
			dssp.waitTotal[0], ssp.waitTotal[0])
	}
}

func TestDSSPIterationThroughputAtLeastSSPLowerBound(t *testing.T) {
	// Same wall-clock horizon: DSSP should complete at least as many total
	// pushes as SSP with s = sL because it only relaxes synchronization.
	durations := []time.Duration{
		1 * time.Second,
		2 * time.Second,
		7 * time.Second,
	}
	horizon := time.Unix(0, 0).Add(30 * time.Minute)

	run := func(p Policy) int {
		drv := newReplayDriver(p, durations)
		for drv.step() {
			if drv.now.After(horizon) {
				break
			}
		}
		total := 0
		for w := 0; w < p.NumWorkers(); w++ {
			total += p.Clock(WorkerID(w))
		}
		return total
	}
	dsspPushes := run(MustNewDSSP(3, 2, 10))
	sspPushes := run(MustNewSSP(3, 2))
	if dsspPushes < sspPushes {
		t.Fatalf("DSSP pushed %d times, SSP(sL) pushed %d", dsspPushes, sspPushes)
	}
}

func TestDSSPGrantHistoryDisabledByDefault(t *testing.T) {
	p := MustNewDSSP(2, 0, 4)
	base := time.Unix(0, 0)
	p.OnPush(1, base.Add(10*time.Second))
	p.OnPush(0, base.Add(11*time.Second))
	p.OnPush(0, base.Add(12*time.Second))
	if len(p.Grants()) != 0 {
		t.Fatal("grant history should be empty when recording is disabled")
	}
}
