package core

// Clock-anomaly detection: the synchronization paradigms trust each worker's
// reported iteration clock and pull version, so a Byzantine worker can lie
// about either — claim a base version it cannot possibly hold to look
// fresher than it is, or push without pulling to flood the update stream
// with outsized influence. ClockMonitor is the shared detector: the real
// parameter server's guard (internal/ps) and the cluster simulator's
// adversary scenarios (internal/simulate) both feed it the per-worker
// push/pull stream and act on the anomalies it reports.

// Anomaly identifies one kind of clock misbehaviour.
type Anomaly int

const (
	// AnomalyFutureVersion is a push whose claimed base version exceeds any
	// version the server has ever produced — provably a lie, since the
	// worker cannot have pulled state that does not exist. An honest worker
	// can race (pull at v, push while v advances) only in the direction of
	// staleness, never freshness.
	AnomalyFutureVersion Anomaly = iota + 1
	// AnomalyPushFlood is a worker pushing repeatedly without pulling: the
	// worker protocol is pull-compute-push, so pushes-per-pull above a small
	// slack (reconnect retries) means the worker is pumping updates to
	// dominate aggregation windows.
	AnomalyPushFlood
)

// String names the anomaly.
func (a Anomaly) String() string {
	switch a {
	case AnomalyFutureVersion:
		return "future-version"
	case AnomalyPushFlood:
		return "push-flood"
	default:
		return "unknown"
	}
}

// DefaultFloodSlack is how many pushes a worker may make per pull before
// AnomalyPushFlood fires. Honest workers push once per pull; the slack
// absorbs reconnect-and-retry sequences.
const DefaultFloodSlack = 3

// ClockMonitor tracks per-worker push/pull clocks and flags impossible or
// abusive progressions. It is not synchronized: the caller serializes
// observations per its own locking discipline (the server observes on the
// connection goroutine under its guard lock; the simulator is single
// threaded).
type ClockMonitor struct {
	floodSlack int
	sincePull  []int
	flags      []int
}

// NewClockMonitor returns a monitor for n workers. floodSlack <= 0 selects
// DefaultFloodSlack.
func NewClockMonitor(n, floodSlack int) *ClockMonitor {
	if floodSlack <= 0 {
		floodSlack = DefaultFloodSlack
	}
	return &ClockMonitor{
		floodSlack: floodSlack,
		sincePull:  make([]int, n),
		flags:      make([]int, n),
	}
}

// ObservePull records that worker w pulled, resetting its flood counter.
func (m *ClockMonitor) ObservePull(w WorkerID) {
	m.sincePull[w] = 0
}

// ObservePush records one push from worker w claiming claimedBase as the
// version it computed against, with serverVersion the highest version the
// server has ever handed out (Store.Reserved on the real server). It
// returns the anomalies this push exhibits, if any.
func (m *ClockMonitor) ObservePush(w WorkerID, claimedBase, serverVersion int64) []Anomaly {
	var out []Anomaly
	if claimedBase > serverVersion {
		out = append(out, AnomalyFutureVersion)
	}
	m.sincePull[w]++
	if m.sincePull[w] > m.floodSlack {
		out = append(out, AnomalyPushFlood)
	}
	m.flags[w] += len(out)
	return out
}

// Flags returns how many anomalies worker w has accumulated.
func (m *ClockMonitor) Flags(w WorkerID) int { return m.flags[w] }

// FlagCounts returns a copy of the per-worker anomaly counts.
func (m *ClockMonitor) FlagCounts() []int {
	out := make([]int, len(m.flags))
	copy(out, m.flags)
	return out
}
