package core

import (
	"fmt"
	"time"
)

// BoundedDelay implements the bounded-delay scheme of Li et al.
// ("Communication efficient distributed machine learning with the parameter
// server", NeurIPS 2014) as described in the paper's related-work section:
// iterations are numbered globally across all workers and iteration t may
// only proceed once iteration t-k has completed, for a user-specified bound
// k. Iterations are pre-assigned to workers round-robin (worker w runs global
// iterations w, w+P, w+2P, ...), which is the example given in the paper, so
// the scheme behaves like an inflexible, pre-scheduled SSP.
type BoundedDelay struct {
	n int
	k int
	// next[w] is the global index (1-based) of the iteration worker w will
	// report with its next push.
	next []int
	// completed counts finished global iterations; a global iteration t is
	// considered complete once its push has been received.
	done    map[int]bool
	maxDone int
	clock   *vectorClock
	waiting *waitSet
}

// NewBoundedDelay returns a bounded-delay policy for n workers with bound
// k >= 1 (k consecutive global iterations may run concurrently).
func NewBoundedDelay(n, k int) (*BoundedDelay, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: bounded-delay bound must be >= 1, got %d", k)
	}
	bd := &BoundedDelay{
		n:       n,
		k:       k,
		next:    make([]int, n),
		done:    make(map[int]bool),
		clock:   newVectorClock(n),
		waiting: newWaitSet(n),
	}
	for w := range bd.next {
		// Worker w's first global iteration is w+1 (1-based global indexing).
		bd.next[w] = w + 1
	}
	return bd, nil
}

// MustNewBoundedDelay is like NewBoundedDelay but panics on invalid
// arguments.
func MustNewBoundedDelay(n, k int) *BoundedDelay {
	p, err := NewBoundedDelay(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy. Worker w's push completes its current global
// iteration; it may start its next assigned global iteration t only when
// iteration t-k has completed.
func (p *BoundedDelay) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.join(w)
	p.clock.Tick(w)

	completed := p.next[w]
	p.done[completed] = true
	p.advanceDone()
	p.next[w] = completed + p.n

	var release []WorkerID
	if p.mayStart(w) {
		release = append(release, w)
	} else {
		p.waiting.Add(w)
	}
	return Decision{Release: append(release, p.drainUnblocked(w)...)}
}

// OnJoin implements Policy: the worker resumes its round-robin schedule at
// the first global iteration assigned to it that has not completed (or been
// skipped while it was away).
func (p *BoundedDelay) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.join(w)
	return Decision{}
}

// join reactivates a departed worker and repositions it on the global
// iteration schedule.
func (p *BoundedDelay) join(w WorkerID) {
	if !p.clock.Join(w) {
		return
	}
	t := p.maxDone + 1
	for p.done[t] || WorkerID((t-1)%p.n) != w {
		t++
	}
	p.next[w] = t
}

// OnLeave implements Policy. Iterations are pre-assigned round-robin, so a
// departed worker leaves holes in the global schedule that every later
// iteration transitively depends on; those holes are skipped as they become
// the completion frontier, which may unblock workers waiting on the
// dependency bound.
func (p *BoundedDelay) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	if !p.clock.Leave(w) {
		return Decision{}
	}
	p.waiting.Remove(w)
	p.advanceDone()
	return Decision{Release: p.drainUnblocked(noWorker)}
}

// advanceDone advances the contiguous completion frontier, treating
// iterations assigned to departed workers as vacuously complete — they can
// never be pushed, and leaving them pending would stall the whole schedule.
func (p *BoundedDelay) advanceDone() {
	for {
		t := p.maxDone + 1
		if p.done[t] {
			p.maxDone = t
			continue
		}
		if p.clock.NumActive() > 0 && !p.clock.IsActive(WorkerID((t-1)%p.n)) {
			p.done[t] = true
			p.maxDone = t
			continue
		}
		return
	}
}

// drainUnblocked releases every waiting worker whose dependency constraint
// now holds, excluding pushed (whose membership was decided by the caller).
func (p *BoundedDelay) drainUnblocked(pushed WorkerID) []WorkerID {
	var release []WorkerID
	for _, id := range p.waiting.List() {
		if id == pushed {
			continue
		}
		if p.mayStart(id) {
			p.waiting.Remove(id)
			release = append(release, id)
		}
	}
	return release
}

// mayStart reports whether worker w's next global iteration satisfies the
// dependency constraint: iteration t depends on iteration t-k, and because
// results flow forward through the shared parameters, t-k is considered
// available only once every iteration up to t-k has completed (maxDone
// tracks that contiguous prefix).
func (p *BoundedDelay) mayStart(w WorkerID) bool {
	t := p.next[w]
	dep := t - p.k
	if dep <= 0 {
		return true
	}
	return dep <= p.maxDone
}

// StalenessBound implements StalenessBounder: with global iterations
// assigned round-robin, a gap of k global iterations bounds the per-worker
// clock spread by k.
func (p *BoundedDelay) StalenessBound() int { return p.k }

// Blocked implements Policy.
func (p *BoundedDelay) Blocked() []WorkerID { return p.waiting.List() }

// Clock implements Policy.
func (p *BoundedDelay) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *BoundedDelay) NumWorkers() int { return p.n }

// Name implements Policy.
func (p *BoundedDelay) Name() string { return fmt.Sprintf("BoundedDelay(k=%d)", p.k) }
