package core

import (
	"fmt"
	"time"
)

// ASP implements Asynchronous Parallel: a worker is released immediately
// after its push is applied, with no coordination whatsoever. Fast workers
// may run arbitrarily far ahead of slow ones, so the staleness of applied
// gradients is unbounded.
type ASP struct {
	n     int
	clock *vectorClock
}

// NewASP returns an ASP policy coordinating n workers.
func NewASP(n int) (*ASP, error) {
	if err := validateWorkers(n); err != nil {
		return nil, err
	}
	return &ASP{n: n, clock: newVectorClock(n)}, nil
}

// MustNewASP is like NewASP but panics on an invalid worker count.
func MustNewASP(n int) *ASP {
	p, err := NewASP(n)
	if err != nil {
		panic(err)
	}
	return p
}

// OnPush implements Policy: the pushing worker is always released at once.
func (p *ASP) OnPush(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	p.clock.Tick(w)
	return Decision{Release: []WorkerID{w}}
}

// OnJoin implements Policy. ASP never blocks anyone, so membership only
// affects the progress accounting.
func (p *ASP) OnJoin(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Join(w)
	return Decision{}
}

// OnLeave implements Policy. No worker ever waits under ASP, so a departure
// releases nobody.
func (p *ASP) OnLeave(w WorkerID, _ time.Time) Decision {
	if err := validateWorkerID(w, p.n); err != nil {
		panic(err)
	}
	p.clock.Leave(w)
	return Decision{}
}

// Blocked implements Policy; ASP never blocks a worker.
func (p *ASP) Blocked() []WorkerID { return nil }

// Clock implements Policy.
func (p *ASP) Clock(w WorkerID) int { return p.clock.Count(w) }

// NumWorkers implements Policy.
func (p *ASP) NumWorkers() int { return p.n }

// Name implements Policy.
func (p *ASP) Name() string { return fmt.Sprintf("ASP(workers=%d)", p.n) }
