package core

import (
	"testing"
)

func TestParadigmStringRoundTrip(t *testing.T) {
	paradigms := []Paradigm{
		ParadigmBSP, ParadigmASP, ParadigmSSP, ParadigmDSSP,
		ParadigmBoundedDelay, ParadigmBackupBSP,
	}
	for _, p := range paradigms {
		got, err := ParseParadigm(p.String())
		if err != nil {
			t.Errorf("ParseParadigm(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("round trip of %v gave %v", p, got)
		}
	}
}

func TestParseParadigmUnknown(t *testing.T) {
	if _, err := ParseParadigm("definitely-not-a-paradigm"); err == nil {
		t.Fatal("expected error for unknown paradigm name")
	}
}

func TestParadigmStringUnknownValue(t *testing.T) {
	if got := Paradigm(99).String(); got != "Paradigm(99)" {
		t.Fatalf("unexpected string %q", got)
	}
}

func TestNewPolicyBuildsEveryParadigm(t *testing.T) {
	cases := []struct {
		cfg      PolicyConfig
		wantName string
	}{
		{PolicyConfig{Paradigm: ParadigmBSP, Workers: 4}, "BSP(workers=4)"},
		{PolicyConfig{Paradigm: ParadigmASP, Workers: 4}, "ASP(workers=4)"},
		{PolicyConfig{Paradigm: ParadigmSSP, Workers: 4, Staleness: 3}, "SSP(s=3)"},
		{PolicyConfig{Paradigm: ParadigmDSSP, Workers: 4, Staleness: 3, Range: 12}, "DSSP(sL=3,r=12)"},
		{PolicyConfig{Paradigm: ParadigmBoundedDelay, Workers: 4, Staleness: 5}, "BoundedDelay(k=5)"},
		{PolicyConfig{Paradigm: ParadigmBackupBSP, Workers: 4, Backups: 1}, "BackupBSP(workers=4,backups=1)"},
	}
	for _, tc := range cases {
		p, err := NewPolicy(tc.cfg)
		if err != nil {
			t.Errorf("NewPolicy(%+v): %v", tc.cfg, err)
			continue
		}
		if p.Name() != tc.wantName {
			t.Errorf("NewPolicy(%+v).Name() = %q, want %q", tc.cfg, p.Name(), tc.wantName)
		}
		if p.NumWorkers() != tc.cfg.Workers {
			t.Errorf("NewPolicy(%+v).NumWorkers() = %d, want %d", tc.cfg, p.NumWorkers(), tc.cfg.Workers)
		}
	}
}

func TestNewPolicyRejectsUnknownParadigm(t *testing.T) {
	if _, err := NewPolicy(PolicyConfig{Paradigm: Paradigm(42), Workers: 2}); err == nil {
		t.Fatal("expected error for unknown paradigm")
	}
}

func TestNewPolicyPropagatesConstructorErrors(t *testing.T) {
	bad := []PolicyConfig{
		{Paradigm: ParadigmBSP, Workers: 0},
		{Paradigm: ParadigmSSP, Workers: 2, Staleness: -1},
		{Paradigm: ParadigmDSSP, Workers: 2, Staleness: -1, Range: 3},
		{Paradigm: ParadigmBackupBSP, Workers: 2, Backups: 2},
	}
	for _, cfg := range bad {
		if _, err := NewPolicy(cfg); err == nil {
			t.Errorf("NewPolicy(%+v): expected error", cfg)
		}
	}
}

func TestPolicyConfigDescribe(t *testing.T) {
	cases := []struct {
		cfg  PolicyConfig
		want string
	}{
		{PolicyConfig{Paradigm: ParadigmBSP}, "BSP"},
		{PolicyConfig{Paradigm: ParadigmASP}, "ASP"},
		{PolicyConfig{Paradigm: ParadigmSSP, Staleness: 7}, "SSP s=7"},
		{PolicyConfig{Paradigm: ParadigmDSSP, Staleness: 3, Range: 12}, "DSSP sL=3 r=12"},
		{PolicyConfig{Paradigm: ParadigmBoundedDelay, Staleness: 4}, "BoundedDelay k=4"},
		{PolicyConfig{Paradigm: ParadigmBackupBSP, Backups: 2}, "BackupBSP c=2"},
	}
	for _, tc := range cases {
		if got := tc.cfg.Describe(); got != tc.want {
			t.Errorf("Describe(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}
