// Package metrics collects the measurements reported in the paper's
// evaluation: accuracy-versus-training-time curves (Figures 3 and 4),
// time-to-target-accuracy (Table I), iteration throughput, worker waiting
// time and the staleness distribution of applied updates.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series: a value observed at an elapsed
// training time.
type Point struct {
	Elapsed time.Duration
	Value   float64
}

// TimeSeries is an append-only series of (elapsed time, value) samples, e.g.
// test accuracy over wall-clock training time.
type TimeSeries struct {
	name   string
	points []Point
}

// NewTimeSeries returns an empty series with the given name.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Name returns the series name.
func (s *TimeSeries) Name() string { return s.name }

// Add appends a sample. Samples should be appended in non-decreasing time
// order; out-of-order samples are accepted but TimeToReach assumes order.
func (s *TimeSeries) Add(elapsed time.Duration, value float64) {
	s.points = append(s.points, Point{Elapsed: elapsed, Value: value})
}

// Len returns the number of samples.
func (s *TimeSeries) Len() int { return len(s.points) }

// Points returns a copy of the samples.
func (s *TimeSeries) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Last returns the most recent sample and whether one exists.
func (s *TimeSeries) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Max returns the largest value seen and whether any samples exist.
func (s *TimeSeries) Max() (float64, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	best := s.points[0].Value
	for _, p := range s.points {
		if p.Value > best {
			best = p.Value
		}
	}
	return best, true
}

// TimeToReach returns the first elapsed time at which the series reached at
// least target, mirroring Table I of the paper ("time to reach 0.67/0.68
// accuracy"). The boolean is false when the target is never reached.
func (s *TimeSeries) TimeToReach(target float64) (time.Duration, bool) {
	for _, p := range s.points {
		if p.Value >= target {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// ValueAt returns the series value in force at the given elapsed time (the
// last sample at or before it). The boolean is false before the first sample.
func (s *TimeSeries) ValueAt(elapsed time.Duration) (float64, bool) {
	var out float64
	found := false
	for _, p := range s.points {
		if p.Elapsed <= elapsed {
			out = p.Value
			found = true
		} else {
			break
		}
	}
	return out, found
}

// Downsample returns a copy of the series keeping roughly n evenly spaced
// samples (always including the first and last), for compact printing.
func (s *TimeSeries) Downsample(n int) *TimeSeries {
	out := NewTimeSeries(s.name)
	if n <= 0 || len(s.points) == 0 {
		return out
	}
	if len(s.points) <= n {
		out.points = append(out.points, s.points...)
		return out
	}
	step := float64(len(s.points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx >= len(s.points) {
			idx = len(s.points) - 1
		}
		out.points = append(out.points, s.points[idx])
	}
	return out
}

// Histogram accumulates integer observations (e.g. the staleness of applied
// updates) and reports summary statistics.
type Histogram struct {
	counts map[int]int
	total  int
	sum    int64
	max    int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe records one observation of v (negative values are clamped to 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.counts[v]++
	h.total++
	h.sum += int64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.total }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int { return h.max }

// Quantile returns the smallest value v such that at least q (0..1) of the
// observations are <= v. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	need := int(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	seen := 0
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= need {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Buckets returns the observed values and their counts sorted by value.
func (h *Histogram) Buckets() ([]int, []int) {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	counts := make([]int, len(keys))
	for i, k := range keys {
		counts[i] = h.counts[k]
	}
	return keys, counts
}

// Throughput tracks counts over elapsed time, e.g. parameter updates applied
// per second (the paper's "iteration throughput").
type Throughput struct {
	count   int
	elapsed time.Duration
}

// NewThroughput returns a zeroed throughput counter.
func NewThroughput() *Throughput { return &Throughput{} }

// Record adds n events observed by the given elapsed time (the largest
// elapsed value seen is kept).
func (t *Throughput) Record(n int, elapsed time.Duration) {
	t.count += n
	if elapsed > t.elapsed {
		t.elapsed = elapsed
	}
}

// Count returns the total number of events.
func (t *Throughput) Count() int { return t.count }

// PerSecond returns events per second of elapsed time (0 when no time has
// passed).
func (t *Throughput) PerSecond() float64 {
	if t.elapsed <= 0 {
		return 0
	}
	return float64(t.count) / t.elapsed.Seconds()
}

// WaitTracker accumulates per-worker waiting time (the quantity DSSP's
// controller tries to minimize).
type WaitTracker struct {
	total []time.Duration
	waits []int
}

// NewWaitTracker returns a tracker for n workers.
func NewWaitTracker(n int) *WaitTracker {
	return &WaitTracker{total: make([]time.Duration, n), waits: make([]int, n)}
}

// Record adds one waiting episode of duration d for worker w.
func (wt *WaitTracker) Record(w int, d time.Duration) {
	if w < 0 || w >= len(wt.total) {
		panic(fmt.Sprintf("metrics: worker %d out of range [0,%d)", w, len(wt.total)))
	}
	if d < 0 {
		d = 0
	}
	wt.total[w] += d
	wt.waits[w]++
}

// Total returns worker w's accumulated waiting time.
func (wt *WaitTracker) Total(w int) time.Duration { return wt.total[w] }

// Sum returns the total waiting time across all workers.
func (wt *WaitTracker) Sum() time.Duration {
	var s time.Duration
	for _, d := range wt.total {
		s += d
	}
	return s
}

// Episodes returns how many waiting episodes worker w experienced.
func (wt *WaitTracker) Episodes(w int) int { return wt.waits[w] }
