package metrics

import (
	"math"
	"testing"
	"time"
)

func TestTimeSeriesBasics(t *testing.T) {
	s := NewTimeSeries("accuracy")
	if s.Name() != "accuracy" {
		t.Fatalf("name %q", s.Name())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("empty series should have no last point")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("empty series should have no max")
	}
	s.Add(10*time.Second, 0.3)
	s.Add(20*time.Second, 0.5)
	s.Add(30*time.Second, 0.45)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.Value != 0.45 {
		t.Fatalf("Last = %+v,%v", last, ok)
	}
	max, _ := s.Max()
	if max != 0.5 {
		t.Fatalf("Max = %v", max)
	}
	pts := s.Points()
	pts[0].Value = 99
	if s.points[0].Value == 99 {
		t.Fatal("Points must return a copy")
	}
}

func TestTimeSeriesTimeToReach(t *testing.T) {
	s := NewTimeSeries("acc")
	s.Add(1*time.Second, 0.2)
	s.Add(2*time.Second, 0.5)
	s.Add(3*time.Second, 0.67)
	s.Add(4*time.Second, 0.66)
	if d, ok := s.TimeToReach(0.5); !ok || d != 2*time.Second {
		t.Errorf("TimeToReach(0.5) = %v,%v", d, ok)
	}
	if d, ok := s.TimeToReach(0.67); !ok || d != 3*time.Second {
		t.Errorf("TimeToReach(0.67) = %v,%v", d, ok)
	}
	if _, ok := s.TimeToReach(0.9); ok {
		t.Error("TimeToReach(0.9) should fail")
	}
}

func TestTimeSeriesValueAt(t *testing.T) {
	s := NewTimeSeries("acc")
	s.Add(10*time.Second, 0.1)
	s.Add(20*time.Second, 0.2)
	if _, ok := s.ValueAt(5 * time.Second); ok {
		t.Error("ValueAt before first sample should fail")
	}
	if v, ok := s.ValueAt(15 * time.Second); !ok || v != 0.1 {
		t.Errorf("ValueAt(15s) = %v,%v", v, ok)
	}
	if v, _ := s.ValueAt(25 * time.Second); v != 0.2 {
		t.Errorf("ValueAt(25s) = %v", v)
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	s := NewTimeSeries("acc")
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	d := s.Downsample(5)
	if d.Len() != 5 {
		t.Fatalf("downsampled to %d points, want 5", d.Len())
	}
	pts := d.Points()
	if pts[0].Value != 0 || pts[4].Value != 99 {
		t.Fatalf("downsample endpoints wrong: %+v", pts)
	}
	if s.Downsample(0).Len() != 0 {
		t.Fatal("Downsample(0) should be empty")
	}
	small := NewTimeSeries("x")
	small.Add(time.Second, 1)
	if small.Downsample(10).Len() != 1 {
		t.Fatal("downsample of short series should keep all points")
	}
}

func TestHistogramStatistics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int{0, 1, 1, 2, 3, 3, 3, 10, -4} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 10 {
		t.Fatalf("Max = %d", h.Max())
	}
	wantMean := float64(0+1+1+2+3+3+3+10+0) / 9
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("median = %d, want 2", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Fatalf("q100 = %d, want 10", q)
	}
	values, counts := h.Buckets()
	if len(values) != len(counts) || len(values) == 0 {
		t.Fatal("buckets malformed")
	}
	if values[0] != 0 {
		t.Fatalf("first bucket %d, want 0 (negatives clamp to 0)", values[0])
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	if tp.PerSecond() != 0 {
		t.Fatal("empty throughput should be 0")
	}
	tp.Record(50, 5*time.Second)
	tp.Record(50, 10*time.Second)
	if tp.Count() != 100 {
		t.Fatalf("Count = %d", tp.Count())
	}
	if got := tp.PerSecond(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("PerSecond = %v, want 10", got)
	}
}

func TestWaitTracker(t *testing.T) {
	wt := NewWaitTracker(2)
	wt.Record(0, 2*time.Second)
	wt.Record(0, 3*time.Second)
	wt.Record(1, -time.Second) // clamped to 0
	if wt.Total(0) != 5*time.Second {
		t.Fatalf("Total(0) = %v", wt.Total(0))
	}
	if wt.Total(1) != 0 {
		t.Fatalf("Total(1) = %v", wt.Total(1))
	}
	if wt.Sum() != 5*time.Second {
		t.Fatalf("Sum = %v", wt.Sum())
	}
	if wt.Episodes(0) != 2 || wt.Episodes(1) != 1 {
		t.Fatal("episode counts wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range worker")
		}
	}()
	wt.Record(5, time.Second)
}
