package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"dssp/internal/compress"
)

// FuzzDecodeFrame drives the binary frame decoder with arbitrary bytes. The
// contract under attack: any input either decodes into a message or returns
// an error — never a panic — and the decoder must not allocate in proportion
// to a forged length or count field (the seeds below include a frame that
// declares a quarter-gigabyte body backed by a handful of bytes; the chunked
// body reader and the count-versus-remaining-bytes guards keep that cheap).
//
// Successfully decoded messages must additionally be canonical: re-encoding
// a decode and decoding it again reproduces the same bytes, pinning
// encoder/decoder agreement across the whole reachable message space.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed seeds covering every section type.
	seedMsgs := []Message{
		{Type: MsgHeartbeat, Worker: 3},
		{Type: MsgRegister, Worker: 1, Codec: compress.TopK, CodecTopK: 0.1, CodecPull: true},
		{Type: MsgRegistered, Worker: 1, Version: 99, Codec: compress.Int8, StoreShards: 4},
		{Type: MsgPush, Worker: 2, Iteration: 7, Version: 41, Tensors: ToWire(smallMLPGrads(1))},
		{Type: MsgWeights, Worker: 0, Version: 12, Shard: 1, Shards: 2, Base: 2, Total: 4,
			Tensors: ToWire(smallMLPGrads(2)[2:])},
		{Type: MsgError, Error: "boom"},
	}
	comp, err := compress.NewCompressor(compress.Config{Codec: compress.TopK, TopK: 0.5})
	if err != nil {
		f.Fatal(err)
	}
	seedMsgs = append(seedMsgs, Message{Type: MsgPush, Codec: compress.TopK, Packed: comp.Compress(smallMLPGrads(3))})
	for i := range seedMsgs {
		frame, err := appendFrame(nil, &seedMsgs[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1]) // truncated payload
		f.Add(frame[:headerSize])   // header only
	}
	// Version-3 server-group seeds: a full cluster map, a data-server
	// announce, a backup promotion, and a cluster-mode registration.
	v3Msgs := []Message{
		{Type: MsgClusterMap, Version: 17, MapVersion: 3, StoreShards: 4, Total: 6, Servers: []ServerEntry{
			{Addr: "10.0.0.1:7070", ShardLo: 0, ShardHi: 2, TensorLo: 0, TensorHi: 3},
			{Addr: "10.0.0.2:7070", ShardLo: 2, ShardHi: 4, TensorLo: 3, TensorHi: 6},
		}},
		{Type: MsgClusterMap}, // the request form carries no fields
		{Type: MsgServerAnnounce, Servers: []ServerEntry{{Addr: "10.0.0.3:7070", ShardHi: 2, TensorHi: 3}}, Replica: true},
		{Type: MsgPromote, Servers: []ServerEntry{{Addr: "10.0.0.3:7070", ShardHi: 2, TensorHi: 3}}},
		{Type: MsgRegister, Worker: 2, Cluster: true, DeltaPull: true},
		{Type: MsgRegister, Replica: true, DeltaPull: true},
	}
	for i := range v3Msgs {
		frame, err := appendFrame(nil, &v3Msgs[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
		// The same body downgraded to a version-2 header: the decoder must
		// reject v3 tags in older frames, not mis-parse them.
		if len(frame) > headerSize {
			down := append([]byte(nil), frame...)
			down[4] = 2
			f.Add(down)
		}
	}
	// Hostile headers: giant declared length, bad magic, future version.
	big := []byte(wireMagic)
	big = append(big, wireVersion, byte(MsgPush), 0, 0)
	big = binary.LittleEndian.AppendUint32(big, maxFrameBody)
	f.Add(append(big, 1, 2, 3))
	f.Add([]byte("GOBSTREAM-NOT-DSSP"))
	f.Add([]byte{'D', 'S', 'S', 'P', 99, 1, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(data)))
		m, err := fr.readFrame()
		if err != nil {
			return
		}
		frame1, err := appendFrame(nil, &m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		fr2 := newFrameReader(bufio.NewReader(bytes.NewReader(frame1)))
		m2, err := fr2.readFrame()
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		frame2, err := appendFrame(nil, &m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(frame1, frame2) {
			t.Fatalf("decode/encode is not canonical:\nfirst  % x\nsecond % x", frame1, frame2)
		}
	})
}
