package transport

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// crossWirePair connects a client of one wire format to a server of another
// and returns both conns.
func crossWirePair(t *testing.T, serverWire, clientWire WireFormat) (server, client Conn) {
	t.Helper()
	l, err := ListenWire("127.0.0.1:0", serverWire)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = DialWire(l.Addr(), clientWire)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

// recvWithin runs one Recv under a deadline: the point of the cross-format
// handshake is that a mismatch resolves quickly instead of hanging either
// side.
func recvWithin(t *testing.T, c Conn, d time.Duration) (Message, error) {
	t.Helper()
	type result struct {
		m   Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := c.Recv()
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-time.After(d):
		t.Fatal("Recv did not return; a wire mismatch is hanging the connection")
		return Message{}, nil
	}
}

// TestGobClientAgainstBinaryServerFailsFast pins the misconfiguration the
// -wire flag makes possible: a legacy gob worker dialing a binary server
// must receive an explicit gob-encoded error naming the fix — not hang
// waiting for a registration reply it cannot parse.
func TestGobClientAgainstBinaryServerFailsFast(t *testing.T) {
	server, client := crossWirePair(t, WireBinary, WireGob)

	serverErr := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		serverErr <- err
	}()
	if err := client.Send(Message{Type: MsgRegister, Worker: 0}); err != nil {
		t.Fatal(err)
	}

	reply, err := recvWithin(t, client, 5*time.Second)
	if err != nil {
		t.Fatalf("gob client should receive a decodable error message, got transport error %v", err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "binary wire protocol") {
		t.Fatalf("gob client got %+v, want an Error naming the binary wire protocol", reply)
	}

	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("binary server decoded a gob stream successfully")
		}
		if !strings.Contains(err.Error(), "magic") {
			t.Fatalf("server error %q does not identify the bad magic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("binary server hung on the gob stream")
	}
}

// TestBinaryClientAgainstGobServerFailsFast pins the opposite direction: the
// gob server sniffs the binary magic on its first message and answers with a
// binary Error frame, so the binary worker's registration fails with a clear
// message instead of hanging.
func TestBinaryClientAgainstGobServerFailsFast(t *testing.T) {
	server, client := crossWirePair(t, WireGob, WireBinary)

	serverErr := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		serverErr <- err
	}()
	if err := client.Send(Message{Type: MsgRegister, Worker: 0}); err != nil {
		t.Fatal(err)
	}

	reply, err := recvWithin(t, client, 5*time.Second)
	if err != nil {
		t.Fatalf("binary client should receive a decodable error frame, got transport error %v", err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "gob") {
		t.Fatalf("binary client got %+v, want an Error naming the gob wire format", reply)
	}

	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("gob server decoded a binary frame successfully")
		}
		if !strings.Contains(err.Error(), "binary wire frame") {
			t.Fatalf("server error %q does not identify the binary frame", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gob server hung on the binary stream")
	}
}

// TestFutureVersionClientRejectedExplicitly dials a binary server with a
// hand-crafted frame claiming a protocol version newer than any this build
// speaks. The server must reply with an Error frame in its own version
// naming both versions and close — the version-negotiation rule of
// docs/PROTOCOL.md §6.
func TestFutureVersionClientRejectedExplicitly(t *testing.T) {
	l, err := ListenWire("127.0.0.1:0", WireBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = conn.Recv() // fails on the version byte and replies
	}()

	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	frame, err := appendFrame(nil, &Message{Type: MsgRegister, Worker: 0})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = wireVersion + 1 // claim a future protocol version
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}

	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := newFrameReader(bufio.NewReader(raw))
	reply, err := fr.readFrame()
	if err != nil {
		t.Fatalf("expected a v1 error frame, got %v", err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "version") {
		t.Fatalf("got %+v, want an Error naming the version mismatch", reply)
	}
}

// TestSameWireFormatsStillTalk sanity-checks both homogeneous pairings so
// the cross tests above fail for the right reason.
func TestSameWireFormatsStillTalk(t *testing.T) {
	for _, wire := range []WireFormat{WireBinary, WireGob} {
		t.Run(string(wire), func(t *testing.T) {
			server, client := crossWirePair(t, wire, wire)
			if err := client.Send(Message{Type: MsgRegister, Worker: 5}); err != nil {
				t.Fatal(err)
			}
			got, err := recvWithin(t, server, 5*time.Second)
			if err != nil || got.Type != MsgRegister || got.Worker != 5 {
				t.Fatalf("register arrived as %+v (err %v)", got, err)
			}
			if err := server.Send(Message{Type: MsgRegistered, Worker: 5, Version: 8}); err != nil {
				t.Fatal(err)
			}
			reply, err := recvWithin(t, client, 5*time.Second)
			if err != nil || reply.Type != MsgRegistered || reply.Version != 8 {
				t.Fatalf("reply arrived as %+v (err %v)", reply, err)
			}
		})
	}
}

// TestParseWireFormat pins the flag-level validation.
func TestParseWireFormat(t *testing.T) {
	if w, err := ParseWireFormat(""); err != nil || w != WireBinary {
		t.Errorf("empty format parsed as (%q, %v), want the binary default", w, err)
	}
	if _, err := ParseWireFormat("protobuf"); err == nil {
		t.Error("unknown wire format accepted")
	}
}
