package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"dssp/internal/compress"
	"dssp/internal/tensor"
)

// testGrads builds a deterministic multi-tensor gradient set large enough
// that gob type descriptors are noise next to the payload.
func testGrads(seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	shapes := [][]int{{128, 128}, {128}, {64, 128}, {64}}
	out := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		t := tensor.New(s...)
		data := t.Data()
		for j := range data {
			data[j] = float32(rng.NormFloat64() * 0.1)
		}
		out[i] = t
	}
	return out
}

// gobSize returns the number of bytes m occupies when gob-encoded on a fresh
// stream (type descriptors included, as on a real connection's first push).
func gobSize(t *testing.T, m Message) int {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestCompressedPushWireReduction pins the acceptance numbers of the codec
// subsystem: against the identity codec's gob bytes, topk(0.1) pushes must
// shrink the message at least 4×, int8 at least 2× (fp16 trails int8 but
// must still beat dense).
func TestCompressedPushWireReduction(t *testing.T) {
	grads := testGrads(42)
	dense := gobSize(t, Message{Type: MsgPush, Tensors: ToWire(grads)})

	sizes := map[string]int{}
	for _, cfg := range []compress.Config{
		{Codec: compress.FP16},
		{Codec: compress.Int8},
		{Codec: compress.TopK, TopK: 0.1},
	} {
		comp, err := compress.NewCompressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		msg := Message{Type: MsgPush, Codec: cfg.Codec, Packed: comp.Compress(grads)}
		sizes[cfg.Codec] = gobSize(t, msg)
	}
	t.Logf("push wire bytes: dense=%d fp16=%d int8=%d topk=%d",
		dense, sizes[compress.FP16], sizes[compress.Int8], sizes[compress.TopK])

	if ratio := float64(dense) / float64(sizes[compress.TopK]); ratio < 4 {
		t.Errorf("topk(0.1) reduces pushed bytes %.2fx, want >= 4x", ratio)
	}
	if ratio := float64(dense) / float64(sizes[compress.Int8]); ratio < 2 {
		t.Errorf("int8 reduces pushed bytes %.2fx, want >= 2x", ratio)
	}
	if sizes[compress.FP16] >= dense {
		t.Errorf("fp16 message (%d bytes) is no smaller than dense (%d bytes)", sizes[compress.FP16], dense)
	}
}

// TestPackedMessageOverTCP round-trips a compressed push and a negotiation
// exchange through the real TCP transport.
func TestPackedMessageOverTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type acceptResult struct {
		conn Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := l.Accept()
		accepted <- acceptResult{c, err}
	}()

	worker, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	server := res.conn
	defer server.Close()

	comp, err := compress.NewCompressor(compress.Config{Codec: compress.TopK, TopK: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	grads := testGrads(7)
	sent := Message{
		Type:      MsgPush,
		Worker:    3,
		Iteration: 9,
		Version:   17,
		Codec:     compress.TopK,
		Packed:    comp.Compress(grads),
	}
	if err := worker.Send(sent); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPush || got.Worker != 3 || got.Codec != compress.TopK {
		t.Fatalf("push arrived as %+v", got)
	}
	if len(got.Packed) != len(grads) {
		t.Fatalf("push carries %d packed tensors, want %d", len(got.Packed), len(grads))
	}
	want, err := compress.DecompressAll(sent.Packed)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := compress.DecompressAll(got.Packed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !decoded[i].ApproxEqual(want[i], 0) {
			t.Fatalf("packed tensor %d changed in transit", i)
		}
	}

	// Negotiation fields survive the wire in both directions.
	reg := Message{Type: MsgRegister, Worker: 3, Codec: compress.Auto, CodecTopK: 0.25, CodecPull: true}
	if err := server.Send(reg); err != nil {
		t.Fatal(err)
	}
	echo, err := worker.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if echo.Codec != compress.Auto || echo.CodecTopK != 0.25 || !echo.CodecPull {
		t.Fatalf("negotiation fields arrived as %+v", echo)
	}
}
