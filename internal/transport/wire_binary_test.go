package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dssp/internal/compress"
	"dssp/internal/tensor"
)

// encodeFrame is the test-side encoder entry point.
func encodeFrame(t *testing.T, m Message) []byte {
	t.Helper()
	frame, err := appendFrame(nil, &m)
	if err != nil {
		t.Fatalf("encode %v frame: %v", m.Type, err)
	}
	return frame
}

// decodeFrame runs the full streaming decode path over raw frame bytes.
func decodeFrame(t *testing.T, frame []byte) Message {
	t.Helper()
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
	m, err := fr.readFrame()
	if err != nil {
		t.Fatalf("decode frame: %v", err)
	}
	return m
}

// smallMLPGrads builds the dense gradient layout of the default small-mlp
// model (16 features, 32 hidden units, 4 classes) — the payload every
// default psserver/psworker run pushes per iteration.
func smallMLPGrads(seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	shapes := [][]int{{16, 32}, {32}, {32, 4}, {4}}
	out := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		t := tensor.New(s...)
		data := t.Data()
		for j := range data {
			data[j] = float32(rng.NormFloat64() * 0.1)
		}
		out[i] = t
	}
	return out
}

// TestBinaryFrameRoundTripAllFields round-trips a message with every field
// populated — including compressed payloads — and requires exact equality.
func TestBinaryFrameRoundTripAllFields(t *testing.T) {
	comp, err := compress.NewCompressor(compress.Config{Codec: compress.TopK, TopK: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sent := Message{
		Type:        MsgWeights,
		Worker:      7,
		Iteration:   1234,
		Version:     1 << 40,
		Tensors:     ToWire(testGrads(3)),
		Shard:       2,
		Shards:      4,
		Base:        5,
		Total:       16,
		Codec:       compress.TopK,
		CodecTopK:   0.25,
		CodecPull:   true,
		Packed:      comp.Compress(testGrads(5)),
		StoreShards: 4,
		Error:       "not actually an error",
	}
	got := decodeFrame(t, encodeFrame(t, sent))
	if !got.PayloadOwned() {
		t.Error("decoded message does not own its payload")
	}
	got.ownedPayload = false
	if !reflect.DeepEqual(sent, got) {
		t.Fatalf("round trip changed the message:\nsent %+v\ngot  %+v", sent, got)
	}
}

// TestBinaryFrameRoundTripEveryType round-trips a minimal message of every
// protocol type, including negative and zero field values.
func TestBinaryFrameRoundTripEveryType(t *testing.T) {
	for ty := MsgRegister; ty <= MsgLeave; ty++ {
		sent := Message{Type: ty, Worker: int(ty) - 2, Version: -9}
		got := decodeFrame(t, encodeFrame(t, sent))
		got.ownedPayload = false
		if !reflect.DeepEqual(sent, got) {
			t.Errorf("%v round trip: sent %+v got %+v", ty, sent, got)
		}
	}
}

// TestBinaryFramePreservesFloatBits requires bit-exact float transport —
// NaN payloads, negative zero, infinities and subnormals included.
func TestBinaryFramePreservesFloatBits(t *testing.T) {
	data := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		math.Float32frombits(0x80000000), // -0
		math.Float32frombits(1),          // smallest subnormal
		-1.5e-42,
	}
	sent := Message{Type: MsgPush, Tensors: []WireTensor{{Shape: []int{6}, Data: data}}}
	got := decodeFrame(t, encodeFrame(t, sent))
	for i := range data {
		w, g := math.Float32bits(data[i]), math.Float32bits(got.Tensors[0].Data[i])
		if w != g {
			t.Errorf("value %d: bits 0x%08x arrived as 0x%08x", i, w, g)
		}
	}
}

// TestBinaryDecodeAliasesReadBuffer verifies the zero-copy contract: a
// payload-bearing frame decodes to tensors that alias the message's read
// buffer (no per-tensor data allocation), which FromWireOwned then wraps
// without copying either.
func TestBinaryDecodeAliasesReadBuffer(t *testing.T) {
	frame := encodeFrame(t, Message{Type: MsgWeights, Tensors: ToWire(testGrads(11))})
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
	m, err := fr.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		ts, err := FromWireOwned(m.Tensors)
		if err != nil {
			t.Fatal(err)
		}
		if &ts[0].Data()[0] != &m.Tensors[0].Data[0] {
			t.Fatal("FromWireOwned copied the tensor data")
		}
	})
	// One slice for the tensor list, one header per tensor — no data copies.
	if max := float64(2 + 2*len(m.Tensors)); allocs > max {
		t.Errorf("FromWireOwned allocates %.0f objects for %d tensors, want <= %.0f", allocs, len(m.Tensors), max)
	}
}

// TestBinaryWireSizeReduction pins the tentpole's size win: the binary frame
// for the default model's dense push beats the same message's gob encoding
// by at least 1.5×, and even on huge tensors — where gob's ~6 bytes per
// float is all that's left to beat — stays ≥ 1.4× smaller. Compressed
// payloads, already dense bytes under gob, must never regress.
func TestBinaryWireSizeReduction(t *testing.T) {
	push := func(ts []*tensor.Tensor) Message {
		return Message{Type: MsgPush, Worker: 1, Iteration: 100, Version: 250, Tensors: ToWire(ts)}
	}

	small := push(smallMLPGrads(1))
	smallBin, smallGob := len(encodeFrame(t, small)), gobSize(t, small)
	large := push(testGrads(42))
	largeBin, largeGob := len(encodeFrame(t, large)), gobSize(t, large)
	t.Logf("dense push bytes: small-mlp binary=%d gob=%d (%.2fx), large binary=%d gob=%d (%.2fx)",
		smallBin, smallGob, float64(smallGob)/float64(smallBin),
		largeBin, largeGob, float64(largeGob)/float64(largeBin))

	if ratio := float64(smallGob) / float64(smallBin); ratio < 1.5 {
		t.Errorf("default-model dense push: binary is %.3fx smaller than gob, want >= 1.5x", ratio)
	}
	if ratio := float64(largeGob) / float64(largeBin); ratio < 1.4 {
		t.Errorf("large dense push: binary is %.3fx smaller than gob, want >= 1.4x", ratio)
	}

	for _, cfg := range []compress.Config{
		{Codec: compress.FP16},
		{Codec: compress.Int8},
		{Codec: compress.TopK, TopK: 0.1},
	} {
		comp, err := compress.NewCompressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := Message{Type: MsgPush, Codec: cfg.Codec, Packed: comp.Compress(testGrads(42))}
		bin, g := len(encodeFrame(t, m)), gobSize(t, m)
		if bin >= g {
			t.Errorf("%s push: binary frame (%d bytes) not smaller than gob (%d bytes)", cfg.Codec, bin, g)
		}
	}
}

// TestBinaryWireAllocationReduction pins the allocation win behind the
// zero-copy design: encoding and decoding a dense push must allocate an
// order of magnitude less than gob. (Steady-state Sends into a connection
// allocate nothing at all — the frame assembles into a reused buffer — but
// this test measures the codec itself, allocation floor included.)
func TestBinaryWireAllocationReduction(t *testing.T) {
	m := Message{Type: MsgPush, Worker: 1, Iteration: 9, Version: 17, Tensors: ToWire(testGrads(42))}

	var encBuf []byte
	binEnc := testing.AllocsPerRun(20, func() {
		out, err := appendFrame(encBuf[:0], &m)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = out
	})
	frame := encodeFrame(t, m)
	binDec := testing.AllocsPerRun(20, func() {
		if _, err := parseBody(frame[5], frame[4], frame[headerSize:]); err != nil {
			t.Fatal(err)
		}
	})

	var gobBuf bytes.Buffer
	gobEnc := testing.AllocsPerRun(20, func() {
		gobBuf.Reset()
		if err := gob.NewEncoder(&gobBuf).Encode(&m); err != nil {
			t.Fatal(err)
		}
	})
	gobBuf.Reset()
	if err := gob.NewEncoder(&gobBuf).Encode(&m); err != nil {
		t.Fatal(err)
	}
	gobBytes := gobBuf.Bytes()
	gobDec := testing.AllocsPerRun(20, func() {
		var out Message
		if err := gob.NewDecoder(bytes.NewReader(gobBytes)).Decode(&out); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("push allocs/op: binary enc=%.0f dec=%.0f, gob enc=%.0f dec=%.0f", binEnc, binDec, gobEnc, gobDec)
	if binEnc*10 > gobEnc {
		t.Errorf("binary encode allocates %.0f objects/op, gob %.0f — want at least 10x fewer", binEnc, gobEnc)
	}
	if binDec*10 > gobDec {
		t.Errorf("binary decode allocates %.0f objects/op, gob %.0f — want at least 10x fewer", binDec, gobDec)
	}
}

// TestBinaryControlMessagesReuseScratch verifies that small control frames
// decode into the connection's reusable scratch buffer: a long stream of
// heartbeats and OKs must not allocate per message beyond the message value
// itself.
func TestBinaryControlMessagesReuseScratch(t *testing.T) {
	var stream []byte
	const n = 64
	for i := 0; i < n; i++ {
		var err error
		stream, err = appendFrame(stream, &Message{Type: MsgHeartbeat, Worker: 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(stream)))
	for i := 0; i < n; i++ {
		m, err := fr.readFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Type != MsgHeartbeat || m.Worker != 3 {
			t.Fatalf("frame %d decoded as %+v", i, m)
		}
	}
	if cap(fr.scratch) > smallBodyMax {
		t.Errorf("scratch grew to %d bytes over control messages", cap(fr.scratch))
	}
}

// TestBinaryFrameRoundTripLargeBody exercises the chunked body reader on a
// frame well past the 1 MiB read step (an 8 MiB dense push), pinning that
// multi-chunk reads reassemble exactly and that the geometric buffer growth
// stays correct.
func TestBinaryFrameRoundTripLargeBody(t *testing.T) {
	big := tensor.New(2048, 1024) // 8 MiB of float32
	data := big.Data()
	for i := range data {
		data[i] = float32(i%251) * 0.5
	}
	sent := Message{Type: MsgPush, Worker: 1, Tensors: ToWire([]*tensor.Tensor{big})}
	got := decodeFrame(t, encodeFrame(t, sent))
	if len(got.Tensors) != 1 || len(got.Tensors[0].Data) != big.Size() {
		t.Fatalf("large push arrived as %d tensors / %d values", len(got.Tensors), len(got.Tensors[0].Data))
	}
	for i, v := range got.Tensors[0].Data {
		if v != data[i] {
			t.Fatalf("value %d corrupted: %v != %v", i, v, data[i])
		}
	}
}

// TestBinaryDecodeRejectsCorruptFrames spot-checks the decoder's explicit
// failure modes: bad magic, bad version, nonzero reserved bytes, oversized
// declared length, truncation, out-of-order tags, unknown tags, and corrupt
// tensor metadata must all produce errors, never panics or giant
// allocations.
func TestBinaryDecodeRejectsCorruptFrames(t *testing.T) {
	base := encodeFrame(t, Message{Type: MsgPush, Worker: 2, Tensors: ToWire(smallMLPGrads(2))})
	corrupt := func(name string, mutate func(f []byte) []byte, wantSub string) {
		f := append([]byte(nil), base...)
		f = mutate(f)
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(f)))
		_, err := fr.readFrame()
		if err == nil {
			t.Errorf("%s: decode succeeded", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	corrupt("bad magic", func(f []byte) []byte { f[0] = 'X'; return f }, "magic")
	corrupt("future version", func(f []byte) []byte { f[4] = 9; return f }, "version")
	corrupt("reserved bytes", func(f []byte) []byte { f[6] = 1; return f }, "reserved")
	corrupt("oversized length", func(f []byte) []byte {
		f[8], f[9], f[10], f[11] = 0xff, 0xff, 0xff, 0xff
		return f
	}, "limit")
	corrupt("truncated body", func(f []byte) []byte { return f[:len(f)-3] }, "truncated")
	corrupt("type zero", func(f []byte) []byte { f[5] = 0; return f }, "type 0")

	// Tag-level corruption: re-point the first body byte (tagWorker) at an
	// unknown tag, then at a tag lower than a later one to break ordering.
	corrupt("unknown tag", func(f []byte) []byte { f[headerSize] = 0x7f; return f }, "unknown field tag")
	corrupt("duplicate tag", func(f []byte) []byte {
		// Worker is followed by Tensors here; rewriting the tensor tag to
		// repeat tagWorker violates the ascending-order rule.
		f[headerSize+5] = tagWorker
		return f
	}, "out of order")
}

// TestBinaryRejectsOversizedAndTruncatedCounts hand-crafts bodies with
// forged section counts: the decoder must reject them by arithmetic, not by
// attempting the allocation.
func TestBinaryRejectsOversizedAndTruncatedCounts(t *testing.T) {
	frame := func(body []byte) []byte {
		f := []byte(wireMagic)
		f = append(f, wireVersion, byte(MsgPush), 0, 0)
		f = append(f, byte(len(body)), byte(len(body)>>8), byte(len(body)>>16), byte(len(body)>>24))
		return append(f, body...)
	}
	huge := frame([]byte{tagTensors, 0xff, 0xff, 0xff, 0x7f}) // 2^31-ish tensors, no bytes
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(huge)))
	if _, err := fr.readFrame(); err == nil {
		t.Error("forged tensor count decoded successfully")
	}
	hugePacked := frame([]byte{tagPacked, 0xff, 0xff, 0xff, 0x7f})
	fr = newFrameReader(bufio.NewReader(bytes.NewReader(hugePacked)))
	if _, err := fr.readFrame(); err == nil {
		t.Error("forged packed count decoded successfully")
	}
}

// TestToWireIntoReusesBuffers verifies the push path's buffer pool: a second
// conversion with the same layout must reuse the first call's slabs.
func TestToWireIntoReusesBuffers(t *testing.T) {
	grads := smallMLPGrads(3)
	first := ToWireInto(nil, grads)
	ptr := &first[0].Data[0]
	second := ToWireInto(first, grads)
	if &second[0].Data[0] != ptr {
		t.Error("ToWireInto reallocated an already-sized buffer")
	}
	allocs := testing.AllocsPerRun(20, func() {
		second = ToWireInto(second, grads)
	})
	if allocs != 0 {
		t.Errorf("steady-state ToWireInto allocates %.0f objects/op, want 0", allocs)
	}
}
