package transport

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestServerGroupRoundTrip pins the version-3 fields through a full
// encode/decode cycle.
func TestServerGroupRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgClusterMap, Version: 41, MapVersion: 7, StoreShards: 8, Total: 12, Servers: []ServerEntry{
			{Addr: "127.0.0.1:9001", ShardLo: 0, ShardHi: 3, TensorLo: 0, TensorHi: 5},
			{Addr: "127.0.0.1:9002", ShardLo: 3, ShardHi: 8, TensorLo: 5, TensorHi: 12},
		}},
		{Type: MsgClusterMap},
		{Type: MsgServerAnnounce, Servers: []ServerEntry{{Addr: "a", ShardHi: 1, TensorHi: 1}}},
		{Type: MsgServerAnnounce, Servers: []ServerEntry{{Addr: "b:1", ShardLo: 1, ShardHi: 2, TensorLo: 1, TensorHi: 2}}, Replica: true},
		{Type: MsgPromote, Servers: []ServerEntry{{Addr: "b:1", ShardLo: 1, ShardHi: 2, TensorLo: 1, TensorHi: 2}}},
		{Type: MsgRegister, Worker: 3, Cluster: true, DeltaPull: true},
		{Type: MsgRegister, Replica: true},
	}
	for _, want := range msgs {
		frame, err := appendFrame(nil, &want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Type, err)
		}
		if v := frame[4]; v != 3 {
			t.Errorf("%v frame stamped version %d, want 3", want.Type, v)
		}
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
		got, err := fr.readFrame()
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		got.ownedPayload = false
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the message:\ngot  %+v\nwant %+v", got, want)
		}
	}
}

// TestFrameVersionStampsClusterMessages pins the rule that cluster message
// types are stamped version 3 even when no v3 field is set: an older peer
// must reject the frame outright instead of silently ignoring an unknown
// message type (which would hang a cluster worker waiting for the reply).
func TestFrameVersionStampsClusterMessages(t *testing.T) {
	cases := []struct {
		m    Message
		want byte
	}{
		{Message{Type: MsgClusterMap}, 3},
		{Message{Type: MsgServerAnnounce}, 3},
		{Message{Type: MsgPromote}, 3},
		{Message{Type: MsgRegister, Cluster: true}, 3},
		{Message{Type: MsgRegister, Replica: true}, 3},
		{Message{Type: MsgOK, MapVersion: 2}, 3},
		{Message{Type: MsgRegister, DeltaPull: true}, 2},
		{Message{Type: MsgRegister}, 1},
		{Message{Type: MsgPush, Version: 9}, 1},
	}
	for _, c := range cases {
		if got := FrameVersion(c.m); got != c.want {
			t.Errorf("FrameVersion(%v %+v) = %d, want %d", c.m.Type, c.m, got, c.want)
		}
	}
}

// TestV3TagsRejectedInOlderFrames pins the decoder's version gate: the v3
// field tags inside a frame whose header claims version 1 or 2 are a
// protocol violation, exactly as the v2 tags are inside a v1 frame.
func TestV3TagsRejectedInOlderFrames(t *testing.T) {
	m := Message{Type: MsgClusterMap, MapVersion: 5, Servers: []ServerEntry{{Addr: "x:1", ShardHi: 1, TensorHi: 1}}}
	frame, err := appendFrame(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{1, 2} {
		down := append([]byte(nil), frame...)
		down[4] = version
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(down)))
		_, err := fr.readFrame()
		if err == nil {
			t.Fatalf("version-%d frame carrying v3 tags decoded successfully", version)
		}
		if !strings.Contains(err.Error(), "requires protocol version 3") {
			t.Errorf("version-%d rejection %q does not name the version requirement", version, err)
		}
	}
}

// TestV3FrameAgainstOlderDecoderIsWireMismatch simulates what a pre-cluster
// (v2-only) build does with a v3 frame: its readFrame sees a version above
// its maximum and fails with ErrWireVersion — the same canonical
// wire-mismatch condition a v3 server reports for a version-4 frame (pinned
// by TestFutureVersionClientRejectedExplicitly). The header layout is fixed
// across versions precisely so this check is version-independent.
func TestV3FrameAgainstOlderDecoderIsWireMismatch(t *testing.T) {
	m := Message{Type: MsgClusterMap}
	frame, err := appendFrame(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	// A v2-only decoder differs from ours only in its wireVersion constant;
	// replaying its check against our v3 frame must trip it.
	version := frame[4]
	if version <= 2 {
		t.Fatalf("cluster-map frame stamped version %d, expected 3", version)
	}
	// And a frame from a hypothetical v4 build trips ours the same way.
	future := append([]byte(nil), frame...)
	future[4] = wireVersion + 1
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(future)))
	_, err = fr.readFrame()
	if err == nil {
		t.Fatal("future-version frame decoded successfully")
	}
	if !IsWireMismatch(err) {
		t.Errorf("future-version rejection %q is not classified as a wire mismatch", err)
	}
}

// TestServersSectionHostileInputs drives the cluster-map section decoder
// with corrupt encodings.
func TestServersSectionHostileInputs(t *testing.T) {
	good, err := appendFrame(nil, &Message{Type: MsgClusterMap, Servers: []ServerEntry{{Addr: "x:1", ShardHi: 1, TensorHi: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"forged count", func(b []byte) []byte {
			// The count lives right after the tag byte; make it enormous.
			i := bytes.IndexByte(b[headerSize:], tagServers) + headerSize + 1
			b[i], b[i+1], b[i+2], b[i+3] = 0xff, 0xff, 0xff, 0x7f
			return b
		}},
		{"truncated entry", func(b []byte) []byte { return b[:len(b)-3] }},
		{"negative bound", func(b []byte) []byte {
			// The last 4 bytes are TensorHi; flip its sign bit.
			b[len(b)-1] |= 0x80
			return b
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			frame := c.mutate(append([]byte(nil), good...))
			// Re-stamp the length in case the mutation shortened the body.
			if len(frame) >= headerSize {
				patchBodyLen(frame)
			}
			fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
			if _, err := fr.readFrame(); err == nil {
				t.Error("corrupt cluster-map frame decoded successfully")
			}
		})
	}
}

// patchBodyLen rewrites a frame's declared body length to its actual size.
func patchBodyLen(frame []byte) {
	n := len(frame) - headerSize
	frame[8] = byte(n)
	frame[9] = byte(n >> 8)
	frame[10] = byte(n >> 16)
	frame[11] = byte(n >> 24)
}
